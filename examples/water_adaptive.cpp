//===- examples/water_adaptive.cpp - Per-section adaptation demo -----------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Demonstrates why dynamic feedback beats any static choice: in Water the
// best synchronization policy differs per section AND per machine size.
//  - INTERF generates two versions (Bounded and Aggressive coincide);
//    Bounded is best.
//  - POTENG generates two versions (Original and Bounded coincide); the
//    Aggressive version wins on one processor (least locking) but
//    serializes the whole section on many processors (false exclusion).
// The controller discovers the right per-section, per-machine choice at
// run time.
//
// Run: ./water_adaptive [--molecules N]
//
//===----------------------------------------------------------------------===//

#include "apps/Harness.h"
#include "apps/water/WaterApp.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace dynfb;
using namespace dynfb::apps;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(static_cast<double>(CL.getInt("molecules", 512)) /
               Config.NumMolecules);
  water::WaterApp App(Config);

  std::printf("Water, %u molecules. Generated versions:\n",
              Config.NumMolecules);
  for (const xform::VersionedSection &VS : App.program().Sections) {
    std::printf("  %s:", VS.Name.c_str());
    for (const xform::SectionVersion &V : VS.Versions)
      std::printf("  [%s]", V.label().c_str());
    std::printf("\n");
  }

  for (unsigned Procs : {1u, 8u}) {
    std::printf("\n--- %u simulated processor%s ---\n", Procs,
                Procs == 1 ? "" : "s");
    for (xform::PolicyKind P : xform::AllPolicies)
      std::printf("  static %-10s : %8.2f s\n", xform::policyName(P),
                  runAppSeconds(App, Procs, Flavour::Fixed, P));
    const fb::RunResult Dyn = runApp(App, Procs, Flavour::Dynamic);
    std::printf("  dynamic feedback  : %8.2f s\n",
                rt::nanosToSeconds(Dyn.TotalNanos));

    // What did the controller choose, per section occurrence?
    for (const fb::SectionExecutionTrace &T : Dyn.Occurrences) {
      if (T.ChosenVersions.empty())
        continue;
      const xform::VersionedSection *VS =
          App.program().find(T.SectionName);
      std::printf("    %-7s -> '%s'  (sampled overheads:",
                  T.SectionName.c_str(),
                  VS->Versions[*T.dominantVersion()].label().c_str());
      for (const Series &S : T.SampledOverheads.all())
        if (S.size() > 0)
          std::printf(" %s=%.3f", S.Label.c_str(), S.Values.front());
      std::printf(")\n");
    }
  }
  std::printf("\nNote how POTENG's choice flips between one processor "
              "(Aggressive: least locking) and eight (Original: avoids the "
              "serializing false exclusion) -- no static policy gets both "
              "right.\n");
  return 0;
}
