//===- examples/quickstart.cpp - Dynamic feedback in 80 lines --------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Quickstart: the core dynamic-feedback API on real threads. A parallel
// histogram computation has three hand-written versions that differ in
// synchronization granularity (the classic locking/waiting trade-off):
//   fine:    one lock pair per bin update        (low waiting, high locking)
//   batched: one lock pair per iteration          (the balanced policy)
//   coarse:  one global lock per iteration's work (low locking, may wait)
// The controller samples each version, measures its overhead, and runs the
// best one -- no static choice needed.
//
// Build and run:  ./quickstart [--iterations N]
//
//===----------------------------------------------------------------------===//

#include "fb/Controller.h"
#include "rt/RealRunner.h"
#include "support/CommandLine.h"
#include "support/Random.h"

#include <cstdio>
#include <vector>

using namespace dynfb;

namespace {

constexpr unsigned NumBins = 64;
constexpr unsigned SamplesPerIteration = 512;

struct Histogram {
  rt::SpinLock BinLocks[NumBins];
  rt::SpinLock GlobalLock;
  double Bins[NumBins] = {};
};

/// The per-iteration work: hash the iteration's samples into bins.
void computeSamples(uint64_t Iter, std::vector<unsigned> &BinsOut) {
  Rng R(Iter * 2654435761u + 1);
  BinsOut.clear();
  for (unsigned I = 0; I < SamplesPerIteration; ++I)
    BinsOut.push_back(static_cast<unsigned>(R.nextBelow(NumBins)));
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const uint64_t Iterations =
      static_cast<uint64_t>(CL.getInt("iterations", 120000));

  Histogram H;
  std::vector<rt::NativeVersion> Versions;

  // Version 0 "fine": lock the bin for every single update.
  Versions.push_back({"fine", [&H](uint64_t Iter, rt::WorkerCtx &Ctx) {
                        std::vector<unsigned> Samples;
                        computeSamples(Iter, Samples);
                        for (unsigned B : Samples) {
                          Ctx.acquire(H.BinLocks[B]);
                          H.Bins[B] += 1.0;
                          Ctx.release(H.BinLocks[B]);
                        }
                      }});
  // Version 1 "batched": lock each touched bin once per iteration.
  Versions.push_back({"batched", [&H](uint64_t Iter, rt::WorkerCtx &Ctx) {
                        std::vector<unsigned> Samples;
                        computeSamples(Iter, Samples);
                        double Local[NumBins] = {};
                        for (unsigned B : Samples)
                          Local[B] += 1.0;
                        for (unsigned B = 0; B < NumBins; ++B) {
                          if (Local[B] == 0.0)
                            continue;
                          Ctx.acquire(H.BinLocks[B]);
                          H.Bins[B] += Local[B];
                          Ctx.release(H.BinLocks[B]);
                        }
                      }});
  // Version 2 "coarse": one global lock around the whole merge.
  Versions.push_back({"coarse", [&H](uint64_t Iter, rt::WorkerCtx &Ctx) {
                        std::vector<unsigned> Samples;
                        computeSamples(Iter, Samples);
                        double Local[NumBins] = {};
                        for (unsigned B : Samples)
                          Local[B] += 1.0;
                        Ctx.acquire(H.GlobalLock);
                        for (unsigned B = 0; B < NumBins; ++B)
                          H.Bins[B] += Local[B];
                        Ctx.release(H.GlobalLock);
                      }});

  rt::ThreadTeam Team(2);
  rt::RealSectionRunner Runner(Team, std::move(Versions), Iterations);

  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = rt::millisToNanos(10);
  Config.TargetProductionNanos = rt::millisToNanos(250);
  fb::FeedbackController Controller(Config);

  const fb::SectionExecutionTrace Trace =
      Controller.executeSection(Runner, "histogram");

  std::printf("dynamic feedback over %llu iterations:\n",
              static_cast<unsigned long long>(Iterations));
  for (const Series &S : Trace.SampledOverheads.all()) {
    double Mean = 0;
    for (double V : S.Values)
      Mean += V;
    Mean /= static_cast<double>(S.size());
    std::printf("  sampled %-8s %zu times, mean overhead %.4f\n",
                S.Label.c_str(), S.size(), Mean);
  }
  if (auto Best = Trace.dominantVersion())
    std::printf("production ran version '%s' (sampling phases: %u)\n",
                Runner.versionLabel(*Best).c_str(), Trace.SamplingPhases);

  double Total = 0;
  for (double B : H.Bins)
    Total += B;
  std::printf("histogram total %.0f (expected %.0f) -- %s\n", Total,
              static_cast<double>(Iterations) * SamplesPerIteration,
              Total == static_cast<double>(Iterations) * SamplesPerIteration
                  ? "consistent"
                  : "INCONSISTENT");
  return 0;
}
