//===- examples/barnes_hut_native.cpp - Real physics, real threads ---------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// The Barnes-Hut force computation with REAL physics on REAL threads: the
// octree is built from actual bodies and the three synchronization policies
// are hand-written native variants of the same traversal (exactly the
// paper's generated placements):
//   Original:   one lock pair per accumulated quantity per interaction
//   Bounded:    one lock pair per interaction (coalesced updates)
//   Aggressive: one lock pair per body (lifted out of the traversal)
// Dynamic feedback picks among them at run time, and the example verifies
// that all variants produce identical accelerations.
//
// Run: ./barnes_hut_native [--bodies N]
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/Octree.h"
#include "fb/Controller.h"
#include "rt/NativeSection.h"
#include "rt/RealRunner.h"
#include "support/CommandLine.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace dynfb;
using namespace dynfb::apps::bh;

namespace {

struct LockedBody {
  rt::SpinLock Mutex;
  Vec3 Acc;
  double Phi = 0;
};

struct World {
  std::vector<Body> Bodies;
  std::vector<LockedBody> Accum;
  const Octree *Tree = nullptr;
  double Theta = 1.0;
  double Eps = 0.05;
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const uint32_t N = static_cast<uint32_t>(CL.getInt("bodies", 4000));

  World W;
  W.Bodies = makePlummerBodies(N, 2026);
  W.Accum = std::vector<LockedBody>(N);
  Octree Tree(W.Bodies);
  W.Tree = &Tree;

  // The three hand-written placements of the same traversal. Each body's
  // accumulators live behind its own spin lock, as in the generated code.
  std::vector<rt::NativeVersion> Versions;

  // Original: acquire/release around every accumulated quantity.
  Versions.push_back({"Original", [&W](uint64_t I, rt::WorkerCtx &Ctx) {
                        const ForceResult F = W.Tree->computeForce(
                            static_cast<uint32_t>(I), W.Theta, W.Eps);
                        LockedBody &B = W.Accum[I];
                        Ctx.acquire(B.Mutex);
                        B.Acc += F.Acc;
                        Ctx.release(B.Mutex);
                        Ctx.acquire(B.Mutex);
                        B.Phi += F.Phi;
                        Ctx.release(B.Mutex);
                      }});
  // Bounded: coalesce the two updates into one region.
  Versions.push_back({"Bounded", [&W](uint64_t I, rt::WorkerCtx &Ctx) {
                        const ForceResult F = W.Tree->computeForce(
                            static_cast<uint32_t>(I), W.Theta, W.Eps);
                        LockedBody &B = W.Accum[I];
                        Ctx.acquire(B.Mutex);
                        B.Acc += F.Acc;
                        B.Phi += F.Phi;
                        Ctx.release(B.Mutex);
                      }});
  // Aggressive: the lock lifted around the whole operation (Figure 2).
  Versions.push_back({"Aggressive", [&W](uint64_t I, rt::WorkerCtx &Ctx) {
                        LockedBody &B = W.Accum[I];
                        Ctx.acquire(B.Mutex);
                        const ForceResult F = W.Tree->computeForce(
                            static_cast<uint32_t>(I), W.Theta, W.Eps);
                        B.Acc += F.Acc;
                        B.Phi += F.Phi;
                        Ctx.release(B.Mutex);
                      }});

  rt::ThreadTeam Team(2);
  rt::RealSectionRunner Runner(Team, std::move(Versions), N);

  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = rt::millisToNanos(3);
  Config.TargetProductionNanos = rt::millisToNanos(100);
  fb::FeedbackController Controller(Config);
  const fb::SectionExecutionTrace Trace =
      Controller.executeSection(Runner, "FORCES");

  std::printf("computed forces for %u bodies under dynamic feedback\n", N);
  for (const Series &S : Trace.SampledOverheads.all())
    if (S.size() > 0)
      std::printf("  sampled %-10s overhead %.5f\n", S.Label.c_str(),
                  S.Values.front());
  if (auto Best = Trace.dominantVersion())
    std::printf("  production used '%s'\n",
                Runner.versionLabel(*Best).c_str());

  // Verify against a serial reference computation.
  double MaxRelErr = 0;
  for (uint32_t I = 0; I < N; ++I) {
    const ForceResult Ref = Tree.computeForce(I, W.Theta, W.Eps);
    const Vec3 D = W.Accum[I].Acc - Ref.Acc;
    const double Scale = std::sqrt(Ref.Acc.norm2()) + 1e-12;
    MaxRelErr = std::max(MaxRelErr, std::sqrt(D.norm2()) / Scale);
  }
  std::printf("max relative force error vs serial reference: %.2e -- %s\n",
              MaxRelErr, MaxRelErr < 1e-12 ? "exact" : "MISMATCH");
  return MaxRelErr < 1e-12 ? 0 : 1;
}
