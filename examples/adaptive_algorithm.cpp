//===- examples/adaptive_algorithm.cpp - Beyond synchronization ------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// The paper's introduction observes that "the best algorithm to solve a
// given problem often depends on the combination of input and hardware".
// This example applies dynamic feedback to ALGORITHM selection: three
// sorting algorithms are alternative versions of the same computation, and
// the measured overhead is the fraction of time spent beyond the
// essential comparison work. When the input distribution changes mid-run
// (small chunks -> large chunks), resampling makes the controller switch
// algorithms.
//
// Run: ./adaptive_algorithm [--chunks N]
//
//===----------------------------------------------------------------------===//

#include "fb/Controller.h"
#include "rt/RealRunner.h"
#include "support/CommandLine.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace dynfb;

namespace {

/// Chunk sizes: tiny early in the run, large later -- the environment
/// change the controller adapts to.
size_t chunkSize(uint64_t Iter, uint64_t TotalChunks) {
  return Iter < TotalChunks / 2 ? 24 : 3000;
}

void fillChunk(uint64_t Iter, std::vector<uint32_t> &Out, size_t N) {
  Rng R(Iter + 99);
  Out.clear();
  for (size_t I = 0; I < N; ++I)
    Out.push_back(static_cast<uint32_t>(R.next64()));
}

void insertionSort(std::vector<uint32_t> &V) {
  for (size_t I = 1; I < V.size(); ++I) {
    const uint32_t Key = V[I];
    size_t J = I;
    while (J > 0 && V[J - 1] > Key) {
      V[J] = V[J - 1];
      --J;
    }
    V[J] = Key;
  }
}

void quickSort(std::vector<uint32_t> &V, size_t Lo, size_t Hi) {
  while (Hi - Lo > 1) {
    const uint32_t Pivot = V[Lo + (Hi - Lo) / 2];
    size_t I = Lo, J = Hi - 1;
    while (I <= J) {
      while (V[I] < Pivot)
        ++I;
      while (V[J] > Pivot)
        --J;
      if (I > J)
        break;
      std::swap(V[I], V[J]);
      ++I;
      if (J == 0)
        break;
      --J;
    }
    if (J + 1 - Lo < Hi - I) {
      if (J + 1 > Lo)
        quickSort(V, Lo, J + 1);
      Lo = I;
    } else {
      quickSort(V, I, Hi);
      Hi = J + 1;
    }
  }
}

/// A version sorts the chunk and accounts "time beyond the essential work"
/// (n log2 n comparison-equivalents at a reference cost) as overhead, so
/// the controller's min-overhead choice is the fastest algorithm for the
/// current input distribution.
rt::NativeVersion makeVersion(std::string Label,
                              void (*SortFn)(std::vector<uint32_t> &),
                              uint64_t TotalChunks) {
  return rt::NativeVersion{
      std::move(Label), [SortFn, TotalChunks](uint64_t Iter,
                                              rt::WorkerCtx &Ctx) {
        std::vector<uint32_t> Chunk;
        fillChunk(Iter, Chunk, chunkSize(Iter, TotalChunks));
        const rt::Nanos T0 = rt::steadyNow();
        SortFn(Chunk);
        const rt::Nanos Elapsed = rt::steadyNow() - T0;
        const double N = static_cast<double>(Chunk.size());
        const rt::Nanos Essential =
            static_cast<rt::Nanos>(2.0 * N * std::log2(N + 1.0));
        // Non-essential time is this algorithm's "overhead" on this input.
        Ctx.Stats.LockOpNanos += std::max<rt::Nanos>(0, Elapsed - Essential);
        if (!std::is_sorted(Chunk.begin(), Chunk.end()))
          std::abort();
      }};
}

void insertionEntry(std::vector<uint32_t> &V) { insertionSort(V); }
void quickEntry(std::vector<uint32_t> &V) {
  if (!V.empty())
    quickSort(V, 0, V.size());
}
void stdEntry(std::vector<uint32_t> &V) { std::sort(V.begin(), V.end()); }

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const uint64_t Chunks = static_cast<uint64_t>(CL.getInt("chunks", 60000));

  std::vector<rt::NativeVersion> Versions;
  Versions.push_back(makeVersion("insertion", insertionEntry, Chunks));
  Versions.push_back(makeVersion("quicksort", quickEntry, Chunks));
  Versions.push_back(makeVersion("std::sort", stdEntry, Chunks));

  rt::ThreadTeam Team(1);
  rt::RealSectionRunner Runner(Team, std::move(Versions), Chunks);

  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = rt::millisToNanos(5);
  Config.TargetProductionNanos = rt::millisToNanos(150);
  fb::FeedbackController Controller(Config);
  const fb::SectionExecutionTrace Trace =
      Controller.executeSection(Runner, "sort");

  std::printf("adaptive algorithm selection over %llu chunks "
              "(small chunks, then large chunks):\n",
              static_cast<unsigned long long>(Chunks));
  std::printf("production choices in order:");
  for (unsigned V : Trace.ChosenVersions)
    std::printf(" %s", Runner.versionLabel(V).c_str());
  std::printf("\n");
  std::printf("sampling phases: %u; total time %.2f s\n",
              Trace.SamplingPhases,
              rt::nanosToSeconds(Trace.durationNanos()));
  std::printf("expectation: early production phases favor a low-constant "
              "algorithm on tiny chunks; after the input grows, resampling "
              "switches to an O(n log n) algorithm.\n");
  return 0;
}
