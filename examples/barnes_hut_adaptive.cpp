//===- examples/barnes_hut_adaptive.cpp - Full compiler pipeline demo ------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// The flagship domain example: the whole paper pipeline on Barnes-Hut.
//  1. The application is authored as an object-based IR program (the
//     paper's Figure 1).
//  2. Commutativity analysis proves the FORCES operations commute, so the
//     compiler may parallelize the section.
//  3. The synchronization optimizer generates one version per policy --
//     the Aggressive version is exactly the paper's Figure 2 (the lock
//     lifted out of the interaction loop, interprocedurally).
//  4. The generated code runs on the simulated 16-processor DASH-like
//     machine under dynamic feedback, which discovers that Aggressive is
//     the best policy for this application.
//
// Run: ./barnes_hut_adaptive [--bodies N] [--procs P]
//
//===----------------------------------------------------------------------===//

#include "analysis/Commutativity.h"
#include "apps/Harness.h"
#include "apps/barnes_hut/BarnesHutApp.h"
#include "ir/Printer.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace dynfb;
using namespace dynfb::apps;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bh::BarnesHutConfig Config;
  Config.scale(static_cast<double>(CL.getInt("bodies", 2048)) /
               Config.NumBodies);
  const unsigned Procs = static_cast<unsigned>(CL.getInt("procs", 8));

  bh::BarnesHutApp App(Config);
  std::printf("=== 1. The source program (paper Figure 1, author form) "
              "===\n\n%s\n",
              ir::printModule(App.module(), /*IncludeSynthetic=*/false)
                  .c_str());

  const auto CR =
      analysis::analyzeSection(*App.module().findSection("FORCES"));
  std::printf("=== 2. Commutativity analysis ===\n\nFORCES operations %s\n\n",
              CR.Commutes ? "commute: the compiler parallelizes the section"
                          : "do NOT commute");

  std::printf("=== 3. Generated synchronization versions ===\n\n");
  const xform::VersionedSection *VS = App.program().find("FORCES");
  for (const xform::SectionVersion &V : VS->Versions) {
    std::printf("--- %s ---\n%s\n", V.label().c_str(),
                ir::printMethod(*V.Entry).c_str());
  }

  std::printf("=== 4. Adaptive execution on %u simulated processors ===\n\n",
              Procs);
  for (xform::PolicyKind P : xform::AllPolicies)
    std::printf("  static %-10s : %8.2f s\n", xform::policyName(P),
                runAppSeconds(App, Procs, Flavour::Fixed, P));

  const fb::RunResult Dyn = runApp(App, Procs, Flavour::Dynamic);
  std::printf("  dynamic feedback  : %8.2f s\n",
              rt::nanosToSeconds(Dyn.TotalNanos));
  for (const fb::SectionExecutionTrace &T : Dyn.Occurrences)
    if (auto Best = T.dominantVersion())
      std::printf("    %s production phases used version '%s'\n",
                  T.SectionName.c_str(),
                  VS->Versions[*Best].label().c_str());
  return 0;
}
