//===- tools/dynfb-explore.cpp - Inspect an application's compilation ------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Compiler-explorer-style inspection of a benchmark application:
//
//   dynfb-explore --app water                 # overview
//   dynfb-explore --app water --versions      # all generated versions
//   dynfb-explore --app barnes_hut --source   # the author-form program
//
//===----------------------------------------------------------------------===//

#include "apps/Factory.h"
#include "analysis/Commutativity.h"
#include "exp/Experiment.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "obs/Export.h"
#include "support/BuildInfo.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "xform/CodeSize.h"

#include <cstdio>

using namespace dynfb;
using namespace dynfb::apps;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  if (CL.has("version")) {
    std::printf("dynfb-explore %s (result schema %lld, trace schema %lld)\n",
                buildHash(),
                static_cast<long long>(exp::ResultSchemaVersion),
                static_cast<long long>(obs::TraceSchemaVersion));
    return 0;
  }
  if (!rejectUnknownFlags(CL, "dynfb-explore",
                          {"app", "source", "selftest", "versions",
                           "version"},
                          "no arguments"))
    return 2;
  const std::string AppName = CL.getString("app", "");
  // Tiny workloads: the compiled structure is workload-independent.
  std::unique_ptr<App> TheApp = createApp(AppName, 1.0 / 64.0);
  if (!TheApp) {
    std::fprintf(stderr, "usage: dynfb-explore --app <name> [--source] "
                         "[--versions]\n  apps:");
    for (const std::string &Name : appNames())
      std::fprintf(stderr, " %s", Name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  if (CL.getBool("source", false)) {
    std::fputs(
        ir::printModule(TheApp->module(), /*IncludeSynthetic=*/false)
            .c_str(),
        stdout);
    return 0;
  }

  if (CL.getBool("selftest", false)) {
    // Round-trip the author form through the textual parser.
    const std::string Printed =
        ir::printModule(TheApp->module(), /*IncludeSynthetic=*/false);
    const ir::ParseResult Parsed = ir::parseModule(Printed);
    if (!Parsed.ok()) {
      std::fprintf(stderr, "round-trip parse failed: %s\n",
                   Parsed.Error.c_str());
      return 1;
    }
    if (ir::printModule(*Parsed.M) != Printed) {
      std::fprintf(stderr, "round-trip print differs\n");
      return 1;
    }
    std::printf("%s: textual round-trip OK (%zu methods)\n",
                AppName.c_str(), Parsed.M->methods().size());
    return 0;
  }

  const bool PrintVersions = CL.getBool("versions", false);
  std::printf("application: %s\n\n", AppName.c_str());
  for (const xform::VersionedSection &VS : TheApp->program().Sections) {
    const auto CR = analysis::analyzeSection(
        *TheApp->module().findSection(VS.Name));
    std::printf("parallel section %s: operations %s; %zu generated "
                "version(s)\n",
                VS.Name.c_str(), CR.Commutes ? "commute" : "DO NOT commute",
                VS.Versions.size());
    for (const xform::SectionVersion &V : VS.Versions) {
      std::printf("  - %s\n", V.label().c_str());
      if (PrintVersions)
        std::printf("%s\n", ir::printMethod(*V.Entry).c_str());
    }
  }

  const xform::CodeSizeModel Model;
  const xform::ExecutableSizes Sizes =
      xform::computeExecutableSizes(TheApp->program(), Model, 25000);
  std::printf("\ncode size (modelled, bytes): serial %s, aggressive %s, "
              "dynamic %s\n",
              withThousandsSep(Sizes.Serial).c_str(),
              withThousandsSep(Sizes.Aggressive).c_str(),
              withThousandsSep(Sizes.Dynamic).c_str());
  return 0;
}
