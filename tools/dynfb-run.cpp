//===- tools/dynfb-run.cpp - Run an application on the simulator -----------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Command-line driver:
//
//   dynfb-run --app water --procs 8 --policy dynamic
//   dynfb-run --app barnes_hut --procs 16 --policy aggressive --scale 0.25
//   dynfb-run --app water --sweep             # all policies x 1..16 procs
//
// Policies: serial, original, bounded, aggressive, dynamic. Dynamic-mode
// options: --sampling <seconds>, --production <seconds>, --cutoff,
// --ordering, --spanning.
//
//===----------------------------------------------------------------------===//

#include "apps/Factory.h"
#include "apps/Harness.h"
#include "rt/NativeSection.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <limits>

using namespace dynfb;
using namespace dynfb::apps;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dynfb-run --app <barnes_hut|water|string> "
               "[--procs N] [--policy serial|original|bounded|aggressive|"
               "dynamic] [--scale F] [--sampling S] [--production S] "
               "[--cutoff] [--ordering] [--spanning] [--sweep]\n");
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const std::string AppName = CL.getString("app", "");
  std::unique_ptr<App> TheApp =
      createApp(AppName, CL.getDouble("scale", 1.0));
  if (!TheApp)
    return usage();

  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos =
      rt::secondsToNanos(CL.getDouble("sampling", 0.01));
  Config.TargetProductionNanos =
      rt::secondsToNanos(CL.getDouble("production", 100.0));
  Config.EarlyCutoff = CL.getBool("cutoff", false);
  Config.UsePolicyOrdering = CL.getBool("ordering", false);
  Config.SpanSectionExecutions = CL.getBool("spanning", false);

  if (CL.getBool("sweep", false)) {
    Table T(AppName + ": execution times (seconds)");
    std::vector<std::string> Header{"Version"};
    for (unsigned N : PaperProcCounts)
      Header.push_back(format("%u", N));
    T.setHeader(Header);
    for (xform::PolicyKind P : xform::AllPolicies) {
      std::vector<std::string> Row{xform::policyName(P)};
      for (unsigned N : PaperProcCounts)
        Row.push_back(formatDouble(
            runAppSeconds(*TheApp, N, Flavour::Fixed, P, Config), 2));
      T.addRow(Row);
    }
    std::vector<std::string> Dyn{"Dynamic"};
    for (unsigned N : PaperProcCounts)
      Dyn.push_back(formatDouble(
          runAppSeconds(*TheApp, N, Flavour::Dynamic,
                        xform::PolicyKind::Original, Config),
          2));
    T.addRow(Dyn);
    std::fputs(T.renderText().c_str(), stdout);
    return 0;
  }

  const unsigned Procs = static_cast<unsigned>(CL.getInt("procs", 8));
  const std::string PolicyName = CL.getString("policy", "dynamic");

  if (CL.getString("backend", "sim") == "native") {
    // Execute the generated IR on real host threads (compute costs scaled
    // down by --timescale; serial phases skipped). Dynamic feedback only.
    const double TimeScale = CL.getDouble("timescale", 0.0005);
    rt::ThreadTeam Team(std::max(1u, Procs));
    fb::FeedbackConfig NativeConfig = Config;
    NativeConfig.TargetSamplingNanos = rt::millisToNanos(5);
    NativeConfig.TargetProductionNanos = rt::millisToNanos(200);
    fb::FeedbackController Controller(NativeConfig);
    const rt::Nanos Start = rt::steadyNow();
    for (const xform::VersionedSection &VS : TheApp->program().Sections) {
      std::vector<rt::NativeIrVersion> Versions;
      for (const xform::SectionVersion &V : VS.Versions)
        Versions.push_back({V.label(), V.Entry});
      auto Runner = rt::makeNativeIrRunner(
          Team, TheApp->binding(VS.Name), std::move(Versions),
          rt::CostModel::dashLike(), TimeScale);
      const fb::SectionExecutionTrace T =
          Controller.executeSection(*Runner, VS.Name);
      std::printf("  [native] %s -> %s in %.3f s real time (%llu pairs)\n",
                  VS.Name.c_str(),
                  T.dominantVersion()
                      ? Runner->versionLabel(*T.dominantVersion()).c_str()
                      : "(finished during sampling)",
                  rt::nanosToSeconds(T.durationNanos()),
                  static_cast<unsigned long long>(
                      T.Total.AcquireReleasePairs));
    }
    std::printf("native run total %.3f s (timescale %g, serial phases "
                "skipped)\n",
                rt::nanosToSeconds(rt::steadyNow() - Start), TimeScale);
    return 0;
  }

  Flavour F = Flavour::Dynamic;
  xform::PolicyKind Policy = xform::PolicyKind::Original;
  if (PolicyName == "serial")
    F = Flavour::Serial;
  else if (PolicyName == "original")
    F = Flavour::Fixed;
  else if (PolicyName == "bounded") {
    F = Flavour::Fixed;
    Policy = xform::PolicyKind::Bounded;
  } else if (PolicyName == "aggressive") {
    F = Flavour::Fixed;
    Policy = xform::PolicyKind::Aggressive;
  } else if (PolicyName != "dynamic")
    return usage();

  fb::PolicyHistory History;
  const fb::RunResult R =
      runApp(*TheApp, Procs, F, Policy, Config,
             Config.UsePolicyOrdering ? &History : nullptr);

  std::printf("%s, %u procs, policy %s: %.3f s\n", AppName.c_str(), Procs,
              PolicyName.c_str(), rt::nanosToSeconds(R.TotalNanos));
  std::printf("  acquire/release pairs: %s\n",
              withThousandsSep(R.ParallelStats.AcquireReleasePairs).c_str());
  std::printf("  locking overhead: %s, waiting: %s (proportion %.3f)\n",
              formatSeconds(rt::nanosToSeconds(R.ParallelStats.LockOpNanos))
                  .c_str(),
              formatSeconds(rt::nanosToSeconds(R.ParallelStats.WaitNanos))
                  .c_str(),
              R.ParallelStats.waitingProportion());
  if (F == Flavour::Dynamic) {
    for (const fb::SectionExecutionTrace &T : R.Occurrences) {
      if (T.ChosenVersions.empty())
        continue;
      const xform::VersionedSection *VS =
          TheApp->program().find(T.SectionName);
      std::printf("  %s -> %s (sampling phases %u, sampled intervals %u)\n",
                  T.SectionName.c_str(),
                  VS->Versions[*T.dominantVersion()].label().c_str(),
                  T.SamplingPhases, T.SampledIntervals);
    }
  }

  if (CL.getBool("trace", false) && F == Flavour::Fixed) {
    // Contention report: re-run each section with an interval trace.
    auto Backend = TheApp->makeSimBackend(Procs, rt::CostModel::dashLike(),
                                          F, Policy);
    for (const xform::VersionedSection &VS : TheApp->program().Sections) {
      auto Runner = Backend->beginSectionSim(VS.Name);
      sim::IntervalTrace Trace;
      Runner->attachTrace(&Trace);
      while (!Runner->done())
        Runner->runInterval(0, std::numeric_limits<rt::Nanos>::max() / 4);
      std::printf("\nsection %s ", VS.Name.c_str());
      std::fputs(Trace.renderText().c_str(), stdout);
    }
  }
  return 0;
}
