//===- tools/dynfb-run.cpp - Run an application on the simulator -----------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Command-line driver:
//
//   dynfb-run --app water --procs 8 --policy dynamic
//   dynfb-run --app barnes_hut --procs 16 --policy aggressive --scale 0.25
//   dynfb-run --app water --sweep             # all versions x 1..16 procs
//   dynfb-run --app water --policy dynamic \
//       --perturb "contend@2s-4s:extra=200us" --drift 0.1
//   dynfb-run --app water --dimensions sync,sched --chunks 8,32 \
//       --policy dynamic                      # 3x3 version space
//   dynfb-run --app water --dimensions sync,sched --chunks 8 --list-versions
//
// Policies: serial, original, bounded, aggressive, dynamic. Version space:
// --dimensions sync[,sched] with --chunks K1,K2,... composing chunked
// scheduling variants into the space; --list-versions prints the resolved
// space and exits. Dynamic-mode options: --sampling <seconds>,
// --production <seconds>, --cutoff, --ordering, --spanning. Robustness
// options: --repeats N, --aggregate mean|median|trimmed, --hysteresis X,
// --drift X, --slice S. Controller resilience (docs/ROBUSTNESS.md):
// --quarantine N, --quarantine-window N, --quarantine-limit X,
// --quarantine-backoff N, --watchdog N, --watchdog-limit X. Fault
// injection: --perturb "<schedule>" (see docs/ROBUSTNESS.md for the
// schedule grammar; schedules are validated against the processor count
// before the run). Streaming traffic: --traffic "<spec>" compiles a
// serving-traffic stream (see perturb/Traffic.h) into the same machinery.
//
// Backends: --backend sim (default, virtual time) or --backend native
// (real host threads; --timescale F converts virtual compute nanoseconds
// to busy-wait nanoseconds, default 0.0005). The native backend ignores
// --machine/--cost pricing and rejects --perturb/--traffic/--sweep/--trace;
// everything else -- policies, the feedback controller, trace export --
// works identically on both.
//
// Observability (default-off; see docs/OBSERVABILITY.md): --trace-out FILE
// writes the run's JSONL adaptation trace (decision log + section + lock
// records, readable by dynfb-report), --chrome-out FILE the same run in
// Chrome trace_event format (chrome://tracing, Perfetto), --metrics-out
// FILE the global metrics registry as JSON, scoped to this run. All three
// work on either backend (native timestamps come from the steady clock).
// Recorded traces stamp the full run configuration into their meta line,
// so --replay TRACE reconstructs and re-drives the run, verifying every
// decision, section and lock record against the recording (docs/REPLAY.md;
// zero divergence and exit 0, or the first mismatching record and exit 1).
//
// Invalid input (unknown application, unknown section in a perturbation
// schedule, malformed schedule or configuration) produces a one-line
// diagnostic on stderr and a nonzero exit status -- never an abort.
//
//===----------------------------------------------------------------------===//

#include "apps/Factory.h"
#include "apps/Harness.h"
#include "exp/Experiment.h"
#include "fb/Sampling.h"
#include "replay/Replay.h"
#include "exp/PaperGrids.h"
#include "obs/Metrics.h"
#include "perturb/Engine.h"
#include "perturb/Traffic.h"
#include "rt/MachineModel.h"
#include "rt/NativeSection.h"
#include "support/BuildInfo.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "xform/CodeSize.h"

#include <algorithm>
#include <cstdio>
#include <limits>

using namespace dynfb;
using namespace dynfb::apps;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dynfb-run --app <barnes_hut|water|string|kvserve> "
               "[--procs N] [--policy serial|original|bounded|aggressive|"
               "dynamic] [--scale F] [--dimensions sync[,sched]] "
               "[--chunks K1,K2,...] [--list-versions] [--sampling S] "
               "[--production S] [--cutoff] [--ordering] [--spanning] "
               "[--sweep] [--repeats N] [--aggregate mean|median|trimmed] "
               "[--sampler exhaustive|halving|ucb] [--search-budget F] "
               "[--ucb-explore C] "
               "[--hysteresis X] [--drift X] [--slice S] "
               "[--quarantine N] [--quarantine-window N] "
               "[--quarantine-limit X] [--quarantine-backoff N] "
               "[--watchdog N] [--watchdog-limit X] "
               "[--perturb SCHEDULE] [--traffic SPEC] [--machine NAME] "
               "[--cost Field=nanos[,Field=nanos]] [--backend sim|native] "
               "[--timescale F] [--trace-out FILE] "
               "[--chrome-out FILE] [--metrics-out FILE]\n"
               "       dynfb-run --replay TRACE [--trace-out FILE]\n");
  return 1;
}

/// One-line diagnostic + failure exit code, the graceful path for every
/// input error.
int fail(const std::string &Msg) {
  std::fprintf(stderr, "dynfb-run: error: %s\n", Msg.c_str());
  return 1;
}

/// Writes \p Contents to \p Path; false (with \p Error set) on any I/O
/// failure.
bool writeFile(const std::string &Path, const std::string &Contents,
               std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  const size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  const int CloseRc = std::fclose(F);
  if (Written != Contents.size() || CloseRc != 0) {
    Error = "failed writing '" + Path + "'";
    return false;
  }
  return true;
}

/// Reads the whole of \p Path; nullopt (with \p Error set) on failure.
std::optional<std::string> readFile(const std::string &Path,
                                    std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::string Out;
  char Buf[64 * 1024];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  const bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadError) {
    Error = "failed reading '" + Path + "'";
    return std::nullopt;
  }
  return Out;
}

/// The --replay mode: reconstruct the recorded run from the trace's meta
/// line, re-drive it on a fresh simulator, and verify every record.
int runReplay(const CommandLine &CL, const std::string &ReplayPath) {
  // The replayed configuration comes entirely from the trace; any shaping
  // flag would silently disagree with it. Only --trace-out (re-export of
  // the replayed trace) composes.
  static const char *const Conflicting[] = {
      "app",         "procs",      "policy",
      "scale",       "dimensions", "chunks",
      "list-versions", "sampling", "production",
      "cutoff",      "ordering",   "spanning",
      "sweep",       "repeats",    "aggregate",
      "sampler",     "search-budget", "ucb-explore",
      "hysteresis",  "drift",      "slice",
      "quarantine",  "quarantine-window", "quarantine-limit",
      "quarantine-backoff", "watchdog", "watchdog-limit",
      "perturb",     "traffic",    "machine",
      "cost",        "chrome-out", "metrics-out",
      "backend",     "timescale",  "trace"};
  for (const char *Flag : Conflicting)
    if (CL.has(Flag))
      return fail(format("--replay takes its whole configuration from the "
                         "trace; --%s cannot be combined with it",
                         Flag));

  std::string Error;
  const std::optional<std::string> Text = readFile(ReplayPath, Error);
  if (!Text)
    return fail(Error);
  const std::optional<obs::RunTrace> Recorded =
      obs::parseJsonl(*Text, Error);
  if (!Recorded)
    return fail("malformed trace '" + ReplayPath + "': " + Error);

  std::printf("replay: %s, policy %s, %u procs, machine %s\n",
              Recorded->Meta.App.c_str(), Recorded->Meta.Policy.c_str(),
              Recorded->Meta.Procs,
              Recorded->Meta.Machine.empty()
                  ? "dash-flat"
                  : Recorded->Meta.Machine.c_str());

  const std::optional<replay::ReplayResult> Result =
      replay::replayTrace(*Recorded, Error);
  if (!Result)
    return fail("cannot replay '" + ReplayPath + "': " + Error);

  const std::string TraceOut = CL.getString("trace-out", "");
  if (!TraceOut.empty() &&
      !writeFile(TraceOut, obs::toJsonl(Result->Replayed), Error))
    return fail(Error);

  if (Result->diverged()) {
    std::fprintf(stderr, "dynfb-run: replay DIVERGED at %s\n",
                 Result->Divergence.c_str());
    return 1;
  }
  std::printf("replay: zero divergence (%zu decisions, %zu sections, "
              "%zu locks verified)\n",
              Recorded->Decisions.size(), Recorded->Sections.size(),
              Recorded->Locks.size());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  if (CL.has("version")) {
    std::printf("dynfb-run %s (result schema %lld, trace schema %lld)\n",
                buildHash(),
                static_cast<long long>(exp::ResultSchemaVersion),
                static_cast<long long>(obs::TraceSchemaVersion));
    return 0;
  }
  // Strict flag validation up front: the accepted flags span every branch
  // below, so a typo ('--chunk') dies here instead of being ignored.
  if (!rejectUnknownFlags(
          CL, "dynfb-run",
          {"app", "procs", "policy", "scale", "dimensions", "chunks",
           "list-versions", "sampling", "production", "cutoff", "ordering",
           "spanning", "sweep", "repeats", "aggregate", "sampler",
           "search-budget", "ucb-explore", "hysteresis",
           "drift", "slice", "quarantine", "quarantine-window",
           "quarantine-limit", "quarantine-backoff", "watchdog",
           "watchdog-limit", "perturb", "traffic", "machine", "cost",
           "trace-out", "chrome-out", "metrics-out", "backend", "timescale",
           "trace", "replay", "version"},
          "no arguments"))
    return 2;
  const std::string ReplayPath = CL.getString("replay", "");
  if (!ReplayPath.empty())
    return runReplay(CL, ReplayPath);
  const std::string AppName = CL.getString("app", "");
  if (AppName.empty())
    return usage();

  // Version space: the cross product of the requested adaptation
  // dimensions (default: the three synchronization policies under dynamic
  // self-scheduling).
  xform::VersionSpace Space;
  const std::string Dimensions = CL.getString("dimensions", "");
  const std::string Chunks = CL.getString("chunks", "");
  if (!Dimensions.empty() || !Chunks.empty()) {
    std::string Error;
    std::optional<xform::VersionSpace> Parsed = xform::VersionSpace::parse(
        Dimensions.empty() ? "sync" : Dimensions, Chunks, Error);
    if (!Parsed)
      return fail(Error);
    Space = std::move(*Parsed);
  }

  std::unique_ptr<App> TheApp =
      createApp(AppName, CL.getDouble("scale", 1.0), Space);
  if (!TheApp)
    return fail("unknown application '" + AppName +
                "' (expected barnes_hut, water, string or kvserve)");

  // Machine model selection (--machine) and per-field cost overrides
  // (--cost). The default is the flat DASH-like machine of every paper
  // table; plain runs print nothing extra and stay byte-identical.
  const std::string MachineName = CL.getString("machine", "dash-flat");
  std::unique_ptr<rt::MachineModel> Machine =
      rt::createMachineModel(MachineName);
  if (!Machine) {
    const std::string Near =
        closestMatch(MachineName, rt::machineModelNames());
    std::string Known;
    for (const std::string &Name : rt::machineModelNames())
      Known += (Known.empty() ? "" : ", ") + Name;
    return fail("unknown machine model '" + MachineName + "'" +
                (Near.empty() ? "" : " (did you mean '" + Near + "'?)") +
                "; known models: " + Known);
  }
  const std::string CostSpec = CL.getString("cost", "");
  if (!CostSpec.empty()) {
    std::string Error;
    if (!rt::applyCostOverrides(*Machine, CostSpec, Error))
      return fail(Error);
  }

  // Execution backend: the virtual-time simulator (default) or real host
  // threads. Everything downstream of backend selection is one shared path.
  const std::string BackendName = CL.getString("backend", "sim");
  if (BackendName != "sim" && BackendName != "native")
    return fail("unknown backend '" + BackendName +
                "' (expected sim or native)");
  const bool Native = BackendName == "native";
  const double TimeScale = CL.getDouble("timescale", 0.0005);
  if (Native && TimeScale <= 0)
    return fail(format(
        "--timescale must be a positive virtual-to-real factor (got %g; "
        "did you mean the default 0.0005, which runs 1 ms of virtual "
        "compute as a 0.5 us busy-wait?)",
        TimeScale));
  if (!Native && CL.has("timescale"))
    return fail("--timescale only applies to --backend native (the "
                "simulator already runs in virtual time)");

  if (!Native) {
    if (MachineName != "dash-flat" || !CostSpec.empty())
      std::printf("machine: %s (%s)\n  %s\n", Machine->name().c_str(),
                  Machine->description().c_str(),
                  Machine->paramsString().c_str());
  } else if (MachineName != "dash-flat" || !CostSpec.empty()) {
    std::printf("note: --machine/--cost price the simulated machine; the "
                "native backend runs on real hardware and ignores them\n");
  }

  if (CL.getBool("list-versions", false)) {
    const xform::CodeSizeModel SizeModel;
    const uint64_t SerialBase = 64 * 1024;
    const double SerialBytes = static_cast<double>(xform::serialExecutableBytes(
        TheApp->program(), SizeModel, SerialBase));
    Table T(format("%s: version space with %u versions", AppName.c_str(),
                   static_cast<unsigned>(Space.size())));
    T.setHeader({"name", "sync", "sched", "code size (vs serial)"});
    for (const xform::VersionDescriptor &D : Space.descriptors()) {
      const uint64_t Bytes = xform::fixedExecutableBytes(
          TheApp->program(), SizeModel, SerialBase, D);
      T.addRow({D.name(), xform::policyName(D.Policy), D.Sched.name(),
                format("%.2f", static_cast<double>(Bytes) / SerialBytes)});
    }
    std::fputs(T.renderText().c_str(), stdout);
    return 0;
  }

  // Native defaults shrink the feedback intervals: targets are real wall
  // time there, and a 100 s production interval would outlive the scaled
  // workload. Explicit --sampling/--production always win.
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = rt::secondsToNanos(
      CL.getDouble("sampling", Native ? 0.005 : 0.01));
  Config.TargetProductionNanos = rt::secondsToNanos(
      CL.getDouble("production", Native ? 0.2 : 100.0));
  Config.EarlyCutoff = CL.getBool("cutoff", false);
  Config.UsePolicyOrdering = CL.getBool("ordering", false);
  Config.SpanSectionExecutions = CL.getBool("spanning", false);
  if (Config.TargetSamplingNanos <= 0)
    return fail("--sampling must be a positive number of seconds");
  if (Config.TargetProductionNanos <= 0)
    return fail("--production must be a positive number of seconds");

  // Robustness knobs (defaults leave the paper's algorithm untouched).
  const int64_t Repeats = CL.getInt("repeats", 1);
  if (Repeats < 1)
    return fail("--repeats must be at least 1");
  Config.SamplingRepeats = static_cast<unsigned>(Repeats);
  const std::string Aggregate = CL.getString("aggregate", "mean");
  if (Aggregate == "mean")
    Config.SamplingAggregation = rt::OverheadAggregation::Mean;
  else if (Aggregate == "median")
    Config.SamplingAggregation = rt::OverheadAggregation::Median;
  else if (Aggregate == "trimmed")
    Config.SamplingAggregation = rt::OverheadAggregation::TrimmedMean;
  else
    return fail("--aggregate must be mean, median or trimmed (got '" +
                Aggregate + "')");

  // Sampling strategy (the sub-linear version-search seam; default is the
  // paper's exhaustive loop).
  const std::string SamplerName = CL.getString("sampler", "exhaustive");
  const std::optional<fb::SamplerKind> Sampler =
      fb::parseSamplerName(SamplerName);
  if (!Sampler) {
    const std::string Near = closestMatch(SamplerName, fb::samplerNames());
    std::string Known;
    for (const std::string &Name : fb::samplerNames())
      Known += (Known.empty() ? "" : ", ") + Name;
    return fail("unknown sampler '" + SamplerName + "'" +
                (Near.empty() ? "" : " (did you mean '" + Near + "'?)") +
                "; known samplers: " + Known);
  }
  Config.Sampler = *Sampler;
  if (CL.has("search-budget") && Config.Sampler == fb::SamplerKind::Exhaustive)
    return fail("--search-budget only applies to --sampler halving or ucb "
                "(exhaustive always measures every version)");
  Config.SearchBudgetFraction = CL.getDouble("search-budget", 0.5);
  if (Config.SearchBudgetFraction <= 0.0 ||
      Config.SearchBudgetFraction > 1.0)
    return fail("--search-budget must be a fraction of the exhaustive "
                "sampling cost in (0, 1]");
  if (CL.has("ucb-explore") && Config.Sampler != fb::SamplerKind::Ucb)
    return fail("--ucb-explore only applies to --sampler ucb");
  Config.UcbExplore = CL.getDouble("ucb-explore", 2.0);
  if (Config.UcbExplore < 0.0)
    return fail("--ucb-explore must be a non-negative exploration constant");

  Config.SwitchHysteresis = CL.getDouble("hysteresis", 0.0);
  if (Config.SwitchHysteresis < 0.0 || Config.SwitchHysteresis >= 1.0)
    return fail("--hysteresis must be an overhead margin in [0, 1)");
  Config.DriftResampleThreshold = CL.getDouble("drift", 0.0);
  if (Config.DriftResampleThreshold < 0.0 ||
      Config.DriftResampleThreshold >= 1.0)
    return fail("--drift must be an overhead margin in [0, 1)");
  const double SliceSeconds = CL.getDouble("slice", 0.0);
  if (SliceSeconds < 0.0)
    return fail("--slice must be a non-negative number of seconds");
  Config.ProductionSliceNanos = rt::secondsToNanos(SliceSeconds);

  // Controller resilience knobs (docs/ROBUSTNESS.md; defaults off).
  const int64_t Quarantine = CL.getInt("quarantine", 0);
  if (Quarantine < 0)
    return fail("--quarantine must be a non-negative strike count "
                "(0 disables)");
  Config.QuarantineStrikes = static_cast<unsigned>(Quarantine);
  const int64_t QuarantineWindow = CL.getInt("quarantine-window", 8);
  if (QuarantineWindow < 1)
    return fail("--quarantine-window must be at least 1 sampling phase");
  Config.QuarantineWindowPhases = static_cast<unsigned>(QuarantineWindow);
  Config.QuarantineOverheadLimit = CL.getDouble("quarantine-limit", 1.0);
  if (Config.QuarantineOverheadLimit <= 0.0 ||
      Config.QuarantineOverheadLimit > 1.0)
    return fail("--quarantine-limit must be an overhead in (0, 1]");
  const int64_t QuarantineBackoff = CL.getInt("quarantine-backoff", 4);
  if (QuarantineBackoff < 1)
    return fail("--quarantine-backoff must be at least 1 sampling phase");
  Config.QuarantineBackoffPhases = static_cast<unsigned>(QuarantineBackoff);
  Config.QuarantineBackoffMaxPhases = std::max(
      Config.QuarantineBackoffMaxPhases, Config.QuarantineBackoffPhases);
  const int64_t Watchdog = CL.getInt("watchdog", 0);
  if (Watchdog < 0)
    return fail("--watchdog must be a non-negative production-interval "
                "count (0 disables)");
  Config.WatchdogBadSlices = static_cast<unsigned>(Watchdog);
  Config.WatchdogOverheadLimit = CL.getDouble("watchdog-limit", 0.9);
  if (Config.WatchdogOverheadLimit <= 0.0 ||
      Config.WatchdogOverheadLimit > 1.0)
    return fail("--watchdog-limit must be an overhead in (0, 1]");

  // Perturbation schedules are validated against the processor count the
  // run will actually use: --procs for a single run, the largest paper
  // processor count for --sweep.
  const int64_t ProcsArg = CL.getInt("procs", 8);
  if (ProcsArg < 1 || ProcsArg > 1024)
    return fail("--procs must be between 1 and 1024");
  const unsigned Procs = static_cast<unsigned>(ProcsArg);
  const unsigned ValidationProcs =
      CL.getBool("sweep", false)
          ? *std::max_element(PaperProcCounts.begin(), PaperProcCounts.end())
          : Procs;

  // Fault-injection schedule (see docs/ROBUSTNESS.md for the grammar) or
  // compiled serving traffic (see perturb/Traffic.h); both feed the same
  // perturbation engine.
  std::unique_ptr<perturb::PerturbationEngine> Perturb;
  const std::string PerturbSpec = CL.getString("perturb", "");
  const std::string TrafficSpec = CL.getString("traffic", "");
  if (Native && (!PerturbSpec.empty() || !TrafficSpec.empty()))
    return fail("--perturb/--traffic require the simulator backend (fault "
                "injection perturbs the simulated machine)");
  if (!PerturbSpec.empty() && !TrafficSpec.empty())
    return fail("--perturb and --traffic are mutually exclusive (compiled "
                "traffic already is a perturbation schedule)");
  if (!PerturbSpec.empty()) {
    std::string Error;
    std::optional<perturb::PerturbationSchedule> Schedule =
        perturb::parseSchedule(PerturbSpec, Error);
    if (!Schedule)
      return fail("malformed --perturb schedule: " + Error);
    for (const std::string &Section : Schedule->referencedSections())
      if (!TheApp->program().find(Section))
        return fail("--perturb references unknown section '" + Section +
                    "' of application '" + AppName + "'");
    if (!perturb::validateSchedule(*Schedule, ValidationProcs, Error))
      return fail("invalid --perturb schedule: " + Error);
    Perturb =
        std::make_unique<perturb::PerturbationEngine>(std::move(*Schedule));
    std::printf("perturbation: %s\n",
                perturb::renderSchedule(Perturb->schedule()).c_str());
  } else if (!TrafficSpec.empty()) {
    std::string Error;
    const std::optional<perturb::TrafficSpec> Traffic =
        perturb::parseTraffic(TrafficSpec, Error);
    if (!Traffic)
      return fail("malformed --traffic spec: " + Error);
    // The traffic's shard locks are the lock objects of the app's first
    // parallel section (kvserve: the store shards).
    const auto &Sections = TheApp->program().Sections;
    const unsigned NumShards =
        Sections.empty() ? 0
                         : TheApp->binding(Sections.front().Name)
                               .objectCount();
    perturb::PerturbationSchedule Schedule =
        perturb::compileTraffic(*Traffic, NumShards, ValidationProcs);
    if (!perturb::validateSchedule(Schedule, ValidationProcs, Error))
      return fail("internal error: compiled traffic schedule invalid: " +
                  Error);
    std::printf("traffic: %s -> %u events over %u shard locks\n",
                perturb::renderTraffic(*Traffic).c_str(),
                static_cast<unsigned>(Schedule.Events.size()), NumShards);
    Perturb =
        std::make_unique<perturb::PerturbationEngine>(std::move(Schedule));
  }

  // Observability exports, all default-off so a plain run's output stays
  // byte-identical to the seed.
  const std::string TraceOut = CL.getString("trace-out", "");
  const std::string ChromeOut = CL.getString("chrome-out", "");
  const std::string MetricsOut = CL.getString("metrics-out", "");
  const bool WantRunTrace = !TraceOut.empty() || !ChromeOut.empty();
  if (!MetricsOut.empty())
    obs::globalMetrics().reset(); // Scope the export to this invocation.
  auto WriteMetrics = [&]() -> std::optional<std::string> {
    if (MetricsOut.empty())
      return std::nullopt;
    std::string Error;
    if (!writeFile(MetricsOut, obs::globalMetrics().toJson(), Error))
      return Error;
    return std::nullopt;
  };

  if (CL.getBool("sweep", false)) {
    if (Native)
      return fail("--sweep requires the simulator backend (for native "
                  "grids, see dynfb-bench run --exp backend_concordance)");
    if (WantRunTrace)
      return fail("--trace-out/--chrome-out apply to a single run, not "
                  "--sweep");
    Table T(AppName + ": execution times (seconds)");
    T.setHeader(exp::versionByProcsHeader(PaperProcCounts));
    auto Seconds = [&](unsigned N, const VersionSpec &Spec) {
      return rt::nanosToSeconds(runApp(*TheApp, N, Spec, *Machine, Config,
                                       nullptr, Perturb.get())
                                    .TotalNanos);
    };
    for (const xform::VersionDescriptor &D : Space.descriptors()) {
      std::vector<std::string> Row{D.name()};
      for (unsigned N : PaperProcCounts)
        Row.push_back(formatDouble(Seconds(N, VersionSpec::fixed(D)), 2));
      T.addRow(Row);
    }
    std::vector<std::string> Dyn{"Dynamic"};
    for (unsigned N : PaperProcCounts)
      Dyn.push_back(
          formatDouble(Seconds(N, VersionSpec::dynamicFeedback()), 2));
    T.addRow(Dyn);
    std::fputs(T.renderText().c_str(), stdout);
    if (std::optional<std::string> Error = WriteMetrics())
      return fail(*Error);
    return 0;
  }

  const std::string PolicyName = CL.getString("policy", "dynamic");

  Flavour F = Flavour::Dynamic;
  xform::PolicyKind Policy = xform::PolicyKind::Original;
  if (PolicyName == "serial")
    F = Flavour::Serial;
  else if (PolicyName == "original")
    F = Flavour::Fixed;
  else if (PolicyName == "bounded") {
    F = Flavour::Fixed;
    Policy = xform::PolicyKind::Bounded;
  } else if (PolicyName == "aggressive") {
    F = Flavour::Fixed;
    Policy = xform::PolicyKind::Aggressive;
  } else if (PolicyName != "dynamic")
    return fail("unknown policy '" + PolicyName +
                "' (expected serial, original, bounded, aggressive or "
                "dynamic)");
  const VersionSpec Spec = F == Flavour::Fixed ? VersionSpec::fixed(Policy)
                                               : VersionSpec{F, {}};

  fb::PolicyHistory History;
  RunObservation Obs;
  Obs.CollectSectionTraces = WantRunTrace;
  const BackendOptions BO =
      Native ? BackendOptions::native(TimeScale) : BackendOptions::sim();
  const fb::RunResult R =
      runApp(*TheApp, Procs, Spec, *Machine, Config,
             Config.UsePolicyOrdering ? &History : nullptr, Perturb.get(),
             WantRunTrace ? &Obs : nullptr, BO);

  if (Native)
    std::printf("%s, %u procs, policy %s [native backend, timescale %g]: "
                "%.3f s real\n",
                AppName.c_str(), Procs, PolicyName.c_str(), TimeScale,
                rt::nanosToSeconds(R.TotalNanos));
  else
    std::printf("%s, %u procs, policy %s: %.3f s\n", AppName.c_str(), Procs,
                PolicyName.c_str(), rt::nanosToSeconds(R.TotalNanos));
  std::printf("  acquire/release pairs: %s\n",
              withThousandsSep(R.ParallelStats.AcquireReleasePairs).c_str());
  std::printf("  locking overhead: %s, waiting: %s (proportion %.3f)\n",
              formatSeconds(rt::nanosToSeconds(R.ParallelStats.LockOpNanos))
                  .c_str(),
              formatSeconds(rt::nanosToSeconds(R.ParallelStats.WaitNanos))
                  .c_str(),
              R.ParallelStats.waitingProportion());
  if (F == Flavour::Dynamic) {
    for (const fb::SectionExecutionTrace &T : R.Occurrences) {
      if (T.ChosenVersions.empty())
        continue;
      const xform::VersionedSection *VS =
          TheApp->program().find(T.SectionName);
      std::printf("  %s -> %s (sampling phases %u, sampled intervals %u)\n",
                  T.SectionName.c_str(),
                  VS->Versions[*T.dominantVersion()].label().c_str(),
                  T.SamplingPhases, T.SampledIntervals);
      if (T.DegenerateIntervals || T.EarlyResamples || T.HysteresisHolds)
        std::printf("    robustness: %u degenerate intervals discarded, "
                    "%u early resamples, %u hysteresis holds\n",
                    T.DegenerateIntervals, T.EarlyResamples,
                    T.HysteresisHolds);
      if (T.Quarantines || T.Reprobes || T.WatchdogResamples ||
          T.DegradedPhases)
        std::printf("    resilience: %u quarantines, %u re-probes, "
                    "%u watchdog resamples, %u degraded phases\n",
                    T.Quarantines, T.Reprobes, T.WatchdogResamples,
                    T.DegradedPhases);
    }
  }

  if (WantRunTrace) {
    obs::RunTrace Trace =
        buildRunTrace(AppName, Procs, PolicyName, R, &Obs,
                      Native ? rt::BackendKind::Native : rt::BackendKind::Sim);
    if (!Native) {
      // Machine pricing is a simulator concept; native traces carry no
      // machine fields (real hardware set the prices).
      Trace.Meta.Machine = Machine->name();
      Trace.Meta.MachineParams = Machine->paramsString();
    }
    // Self-description: the full run configuration, so the trace is
    // executable (dynfb-run --replay) and dynfb-report can print the run's
    // provenance. Values are the resolved ones the run actually used.
    obs::RunSpec &RS = Trace.Meta.Spec;
    RS.Present = true;
    RS.Scale = CL.getDouble("scale", 1.0);
    RS.Dimensions = Dimensions;
    RS.Chunks = Chunks;
    RS.SamplingNanos = Config.TargetSamplingNanos;
    RS.ProductionNanos = Config.TargetProductionNanos;
    RS.Cutoff = Config.EarlyCutoff;
    RS.Ordering = Config.UsePolicyOrdering;
    RS.Spanning = Config.SpanSectionExecutions;
    RS.Repeats = Config.SamplingRepeats;
    RS.Aggregate = Aggregate;
    RS.Hysteresis = Config.SwitchHysteresis;
    RS.Drift = Config.DriftResampleThreshold;
    RS.SliceNanos = Config.ProductionSliceNanos;
    RS.QuarantineStrikes = Config.QuarantineStrikes;
    RS.QuarantineWindow = Config.QuarantineWindowPhases;
    RS.QuarantineLimit = Config.QuarantineOverheadLimit;
    RS.QuarantineBackoff = Config.QuarantineBackoffPhases;
    RS.Watchdog = Config.WatchdogBadSlices;
    RS.WatchdogLimit = Config.WatchdogOverheadLimit;
    RS.Sampler = fb::samplerName(Config.Sampler);
    RS.SearchBudget = Config.SearchBudgetFraction;
    RS.UcbExplore = Config.UcbExplore;
    RS.PerturbSpec = PerturbSpec;
    RS.TrafficSpec = TrafficSpec;
    RS.CostOverrides = CostSpec;
    RS.TimeScale = Native ? TimeScale : 0.0;
    std::string Error;
    if (!TraceOut.empty() && !writeFile(TraceOut, obs::toJsonl(Trace), Error))
      return fail(Error);
    if (!ChromeOut.empty() &&
        !writeFile(ChromeOut, obs::toChromeTrace(Trace), Error))
      return fail(Error);
  }

  if (Native && CL.getBool("trace", false))
    return fail("--trace (interval contention report) requires the "
                "simulator backend; use --trace-out FILE, which works on "
                "both backends");
  if (CL.getBool("trace", false) && F == Flavour::Fixed) {
    // Contention report: re-run each section with an interval trace.
    auto Backend = TheApp->makeSimBackend(Procs, *Machine, Spec);
    for (const xform::VersionedSection &VS : TheApp->program().Sections) {
      auto Runner = Backend->beginSectionSim(VS.Name);
      sim::IntervalTrace Trace;
      Runner->attachTrace(&Trace);
      while (!Runner->done())
        Runner->runInterval(0, std::numeric_limits<rt::Nanos>::max() / 4);
      std::printf("\nsection %s ", VS.Name.c_str());
      std::fputs(Trace.renderText().c_str(), stdout);
    }
  }
  if (std::optional<std::string> Error = WriteMetrics())
    return fail(*Error);
  return 0;
}
