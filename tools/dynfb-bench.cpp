//===- tools/dynfb-bench.cpp - Experiment orchestration driver ------------===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// The driver over the src/exp experiment registry:
//
//   dynfb-bench list [--suite S] [--backend sim|native]
//       Lists the registered experiments, their grid sizes and which
//       backends each grid supports; --backend native filters to the
//       native-capable experiments.
//
//   dynfb-bench run [--suite S] [--exp NAME] [--backend sim|native]
//                   [--scale F] [--procs N]
//                   [--seed S] [--chunks K1,K2] [--jobs N] [--timeout SEC]
//                   [--retries N] [--cache DIR] [--no-cache] [--out FILE]
//       Expands the selected experiments' grids and runs the jobs across a
//       pool of crash-isolated worker processes, serving unchanged jobs
//       from the content-addressed result cache, then writes the
//       schema-versioned machine-readable summary (BENCH_results.json).
//       --scale multiplies each experiment's natural scale (0.25 = a
//       quarter-size sweep); exits nonzero when any job fails. --backend
//       native runs the grids on real host threads: sim-only experiments
//       are skipped (or rejected under an explicit --exp), and native jobs
//       get wall-clock timeouts derived from their workload scale instead
//       of the sim-tuned --timeout. A run selecting a single --exp also
//       renders that experiment's report and folds its gate into the exit
//       code.
//
//   dynfb-bench diff --baseline FILE --candidate FILE [--rel-tol F]
//                    [--abs-tol F] [--tol SUFFIX=F] [--allow-missing]
//       Noise-aware regression gate between two run summaries; exits
//       nonzero when any metric regresses beyond tolerance.
//
//===----------------------------------------------------------------------===//

#include "exp/Cache.h"
#include "exp/Diff.h"
#include "exp/Result.h"
#include "obs/Export.h"
#include "rt/MachineModel.h"
#include "support/BuildInfo.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

using namespace dynfb;
using namespace dynfb::exp;

namespace {

int usage(FILE *To) {
  std::fprintf(
      To,
      "usage: dynfb-bench <command> [options]\n"
      "\n"
      "commands:\n"
      "  list  [--suite S] [--backend sim|native]\n"
      "                            list registered experiments and grids\n"
      "  run   [--suite S] [--exp NAME] [--backend sim|native] [--scale F]\n"
      "        [--procs N] [--seed S]\n"
      "        [--chunks K1,K2] [--machine NAME] [--jobs N] [--timeout SEC]\n"
      "        [--retries N] [--cache DIR] [--no-cache] [--out FILE]\n"
      "                            run experiment grids in parallel\n"
      "  diff  --baseline FILE --candidate FILE [--rel-tol F] [--abs-tol F]\n"
      "        [--tol SUFFIX=F] [--allow-missing]\n"
      "                            gate a run against a baseline\n"
      "  --version                 print build hash and schema versions\n");
  return To == stdout ? 0 : 2;
}

void printVersion() {
  std::printf("dynfb-bench %s (result schema %lld, trace schema %lld)\n",
              buildHash(), static_cast<long long>(ResultSchemaVersion),
              static_cast<long long>(obs::TraceSchemaVersion));
}

//===----------------------------------------------------------------------===//
// list
//===----------------------------------------------------------------------===//

/// The distinct values of one grid axis across an experiment's probe jobs.
size_t axisArity(const std::vector<JobConfig> &Jobs,
                 const std::function<std::string(const JobConfig &)> &Axis) {
  std::set<std::string> Values;
  for (const JobConfig &C : Jobs)
    Values.insert(Axis(C));
  return Values.size();
}

/// "apps x versions x procs x scales x seeds x machines" of one
/// experiment's expanded grid. A "version" is the executable identity: the
/// flavour plus whichever of policy/version/variant the experiment uses to
/// distinguish executables.
std::string gridSummary(const std::vector<JobConfig> &Jobs) {
  return format(
      "%zux%zux%zux%zux%zux%zu",
      axisArity(Jobs, [](const JobConfig &C) { return C.getString("app"); }),
      axisArity(Jobs,
                [](const JobConfig &C) {
                  return C.getString("flavour") + "/" +
                         C.getString("policy") + "/" +
                         C.getString("version") + "/" +
                         C.getString("variant");
                }),
      axisArity(Jobs,
                [](const JobConfig &C) { return C.getString("procs"); }),
      axisArity(Jobs,
                [](const JobConfig &C) { return C.getString("scale"); }),
      axisArity(Jobs,
                [](const JobConfig &C) { return C.getString("seed"); }),
      axisArity(Jobs, [](const JobConfig &C) {
        return C.getString("machine", "dash-flat");
      }));
}

/// Validates a --backend value; "" and "sim" mean the simulator. Returns
/// false (after a one-line diagnostic) on anything else.
bool validateBackendFlag(const std::string &Backend) {
  if (Backend.empty() || Backend == "sim" || Backend == "native")
    return true;
  std::fprintf(stderr,
               "dynfb-bench: unknown backend '%s' (known: sim, native)\n",
               Backend.c_str());
  return false;
}

int cmdList(CommandLine &CL) {
  const std::string Suite = CL.getString("suite", "all");
  const std::string Backend = CL.getString("backend", "");
  if (!rejectUnknownFlags(CL, "dynfb-bench list", {"suite", "backend"},
                          "'dynfb-bench' (no arguments)"))
    return 2;
  if (!validateBackendFlag(Backend))
    return 2;
  const bool NativeOnly = Backend == "native";

  std::vector<const Experiment *> Selected = registry().suite(Suite);
  if (NativeOnly) {
    std::erase_if(Selected, [](const Experiment *E) {
      return !E->SupportsNativeBackend;
    });
  }
  if (Selected.empty()) {
    std::fprintf(stderr, "dynfb-bench: no experiments in suite '%s'%s\n",
                 Suite.c_str(),
                 NativeOnly ? " supporting the native backend" : "");
    return 2;
  }
  Table T(NativeOnly ? "Registered experiments (native-capable)"
                     : "Registered experiments");
  T.setHeader({"Name", "Suite", "Backends", "Jobs", "Grid", "Description"});
  for (const Experiment *E : Selected) {
    RunOptions Probe;
    Probe.Scale = E->DefaultScale;
    const std::vector<JobConfig> Jobs = E->MakeJobs(Probe);
    T.addRow({E->Name, E->Suite,
              E->SupportsNativeBackend ? "sim+native" : "sim",
              format("%zu", Jobs.size()), gridSummary(Jobs),
              E->Description});
  }
  std::fputs(T.renderText().c_str(), stdout);
  std::printf("grid = apps x versions x procs x scales x seeds x machines\n");
  return 0;
}

//===----------------------------------------------------------------------===//
// run
//===----------------------------------------------------------------------===//

struct PlannedJob {
  const Experiment *Exp = nullptr;
  JobConfig Config;
  CacheKey Key;
  std::optional<JobResult> Cached;
};

int cmdRun(CommandLine &CL) {
  registerBuiltinExperiments();

  const std::string Suite = CL.getString("suite", "all");
  const std::string OnlyExp = CL.getString("exp", "");
  const double ScaleFactor = CL.getDouble("scale", 1.0);
  const unsigned Procs = static_cast<unsigned>(CL.getInt("procs", 0));
  const uint64_t Seed = static_cast<uint64_t>(CL.getInt("seed", 0));
  const std::string Chunks = CL.getString("chunks", "");
  const std::string Machine = CL.getString("machine", "");
  const std::string Backend = CL.getString("backend", "");
  const std::string OutPath = CL.getString("out", "BENCH_results.json");
  const bool NoCache = CL.getBool("no-cache", false);
  const std::string CacheDir =
      CL.getString("cache", ".dynfb-bench-cache");

  SchedulerOptions Sched;
  Sched.Workers = static_cast<unsigned>(CL.getInt("jobs", 0));
  Sched.TimeoutSeconds = CL.getDouble("timeout", 300.0);
  Sched.Retries = static_cast<unsigned>(CL.getInt("retries", 1));

  if (!rejectUnknownFlags(CL, "dynfb-bench run",
                          {"suite", "exp", "scale", "procs", "seed", "chunks",
                           "machine", "backend", "jobs", "timeout", "retries",
                           "cache", "no-cache", "out"},
                          "'dynfb-bench' (no arguments)"))
    return 2;
  if (!validateBackendFlag(Backend))
    return 2;
  const bool Native = Backend == "native";
  if (Native && !Machine.empty())
    std::fprintf(stderr,
                 "dynfb-bench: note: the native backend runs on real "
                 "hardware and ignores MachineModel pricing; --machine %s "
                 "has no effect on native jobs\n",
                 Machine.c_str());
  if (!Machine.empty() && !rt::createMachineModel(Machine)) {
    const std::string Near = closestMatch(Machine, rt::machineModelNames());
    std::string Known;
    for (const std::string &Name : rt::machineModelNames())
      Known += (Known.empty() ? "" : ", ") + Name;
    std::fprintf(stderr,
                 "dynfb-bench: unknown machine model '%s'%s; known: %s\n",
                 Machine.c_str(),
                 Near.empty() ? ""
                              : (" (did you mean '" + Near + "'?)").c_str(),
                 Known.c_str());
    return 2;
  }

  std::vector<const Experiment *> Selected;
  if (!OnlyExp.empty()) {
    const Experiment *E = registry().find(OnlyExp);
    if (!E) {
      std::vector<std::string> Names;
      for (const Experiment &Reg : registry().all())
        Names.push_back(Reg.Name);
      const std::string Hint = closestMatch(OnlyExp, Names);
      std::fprintf(stderr, "dynfb-bench: unknown experiment '%s'%s\n",
                   OnlyExp.c_str(),
                   Hint.empty() ? ""
                                : (" (did you mean '" + Hint + "'?)").c_str());
      return 2;
    }
    if (Native && !E->SupportsNativeBackend) {
      std::fprintf(stderr,
                   "dynfb-bench: experiment '%s' is sim-only (its grid "
                   "sweeps simulator-priced dimensions); drop --backend "
                   "native or pick a native-capable experiment "
                   "(dynfb-bench list --backend native)\n",
                   OnlyExp.c_str());
      return 2;
    }
    Selected.push_back(E);
  } else {
    Selected = registry().suite(Suite);
    if (Native) {
      for (const Experiment *E : Selected)
        if (!E->SupportsNativeBackend)
          std::fprintf(stderr,
                       "dynfb-bench: skipping sim-only experiment '%s' "
                       "under --backend native\n",
                       E->Name.c_str());
      std::erase_if(Selected, [](const Experiment *E) {
        return !E->SupportsNativeBackend;
      });
    }
    if (Selected.empty()) {
      std::fprintf(stderr, "dynfb-bench: no experiments in suite '%s'%s\n",
                   Suite.c_str(),
                   Native ? " supporting the native backend" : "");
      return 2;
    }
  }

  // Expand every selected grid, then resolve cache hits up front so only
  // the misses occupy worker processes.
  const ResultCache Cache(CacheDir);
  std::vector<PlannedJob> Plan;
  std::vector<RunOptions> ExpOptions(Selected.size());
  for (size_t I = 0; I < Selected.size(); ++I) {
    const Experiment *E = Selected[I];
    RunOptions &Opts = ExpOptions[I];
    Opts.Scale = E->DefaultScale * ScaleFactor;
    Opts.Procs = Procs;
    Opts.Seed = Seed;
    Opts.Chunks = Chunks;
    Opts.Machine = Machine;
    Opts.Backend = Backend == "sim" ? "" : Backend;
    for (JobConfig &Config : E->MakeJobs(Opts)) {
      PlannedJob P;
      P.Exp = E;
      P.Key = makeCacheKey(*E, Config, buildHash());
      if (!NoCache)
        P.Cached = Cache.load(P.Key);
      P.Config = std::move(Config);
      Plan.push_back(std::move(P));
    }
  }

  std::vector<size_t> Misses;
  for (size_t I = 0; I < Plan.size(); ++I)
    if (!Plan[I].Cached)
      Misses.push_back(I);
  std::fprintf(stderr,
               "dynfb-bench: %zu jobs (%zu cached, %zu to run) across %zu "
               "experiments\n",
               Plan.size(), Plan.size() - Misses.size(), Misses.size(),
               Selected.size());

  // Native jobs run in real wall clock, so their budget scales with the
  // workload instead of inheriting the sim-tuned --timeout (a sim job's
  // wall clock is near-constant in the virtual workload size; a native
  // job's is proportional to it).
  const auto JobIsNative = [&](size_t Job) {
    return Plan[Misses[Job]].Config.getString("backend", "sim") == "native";
  };
  Sched.TimeoutForJob = [&, JobIsNative](size_t Job) -> double {
    if (!JobIsNative(Job))
      return 0; // Keep the invocation-wide --timeout.
    const double Scale = Plan[Misses[Job]].Config.getDouble("scale", 1.0);
    return std::max(30.0, 240.0 * Scale);
  };
  Sched.JobTag = [&, JobIsNative](size_t Job) {
    return JobIsNative(Job) ? std::string("native backend") : std::string();
  };

  size_t Settled = 0;
  Sched.OnSettled = [&](size_t Job, const JobOutcome &Outcome) {
    const PlannedJob &P = Plan[Misses[Job]];
    std::fprintf(stderr, "  [%zu/%zu] %s [%s] %s (%s%s)\n", ++Settled,
                 Misses.size(), P.Exp->Name.c_str(), P.Config.label().c_str(),
                 jobStatusName(Outcome.Status),
                 formatSeconds(Outcome.WallSeconds).c_str(),
                 Outcome.Attempts > 1
                     ? format(", %u attempts", Outcome.Attempts).c_str()
                     : "");
  };

  const auto Start = std::chrono::steady_clock::now();
  const std::vector<JobOutcome> RunOutcomes = runJobs(
      Misses.size(),
      [&](size_t Job, unsigned) {
        const PlannedJob &P = Plan[Misses[Job]];
        return P.Exp->RunJob(P.Config);
      },
      Sched);
  const double WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  // Assemble the result file in plan (deterministic) order and refill the
  // cache with the fresh successes.
  ResultFile Out;
  Out.Build = buildHash();
  Out.Suite = OnlyExp.empty() ? Suite : OnlyExp;
  Out.ScaleFactor = ScaleFactor;
  Out.Seed = Seed;
  Out.Machine = Machine.empty() ? "dash-flat" : Machine;
  Out.Backend = Backend.empty() ? "sim" : Backend;
  size_t NextMiss = 0;
  for (const PlannedJob &P : Plan) {
    JobRecord Record;
    Record.Experiment = P.Exp->Name;
    Record.Config = P.Config;
    if (P.Cached) {
      Record.Status = JobStatus::Ok;
      Record.FromCache = true;
      Record.Result = *P.Cached;
    } else {
      const JobOutcome &Outcome = RunOutcomes[NextMiss++];
      Record.Status = Outcome.Status;
      Record.Attempts = Outcome.Attempts;
      Record.WallSeconds = Outcome.WallSeconds;
      Record.Result = Outcome.Result;
      if (Outcome.ok() && !NoCache) {
        std::string Error;
        if (!Cache.store(P.Key, *P.Exp, P.Config, buildHash(),
                         Outcome.Result, Error))
          std::fprintf(stderr, "dynfb-bench: cache store failed: %s\n",
                       Error.c_str());
      }
    }
    Out.Jobs.push_back(std::move(Record));
  }

  std::ofstream Stream(OutPath);
  if (!Stream) {
    std::fprintf(stderr, "dynfb-bench: cannot write '%s'\n", OutPath.c_str());
    return 2;
  }
  Stream << toJson(Out);
  Stream.close();

  const size_t Failed = Out.failedJobs();
  std::printf("dynfb-bench: %zu jobs, %zu from cache, %zu failed; %s wall; "
              "results in %s\n",
              Out.Jobs.size(), Out.cachedJobs(), Failed,
              formatSeconds(WallSeconds).c_str(), OutPath.c_str());
  if (Failed != 0) {
    for (const JobRecord &Record : Out.Jobs)
      if (Record.Status != JobStatus::Ok)
        std::printf("  FAILED %s [%s]: %s %s\n", Record.Experiment.c_str(),
                    Record.Config.label().c_str(),
                    jobStatusName(Record.Status),
                    Record.Result.Error.c_str());
    return 1;
  }

  // A single-experiment run also renders that experiment's report -- and
  // folds its gate (the render exit code) into ours, so e.g.
  // `dynfb-bench run --exp backend_concordance` both measures and judges.
  if (!OnlyExp.empty() && Selected.size() == 1 && Selected[0]->Render) {
    std::vector<JobResult> Grid;
    Grid.reserve(Out.Jobs.size());
    for (const JobRecord &Record : Out.Jobs)
      Grid.push_back(Record.Result);
    std::printf("\n");
    return Selected[0]->Render(ExpOptions[0], Grid);
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// diff
//===----------------------------------------------------------------------===//

std::optional<ResultFile> loadResultFile(const std::string &Path) {
  std::ifstream Stream(Path);
  if (!Stream) {
    std::fprintf(stderr, "dynfb-bench: cannot read '%s'\n", Path.c_str());
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  std::string Error;
  std::optional<ResultFile> File = parseResultFile(Buffer.str(), Error);
  if (!File)
    std::fprintf(stderr, "dynfb-bench: %s: %s\n", Path.c_str(),
                 Error.c_str());
  return File;
}

int cmdDiff(CommandLine &CL) {
  const std::string BasePath = CL.getString("baseline", "");
  std::string CandPath = CL.getString("candidate", "");
  if (CandPath.empty() && CL.positional().size() == 2)
    CandPath = CL.positional()[1];

  DiffOptions Opts;
  Opts.RelTol = CL.getDouble("rel-tol", 0.05);
  Opts.AbsTol = CL.getDouble("abs-tol", 1e-9);
  Opts.FailOnMissing = !CL.getBool("allow-missing", false);
  for (const std::string &Spec :
       splitString(CL.getString("tol", ""), ',')) {
    if (Spec.empty())
      continue;
    const size_t Eq = Spec.find('=');
    if (Eq == std::string::npos) {
      std::fprintf(stderr,
                   "dynfb-bench: --tol wants SUFFIX=REL[,SUFFIX=REL], got "
                   "'%s'\n",
                   Spec.c_str());
      return 2;
    }
    Opts.SuffixRelTol.emplace_back(Spec.substr(0, Eq),
                                   std::strtod(Spec.c_str() + Eq + 1,
                                               nullptr));
  }
  if (!rejectUnknownFlags(CL, "dynfb-bench diff",
                          {"baseline", "candidate", "rel-tol", "abs-tol",
                           "tol", "allow-missing"},
                          "'dynfb-bench' (no arguments)"))
    return 2;
  if (BasePath.empty() || CandPath.empty()) {
    std::fprintf(stderr,
                 "dynfb-bench diff: --baseline FILE and --candidate FILE "
                 "are required\n");
    return 2;
  }

  const std::optional<ResultFile> Base = loadResultFile(BasePath);
  const std::optional<ResultFile> Cand = loadResultFile(CandPath);
  if (!Base || !Cand)
    return 2;
  if (Base->Build != Cand->Build)
    std::printf("note: baseline build %s vs candidate build %s\n",
                Base->Build.c_str(), Cand->Build.c_str());

  const DiffReport Report = diffResults(*Base, *Cand, Opts);
  std::fputs(Report.renderText(Opts).c_str(), stdout);
  return Report.ok(Opts) ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  registerBuiltinExperiments();

  if (CL.has("version")) {
    printVersion();
    return 0;
  }
  if (CL.has("help"))
    return usage(stdout);
  if (CL.positional().empty()) {
    usage(stderr);
    return 2;
  }
  const std::string Command = CL.positional()[0];
  if (Command == "list")
    return cmdList(CL);
  if (Command == "run")
    return cmdRun(CL);
  if (Command == "diff")
    return cmdDiff(CL);
  std::fprintf(stderr, "dynfb-bench: unknown command '%s'\n",
               Command.c_str());
  usage(stderr);
  return 2;
}
