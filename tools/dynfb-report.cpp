//===- tools/dynfb-report.cpp - Render a run report from a trace file ------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Reads a JSONL adaptation trace written by dynfb-run --trace-out and
// renders the run report: the policy timeline (every sampling measurement
// and production decision with its reason), the locking-overhead table and
// the hottest-locks table -- rebuilt from the trace file alone, with no
// access to the original run.
//
//   dynfb-report --trace water.trace.jsonl
//   dynfb-report --trace water.trace.jsonl --locks 5 --samples
//   dynfb-report --trace water.trace.jsonl --whatif
//
// --whatif re-drives the recorded run on the simulator (the trace must
// carry a run_spec; see docs/REPLAY.md) and appends the checkpointed
// counterfactual table: per section occurrence, what every version would
// have cost from the identical machine state, with the clairvoyant best
// marked and the dynamic policy's regret summarized.
//
// Invalid input (missing file, malformed JSON, unsupported schema) produces
// a one-line diagnostic on stderr and a nonzero exit status -- never an
// abort.
//
//===----------------------------------------------------------------------===//

#include "exp/Experiment.h"
#include "obs/Export.h"
#include "obs/Report.h"
#include "replay/Explorer.h"
#include "replay/Replay.h"
#include "support/BuildInfo.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <string>

using namespace dynfb;

namespace {

int usage() {
  std::fprintf(stderr, "usage: dynfb-report --trace FILE [--locks N] "
                       "[--samples] [--whatif]\n");
  return 1;
}

int fail(const std::string &Msg) {
  std::fprintf(stderr, "dynfb-report: error: %s\n", Msg.c_str());
  return 1;
}

/// Reads the whole of \p Path; nullopt (with \p Error set) on failure.
std::optional<std::string> readFile(const std::string &Path,
                                    std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::string Out;
  char Buf[64 * 1024];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  const bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadError) {
    Error = "failed reading '" + Path + "'";
    return std::nullopt;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  if (CL.has("version")) {
    std::printf("dynfb-report %s (result schema %lld, trace schema %lld)\n",
                buildHash(),
                static_cast<long long>(exp::ResultSchemaVersion),
                static_cast<long long>(obs::TraceSchemaVersion));
    return 0;
  }
  if (!rejectUnknownFlags(CL, "dynfb-report",
                          {"trace", "locks", "samples", "whatif", "version"},
                          "no arguments"))
    return 2;
  const std::string TracePath = CL.getString("trace", "");
  if (TracePath.empty())
    return usage();

  const int64_t Locks = CL.getInt("locks", 10);
  if (Locks < 0)
    return fail("--locks must be non-negative");

  std::string Error;
  const std::optional<std::string> Text = readFile(TracePath, Error);
  if (!Text)
    return fail(Error);

  const std::optional<obs::RunTrace> Trace = obs::parseJsonl(*Text, Error);
  if (!Trace)
    return fail("malformed trace '" + TracePath + "': " + Error);

  obs::ReportOptions Options;
  Options.MaxLocks = static_cast<size_t>(Locks);
  Options.ShowSamples = CL.getBool("samples", false);
  std::fputs(obs::renderReport(*Trace, Options).c_str(), stdout);

  if (CL.getBool("whatif", false)) {
    // Reconstruct the run from the trace's own run_spec and re-drive it
    // with checkpointed counterfactuals (docs/REPLAY.md).
    std::optional<replay::MaterializedRun> Run =
        replay::materialize(*Trace, Error);
    if (!Run)
      return fail("cannot explore '" + TracePath + "': " + Error);
    const replay::Exploration E = replay::explore(
        *Run->App, Run->Procs, *Run->Machine, Run->Config, Run->Perturb.get());
    std::fputs(("\n" + replay::renderWhatIfReport(E)).c_str(), stdout);
  }
  return 0;
}
