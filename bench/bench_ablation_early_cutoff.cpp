//===- bench/bench_ablation_early_cutoff.cpp --------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Ablation of the Section 4.5 refinements: early cut-off of the sampling
// phase and policy ordering from past executions. Reports, for Barnes-Hut
// and Water on eight processors, the end-to-end time, the number of
// sampled intervals and the number of versions skipped by the cut-off.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

namespace {

struct Variant {
  const char *Name;
  bool Cutoff;
  bool Ordering;
};

void runAblation(const App &App, const char *AppName, Table &T) {
  const Variant Variants[] = {{"baseline", false, false},
                              {"early cut-off", true, false},
                              {"cut-off + ordering", true, true}};
  for (const Variant &V : Variants) {
    fb::FeedbackConfig FC;
    FC.EarlyCutoff = V.Cutoff;
    FC.EarlyCutoffThreshold = 0.05;
    FC.UsePolicyOrdering = V.Ordering;
    fb::PolicyHistory History;
    const fb::RunResult R =
        runApp(App, 8, Flavour::Dynamic, xform::PolicyKind::Original, FC,
               V.Ordering ? &History : nullptr);
    unsigned Sampled = 0, Skipped = 0;
    for (const fb::SectionExecutionTrace &Trace : R.Occurrences) {
      Sampled += Trace.SampledIntervals;
      Skipped += Trace.SkippedByCutoff;
    }
    T.addRow({AppName, V.Name,
              formatDouble(rt::nanosToSeconds(R.TotalNanos), 3),
              format("%u", Sampled), format("%u", Skipped)});
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const double Scale = CL.getDouble("scale", 1.0);

  Table T("Ablation: early cut-off and policy ordering (8 processors)");
  T.setHeader({"Application", "Variant", "Time (s)", "Sampled intervals",
               "Skipped by cut-off"});
  {
    bh::BarnesHutConfig Config;
    Config.scale(Scale);
    bh::BarnesHutApp App(Config);
    runAblation(App, "Barnes-Hut", T);
  }
  {
    water::WaterConfig Config;
    Config.scale(Scale);
    water::WaterApp App(Config);
    runAblation(App, "Water", T);
  }
  printTable(T);
  std::printf("Expectation: the refinements reduce sampled intervals (and "
              "never change which version production uses), trimming the "
              "sampling cost.\n");
  return 0;
}
