//===- bench/bench_ablation_spanning.cpp ------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Ablation of Section 4.4's proposed extension: letting sampling and
// production intervals span multiple executions of a parallel section.
// The paper notes that a section without enough computation for a full
// production interval "may be unable to successfully amortize the sampling
// overhead"; spanning intervals fix exactly that. The experiment uses a
// small Water configuration (1/8 scale, 8 timesteps) whose sections are
// much shorter than a production interval.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.Timesteps = 8;
  Config.scale(CL.getDouble("scale", 0.125));
  water::WaterApp App(Config);

  std::printf("Water at 1/8 scale (%u molecules, %u timesteps): sections "
              "too short to amortize per-occurrence sampling.\n\n",
              Config.NumMolecules, Config.Timesteps);

  Table T("Ablation: intervals spanning section executions "
          "(8 processors)");
  T.setHeader({"Variant", "Time (s)", "Sampled intervals"});

  const double Bounded =
      runAppSeconds(App, 8, Flavour::Fixed, PolicyKind::Bounded);
  T.addRow({"best static (Bounded)", formatDouble(Bounded, 3), "-"});

  for (bool Span : {false, true}) {
    fb::FeedbackConfig FC;
    FC.SpanSectionExecutions = Span;
    const fb::RunResult R =
        runApp(App, 8, Flavour::Dynamic, PolicyKind::Original, FC);
    unsigned Sampled = 0;
    for (const fb::SectionExecutionTrace &Trace : R.Occurrences)
      Sampled += Trace.SampledIntervals;
    T.addRow({Span ? "dynamic, spanning intervals (4.4 extension)"
                   : "dynamic, per-occurrence intervals",
              formatDouble(rt::nanosToSeconds(R.TotalNanos), 3),
              format("%u", Sampled)});
  }
  printTable(T);
  std::printf("Expectation: spanning cuts the sampled-interval count by "
              "roughly the number of occurrences and closes most of the "
              "gap to the best static version.\n");
  return 0;
}
