//===- bench/bench_string_suite.cpp -----------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// String experiments. The paper's String experimental subsection (6.3) is
// truncated in our source text, so this suite mirrors the Barnes-Hut
// experiment structure (see DESIGN.md): execution times and speedups per
// version and processor count, plus the locking-overhead table. Expected
// shape: Aggressive best (the coalesced per-ray region on the shared model
// object is short), Dynamic close behind.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/string_tomo/StringApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  string_tomo::StringConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  std::printf("== String: %u rays, %ux%u grid, %u sweeps ==\n",
              Config.NumRays, Config.GridW, Config.GridH, Config.Sweeps);
  string_tomo::StringApp App(Config);
  std::printf("(workload: %llu total ray segments per sweep)\n\n",
              static_cast<unsigned long long>(App.totalSegments()));

  const TimingGrid Grid = runTimingGrid(App, PaperProcCounts);
  printTable(timesTable("String: Execution Times (seconds)", Grid,
                        PaperProcCounts));
  printTable(speedupTable("String: Speedups", Grid, PaperProcCounts));
  printCsv("string_speedups", speedupCsv(Grid, PaperProcCounts));

  Table T("String: Locking Overhead");
  T.setHeader({"Version", "Executed Acquire/Release Pairs",
               "Absolute Locking Overhead (seconds)"});
  for (PolicyKind P : AllPolicies) {
    const fb::RunResult R = runApp(App, 8, Flavour::Fixed, P);
    T.addRow({policyName(P),
              withThousandsSep(R.ParallelStats.AcquireReleasePairs),
              formatDouble(rt::nanosToSeconds(R.ParallelStats.LockOpNanos),
                           3)});
  }
  {
    const fb::RunResult R = runApp(App, 8, Flavour::Dynamic);
    T.addRow({"Dynamic",
              withThousandsSep(R.ParallelStats.AcquireReleasePairs),
              formatDouble(rt::nanosToSeconds(R.ParallelStats.LockOpNanos),
                           3)});
  }
  printTable(T);
  return 0;
}
