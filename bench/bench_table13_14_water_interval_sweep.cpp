//===- bench/bench_table13_14_water_interval_sweep.cpp ----------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Tables 13 and 14: mean execution times of the Water
// INTERF and POTENG sections on eight processors across combinations of
// target sampling and production intervals. INTERF should be insensitive
// (its two versions perform similarly); POTENG should be sensitive at
// small production intervals (there is a dramatic difference between its
// Original and Aggressive versions).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  water::WaterApp App(Config);

  const double SamplingSeconds[] = {0.01, 0.1, 1.0};
  const double ProductionSeconds[] = {1.0, 5.0, 10.0, 100.0};

  for (const char *Section : {"INTERF", "POTENG"}) {
    Table T(std::string("Table ") +
            (std::string(Section) == "INTERF" ? "13" : "14") +
            ": Mean Execution Times for Varying Production and Sampling "
            "Intervals, Water " +
            Section + ", Eight Processors (seconds)");
    T.setHeader({"Target Sampling Interval", "1 s", "5 s", "10 s", "100 s"});
    for (double S : SamplingSeconds) {
      std::vector<std::string> Row{format("%.2f seconds", S)};
      for (double P : ProductionSeconds) {
        fb::FeedbackConfig FC;
        FC.TargetSamplingNanos = rt::secondsToNanos(S);
        FC.TargetProductionNanos = rt::secondsToNanos(P);
        const fb::RunResult R = runApp(App, 8, Flavour::Dynamic,
                                       xform::PolicyKind::Original, FC);
        RunningStat Stat;
        for (const fb::SectionExecutionTrace &Trace : R.Occurrences)
          if (Trace.SectionName == Section)
            Stat.add(rt::nanosToSeconds(Trace.durationNanos()));
        Row.push_back(formatDouble(Stat.mean(), 2));
      }
      T.addRow(Row);
    }
    printTable(T);
  }
  std::printf("Paper reference: INTERF uniform across the sweep; POTENG "
              "sensitive to the sampling interval at production intervals "
              "of 1-5 seconds.\n");
  return 0;
}
