//===- bench/bench_table4_bh_forces_stats.cpp -------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 4: statistics for the Barnes-Hut FORCES section
// -- the mean section size (serial execution time of the section), the
// number of iterations of its parallel loop, and the mean iteration size.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bh::BarnesHutConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  bh::BarnesHutApp App(Config);

  const SectionStats Stats =
      App.sectionStats("FORCES", rt::CostModel::dashLike());

  Table T("Table 4: Statistics for the Barnes-Hut FORCES Section");
  T.setHeader({"Mean Section Size", "Number of Iterations",
               "Mean Iteration Size"});
  T.addRow({formatDouble(Stats.MeanSectionSeconds, 2) + " seconds",
            withThousandsSep(Stats.Iterations),
            formatDouble(Stats.MeanIterationSeconds * 1e3, 2) +
                " milliseconds"});
  printTable(T);
  std::printf("Paper reference: ~69 seconds, 16,384 iterations, ~4.2 "
              "milliseconds.\n");
  return 0;
}
