//===- bench/bench_table3_bh_locking.cpp ------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 3: locking overhead for Barnes-Hut -- the number
// of executed acquire/release pairs and the absolute locking overhead per
// version. As in the paper, the static versions' counts do not vary with
// the processor count; the Dynamic version's numbers come from an
// eight-processor run.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bh::BarnesHutConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  bh::BarnesHutApp App(Config);

  Table T("Table 3: Locking Overhead for Barnes-Hut");
  T.setHeader({"Version", "Executed Acquire/Release Pairs",
               "Absolute Locking Overhead (seconds)"});

  for (PolicyKind P : AllPolicies) {
    const fb::RunResult R = runApp(App, 8, Flavour::Fixed, P);
    T.addRow({policyName(P),
              withThousandsSep(R.ParallelStats.AcquireReleasePairs),
              formatDouble(rt::nanosToSeconds(R.ParallelStats.LockOpNanos),
                           3)});
  }
  {
    const fb::RunResult R = runApp(App, 8, Flavour::Dynamic);
    T.addRow({"Dynamic",
              withThousandsSep(R.ParallelStats.AcquireReleasePairs),
              formatDouble(rt::nanosToSeconds(R.ParallelStats.LockOpNanos),
                           3)});
  }
  printTable(T);
  std::printf("Paper reference: Original 15,471,xxx pairs; Bounded "
              "7,744,033; Aggressive 49,152; Dynamic 72,5xx (8 procs).\n");
  return 0;
}
