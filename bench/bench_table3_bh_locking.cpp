//===- bench/bench_table3_bh_locking.cpp ------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 3: locking overhead for Barnes-Hut. The
// experiment definition lives in the src/exp registry; this binary runs it
// in-process and renders the table.
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("table3_bh_locking", Argc, Argv);
}
