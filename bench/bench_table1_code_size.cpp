//===- bench/bench_table1_code_size.cpp ------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 1: executable code sizes of the Serial,
// Aggressive and Dynamic versions of the three applications. Sizes come
// from the compiler's code-size model over the generated IR, with methods
// identical across policies emitted once (shared closed subgraphs) and the
// Dynamic flavour carrying every version plus instrumentation and dispatch.
// Code size is independent of the workload, so tiny inputs are used.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"
#include "xform/CodeSize.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main() {
  Table T("Table 1: Executable Code Sizes (bytes)");
  T.setHeader({"Application", "Version", "Size (bytes)"});

  const CodeSizeModel Model;

  // The serial-base constants model each application's code outside the
  // parallel sections (setup, I/O, serial phases), calibrated to the
  // paper's MIPS text-segment sizes.
  const auto AddRows = [&](const char *Name, const VersionedProgram &P,
                           uint64_t SerialBase) {
    const ExecutableSizes Sizes = computeExecutableSizes(P, Model, SerialBase);
    T.addRow({Name, "Serial", withThousandsSep(Sizes.Serial)});
    T.addRow({Name, "Aggressive", withThousandsSep(Sizes.Aggressive)});
    T.addRow({Name, "Dynamic", withThousandsSep(Sizes.Dynamic)});
  };

  {
    bh::BarnesHutConfig Config;
    Config.NumBodies = 64;
    bh::BarnesHutApp App(Config);
    AddRows("Barnes-Hut", App.program(), 24800);
  }
  {
    water::WaterConfig Config;
    Config.NumMolecules = 16;
    water::WaterApp App(Config);
    AddRows("Water", App.program(), 35600);
  }
  {
    string_tomo::StringConfig Config;
    Config.NumRays = 16;
    string_tomo::StringApp App(Config);
    AddRows("String", App.program(), 35900);
  }

  printTable(T);
  std::printf("Paper reference (bytes): Barnes-Hut 25,248 / 31,152 / "
              "33,648; Water 36,832 / 46,096 / 50,784; String 36,640 / "
              "43,616 / 45,664.\n");
  return 0;
}
