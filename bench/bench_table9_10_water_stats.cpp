//===- bench/bench_table9_10_water_stats.cpp --------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Tables 9 and 10: statistics for the Water INTERF and
// POTENG sections (mean section size, iteration count, mean iteration
// size), measured on the serial version.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  water::WaterApp App(Config);

  const rt::CostModel CM = rt::CostModel::dashLike();
  for (const char *Section : {"INTERF", "POTENG"}) {
    const SectionStats Stats = App.sectionStats(Section, CM);
    Table T(std::string("Table ") +
            (std::string(Section) == "INTERF" ? "9" : "10") +
            ": Statistics for the Water " + Section + " Section");
    T.setHeader({"Mean Section Size", "Number of Iterations",
                 "Mean Iteration Size"});
    T.addRow({formatDouble(Stats.MeanSectionSeconds, 2) + " seconds",
              withThousandsSep(Stats.Iterations),
              formatDouble(Stats.MeanIterationSeconds * 1e3, 2) +
                  " milliseconds"});
    printTable(T);
  }
  std::printf("Paper reference: both sections run for tens of seconds over "
              "512 iterations with iteration sizes of tens of "
              "milliseconds.\n");
  return 0;
}
