//===- bench/bench_version_space.cpp ----------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Extension experiment (not in the paper): dynamic feedback over a product
// version space composing the paper's synchronization-policy dimension
// with a loop-scheduling dimension (3x3 per application). The experiment
// definition lives in the src/exp registry; this binary runs it in-process
// and renders the tables.
//
//   bench_version_space [--scale F] [--procs N] [--chunks K1,K2]
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("version_space", Argc, Argv);
}
