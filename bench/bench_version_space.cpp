//===- bench/bench_version_space.cpp ----------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Extension experiment (not in the paper): dynamic feedback over a product
// version space. The space composes the paper's synchronization-policy
// dimension with a loop-scheduling dimension (dynamic self-scheduling vs.
// chunked iteration assignment), giving a 3x3 space per application. The
// experiment runs every fixed space point and the Dynamic executable over
// the full space, reports whether feedback selects the best fixed
// combination, and measures how the sampling cost grows with the space:
// every extra version is one more interval whose length is bounded below
// by the coarsest switch-point granularity it admits.
//
//   bench_version_space [--scale F] [--procs N] [--chunks K1,K2]
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/water/WaterApp.h"

#include <algorithm>
#include <cmath>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

namespace {

fb::FeedbackConfig spanningConfig() {
  // Sampling spans section executions and the chosen version persists
  // across them: with a 9-version space, re-sampling every occurrence
  // would dwarf the production phases the paper's guarantee relies on.
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = rt::millisToNanos(10);
  Config.TargetProductionNanos = rt::secondsToNanos(100.0);
  Config.SpanSectionExecutions = true;
  return Config;
}

struct SpaceResult {
  std::string BestName;
  double BestSeconds = 0;
  double DynamicSeconds = 0;
  double SamplingShare = 0; ///< Sampled intervals / total intervals run.
};

SpaceResult runSpace(const App &TheApp, unsigned Procs,
                     const xform::VersionSpace &Space,
                     const std::string &Title) {
  Table T(Title);
  T.setHeader({"Version", "sync", "sched", "Seconds", "vs best"});

  SpaceResult Result;
  std::vector<std::pair<std::string, double>> Fixed;
  for (const xform::VersionDescriptor &D : Space.descriptors()) {
    const double Seconds =
        runAppSeconds(TheApp, Procs, VersionSpec::fixed(D));
    Fixed.emplace_back(D.name(), Seconds);
    if (Result.BestName.empty() || Seconds < Result.BestSeconds) {
      Result.BestName = D.name();
      Result.BestSeconds = Seconds;
    }
  }
  for (size_t I = 0; I < Fixed.size(); ++I) {
    const xform::VersionDescriptor &D = Space.descriptors()[I];
    T.addRow({Fixed[I].first, xform::policyName(D.Policy), D.Sched.name(),
              formatDouble(Fixed[I].second, 2),
              formatDouble(Fixed[I].second / Result.BestSeconds, 2)});
  }

  const fb::RunResult Dyn = runApp(TheApp, Procs,
                                   VersionSpec::dynamicFeedback(),
                                   spanningConfig());
  Result.DynamicSeconds = rt::nanosToSeconds(Dyn.TotalNanos);
  unsigned Sampled = 0, Phases = 0;
  for (const fb::SectionExecutionTrace &Trace : Dyn.Occurrences) {
    Sampled += Trace.SampledIntervals;
    Phases += Trace.SamplingPhases;
  }
  Result.SamplingShare =
      Result.DynamicSeconds > 0
          ? (Result.DynamicSeconds - Result.BestSeconds) /
                Result.DynamicSeconds
          : 0;
  T.addRow({"Dynamic (feedback)", "-", "-",
            formatDouble(Result.DynamicSeconds, 2),
            formatDouble(Result.DynamicSeconds / Result.BestSeconds, 2)});
  printTable(T);

  std::printf("  best fixed version: %s (%.2f s); dynamic feedback %.2f s "
              "(%.1f%% over best), %u sampled intervals in %u phases\n\n",
              Result.BestName.c_str(), Result.BestSeconds,
              Result.DynamicSeconds,
              100.0 * (Result.DynamicSeconds / Result.BestSeconds - 1.0),
              Sampled, Phases);
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const double Scale = CL.getDouble("scale", 1.0);
  const unsigned Procs =
      static_cast<unsigned>(CL.getInt("procs", 8));
  std::string Error;
  const std::optional<xform::VersionSpace> Space = xform::VersionSpace::parse(
      "sync,sched", CL.getString("chunks", "8,32"), Error);
  if (!Space) {
    std::fprintf(stderr, "bench_version_space: %s\n", Error.c_str());
    return 1;
  }

  std::printf("== Version spaces: %u versions (%zu policies x %zu "
              "schedulings), %u processors ==\n\n",
              static_cast<unsigned>(Space->size()),
              Space->policies().size(), Space->scheds().size(), Procs);

  // Enough timesteps for the production phases to amortize the one-time
  // sampling of the full space (the paper's Section 5 tradeoff): sampling a
  // chunked version costs at least one full chunk wave per processor, so
  // the 9-version space pays seconds of sampling that a 2-timestep run
  // could never recover.
  water::WaterConfig WaterCfg;
  WaterCfg.scale(0.25 * Scale);
  WaterCfg.Timesteps = 48;
  water::WaterApp Water(WaterCfg, *Space);
  const SpaceResult WaterResult =
      runSpace(Water, Procs, *Space,
               format("Water over the %u-version space (seconds)",
                      static_cast<unsigned>(Space->size())));

  bh::BarnesHutConfig BhCfg;
  BhCfg.scale(0.125 * Scale);
  BhCfg.ForcesExecutions = 16;
  bh::BarnesHutApp Bh(BhCfg, *Space);
  const SpaceResult BhResult =
      runSpace(Bh, Procs, *Space,
               format("Barnes-Hut over the %u-version space (seconds)",
                      static_cast<unsigned>(Space->size())));

  // Sampling cost growth: the default 3-version space vs. the product
  // space, same workload.
  water::WaterApp WaterDefault(WaterCfg);
  const fb::RunResult Small = runApp(WaterDefault, Procs,
                                     VersionSpec::dynamicFeedback(),
                                     spanningConfig());
  std::printf("sampling cost vs space size (Water): |space|=3 dynamic "
              "%.2f s, |space|=%u dynamic %.2f s\n",
              rt::nanosToSeconds(Small.TotalNanos),
              static_cast<unsigned>(Space->size()),
              WaterResult.DynamicSeconds);

  const bool WaterOk =
      WaterResult.DynamicSeconds <= 1.10 * WaterResult.BestSeconds;
  const bool BhOk = BhResult.DynamicSeconds <= 1.10 * BhResult.BestSeconds;
  std::printf("dynamic feedback within 10%% of best fixed version: water "
              "%s, barnes_hut %s\n",
              WaterOk ? "yes" : "NO", BhOk ? "yes" : "NO");
  return WaterOk && BhOk ? 0 : 1;
}
