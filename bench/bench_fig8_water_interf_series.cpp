//===- bench/bench_fig8_water_interf_series.cpp -----------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Figure 8: sampled overhead over time for the Water
// INTERF section on eight processors. INTERF generates only two versions
// (Bounded and Aggressive produce the same code), so the series cover
// Original and Bounded/Aggressive. The gaps correspond to the executions
// of the other serial and parallel sections.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  water::WaterApp App(Config);

  fb::FeedbackConfig FC;
  FC.TargetSamplingNanos = rt::millisToNanos(5.0);
  FC.TargetProductionNanos = rt::secondsToNanos(1.0);
  const fb::RunResult R =
      runApp(App, 8, Flavour::Dynamic, xform::PolicyKind::Original, FC);

  const SeriesSet OverheadSet = R.mergedOverheadSeries("INTERF");
  std::printf("Figure 8: Sampled Overhead for the Water INTERF Section on "
              "Eight Processors\n\n");
  Table T("Per-version sampled overhead summary");
  T.setHeader({"Version", "Samples", "Mean overhead", "Min", "Max"});
  for (const Series &S : OverheadSet.all()) {
    RunningStat Stat;
    for (double V : S.Values)
      Stat.add(V);
    T.addRow({S.Label, format("%llu", (unsigned long long)Stat.count()),
              formatDouble(Stat.mean(), 4), formatDouble(Stat.min(), 4),
              formatDouble(Stat.max(), 4)});
  }
  printTable(T);
  printCsv("fig8_overhead_series",
           renderSeriesCsv(OverheadSet, "time_s", "overhead"));
  std::printf("Paper reference: two series (Original above Bounded), both "
              "stable over time.\n");
  return 0;
}
