//===- bench/bench_table7_fig6_water.cpp ------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 7 (execution times for Water) and Figure 6 (the
// corresponding speedups): 512 molecules, two timesteps. The expected
// shape: Aggressive best at one processor but failing to scale (POTENG's
// false exclusion serializes it); Bounded best at >= 2 processors; Dynamic
// close to the per-configuration best.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  std::printf("== Water: %u molecules, %u timesteps ==\n\n",
              Config.NumMolecules, Config.Timesteps);
  water::WaterApp App(Config);

  const TimingGrid Grid = runTimingGrid(App, PaperProcCounts);
  printTable(timesTable("Table 7: Execution Times for Water (seconds)",
                        Grid, PaperProcCounts));
  printTable(
      speedupTable("Figure 6: Speedups for Water", Grid, PaperProcCounts));
  printCsv("fig6_speedups", speedupCsv(Grid, PaperProcCounts));
  std::printf("Paper reference (seconds): Serial 165.8; Original 184.4 -> "
              "19.87; Bounded 175.8 -> 19.5; Aggressive 165.3 -> 73.54 "
              "(fails to scale); Dynamic 165.4 -> 20.54.\n");
  return 0;
}
