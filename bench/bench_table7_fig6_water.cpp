//===- bench/bench_table7_fig6_water.cpp ------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 7 (execution times for Water) and Figure 6 (the
// corresponding speedups). The experiment definition lives in the src/exp
// registry; this binary runs it in-process and renders the tables
// (dynfb-bench runs the same grid in parallel with caching).
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("table7_fig6_water", Argc, Argv);
}
