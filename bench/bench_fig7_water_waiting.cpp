//===- bench/bench_fig7_water_waiting.cpp -----------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Figure 7: the waiting proportion of Water -- the
// fraction of total execution time spent waiting to acquire locks held by
// other processors -- per policy and processor count. The Aggressive
// version's false exclusion makes its waiting proportion climb with the
// processor count; Original and Bounded stay low.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  water::WaterApp App(Config);

  Table T("Figure 7: Waiting Proportion for Water");
  std::vector<std::string> Header{"Version"};
  for (unsigned N : PaperProcCounts)
    Header.push_back(format("%u", N));
  T.setHeader(Header);

  SeriesSet Set;
  for (PolicyKind P : AllPolicies) {
    std::vector<std::string> Row{policyName(P)};
    Series &S = Set.getOrCreate(policyName(P));
    for (unsigned N : PaperProcCounts) {
      const fb::RunResult R = runApp(App, N, Flavour::Fixed, P);
      const double W = R.ParallelStats.waitingProportion();
      Row.push_back(formatDouble(W, 3));
      S.addPoint(static_cast<double>(N), W);
    }
    T.addRow(Row);
  }
  printTable(T);
  printCsv("fig7_waiting", renderSeriesCsv(Set, "processors",
                                           "waiting_proportion"));
  std::printf("Paper reference: waiting overhead is the primary cause of "
              "performance loss; the Aggressive policy generates enough "
              "false exclusion to severely degrade performance.\n");
  return 0;
}
