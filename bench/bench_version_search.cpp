//===- bench/bench_version_search.cpp ---------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Extension experiment (not in the paper): sub-linear version search. Runs
// the same dynamic-feedback Water workload over the 3x5 sync-by-scheduling
// space under each sampling strategy (exhaustive, halving, ucb) and gates
// that the partial-sampling strategies reach within 10% of exhaustive's
// chosen-version overhead while spending at most 50% of its sampling cost.
// The experiment definition lives in the src/exp registry; this binary runs
// it in-process and renders the table.
//
//   bench_version_search [--scale F] [--procs N] [--chunks K1,K2,...]
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("version_search", Argc, Argv);
}
