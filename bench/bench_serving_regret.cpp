//===- bench/bench_serving_regret.cpp ---------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Robustness experiment (not in the paper): kvserve under compiled
// streaming traffic -- diurnal intensity, rotating hot tenants, seeded
// perturbation storms -- on every machine model. Per (machine, mix) cell
// the grid runs every fixed policy plus the resilient dynamic configuration
// (quarantine + watchdog on) against the identical seeded stream; the
// renderer replays a clairvoyant oracle (the best fixed policy of every
// traffic window, switched for free) and exits nonzero when dynamic
// feedback's cumulative regret exceeds the bound on any cell. The
// experiment definition lives in the src/exp registry; this binary runs it
// in-process and renders the table.
//
//   bench_serving_regret [--scale F] [--procs N] [--seed N]
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("serving", Argc, Argv);
}
