//===- bench/bench_table2_fig4_barnes_hut.cpp ------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 2 (execution times for Barnes-Hut) and Figure 4
// (the corresponding speedup curves). The experiment definition lives in
// the src/exp registry; this binary runs it in-process and renders the
// tables (dynfb-bench runs the same grid in parallel with caching).
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("table2_fig4_barnes_hut", Argc, Argv);
}
