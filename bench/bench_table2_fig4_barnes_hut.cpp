//===- bench/bench_table2_fig4_barnes_hut.cpp ------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 2 (execution times for Barnes-Hut) and Figure 4
// (the corresponding speedup curves): the Serial, Original, Bounded,
// Aggressive and Dynamic versions on 1-16 simulated processors with the
// paper's input of 16,384 bodies.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bh::BarnesHutConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));

  std::printf("== Barnes-Hut: %u bodies ==\n", Config.NumBodies);
  bh::BarnesHutApp App(Config);
  std::printf("(workload: %llu interactions per FORCES execution)\n\n",
              static_cast<unsigned long long>(App.totalInteractions()));

  const TimingGrid Grid = runTimingGrid(App, PaperProcCounts);
  printTable(timesTable("Table 2: Execution Times for Barnes-Hut (seconds)",
                        Grid, PaperProcCounts));
  printTable(speedupTable("Figure 4: Speedups for Barnes-Hut", Grid,
                          PaperProcCounts));
  printCsv("fig4_speedups", speedupCsv(Grid, PaperProcCounts));
  return 0;
}
