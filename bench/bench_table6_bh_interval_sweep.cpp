//===- bench/bench_table6_bh_interval_sweep.cpp -----------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 6: mean execution times of the Barnes-Hut FORCES
// section on eight processors for combinations of target sampling and
// target production intervals. The paper's observation -- the performance
// is relatively insensitive to the intervals -- should reproduce.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bh::BarnesHutConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  bh::BarnesHutApp App(Config);

  const double SamplingSeconds[] = {0.01, 0.1, 1.0};
  const double ProductionSeconds[] = {1.0, 5.0, 10.0, 100.0};

  Table T("Table 6: Mean Execution Times for Varying Production and "
          "Sampling Intervals, Barnes-Hut FORCES, Eight Processors "
          "(seconds)");
  T.setHeader({"Target Sampling Interval", "1 s", "5 s", "10 s", "100 s"});

  for (double S : SamplingSeconds) {
    std::vector<std::string> Row{format("%.2f seconds", S)};
    for (double P : ProductionSeconds) {
      fb::FeedbackConfig FC;
      FC.TargetSamplingNanos = rt::secondsToNanos(S);
      FC.TargetProductionNanos = rt::secondsToNanos(P);
      const fb::RunResult R =
          runApp(App, 8, Flavour::Dynamic, xform::PolicyKind::Original, FC);
      // Mean FORCES section execution time over its occurrences.
      RunningStat Stat;
      for (const fb::SectionExecutionTrace &Trace : R.Occurrences)
        if (Trace.SectionName == "FORCES")
          Stat.add(rt::nanosToSeconds(Trace.durationNanos()));
      Row.push_back(formatDouble(Stat.mean(), 2));
    }
    T.addRow(Row);
  }
  printTable(T);
  std::printf("Paper reference: 8.2-10.3 s across the sweep -- performance "
              "relatively insensitive to the interval choice.\n");
  return 0;
}
