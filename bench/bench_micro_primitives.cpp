//===- bench/bench_micro_primitives.cpp -------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// google-benchmark micro-benchmarks of the runtime primitives: spin lock
// operations, timer reads (the analog of the paper's ~9 microsecond DASH
// timer), iteration lowering, and one simulated interval. These calibrate
// the real-threads backend and document the simulator's host cost.
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/BarnesHutApp.h"
#include "rt/Interp.h"
#include "rt/RealRunner.h"
#include "rt/SpinLock.h"
#include "sim/SectionSim.h"
#include "xform/MultiVersion.h"

#include <benchmark/benchmark.h>

using namespace dynfb;

static void BM_SpinLockUncontended(benchmark::State &State) {
  rt::SpinLock L;
  for (auto _ : State) {
    L.acquire();
    L.release();
  }
}
BENCHMARK(BM_SpinLockUncontended);

static void BM_SpinLockTryAcquire(benchmark::State &State) {
  rt::SpinLock L;
  for (auto _ : State) {
    benchmark::DoNotOptimize(L.tryAcquire());
    L.release();
  }
}
BENCHMARK(BM_SpinLockTryAcquire);

static void BM_TimerRead(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(rt::steadyNow());
}
BENCHMARK(BM_TimerRead);

static void BM_WorkerCtxLockPair(benchmark::State &State) {
  rt::SpinLock L;
  rt::WorkerCtx Ctx;
  for (auto _ : State) {
    Ctx.acquire(L);
    Ctx.release(L);
  }
}
BENCHMARK(BM_WorkerCtxLockPair);

namespace {

/// Shared small Barnes-Hut app for the lowering/simulation benchmarks.
apps::bh::BarnesHutApp &smallApp() {
  static apps::bh::BarnesHutApp *App = [] {
    apps::bh::BarnesHutConfig Config;
    Config.scale(1024.0 / 16384.0);
    return new apps::bh::BarnesHutApp(Config);
  }();
  return *App;
}

} // namespace

static void BM_EmitIterationOriginal(benchmark::State &State) {
  auto &App = smallApp();
  const auto *VS = App.program().find("FORCES");
  rt::IterationEmitter Emitter(
      VS->versionFor(xform::PolicyKind::Original).Entry,
      App.binding("FORCES"), rt::CostModel::dashLike());
  std::vector<rt::MicroOp> Ops;
  uint64_t Iter = 0;
  for (auto _ : State) {
    Emitter.emit(Iter++ % App.bodies().size(), Ops);
    benchmark::DoNotOptimize(Ops.data());
  }
}
BENCHMARK(BM_EmitIterationOriginal);

static void BM_SimulateForcesInterval(benchmark::State &State) {
  auto &App = smallApp();
  const auto *VS = App.program().find("FORCES");
  for (auto _ : State) {
    sim::SimMachine Machine(8, rt::CostModel::dashLike());
    sim::SimSectionRunner Runner(
        Machine, App.binding("FORCES"),
        {sim::SimVersion{"Original",
                         VS->versionFor(xform::PolicyKind::Original).Entry}},
        false);
    benchmark::DoNotOptimize(
        Runner.runInterval(0, rt::millisToNanos(50)).EffectiveNanos);
  }
}
BENCHMARK(BM_SimulateForcesInterval);

BENCHMARK_MAIN();
