//===- bench/bench_fig9_water_poteng_series.cpp -----------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Figure 9: sampled overhead over time for the Water
// POTENG section on eight processors. POTENG generates only two versions
// (Original and Bounded coincide); the Aggressive version's overhead is
// dramatically higher because holding the global accumulator's lock across
// whole iterations serializes the computation.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  water::WaterApp App(Config);

  fb::FeedbackConfig FC;
  FC.TargetSamplingNanos = rt::millisToNanos(5.0);
  FC.TargetProductionNanos = rt::secondsToNanos(0.5);
  const fb::RunResult R =
      runApp(App, 8, Flavour::Dynamic, xform::PolicyKind::Original, FC);

  const SeriesSet OverheadSet = R.mergedOverheadSeries("POTENG");
  std::printf("Figure 9: Sampled Overhead for the Water POTENG Section on "
              "Eight Processors\n\n");
  Table T("Per-version sampled overhead summary");
  T.setHeader({"Version", "Samples", "Mean overhead", "Min", "Max"});
  for (const Series &S : OverheadSet.all()) {
    RunningStat Stat;
    for (double V : S.Values)
      Stat.add(V);
    T.addRow({S.Label, format("%llu", (unsigned long long)Stat.count()),
              formatDouble(Stat.mean(), 4), formatDouble(Stat.min(), 4),
              formatDouble(Stat.max(), 4)});
  }
  printTable(T);
  printCsv("fig9_overhead_series",
           renderSeriesCsv(OverheadSet, "time_s", "overhead"));
  std::printf("Paper reference: the Aggressive series sits far above "
              "Original/Bounded (serialization through false exclusion); "
              "both stable over time.\n");
  return 0;
}
