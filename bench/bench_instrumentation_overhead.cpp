//===- bench/bench_instrumentation_overhead.cpp -----------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Reproduces the paper's Section 4.3 measurement: "We measure the
// [instrumentation] overhead by generating versions of the applications
// that use a single, statically chosen, synchronization optimization
// policy ... with the instrumentation turned on and turned off. The
// performance differences ... are very small." The Dynamic executable can
// therefore run instrumented code even in production phases without
// hurting performance (which is how it avoids further code growth).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/Factory.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const double Scale = CL.getDouble("scale", 0.25);

  Table T("Instrumentation overhead: statically chosen policies with "
          "overhead counters on vs off (8 processors)");
  T.setHeader({"Application", "Policy", "Uninstrumented (s)",
               "Instrumented (s)", "Delta"});

  for (const std::string &Name : appNames()) {
    std::unique_ptr<App> TheApp = createApp(Name, Scale);
    for (PolicyKind P : AllPolicies) {
      // Flavour::Fixed is uninstrumented; build the instrumented variant
      // through a backend with instrumentation enabled.
      const double Off = runAppSeconds(*TheApp, 8, Flavour::Fixed, P);

      auto Backend = std::make_unique<sim::SimBackend>(
          8, rt::CostModel::dashLike(), /*Instrumented=*/true);
      for (const VersionedSection &VS : TheApp->program().Sections)
        Backend->addSection(
            VS.Name, &TheApp->binding(VS.Name),
            {sim::SimVersion{policyName(P), VS.versionFor(P).Entry}});
      fb::RunOptions Options;
      Options.Mode = fb::ExecMode::Fixed;
      const double On = rt::nanosToSeconds(
          fb::runSchedule(*Backend, TheApp->schedule(), Options).TotalNanos);

      T.addRow({Name, policyName(P), formatDouble(Off, 3),
                formatDouble(On, 3),
                format("%+.2f%%", 100.0 * (On - Off) / Off)});
    }
  }
  printTable(T);
  std::printf("Paper reference: the differences between instrumented and "
              "uninstrumented versions are very small, so instrumentation "
              "can stay on in production phases.\n");
  return 0;
}
