//===- bench/bench_ablation_dispatch.cpp ------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Ablation of the Section 4.2 code-generation alternatives for switching
// policies: (a) one version per policy plus a switch dispatch (what the
// compiler generates; guarantees fast switching, costs code size), versus
// (b) a single version with conditional acquire/release sites guarded by
// flags (no code growth, but a residual flag check at every site on every
// execution). The flag-based runtime penalty is the per-site check cost
// times the number of potential acquire sites executed, which equals the
// Original placement's pair count.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "analysis/CallGraph.h"
#include "apps/barnes_hut/BarnesHutApp.h"
#include "xform/CodeSize.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bh::BarnesHutConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  bh::BarnesHutApp App(Config);

  const CodeSizeModel Model;
  const uint64_t SerialBase = 24800;
  const ExecutableSizes Sizes =
      computeExecutableSizes(App.program(), Model, SerialBase);

  // Flag-based single version: the Original placement's code (it contains
  // every potential acquire/release site) with each site guarded by a flag
  // test (~8 extra bytes), no per-section dispatch.
  const VersionedSection *VS = App.program().find("FORCES");
  const ir::Method *OrigEntry =
      VS->versionFor(PolicyKind::Original).Entry;
  uint64_t SiteCount = 0;
  {
    // Count acquire sites in the Original closure (each has a release twin).
    analysis::CallGraph CG(*OrigEntry);
    for (const ir::Method *M : CG.nodes()) {
      std::vector<const std::vector<ir::Stmt *> *> Lists{&M->body()};
      while (!Lists.empty()) {
        const auto *List = Lists.back();
        Lists.pop_back();
        for (const ir::Stmt *S : *List) {
          if (S->kind() == ir::StmtKind::Acquire)
            ++SiteCount;
          else if (const auto *L = ir::stmtDynCast<ir::LoopStmt>(S))
            Lists.push_back(&L->Body);
        }
      }
    }
  }
  const uint64_t FlagBytesPerSite = 8;
  const uint64_t FlagBased =
      SerialBase + Model.closureBytes({OrigEntry}, true) +
      2 * SiteCount * FlagBytesPerSite;

  Table Code("Code size: multi-version dispatch vs flag-based single "
             "version (Barnes-Hut)");
  Code.setHeader({"Strategy", "Size (bytes)"});
  Code.addRow({"Serial", withThousandsSep(Sizes.Serial)});
  Code.addRow({"Multi-version + switch dispatch (Dynamic)",
               withThousandsSep(Sizes.Dynamic)});
  Code.addRow({"Flag-based single version", withThousandsSep(FlagBased)});
  printTable(Code);

  // Runtime: flag checks execute at every potential site whether or not the
  // current policy acquires there.
  const rt::Nanos FlagCheckNanos = 150;
  const fb::RunResult Orig =
      runApp(App, 8, Flavour::Fixed, PolicyKind::Original);
  const uint64_t SitesExecuted = Orig.ParallelStats.AcquireReleasePairs;
  const double FlagPenaltySeconds = rt::nanosToSeconds(
      static_cast<rt::Nanos>(SitesExecuted) * 2 * FlagCheckNanos / 8);

  const double Dyn = runAppSeconds(App, 8, Flavour::Dynamic);
  const double Agg =
      runAppSeconds(App, 8, Flavour::Fixed, PolicyKind::Aggressive);

  Table Run("Runtime: residual flag-check cost vs dispatch (8 procs)");
  Run.setHeader({"Strategy", "Time (s)"});
  Run.addRow({"Multi-version dynamic feedback", formatDouble(Dyn, 2)});
  Run.addRow({"Flag-based (best policy + per-site checks, est.)",
              formatDouble(Agg + FlagPenaltySeconds, 2)});
  Run.addRow({"  of which flag-check penalty",
              formatDouble(FlagPenaltySeconds, 2)});
  printTable(Run);
  std::printf("Paper Section 4.2: flag-based generation guarantees no code "
              "growth at the price of residual flag checking at each "
              "conditional acquire or release site.\n");
  return 0;
}
