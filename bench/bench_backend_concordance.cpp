//===- bench/bench_backend_concordance.cpp ----------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Extension experiment (not in the paper): the cross-backend validation of
// the simulator. Per application, every fixed synchronization policy plus
// dynamic feedback runs on both the virtual-time simulator and the native
// thread-team backend (real host threads, busy-wait compute); the gate
// checks that the fixed-policy ordering agrees on every pair that is
// significant on both backends and that dynamic feedback tracks the best
// fixed policy on each. The machine axis is deliberately absent: native
// runs ignore MachineModel pricing, so every job is pinned to dash-flat.
// The experiment definition lives in the src/exp registry; this binary
// runs it in-process and renders the report.
//
//   bench_backend_concordance [--scale F] [--procs N]
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("backend_concordance", Argc, Argv);
}
