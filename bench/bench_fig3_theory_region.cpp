//===- bench/bench_fig3_theory_region.cpp -----------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Figure 3: the feasible region for the production
// interval P with the example values S = 1, N = 2, alpha = 0.065,
// eps = 0.5, plus the optimal production interval P_opt ~= 7.25 (Eq. 9)
// and the sensitivity relationships the paper notes (the region grows with
// eps and shrinks with S).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "theory/Analysis.h"

#include <cmath>

using namespace dynfb;
using namespace dynfb::bench;
using namespace dynfb::theory;

int main() {
  const AnalysisParams Params = AnalysisParams::figure3Example();

  std::printf("Figure 3: Feasible Region for Production Interval P\n");
  std::printf("(S = %.2f, N = %u, alpha = %.3f, eps = %.2f)\n\n", Params.S,
              Params.N, Params.Alpha, Params.Epsilon);

  const double Rhs = (Params.Epsilon - 1.0) * Params.S * Params.N +
                     1.0 / Params.Alpha;
  SeriesSet Set;
  Series &Constraint = Set.getOrCreate("constraint_lhs");
  Series &Threshold = Set.getOrCreate("threshold_rhs");
  for (double P = 0.0; P <= 30.0; P += 0.5) {
    const double Lhs = (1.0 - Params.Epsilon) * P +
                       std::exp(-Params.Alpha * P) / Params.Alpha;
    Constraint.addPoint(P, Lhs);
    Threshold.addPoint(P, Rhs);
  }
  printCsv("fig3_constraint", renderSeriesCsv(Set, "P_seconds", "value"));

  const auto Region = feasibleRegion(Params);
  Table T("Feasible region and optimal production interval");
  T.setHeader({"Quantity", "Value"});
  if (Region) {
    T.addRow({"Feasible region lower edge (s)",
              formatDouble(Region->first, 3)});
    T.addRow({"Feasible region upper edge (s)",
              formatDouble(Region->second, 3)});
  } else {
    T.addRow({"Feasible region", "empty"});
  }
  const double POpt =
      optimalProductionInterval(Params.S, Params.N, Params.Alpha);
  T.addRow({"P_opt (Eq. 9)", formatDouble(POpt, 3)});
  T.addRow({"Worst-case per-unit-time work difference at P_opt",
            formatDouble(differencePerUnitTime(POpt, Params.S, Params.N,
                                               Params.Alpha),
                         4)});
  printTable(T);

  // Sensitivity: the paper's two monotonicity observations.
  Table S("Sensitivity of the feasible region");
  S.setHeader({"Parameters", "Region"});
  for (double Eps : {0.4, 0.5, 0.6}) {
    AnalysisParams P2 = Params;
    P2.Epsilon = Eps;
    const auto R = feasibleRegion(P2);
    S.addRow({format("eps = %.2f", Eps),
              R ? format("[%.2f, %.2f]", R->first, R->second)
                : std::string("empty")});
  }
  for (double SV : {0.5, 1.0, 2.0, 4.0}) {
    AnalysisParams P2 = Params;
    P2.S = SV;
    const auto R = feasibleRegion(P2);
    S.addRow({format("S = %.2f", SV),
              R ? format("[%.2f, %.2f]", R->first, R->second)
                : std::string("empty")});
  }
  printTable(S);
  std::printf("Paper reference: P_opt ~= 7.25; the region grows as eps "
              "increases and shrinks as S increases.\n");
  return 0;
}
