//===- bench/bench_perturbation_adaptivity.cpp ------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Robustness experiment beyond the paper: how well does dynamic feedback
// absorb environmental perturbations that the static policies must ride
// out? Each fault class from src/perturb is injected into a small Water
// run (deterministic virtual-time schedules, so every cell reproduces
// exactly). The experiment definition lives in the src/exp registry; this
// binary runs it in-process and renders the table.
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("perturbation_adaptivity", Argc, Argv);
}
