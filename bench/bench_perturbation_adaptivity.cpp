//===- bench/bench_perturbation_adaptivity.cpp ------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Robustness experiment beyond the paper: how well does dynamic feedback
// absorb environmental perturbations that the static policies must ride
// out? Each fault class from src/perturb is injected into a small Water
// run (deterministic virtual-time schedules, so every cell reproduces
// exactly), comparing the best static policy against the paper's dynamic
// configuration and a hardened one (drift-triggered early resampling plus
// switch hysteresis).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"
#include "perturb/Engine.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

namespace {

struct FaultCase {
  const char *Name;
  const char *Spec; ///< Empty = pristine machine.
};

const FaultCase Cases[] = {
    {"pristine", ""},
    {"processor slowdown", "slowdown@1s-2.5s:factor=4:proc=0"},
    {"lock-hold spike", "lockhold@1s-2.5s:extra=20us"},
    {"contention burst", "contend@1s-2.5s:extra=200us"},
    {"timer noise", "timernoise@0s-inf:amp=5us"},
    {"workload phase shift", "phaseshift@1.5s-inf:factor=0.3"},
};

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.Timesteps = 8;
  Config.scale(CL.getDouble("scale", 0.125));
  water::WaterApp App(Config);
  const unsigned Procs =
      static_cast<unsigned>(CL.getInt("procs", 8));

  std::printf("Water at %u molecules x %u timesteps, %u processors; each "
              "fault class injected as a deterministic virtual-time "
              "schedule.\n\n",
              Config.NumMolecules, Config.Timesteps, Procs);

  // The paper's dynamic configuration, adapted to this short run: spanning
  // intervals (the sections are much shorter than a production interval)
  // and a 1 s production budget so the controller resamples a few times.
  fb::FeedbackConfig Paper;
  Paper.SpanSectionExecutions = true;
  Paper.TargetProductionNanos = rt::secondsToNanos(1);

  // The hardened configuration: identical, plus drift-triggered early
  // resampling and a little switch hysteresis.
  fb::FeedbackConfig Robust = Paper;
  Robust.DriftResampleThreshold = 0.10;
  Robust.SwitchHysteresis = 0.02;

  Table T("Execution times under injected faults (seconds)");
  T.setHeader({"Fault class", "Best static", "Dynamic (paper)",
               "Dynamic (robust)", "Early resamples"});

  for (const FaultCase &FC : Cases) {
    std::unique_ptr<perturb::PerturbationEngine> Engine;
    if (FC.Spec[0] != '\0') {
      std::string Error;
      auto Sched = perturb::parseSchedule(FC.Spec, Error);
      if (!Sched) {
        std::fprintf(stderr, "internal spec error for '%s': %s\n", FC.Name,
                     Error.c_str());
        return 1;
      }
      Engine = std::make_unique<perturb::PerturbationEngine>(
          std::move(*Sched));
    }

    // Best static policy for this fault case: the minimum over the fixed
    // policies, each suffering the same schedule.
    double BestStatic = 1e100;
    for (PolicyKind P : AllPolicies)
      BestStatic = std::min(
          BestStatic,
          rt::nanosToSeconds(runApp(App, Procs, Flavour::Fixed, P, {},
                                    nullptr, rt::CostModel::dashLike(),
                                    Engine.get())
                                 .TotalNanos));

    const fb::RunResult PaperRun =
        runApp(App, Procs, Flavour::Dynamic, PolicyKind::Original, Paper,
               nullptr, rt::CostModel::dashLike(), Engine.get());
    const fb::RunResult RobustRun =
        runApp(App, Procs, Flavour::Dynamic, PolicyKind::Original, Robust,
               nullptr, rt::CostModel::dashLike(), Engine.get());
    unsigned EarlyResamples = 0;
    for (const fb::SectionExecutionTrace &Trace : RobustRun.Occurrences)
      EarlyResamples += Trace.EarlyResamples;

    T.addRow({FC.Name, formatDouble(BestStatic, 3),
              formatDouble(rt::nanosToSeconds(PaperRun.TotalNanos), 3),
              formatDouble(rt::nanosToSeconds(RobustRun.TotalNanos), 3),
              format("%u", EarlyResamples)});
  }
  printTable(T);
  std::printf("Every schedule is virtual-time and seeded: rerunning this "
              "binary reproduces each cell bit for bit. Expectation: the "
              "dynamic versions stay within a few percent of the best "
              "static policy under every fault class, and drift-triggered "
              "resampling reacts to mid-run shifts without waiting out the "
              "production budget.\n");
  return 0;
}
