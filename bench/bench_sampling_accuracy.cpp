//===- bench/bench_sampling_accuracy.cpp ------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Reproduces the paper's Section 4.4 claim that very small target sampling
// intervals still work: "the minimum effective sampling intervals are
// large enough to provide overhead measurements that accurately reflect
// the relative overheads in the production phases." For every section and
// version, the overhead measured in ONE minimal sampling interval is
// compared with the overhead over the section's whole execution.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/Factory.h"
#include "sim/Backend.h"

#include <limits>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  const double Scale = CL.getDouble("scale", 0.25);

  Table T("Sampling accuracy: one minimal sampling interval vs the whole "
          "section (8 processors)");
  T.setHeader({"Application", "Section", "Version", "Sampled overhead",
               "Full-section overhead", "Abs. error"});

  for (const std::string &Name : appNames()) {
    std::unique_ptr<App> TheApp = createApp(Name, Scale);
    for (const VersionedSection &VS : TheApp->program().Sections) {
      for (const SectionVersion &V : VS.Versions) {
        // One minimal sampling interval (tiny target: the effective
        // interval is the minimum the application permits).
        sim::SimBackend Backend(8, rt::CostModel::dashLike(), true);
        Backend.addSection(VS.Name, &TheApp->binding(VS.Name),
                           {sim::SimVersion{V.label(), V.Entry}});
        auto Runner = Backend.beginSectionSim(VS.Name);
        const rt::IntervalReport Sample =
            Runner->runInterval(0, rt::millisToNanos(0.1));
        // The rest of the section.
        rt::OverheadStats Full = Sample.Stats;
        while (!Runner->done())
          Full.merge(Runner
                         ->runInterval(
                             0, std::numeric_limits<rt::Nanos>::max() / 4)
                         .Stats);

        const double S = Sample.Stats.totalOverhead();
        const double F = Full.totalOverhead();
        T.addRow({Name, VS.Name, V.label(), formatDouble(S, 4),
                  formatDouble(F, 4), formatDouble(S > F ? S - F : F - S,
                                                   4)});
      }
    }
  }
  printTable(T);
  std::printf("Paper reference (Section 4.4): minimum effective sampling "
              "intervals provide overhead measurements that accurately "
              "reflect the relative overheads of the production phases.\n");
  return 0;
}
