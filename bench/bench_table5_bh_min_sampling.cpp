//===- bench/bench_table5_bh_min_sampling.cpp -------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 5: mean minimum effective sampling intervals for
// the Barnes-Hut FORCES section on eight processors. With a target
// sampling interval much smaller than a loop iteration, each actual
// sampling interval is as short as the application permits -- processors
// only poll at iteration boundaries -- so the measured interval is the
// minimum effective sampling interval of each policy.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bh::BarnesHutConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  bh::BarnesHutApp App(Config);

  fb::FeedbackConfig FC;
  FC.TargetSamplingNanos = rt::millisToNanos(0.1);
  FC.TargetProductionNanos = rt::secondsToNanos(2.0);
  const fb::RunResult R =
      runApp(App, 8, Flavour::Dynamic, xform::PolicyKind::Original, FC);

  std::map<std::string, RunningStat> PerVersion;
  for (const fb::SectionExecutionTrace &T : R.Occurrences)
    for (const auto &[Label, Stat] : T.EffectiveSamplingByVersion)
      PerVersion[Label].merge(Stat);

  Table T("Table 5: Mean Minimum Effective Sampling Intervals for the "
          "Barnes-Hut FORCES Section on Eight Processors");
  T.setHeader({"Version",
               "Mean Minimum Effective Sampling Interval (milliseconds)"});
  for (const auto &[Label, Stat] : PerVersion)
    T.addRow({Label, formatDouble(Stat.mean() * 1e3, 1)});
  printTable(T);
  std::printf("Paper reference (ms): Original 10, Bounded 8, Aggressive 6 "
              "-- larger than but comparable to the mean iteration size, "
              "increasing with the lock overhead.\n");
  return 0;
}
