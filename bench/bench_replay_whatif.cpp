//===- bench/bench_replay_whatif.cpp -----------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Checkpointed what-if exactness: every counterfactual the replay::Explorer
// produces by forking machine state at a phase boundary must be bit-identical
// to a fresh uninterrupted run pinning the same version, across the four apps
// at 8 processors, plus the dynamic policy's regret against the per-interval
// clairvoyant oracle. The experiment definition lives in the src/exp
// registry; this binary runs it in-process and renders the table (see
// docs/REPLAY.md).
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("replay_whatif", Argc, Argv);
}
