//===- bench/bench_fig5_bh_overhead_series.cpp ------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Figure 5: the sampled overhead of each synchronization
// policy over time for the Barnes-Hut FORCES section on eight processors,
// using small target sampling and production intervals so the section
// resamples many times. The gap in the series corresponds to the serial
// tree-build phase between the two FORCES executions.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/barnes_hut/BarnesHutApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  bh::BarnesHutConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  bh::BarnesHutApp App(Config);

  fb::FeedbackConfig FC;
  FC.TargetSamplingNanos = rt::millisToNanos(5.0);
  FC.TargetProductionNanos = rt::secondsToNanos(1.0);
  const fb::RunResult R =
      runApp(App, 8, Flavour::Dynamic, xform::PolicyKind::Original, FC);

  const SeriesSet OverheadSet = R.mergedOverheadSeries("FORCES");
  std::printf("Figure 5: Sampled Overhead for the Barnes-Hut FORCES "
              "Section on Eight Processors\n");
  std::printf("(one (time seconds, overhead) point per sampling interval; "
              "series per policy)\n\n");
  Table T("Per-policy sampled overhead summary");
  T.setHeader({"Version", "Samples", "Mean overhead", "Min", "Max"});
  for (const Series &S : OverheadSet.all()) {
    RunningStat Stat;
    for (double V : S.Values)
      Stat.add(V);
    T.addRow({S.Label, format("%llu", (unsigned long long)Stat.count()),
              formatDouble(Stat.mean(), 4), formatDouble(Stat.min(), 4),
              formatDouble(Stat.max(), 4)});
  }
  printTable(T);
  printCsv("fig5_overhead_series",
           renderSeriesCsv(OverheadSet, "time_s", "overhead"));
  std::printf("Paper reference: overheads stay relatively stable over "
              "time; Original highest, Aggressive lowest.\n");
  return 0;
}
