//===- bench/BenchUtil.h - Shared bench-binary helpers ----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure bench binaries: option parsing
/// (--scale shrinks workloads for quick runs) and table printing. The
/// execution-time grid experiment lives in exp/PaperGrids -- shared with
/// the dynfb-bench experiment registry and dynfb-run --sweep -- and is
/// re-exported here under the historical dynfb::bench names.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_BENCH_BENCHUTIL_H
#define DYNFB_BENCH_BENCHUTIL_H

#include "exp/PaperGrids.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dynfb::bench {

/// Prints a rendered table to stdout with a separating blank line.
inline void printTable(const Table &T) {
  std::fputs(T.renderText().c_str(), stdout);
  std::fputs("\n", stdout);
}

inline void printCsv(const std::string &Name, const std::string &Csv) {
  std::printf("CSV [%s]:\n%s\n", Name.c_str(), Csv.c_str());
}

using exp::runTimingGrid;
using exp::speedupCsv;
using exp::speedupTable;
using exp::timesTable;
using exp::TimingGrid;

} // namespace dynfb::bench

#endif // DYNFB_BENCH_BENCHUTIL_H
