//===- bench/BenchUtil.h - Shared bench-binary helpers ----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure bench binaries: option parsing
/// (--scale shrinks workloads for quick runs), table printing, and the
/// standard execution-time + speedup experiment over the paper's processor
/// counts.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_BENCH_BENCHUTIL_H
#define DYNFB_BENCH_BENCHUTIL_H

#include "apps/Harness.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dynfb::bench {

/// Prints a rendered table to stdout with a separating blank line.
inline void printTable(const Table &T) {
  std::fputs(T.renderText().c_str(), stdout);
  std::fputs("\n", stdout);
}

inline void printCsv(const std::string &Name, const std::string &Csv) {
  std::printf("CSV [%s]:\n%s\n", Name.c_str(), Csv.c_str());
}

/// Execution times of every flavour at every processor count -- the shape
/// of the paper's Tables 2 and 7 -- plus the serial time.
struct TimingGrid {
  double SerialSeconds = 0;
  /// Row label -> (procs -> seconds).
  std::vector<std::pair<std::string, std::map<unsigned, double>>> Rows;
};

/// Runs the standard execution-time experiment: Serial on one processor,
/// each static policy and Dynamic on the paper's processor counts.
TimingGrid runTimingGrid(const apps::App &App,
                         const std::vector<unsigned> &Procs,
                         const fb::FeedbackConfig &Config = {});

/// Renders a TimingGrid as the paper's execution-time table.
Table timesTable(const std::string &Title, const TimingGrid &Grid,
                 const std::vector<unsigned> &Procs);

/// Renders the corresponding speedup series (the paper's speedup figures).
Table speedupTable(const std::string &Title, const TimingGrid &Grid,
                   const std::vector<unsigned> &Procs);

/// Speedup series as CSV for plotting.
std::string speedupCsv(const TimingGrid &Grid,
                       const std::vector<unsigned> &Procs);

} // namespace dynfb::bench

#endif // DYNFB_BENCH_BENCHUTIL_H
