//===- bench/bench_machine_sensitivity.cpp ----------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Extension experiment (not in the paper): the String policy grid re-run on
// every shipped machine model (dash-flat, dash-numa, uma-cheaplock). The
// paper argues that the best synchronization policy is a property of the
// machine; this binary demonstrates it -- the best fixed policy flips
// between the NUMA and the cheap-lock machine while dynamic feedback stays
// within 10% of the best on both -- and exits nonzero when it does not.
// The experiment definition lives in the src/exp registry; this binary runs
// it in-process and renders the table.
//
//   bench_machine_sensitivity [--scale F] [--procs N]
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("machine_sensitivity", Argc, Argv);
}
