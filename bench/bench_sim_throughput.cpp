//===- bench/bench_sim_throughput.cpp ---------------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Simulator hot-loop throughput: simulated micro-ops and intervals per
// wall-clock second across the four apps at 2/8 processors. The experiment
// definition lives in the src/exp registry; this binary runs it in-process
// and renders the table. The checked-in BENCH_sim_throughput.json at the
// repo root tracks these rates PR over PR (see BENCHMARKING.md).
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("sim_throughput", Argc, Argv);
}
