//===- bench/bench_table8_water_locking.cpp ---------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 8: locking overhead for Water, including the
// Dynamic version at one processor (which should track Aggressive, the
// paper's observation). The experiment definition lives in the src/exp
// registry; this binary runs it in-process and renders the table.
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

int main(int Argc, char **Argv) {
  return dynfb::exp::runBenchMain("table8_water_locking", Argc, Argv);
}
