//===- bench/bench_table8_water_locking.cpp ---------------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Table 8: locking overhead for Water -- executed
// acquire/release pairs and the absolute locking overhead per version.
// Also reports the Dynamic version at one processor, where it should
// track the Aggressive version's counts (the paper's observation).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;
using namespace dynfb::xform;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  water::WaterApp App(Config);

  Table T("Table 8: Locking Overhead for Water");
  T.setHeader({"Version", "Executed Acquire/Release Pairs",
               "Absolute Locking Overhead (seconds)"});
  for (PolicyKind P : AllPolicies) {
    const fb::RunResult R = runApp(App, 8, Flavour::Fixed, P);
    T.addRow({policyName(P),
              withThousandsSep(R.ParallelStats.AcquireReleasePairs),
              formatDouble(rt::nanosToSeconds(R.ParallelStats.LockOpNanos),
                           3)});
  }
  for (unsigned Procs : {8u, 1u}) {
    const fb::RunResult R = runApp(App, Procs, Flavour::Dynamic);
    T.addRow({format("Dynamic (%u procs)", Procs),
              withThousandsSep(R.ParallelStats.AcquireReleasePairs),
              formatDouble(rt::nanosToSeconds(R.ParallelStats.LockOpNanos),
                           3)});
  }
  printTable(T);
  std::printf("Paper reference: Original 4,200,xxx pairs; Bounded "
              "2,099,200; Aggressive 1,577,98x; Dynamic (8p) close to "
              "Bounded, Dynamic (1p) close to Aggressive.\n");
  return 0;
}
