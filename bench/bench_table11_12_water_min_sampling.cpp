//===- bench/bench_table11_12_water_min_sampling.cpp ------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Regenerates paper Tables 11 and 12: mean minimum effective sampling
// intervals for the Water INTERF and POTENG sections on eight processors.
// The POTENG Aggressive version's interval is far larger than the
// iteration size because the policy serializes the computation (paper
// Section 4.1's discussion of especially bad policies).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::bench;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  water::WaterConfig Config;
  Config.scale(CL.getDouble("scale", 1.0));
  water::WaterApp App(Config);

  fb::FeedbackConfig FC;
  FC.TargetSamplingNanos = rt::millisToNanos(0.1);
  FC.TargetProductionNanos = rt::secondsToNanos(1.0);
  const fb::RunResult R =
      runApp(App, 8, Flavour::Dynamic, xform::PolicyKind::Original, FC);

  for (const char *Section : {"INTERF", "POTENG"}) {
    std::map<std::string, RunningStat> PerVersion;
    for (const fb::SectionExecutionTrace &T : R.Occurrences)
      if (T.SectionName == Section)
        for (const auto &[Label, Stat] : T.EffectiveSamplingByVersion)
          PerVersion[Label].merge(Stat);

    Table T(std::string("Table ") +
            (std::string(Section) == "INTERF" ? "11" : "12") +
            ": Mean Minimum Effective Sampling Intervals for the Water " +
            Section + " Section on Eight Processors");
    T.setHeader({"Version",
                 "Mean Minimum Effective Sampling Interval (milliseconds)"});
    for (const auto &[Label, Stat] : PerVersion)
      T.addRow({Label, formatDouble(Stat.mean() * 1e3, 1)});
    printTable(T);
  }
  std::printf("Paper reference: INTERF 93 / 82 ms; POTENG: Aggressive "
              "significantly larger than Original/Bounded because it "
              "serializes much of the computation.\n");
  return 0;
}
