//===- apps/Harness.cpp ---------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/Harness.h"

using namespace dynfb;
using namespace dynfb::apps;

fb::RunResult apps::runApp(const App &App, unsigned Procs,
                           const VersionSpec &Spec,
                           const fb::FeedbackConfig &Config,
                           fb::PolicyHistory *History,
                           const rt::CostModel &Costs,
                           const perturb::PerturbationEngine *Perturb) {
  auto Backend = App.makeSimBackend(Procs, Costs, Spec);
  Backend->machine().setPerturbation(Perturb);
  fb::RunOptions Options;
  Options.Mode =
      Spec.F == Flavour::Dynamic ? fb::ExecMode::Dynamic : fb::ExecMode::Fixed;
  Options.Config = Config;
  Options.History = History;
  return fb::runSchedule(*Backend, App.schedule(), Options);
}

double apps::runAppSeconds(const App &App, unsigned Procs,
                           const VersionSpec &Spec,
                           const fb::FeedbackConfig &Config) {
  return rt::nanosToSeconds(runApp(App, Procs, Spec, Config).TotalNanos);
}
