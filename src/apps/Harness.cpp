//===- apps/Harness.cpp ---------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/Harness.h"

using namespace dynfb;
using namespace dynfb::apps;

fb::RunResult apps::runApp(const App &App, unsigned Procs,
                           const VersionSpec &Spec,
                           const rt::MachineModel &Model,
                           const fb::FeedbackConfig &Config,
                           fb::PolicyHistory *History,
                           const perturb::PerturbationEngine *Perturb,
                           RunObservation *Obs, const BackendOptions &BO) {
  // The single backend-blind execution path: everything below this line is
  // identical for the simulator and for real threads.
  std::unique_ptr<rt::ExecutionBackend> Backend;
  if (BO.Kind == rt::BackendKind::Native) {
    rt::NativeBackend::Options NO;
    NO.TimeScale = BO.TimeScale;
    Backend = App.makeNativeBackend(Procs, Spec, NO);
  } else {
    Backend = App.makeSimBackend(Procs, Model, Spec);
  }
  Backend->setPerturbation(Perturb);
  if (Obs && Obs->CollectSectionTraces)
    Backend->setCollectSectionTraces(true);
  fb::RunOptions Options;
  Options.Mode =
      Spec.F == Flavour::Dynamic ? fb::ExecMode::Dynamic : fb::ExecMode::Fixed;
  Options.Config = Config;
  if (!Options.Config.Machine)
    Options.Config.Machine = &Model; // Ucb sampling prior; outlives the run.
  Options.History = History;
  Options.Log = Obs ? &Obs->Log : nullptr;
  fb::RunResult Result = fb::runSchedule(*Backend, App.schedule(), Options);
  if (Obs && Obs->CollectSectionTraces)
    Obs->SectionTraces = Backend->sectionTraces();
  return Result;
}

fb::RunResult apps::runApp(const App &App, unsigned Procs,
                           const VersionSpec &Spec,
                           const fb::FeedbackConfig &Config,
                           fb::PolicyHistory *History,
                           const rt::CostModel &Costs,
                           const perturb::PerturbationEngine *Perturb,
                           RunObservation *Obs) {
  return runApp(App, Procs, Spec, rt::FlatMachineModel(Costs), Config, History,
                Perturb, Obs);
}

double apps::runAppSeconds(const App &App, unsigned Procs,
                           const VersionSpec &Spec,
                           const fb::FeedbackConfig &Config) {
  return rt::nanosToSeconds(runApp(App, Procs, Spec, Config).TotalNanos);
}

double apps::runAppSeconds(const App &App, unsigned Procs,
                           const VersionSpec &Spec,
                           const rt::MachineModel &Model,
                           const fb::FeedbackConfig &Config) {
  return rt::nanosToSeconds(
      runApp(App, Procs, Spec, Model, Config).TotalNanos);
}

obs::RunTrace apps::buildRunTrace(const std::string &AppName, unsigned Procs,
                                  const std::string &Policy,
                                  const fb::RunResult &Result,
                                  const RunObservation *Obs,
                                  rt::BackendKind Backend) {
  obs::RunTrace Trace;
  Trace.Meta.App = AppName;
  Trace.Meta.Policy = Policy;
  Trace.Meta.Procs = Procs;
  Trace.Meta.TotalNanos = Result.TotalNanos;
  Trace.Meta.Backend = rt::backendKindName(Backend);

  if (Obs)
    Trace.Decisions = Obs->Log.events();

  for (const fb::SectionExecutionTrace &Occ : Result.Occurrences) {
    obs::SectionRecord S;
    S.Section = Occ.SectionName;
    S.StartNanos = Occ.StartNanos;
    S.EndNanos = Occ.EndNanos;
    S.AcquireReleasePairs = Occ.Total.AcquireReleasePairs;
    S.LockOpNanos = Occ.Total.LockOpNanos;
    S.WaitNanos = Occ.Total.WaitNanos;
    S.SchedNanos = Occ.Total.SchedNanos;
    S.ExecNanos = Occ.Total.ExecNanos;
    S.SamplingPhases = Occ.SamplingPhases;
    S.SampledIntervals = Occ.SampledIntervals;
    S.DegenerateIntervals = Occ.DegenerateIntervals;
    S.EarlyResamples = Occ.EarlyResamples;
    S.HysteresisHolds = Occ.HysteresisHolds;
    Trace.Sections.push_back(std::move(S));
  }

  // Both maps iterate in sorted key order, so lock records come out
  // deterministically: by section name, then object id.
  if (Obs)
    for (const auto &[Section, IT] : Obs->SectionTraces)
      for (const auto &[Obj, LS] : IT.Locks) {
        obs::LockRecord L;
        L.Section = Section;
        L.Object = Obj;
        L.Acquires = LS.Acquires;
        L.Contended = LS.Contended;
        L.WaitNanos = LS.WaitNanos;
        Trace.Locks.push_back(std::move(L));
      }

  return Trace;
}
