//===- apps/Factory.h - Application factory ----------------------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Creates benchmark applications by name, for the command-line tools.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_FACTORY_H
#define DYNFB_APPS_FACTORY_H

#include "apps/App.h"

#include <memory>
#include <string>
#include <vector>

namespace dynfb::apps {

/// Names accepted by createApp.
std::vector<std::string> appNames();

/// Creates the named application with its workload scaled by \p Scale.
/// Returns nullptr for unknown names.
std::unique_ptr<App> createApp(const std::string &Name, double Scale = 1.0);

} // namespace dynfb::apps

#endif // DYNFB_APPS_FACTORY_H
