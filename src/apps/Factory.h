//===- apps/Factory.h - Application factory ----------------------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Creates benchmark applications by name, for the command-line tools.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_FACTORY_H
#define DYNFB_APPS_FACTORY_H

#include "apps/App.h"

#include <memory>
#include <string>
#include <vector>

namespace dynfb::apps {

/// Names accepted by createApp.
std::vector<std::string> appNames();

/// Creates the named application with its workload scaled by \p Scale and
/// its versions generated over \p Space (default: the three synchronization
/// policies under dynamic self-scheduling). Returns nullptr for unknown
/// names.
std::unique_ptr<App> createApp(const std::string &Name, double Scale = 1.0,
                               const xform::VersionSpace &Space = {});

} // namespace dynfb::apps

#endif // DYNFB_APPS_FACTORY_H
