//===- apps/barnes_hut/BarnesHutApp.h - The Barnes-Hut benchmark -*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Barnes-Hut benchmark (paper Section 6.1): a hierarchical N-body
/// solver. The computationally intensive FORCES section executes one
/// parallel loop over the bodies; each iteration accumulates interactions
/// into its own body's fields under the body's lock (the paper's Figure 1
/// program). Per-body interaction counts come from real octree traversals,
/// so the workload's shape is genuine. The synchronization policies behave
/// as in the paper: Original pays one lock pair per update, Bounded
/// coalesces the per-interaction updates, and Aggressive lifts the lock out
/// of the interaction loop entirely (Figure 2), with no false exclusion
/// because each iteration locks only its own body.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_BARNES_HUT_BARNESHUTAPP_H
#define DYNFB_APPS_BARNES_HUT_BARNESHUTAPP_H

#include "apps/App.h"
#include "apps/barnes_hut/Octree.h"

#include <memory>
#include <vector>

namespace dynfb::apps::bh {

/// Configuration of the Barnes-Hut benchmark.
struct BarnesHutConfig {
  uint32_t NumBodies = 16384;  ///< Paper input: 16,384 bodies.
  double Theta = 1.15;         ///< Opening criterion.
  double SofteningEps = 0.05;  ///< Plummer softening.
  uint64_t Seed = 42;
  unsigned ForcesExecutions = 2; ///< The paper's run executes FORCES twice.
  rt::Nanos InteractNanos = 21800; ///< One interaction kernel.
  rt::Nanos TreeBuildNanos = rt::secondsToNanos(2.3); ///< Serial phase.

  /// Scales the body count (workload shrinking for tests / quick runs).
  void scale(double Factor);
};

/// The Barnes-Hut application.
class BarnesHutApp : public App {
public:
  explicit BarnesHutApp(const BarnesHutConfig &Config,
                        const xform::VersionSpace &Space = {});
  ~BarnesHutApp() override;

  rt::Schedule schedule() const override;
  const rt::DataBinding &binding(const std::string &Section) const override;

  /// Section name of the force computation.
  static constexpr const char *ForcesSection = "FORCES";

  const BarnesHutConfig &config() const { return Config; }
  const std::vector<Body> &bodies() const { return Bodies; }
  const std::vector<uint32_t> &interactionCounts() const {
    return InteractionCounts;
  }
  uint64_t totalInteractions() const { return TotalInteractions; }

private:
  void buildProgram();

  BarnesHutConfig Config;
  std::vector<Body> Bodies;
  std::vector<uint32_t> InteractionCounts;
  uint64_t TotalInteractions = 0;

  unsigned InteractLoopId = 0;
  unsigned InteractCostClass = 0;
  std::unique_ptr<rt::DataBinding> ForcesBinding;
};

} // namespace dynfb::apps::bh

#endif // DYNFB_APPS_BARNES_HUT_BARNESHUTAPP_H
