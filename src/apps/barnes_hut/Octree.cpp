//===- apps/barnes_hut/Octree.cpp -----------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/Octree.h"

#include "support/Compiler.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dynfb;
using namespace dynfb::apps::bh;

Octree::Octree(const std::vector<Body> &Bodies) : Bodies(Bodies) {
  assert(!Bodies.empty() && "octree over empty body set");

  // Root cube: bounding box of all bodies, squared up.
  Vec3 Lo = Bodies[0].Pos, Hi = Bodies[0].Pos;
  for (const Body &B : Bodies) {
    Lo.X = std::min(Lo.X, B.Pos.X);
    Lo.Y = std::min(Lo.Y, B.Pos.Y);
    Lo.Z = std::min(Lo.Z, B.Pos.Z);
    Hi.X = std::max(Hi.X, B.Pos.X);
    Hi.Y = std::max(Hi.Y, B.Pos.Y);
    Hi.Z = std::max(Hi.Z, B.Pos.Z);
  }
  Node Root;
  Root.Center = (Lo + Hi) * 0.5;
  Root.HalfSize =
      0.5 * std::max({Hi.X - Lo.X, Hi.Y - Lo.Y, Hi.Z - Lo.Z}) + 1e-9;
  Nodes.push_back(Root);

  for (uint32_t I = 0; I < Bodies.size(); ++I)
    insert(0, I, 0);
  computeMass(0);
}

int32_t Octree::childFor(int32_t NodeIdx, const Vec3 &P) {
  Node &N = Nodes[NodeIdx];
  const int Octant = (P.X >= N.Center.X ? 1 : 0) |
                     (P.Y >= N.Center.Y ? 2 : 0) |
                     (P.Z >= N.Center.Z ? 4 : 0);
  if (N.Children[Octant] >= 0)
    return N.Children[Octant];
  Node Child;
  const double Q = N.HalfSize * 0.5;
  Child.HalfSize = Q;
  Child.Center = {N.Center.X + ((Octant & 1) ? Q : -Q),
                  N.Center.Y + ((Octant & 2) ? Q : -Q),
                  N.Center.Z + ((Octant & 4) ? Q : -Q)};
  Nodes.push_back(Child);
  const int32_t Idx = static_cast<int32_t>(Nodes.size() - 1);
  // Re-fetch: push_back may have reallocated.
  Nodes[NodeIdx].Children[Octant] = Idx;
  return Idx;
}

void Octree::insert(int32_t NodeIdx, uint32_t BodyIdx, int Depth) {
  // Depth guard against coincident positions.
  static constexpr int MaxDepth = 64;
  Node &N = Nodes[NodeIdx];
  if (N.IsLeaf && N.BodyIndex < 0) {
    N.BodyIndex = static_cast<int32_t>(BodyIdx);
    return;
  }
  if (N.IsLeaf) {
    // Split: push the resident body down, then fall through.
    const int32_t Resident = N.BodyIndex;
    Nodes[NodeIdx].BodyIndex = -1;
    Nodes[NodeIdx].IsLeaf = false;
    if (Depth < MaxDepth) {
      const int32_t C =
          childFor(NodeIdx, Bodies[static_cast<uint32_t>(Resident)].Pos);
      insert(C, static_cast<uint32_t>(Resident), Depth + 1);
    } else {
      // Coincident bodies at max depth: keep as mass only (handled by
      // computeMass via the subtree's bodies; extremely unlikely with
      // generated data). Treat as internal with lost identity.
      DYNFB_UNREACHABLE("octree exceeded maximum depth");
    }
  }
  const int32_t C = childFor(NodeIdx, Bodies[BodyIdx].Pos);
  insert(C, BodyIdx, Depth + 1);
}

void Octree::computeMass(int32_t NodeIdx) {
  Node &N = Nodes[NodeIdx];
  if (N.IsLeaf) {
    if (N.BodyIndex >= 0) {
      const Body &B = Bodies[static_cast<uint32_t>(N.BodyIndex)];
      N.Mass = B.Mass;
      N.CoM = B.Pos;
    }
    return;
  }
  Vec3 Weighted;
  double Mass = 0;
  for (int32_t C : N.Children) {
    if (C < 0)
      continue;
    computeMass(C);
    const Node &Child = Nodes[C];
    Weighted += Child.CoM * Child.Mass;
    Mass += Child.Mass;
  }
  Nodes[NodeIdx].Mass = Mass;
  if (Mass > 0)
    Nodes[NodeIdx].CoM = Weighted * (1.0 / Mass);
}

double Octree::rootMass() const { return Nodes[0].Mass; }

static void accumulate(const Vec3 &From, const Vec3 &To, double Mass,
                       double Eps, ForceResult &Out) {
  const Vec3 D = To - From;
  const double R2 = D.norm2() + Eps * Eps;
  const double R = std::sqrt(R2);
  const double Inv3 = 1.0 / (R2 * R);
  Out.Acc += D * (Mass * Inv3);
  Out.Phi -= Mass / R;
  ++Out.Interactions;
}

void Octree::forceRec(int32_t NodeIdx, uint32_t BodyIdx, double Theta,
                      double Eps, ForceResult &Out) const {
  const Node &N = Nodes[NodeIdx];
  if (N.Mass <= 0)
    return;
  const Body &B = Bodies[BodyIdx];
  if (N.IsLeaf) {
    if (N.BodyIndex >= 0 && static_cast<uint32_t>(N.BodyIndex) != BodyIdx)
      accumulate(B.Pos, N.CoM, N.Mass, Eps, Out);
    return;
  }
  const double Dist2 = (N.CoM - B.Pos).norm2();
  const double Size = 2.0 * N.HalfSize;
  if (Size * Size < Theta * Theta * Dist2) {
    // Far enough: interact with the cell's center of mass.
    accumulate(B.Pos, N.CoM, N.Mass, Eps, Out);
    return;
  }
  for (int32_t C : N.Children)
    if (C >= 0)
      forceRec(C, BodyIdx, Theta, Eps, Out);
}

ForceResult Octree::computeForce(uint32_t Index, double Theta,
                                 double Eps) const {
  ForceResult Out;
  forceRec(0, Index, Theta, Eps, Out);
  return Out;
}

std::vector<Body> apps::bh::makePlummerBodies(uint32_t N, uint64_t Seed) {
  std::vector<Body> Bodies(N);
  Rng R(Seed);
  for (Body &B : Bodies) {
    // Plummer-like radial profile (truncated), isotropic direction.
    const double U = R.uniform(1e-4, 0.999);
    const double Radius =
        1.0 / std::sqrt(std::pow(U, -2.0 / 3.0) - 1.0 + 1e-9);
    const double CosT = R.uniform(-1.0, 1.0);
    const double SinT = std::sqrt(std::max(0.0, 1.0 - CosT * CosT));
    const double Phi = R.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double Rad = std::min(Radius, 8.0);
    B.Pos = {Rad * SinT * std::cos(Phi), Rad * SinT * std::sin(Phi),
             Rad * CosT};
    B.Mass = 1.0 / static_cast<double>(N);
  }
  return Bodies;
}
