//===- apps/barnes_hut/Octree.h - Hierarchical N-body octree ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A real Barnes-Hut octree: bodies are inserted into an adaptive oct-tree,
/// centers of mass are computed bottom-up, and the force on each body is
/// evaluated by the standard theta-criterion traversal. The traversal both
/// computes real accelerations (used by the native example application) and
/// yields the per-body interaction counts that drive the simulator's
/// workload for the FORCES section.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_BARNES_HUT_OCTREE_H
#define DYNFB_APPS_BARNES_HUT_OCTREE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dynfb::apps::bh {

/// Simple 3-vector.
struct Vec3 {
  double X = 0, Y = 0, Z = 0;

  Vec3 operator+(const Vec3 &O) const { return {X + O.X, Y + O.Y, Z + O.Z}; }
  Vec3 operator-(const Vec3 &O) const { return {X - O.X, Y - O.Y, Z - O.Z}; }
  Vec3 operator*(double S) const { return {X * S, Y * S, Z * S}; }
  Vec3 &operator+=(const Vec3 &O) {
    X += O.X;
    Y += O.Y;
    Z += O.Z;
    return *this;
  }
  double norm2() const { return X * X + Y * Y + Z * Z; }
};

/// One body of the N-body system.
struct Body {
  Vec3 Pos;
  Vec3 Vel;
  double Mass = 1.0;
  Vec3 Acc;     ///< Accumulated acceleration (the commuting updates).
  double Phi = 0; ///< Accumulated potential.
};

/// Result of one force traversal.
struct ForceResult {
  Vec3 Acc;
  double Phi = 0;
  uint32_t Interactions = 0; ///< Body-body plus body-cell interactions.
};

/// Adaptive octree over a set of bodies.
class Octree {
public:
  /// Builds the tree over \p Bodies (positions and masses are read).
  explicit Octree(const std::vector<Body> &Bodies);

  /// Computes the force on body \p Index with opening criterion \p Theta
  /// and Plummer softening \p Eps.
  ForceResult computeForce(uint32_t Index, double Theta, double Eps) const;

  /// Number of tree nodes (for tests).
  size_t nodeCount() const { return Nodes.size(); }

  /// Total mass at the root (for tests; equals the sum of body masses).
  double rootMass() const;

private:
  struct Node {
    Vec3 Center;      ///< Geometric center of the cube.
    double HalfSize = 0;
    Vec3 CoM;         ///< Center of mass.
    double Mass = 0;
    int32_t BodyIndex = -1; ///< >= 0 for leaves holding one body.
    int32_t Children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    bool IsLeaf = true;
  };

  void insert(int32_t NodeIdx, uint32_t BodyIdx, int Depth);
  int32_t childFor(int32_t NodeIdx, const Vec3 &P);
  void computeMass(int32_t NodeIdx);
  void forceRec(int32_t NodeIdx, uint32_t BodyIdx, double Theta, double Eps,
                ForceResult &Out) const;

  const std::vector<Body> &Bodies;
  std::vector<Node> Nodes;
};

/// Generates \p N bodies in a Plummer-like spherical distribution,
/// deterministic in \p Seed.
std::vector<Body> makePlummerBodies(uint32_t N, uint64_t Seed);

} // namespace dynfb::apps::bh

#endif // DYNFB_APPS_BARNES_HUT_OCTREE_H
