//===- apps/barnes_hut/BarnesHutApp.cpp -----------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/BarnesHutApp.h"

#include "ir/Builder.h"

#include <algorithm>
#include <cassert>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::apps::bh;
using namespace dynfb::ir;

void BarnesHutConfig::scale(double Factor) {
  NumBodies = std::max<uint32_t>(
      16, static_cast<uint32_t>(static_cast<double>(NumBodies) * Factor));
  // The tree build is roughly linear in the body count; keep the
  // serial/parallel proportions of the full-size benchmark.
  TreeBuildNanos =
      static_cast<rt::Nanos>(static_cast<double>(TreeBuildNanos) * Factor);
}

namespace {

/// FORCES-section binding: iteration i computes the interactions of body i,
/// whose count comes from the real octree traversal.
class ForcesDataBinding final : public rt::DataBinding {
public:
  ForcesDataBinding(const std::vector<uint32_t> &Counts, unsigned LoopId,
                    unsigned CostClass, rt::Nanos InteractNanos)
      : Counts(Counts), LoopId(LoopId), CostClass(CostClass),
        InteractNanos(InteractNanos) {}

  uint64_t iterationCount() const override { return Counts.size(); }
  uint32_t objectCount() const override {
    return static_cast<uint32_t>(Counts.size());
  }
  rt::ObjectId thisObject(uint64_t Iter) const override {
    return static_cast<rt::ObjectId>(Iter);
  }
  std::vector<rt::ObjRef> sectionArgs(uint64_t) const override {
    return {rt::ObjRef::array(0)};
  }
  rt::ObjectId elementOf(rt::ArrayId, uint64_t Index,
                         const rt::LoopCtx &Ctx) const override {
    // The interaction partner: identity is irrelevant for locking (only
    // `this` is locked), but must be a valid object id.
    return static_cast<rt::ObjectId>((Ctx.Iter + 1 + Index) % Counts.size());
  }
  uint64_t tripCount(unsigned Loop, const rt::LoopCtx &Ctx) const override {
    assert(Loop == LoopId && "unexpected loop id");
    (void)Loop;
    return Counts[Ctx.Iter];
  }
  rt::Nanos computeNanos(unsigned CC, const rt::LoopCtx &) const override {
    assert(CC == CostClass && "unexpected cost class");
    (void)CC;
    return InteractNanos;
  }
  // Pure function of the iteration over construction-time state (the
  // interaction counts are fixed at tree build), so emitted ops are
  // cacheable.
  int64_t iterationClass(uint64_t Iter) const override {
    return static_cast<int64_t>(Iter);
  }

private:
  const std::vector<uint32_t> &Counts;
  const unsigned LoopId;
  const unsigned CostClass;
  const rt::Nanos InteractNanos;
};

} // namespace

BarnesHutApp::BarnesHutApp(const BarnesHutConfig &Config,
                           const xform::VersionSpace &Space)
    : App("barnes_hut"), Config(Config) {
  // Real workload: bodies + octree + per-body interaction counts.
  Bodies = makePlummerBodies(Config.NumBodies, Config.Seed);
  Octree Tree(Bodies);
  InteractionCounts.reserve(Bodies.size());
  for (uint32_t I = 0; I < Bodies.size(); ++I) {
    const ForceResult F =
        Tree.computeForce(I, Config.Theta, Config.SofteningEps);
    InteractionCounts.push_back(F.Interactions);
    TotalInteractions += F.Interactions;
  }

  buildProgram();
  finalize(Space);

  ForcesBinding = std::make_unique<ForcesDataBinding>(
      InteractionCounts, InteractLoopId, InteractCostClass,
      Config.InteractNanos);
}

BarnesHutApp::~BarnesHutApp() = default;

void BarnesHutApp::buildProgram() {
  // class body { lock mutex; double pos, acc, phi; };   (paper Figure 1)
  ClassDecl *BodyClass = M.createClass("body");
  const unsigned PosField = BodyClass->addField("pos");
  const unsigned AccField = BodyClass->addField("acc");
  const unsigned PhiField = BodyClass->addField("phi");

  // void body::one_interaction(body *b)
  Method *OneInteraction = M.createMethod("one_interaction", BodyClass);
  OneInteraction->addParam(Param{"b", BodyClass, /*IsArray=*/false});
  {
    MethodBuilder B(M, OneInteraction);
    const Expr *ThisPos = M.exprFieldRead(Receiver::thisObj(), PosField);
    const Expr *OtherPos = M.exprFieldRead(Receiver::param(0), PosField);
    // double val = interact(this->pos, b->pos);
    InteractCostClass = B.compute({ThisPos, OtherPos});
    const Expr *Val = M.exprExternCall("interact", {ThisPos, OtherPos});
    const Expr *Pot = M.exprExternCall("potential", {ThisPos, OtherPos});
    // acc = acc + val;  phi = phi + potential(...);  -- the two commuting
    // updates of the operation.
    B.update(Receiver::thisObj(), AccField, BinOp::Add, Val);
    B.update(Receiver::thisObj(), PhiField, BinOp::Add, Pot);
  }

  // void body::interactions(body b[], int n)
  Method *Interactions = M.createMethod("interactions", BodyClass);
  Interactions->addParam(Param{"b", BodyClass, /*IsArray=*/true});
  {
    MethodBuilder B(M, Interactions);
    InteractLoopId = B.beginLoop();
    B.call(OneInteraction, Receiver::thisObj(),
           {Receiver::paramIndexed(0, InteractLoopId)});
    B.endLoop();
  }

  M.addSection(ForcesSection, Interactions);
}

rt::Schedule BarnesHutApp::schedule() const {
  rt::Schedule Sched;
  for (unsigned E = 0; E < Config.ForcesExecutions; ++E) {
    Sched.push_back(rt::Phase::serial(Config.TreeBuildNanos));
    Sched.push_back(rt::Phase::parallel(ForcesSection));
  }
  return Sched;
}

const rt::DataBinding &
BarnesHutApp::binding(const std::string &Section) const {
  assert(Section == ForcesSection && "unknown section");
  (void)Section;
  return *ForcesBinding;
}
