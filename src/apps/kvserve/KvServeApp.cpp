//===- apps/kvserve/KvServeApp.cpp ----------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/kvserve/KvServeApp.h"

#include "ir/Builder.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::apps::kvserve;
using namespace dynfb::ir;

void KvServeConfig::scale(double Factor) {
  RequestsPerWindow = std::max<uint32_t>(
      16, static_cast<uint32_t>(static_cast<double>(RequestsPerWindow) *
                                Factor));
  IngestPhaseNanos = static_cast<rt::Nanos>(
      static_cast<double>(IngestPhaseNanos) * Factor);
}

std::vector<uint32_t> kvserve::zipfKeys(uint32_t NumKeys, double Alpha,
                                        uint32_t Count, uint64_t Seed) {
  assert(NumKeys >= 1 && "empty key space");
  // Inverse-CDF sampling over the (finite) Zipf distribution: cumulative
  // popularity of key k is proportional to sum_{i<=k} 1/(i+1)^alpha.
  std::vector<double> Cdf(NumKeys);
  double Sum = 0;
  for (uint32_t K = 0; K < NumKeys; ++K) {
    Sum += 1.0 / std::pow(static_cast<double>(K + 1), Alpha);
    Cdf[K] = Sum;
  }
  for (double &C : Cdf)
    C /= Sum;

  Rng R(Seed);
  std::vector<uint32_t> Keys;
  Keys.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    const double U = R.nextDouble();
    const auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
    Keys.push_back(static_cast<uint32_t>(
        std::min<size_t>(It - Cdf.begin(), NumKeys - 1)));
  }
  return Keys;
}

namespace {

/// SERVE binding: iteration r serves request r; lock objects are the
/// shards. Pure and identical across occurrences -- all traffic variation
/// rides on the perturbation schedule.
class ServeBindingImpl final : public rt::DataBinding {
public:
  ServeBindingImpl(const std::vector<Request> &Requests,
                   const KvServeConfig &Config, unsigned OpLoopId,
                   unsigned LookupCC, unsigned OpCC)
      : Requests(Requests), Config(Config), OpLoopId(OpLoopId),
        LookupCC(LookupCC), OpCC(OpCC) {}

  uint64_t iterationCount() const override { return Requests.size(); }
  uint32_t objectCount() const override { return Config.NumShards; }
  rt::ObjectId thisObject(uint64_t Iter) const override {
    return Requests[Iter].Shard;
  }
  std::vector<rt::ObjRef> sectionArgs(uint64_t Iter) const override {
    return {rt::ObjRef::single(Requests[Iter].Shard)};
  }
  rt::ObjectId elementOf(rt::ArrayId, uint64_t Iter,
                         const rt::LoopCtx &) const override {
    return Requests[Iter].Shard; // No object arrays in this section.
  }
  uint64_t tripCount(unsigned Loop, const rt::LoopCtx &Ctx) const override {
    assert(Loop == OpLoopId && "unexpected loop id");
    (void)Loop;
    return Requests[Ctx.Iter].Ops;
  }
  rt::Nanos computeNanos(unsigned CC, const rt::LoopCtx &Ctx) const override {
    const Request &Req = Requests[Ctx.Iter];
    // A touch of deterministic per-request jitter breaks the lockstep a
    // perfectly uniform stream would impose on the simulator.
    const double Jitter =
        jitterFactor(Config.Seed ^ (0x9e3779b97f4a7c15ULL * (Ctx.Iter + 1)),
                     0.10);
    if (CC == LookupCC)
      return static_cast<rt::Nanos>(static_cast<double>(Config.LookupNanos) *
                                    Req.Ops * Jitter);
    assert(CC == OpCC && "unexpected cost class");
    return static_cast<rt::Nanos>(static_cast<double>(Config.OpNanos) *
                                  Jitter);
  }
  // Pure function of the iteration over the request table built at
  // construction, so emitted ops are cacheable.
  int64_t iterationClass(uint64_t Iter) const override {
    return static_cast<int64_t>(Iter);
  }

private:
  const std::vector<Request> &Requests;
  const KvServeConfig &Config;
  const unsigned OpLoopId;
  const unsigned LookupCC;
  const unsigned OpCC;
};

} // namespace

KvServeApp::KvServeApp(const KvServeConfig &Config,
                       const xform::VersionSpace &Space)
    : App("kvserve"), Config(Config) {
  // The per-window request stream: Zipfian keys, modulo-sharded, with a
  // geometric-ish operation count per request.
  const std::vector<uint32_t> Keys =
      zipfKeys(Config.NumKeys, Config.ZipfAlpha, Config.RequestsPerWindow,
               Config.Seed);
  Rng R(Config.Seed ^ 0xdecafbadULL);
  Requests.reserve(Keys.size());
  for (uint32_t Key : Keys) {
    Request Req;
    Req.Key = Key;
    Req.Shard = Key % std::max<uint32_t>(1, Config.NumShards);
    Req.Ops = 1;
    while (Req.Ops < 12 && R.nextDouble() < 0.6)
      ++Req.Ops;
    TotalOps += Req.Ops;
    Requests.push_back(Req);
  }

  buildProgram();
  finalize(Space);
  ServeBinding = std::make_unique<ServeBindingImpl>(
      Requests, this->Config, OpLoopId, LookupCostClass, OpCostClass);
}

KvServeApp::~KvServeApp() = default;

void KvServeApp::buildProgram() {
  // class shard { lock mutex; double table, hits, bytes; } -- one store
  // shard: table is read-only during serving; hits/bytes accumulate the
  // per-operation accounting.
  ClassDecl *Shard = M.createClass("shard");
  const unsigned Table = Shard->addField("table");
  const unsigned Hits = Shard->addField("hits");
  const unsigned Bytes = Shard->addField("bytes");

  // class request { lock mutex; double key, size; };
  ClassDecl *Req = M.createClass("request");
  const unsigned Key = Req->addField("key");
  const unsigned Size = Req->addField("size");

  // void request::serve(shard *shd)
  Method *Serve = M.createMethod("serve", Req);
  Serve->addParam(Param{"shd", Shard, /*IsArray=*/false});
  {
    MethodBuilder B(M, Serve);
    const Expr *TableRead = M.exprFieldRead(Receiver::param(0), Table);
    const Expr *KeyRead = M.exprFieldRead(Receiver::thisObj(), Key);
    const Expr *SizeRead = M.exprFieldRead(Receiver::thisObj(), Size);
    // Hash-probe the shard table for the key (pure, the bulk of the work).
    LookupCostClass = B.compute({TableRead, KeyRead});
    OpCostClass = M.nextCostClass();
    OpLoopId = B.beginLoop();
    // Per-operation response assembly, then the two shard-counter updates.
    B.computeWithClass(OpCostClass, {TableRead});
    const Expr *Hit = M.exprExternCall("hit", {TableRead, KeyRead});
    const Expr *Payload = M.exprExternCall("payload", {TableRead, SizeRead});
    B.update(Receiver::param(0), Hits, BinOp::Add, Hit);
    B.update(Receiver::param(0), Bytes, BinOp::Add, Payload);
    B.endLoop();
  }

  M.addSection(ServeSection, Serve);
}

rt::Schedule KvServeApp::schedule() const {
  rt::Schedule Sched;
  for (unsigned W = 0; W < Config.Windows; ++W) {
    Sched.push_back(rt::Phase::serial(Config.IngestPhaseNanos));
    Sched.push_back(rt::Phase::parallel(ServeSection));
  }
  return Sched;
}

const rt::DataBinding &KvServeApp::binding(const std::string &Section) const {
  assert(Section == ServeSection && "unknown section");
  (void)Section;
  return *ServeBinding;
}
