//===- apps/kvserve/KvServeApp.h - Sharded KV serving app --------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A request-driven serving workload: a sharded in-memory key/value store
/// answering a stream of Zipfian-skewed requests. Each parallel iteration
/// serves one request -- a pure lookup computation proportional to the
/// request's operation count, then a per-operation accounting loop that
/// updates the owning shard's hit and byte counters under the shard lock.
/// Original pays one lock pair per counter update, Bounded coalesces the
/// two updates, and Aggressive lifts the shard lock out of the operation
/// loop (one pair per request).
///
/// The request stream is identical for every occurrence of the SERVE
/// section: the binding is pure, so runs are bit-reproducible. All time
/// variation of serving traffic -- diurnal intensity, rotating hot tenants,
/// perturbation storms -- is expressed through a compiled perturbation
/// schedule (see perturb/Traffic.h) layered on virtual time, which shifts
/// which synchronization policy wins from window to window.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_KVSERVE_KVSERVEAPP_H
#define DYNFB_APPS_KVSERVE_KVSERVEAPP_H

#include "apps/App.h"

#include <memory>
#include <vector>

namespace dynfb::apps::kvserve {

/// Configuration of the kvserve workload.
struct KvServeConfig {
  uint32_t NumShards = 64;  ///< Shard (lock-object) count.
  uint32_t NumKeys = 4096;  ///< Key space; keys map to shards by modulo.
  uint32_t RequestsPerWindow = 512; ///< Requests served per SERVE occurrence.
  unsigned Windows = 8;     ///< Serving windows (SERVE occurrences).
  double ZipfAlpha = 1.6;   ///< Key-popularity skew exponent.
  uint64_t Seed = 17;
  rt::Nanos LookupNanos = 10000; ///< Pure lookup cost per operation.
  rt::Nanos OpNanos = 30000;     ///< Response assembly cost per operation.
  rt::Nanos IngestPhaseNanos = rt::millisToNanos(50.0); ///< Serial ingest
                                                        ///< between windows.

  void scale(double Factor);
};

/// One request of the precomputed stream.
struct Request {
  uint32_t Key = 0;
  uint32_t Shard = 0;
  uint32_t Ops = 1; ///< Operations (trip count of the accounting loop).
};

/// Draws \p Count Zipfian(\p Alpha) keys over [0, NumKeys) from \p Seed
/// (inverse-CDF sampling; exposed for tests).
std::vector<uint32_t> zipfKeys(uint32_t NumKeys, double Alpha, uint32_t Count,
                               uint64_t Seed);

/// The kvserve application.
class KvServeApp : public App {
public:
  explicit KvServeApp(const KvServeConfig &Config,
                      const xform::VersionSpace &Space = {});
  ~KvServeApp() override;

  rt::Schedule schedule() const override;
  const rt::DataBinding &binding(const std::string &Section) const override;

  static constexpr const char *ServeSection = "SERVE";

  const KvServeConfig &config() const { return Config; }
  const std::vector<Request> &requests() const { return Requests; }
  uint64_t totalOps() const { return TotalOps; }

private:
  void buildProgram();

  KvServeConfig Config;
  std::vector<Request> Requests;
  uint64_t TotalOps = 0;

  unsigned OpLoopId = 0;
  unsigned LookupCostClass = 0;
  unsigned OpCostClass = 0;
  std::unique_ptr<rt::DataBinding> ServeBinding;
};

} // namespace dynfb::apps::kvserve

#endif // DYNFB_APPS_KVSERVE_KVSERVEAPP_H
