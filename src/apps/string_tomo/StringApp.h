//===- apps/string_tomo/StringApp.h - The String benchmark -------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The String benchmark (paper Section 6): seismic tomography that builds a
/// velocity model of the geology between two oil wells. Each parallel
/// iteration traces one ray through the current velocity grid (a pure,
/// expensive computation; the real cell path comes from a DDA grid
/// traversal) and then back-projects its residual along the path,
/// accumulating into the shared model object's cells under the model's
/// lock. Original pays one lock pair per accumulated quantity, Bounded
/// coalesces the per-segment updates, and Aggressive lifts the model lock
/// out of the segment loop (one pair per ray, short false exclusion).
///
/// The paper's String experimental subsection is truncated in our source
/// text; the experiments mirror the Barnes-Hut structure (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_STRING_TOMO_STRINGAPP_H
#define DYNFB_APPS_STRING_TOMO_STRINGAPP_H

#include "apps/App.h"

#include <memory>
#include <vector>

namespace dynfb::apps::string_tomo {

/// Configuration of the String benchmark.
struct StringConfig {
  uint32_t GridW = 128;  ///< Velocity grid width (between the two wells).
  uint32_t GridH = 128;  ///< Velocity grid depth.
  uint32_t NumRays = 1024;
  unsigned Sweeps = 3;   ///< Velocity-model refinement sweeps.
  uint64_t Seed = 13;
  rt::Nanos TraceCellNanos = 180000; ///< Ray tracing cost per crossed cell.
  rt::Nanos BackprojectCellNanos = 2000; ///< Residual contribution per cell.
  rt::Nanos SerialPhaseNanos = rt::secondsToNanos(1.5); ///< Model update.

  void scale(double Factor);
};

/// One ray's geometry: entry/exit depths and the number of grid cells the
/// DDA traversal crosses.
struct Ray {
  double SourceDepth = 0;
  double ReceiverDepth = 0;
  uint32_t Segments = 0;
};

/// Computes the number of cells a ray from (0, Z0) to (W-1, Z1) crosses in
/// a W x H grid (2-D DDA / Amanatides-Woo traversal). Exposed for tests.
uint32_t ddaCellCount(uint32_t W, uint32_t H, double Z0, double Z1);

/// The String application.
class StringApp : public App {
public:
  explicit StringApp(const StringConfig &Config,
                     const xform::VersionSpace &Space = {});
  ~StringApp() override;

  rt::Schedule schedule() const override;
  const rt::DataBinding &binding(const std::string &Section) const override;

  static constexpr const char *TraceSection = "TRACE";

  const StringConfig &config() const { return Config; }
  const std::vector<Ray> &rays() const { return Rays; }
  uint64_t totalSegments() const { return TotalSegments; }

private:
  void buildProgram();

  StringConfig Config;
  std::vector<Ray> Rays;
  uint64_t TotalSegments = 0;

  unsigned SegmentLoopId = 0;
  unsigned TraceCostClass = 0;
  unsigned BackprojectCostClass = 0;
  std::unique_ptr<rt::DataBinding> TraceBinding;
};

} // namespace dynfb::apps::string_tomo

#endif // DYNFB_APPS_STRING_TOMO_STRINGAPP_H
