//===- apps/string_tomo/StringApp.cpp -------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/string_tomo/StringApp.h"

#include "ir/Builder.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::apps::string_tomo;
using namespace dynfb::ir;

void StringConfig::scale(double Factor) {
  NumRays = std::max<uint32_t>(
      8, static_cast<uint32_t>(static_cast<double>(NumRays) * Factor));
  SerialPhaseNanos = static_cast<rt::Nanos>(
      static_cast<double>(SerialPhaseNanos) * Factor);
}

uint32_t string_tomo::ddaCellCount(uint32_t W, uint32_t H, double Z0,
                                   double Z1) {
  assert(W >= 1 && H >= 1 && "degenerate grid");
  // Straight ray from (0.0, Z0) to (W, Z1) in cell units; Z clamped to the
  // grid. The number of crossed cells of a 2-D DDA equals
  // 1 + (#vertical crossings) + (#horizontal crossings).
  const double Za = std::clamp(Z0, 0.0, static_cast<double>(H) - 1e-9);
  const double Zb = std::clamp(Z1, 0.0, static_cast<double>(H) - 1e-9);
  const uint32_t XCrossings = W - 1;
  const uint32_t ZCrossings = static_cast<uint32_t>(
      std::llabs(static_cast<long long>(std::floor(Zb)) -
                 static_cast<long long>(std::floor(Za))));
  return 1 + XCrossings + ZCrossings;
}

namespace {

/// TRACE binding: iteration r traces ray r; the model object is id 0.
class TraceBindingImpl final : public rt::DataBinding {
public:
  TraceBindingImpl(const std::vector<Ray> &Rays, const StringConfig &Config,
                   unsigned SegmentLoopId, unsigned TraceCC,
                   unsigned BackprojectCC)
      : Rays(Rays), Config(Config), SegmentLoopId(SegmentLoopId),
        TraceCC(TraceCC), BackprojectCC(BackprojectCC) {}

  uint64_t iterationCount() const override { return Rays.size(); }
  uint32_t objectCount() const override { return 1; }
  rt::ObjectId thisObject(uint64_t) const override {
    // Iterations run on per-ray worker objects; only the shared model
    // object (id 0) is ever locked, so the ray identity is immaterial for
    // the machine. (The `this` object of the entry method is the ray.)
    return 0;
  }
  std::vector<rt::ObjRef> sectionArgs(uint64_t) const override {
    return {rt::ObjRef::single(0)};
  }
  rt::ObjectId elementOf(rt::ArrayId, uint64_t,
                         const rt::LoopCtx &) const override {
    return 0; // No object arrays in this section.
  }
  uint64_t tripCount(unsigned Loop, const rt::LoopCtx &Ctx) const override {
    assert(Loop == SegmentLoopId && "unexpected loop id");
    (void)Loop;
    return Rays[Ctx.Iter].Segments;
  }
  rt::Nanos computeNanos(unsigned CC, const rt::LoopCtx &Ctx) const override {
    if (CC == TraceCC)
      return static_cast<rt::Nanos>(Rays[Ctx.Iter].Segments) *
             Config.TraceCellNanos;
    assert(CC == BackprojectCC && "unexpected cost class");
    return Config.BackprojectCellNanos;
  }
  // Pure function of the iteration over the ray table built at
  // construction, so emitted ops are cacheable.
  int64_t iterationClass(uint64_t Iter) const override {
    return static_cast<int64_t>(Iter);
  }

private:
  const std::vector<Ray> &Rays;
  const StringConfig &Config;
  const unsigned SegmentLoopId;
  const unsigned TraceCC;
  const unsigned BackprojectCC;
};

} // namespace

StringApp::StringApp(const StringConfig &Config,
                     const xform::VersionSpace &Space)
    : App("string"), Config(Config) {
  // Real ray geometry: sources in the left well, receivers in the right
  // well, cells counted by the DDA traversal.
  Rng R(Config.Seed);
  Rays.reserve(Config.NumRays);
  for (uint32_t I = 0; I < Config.NumRays; ++I) {
    Ray Next;
    Next.SourceDepth = R.uniform(0.0, static_cast<double>(Config.GridH));
    Next.ReceiverDepth = R.uniform(0.0, static_cast<double>(Config.GridH));
    Next.Segments = ddaCellCount(Config.GridW, Config.GridH,
                                 Next.SourceDepth, Next.ReceiverDepth);
    TotalSegments += Next.Segments;
    Rays.push_back(Next);
  }

  buildProgram();
  finalize(Space);
  TraceBinding = std::make_unique<TraceBindingImpl>(
      Rays, this->Config, SegmentLoopId, TraceCostClass,
      BackprojectCostClass);
}

StringApp::~StringApp() = default;

void StringApp::buildProgram() {
  // class model { lock mutex; double vel, num, den; };  -- the shared
  // velocity model: vel is read-only within a sweep; num/den accumulate
  // the back-projected residuals.
  ClassDecl *Model = M.createClass("model");
  const unsigned Vel = Model->addField("vel");
  const unsigned Num = Model->addField("num");
  const unsigned Den = Model->addField("den");

  // class ray { lock mutex; double src, rcv; };
  ClassDecl *RayClass = M.createClass("ray");
  const unsigned Src = RayClass->addField("src");
  const unsigned Rcv = RayClass->addField("rcv");

  // void ray::trace(model *mdl)
  Method *Trace = M.createMethod("trace", RayClass);
  Trace->addParam(Param{"mdl", Model, /*IsArray=*/false});
  {
    MethodBuilder B(M, Trace);
    const Expr *VelRead = M.exprFieldRead(Receiver::param(0), Vel);
    const Expr *SrcRead = M.exprFieldRead(Receiver::thisObj(), Src);
    const Expr *RcvRead = M.exprFieldRead(Receiver::thisObj(), Rcv);
    // Trace the ray through the current velocity model (pure, expensive).
    TraceCostClass = B.compute({VelRead, SrcRead, RcvRead});
    BackprojectCostClass = M.nextCostClass();
    SegmentLoopId = B.beginLoop();
    // Per-cell residual contribution, then the two accumulations.
    B.computeWithClass(BackprojectCostClass, {VelRead});
    const Expr *Contribution =
        M.exprExternCall("contribution", {VelRead, SrcRead, RcvRead});
    const Expr *Weight = M.exprExternCall("weight", {SrcRead, RcvRead});
    B.update(Receiver::param(0), Num, BinOp::Add, Contribution);
    B.update(Receiver::param(0), Den, BinOp::Add, Weight);
    B.endLoop();
  }

  M.addSection(TraceSection, Trace);
}

rt::Schedule StringApp::schedule() const {
  rt::Schedule Sched;
  for (unsigned S = 0; S < Config.Sweeps; ++S) {
    Sched.push_back(rt::Phase::serial(Config.SerialPhaseNanos));
    Sched.push_back(rt::Phase::parallel(TraceSection));
  }
  return Sched;
}

const rt::DataBinding &StringApp::binding(const std::string &Section) const {
  assert(Section == TraceSection && "unknown section");
  (void)Section;
  return *TraceBinding;
}
