//===- apps/Harness.h - Shared experiment harness ----------------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the bench binaries: run one executable of an
/// application on the simulated machine and return the result, and the
/// processor counts the paper's tables use. The executable is described by
/// a VersionSpec (flavour plus, for Fixed, the pinned version-space point);
/// the Flavour+PolicyKind overloads forward into that single path.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_HARNESS_H
#define DYNFB_APPS_HARNESS_H

#include "apps/App.h"
#include "fb/Driver.h"
#include "obs/Export.h"
#include "sim/Trace.h"

#include <map>
#include <vector>

namespace dynfb::perturb {
class PerturbationEngine;
} // namespace dynfb::perturb

namespace dynfb::apps {

/// Processor counts of the paper's execution-time tables.
inline const std::vector<unsigned> PaperProcCounts = {1, 2, 4, 8, 12, 16};

/// Observability hooks for one runApp call, all default-off. Attaching one
/// never alters the run: the decision log and traces are strictly
/// observation.
struct RunObservation {
  /// Filled by the feedback controller: one event per sampled interval,
  /// production decision and drift resample (empty for Fixed flavours,
  /// which make no decisions).
  obs::DecisionLog Log;
  /// When set before the run, the simulator accumulates one cumulative
  /// IntervalTrace per section into SectionTraces (lock contention and
  /// per-processor time decomposition over the whole run).
  bool CollectSectionTraces = false;
  std::map<std::string, sim::IntervalTrace> SectionTraces;
};

/// Which execution substrate runApp builds, plus its native-only knobs.
/// Defaults reproduce the seed behaviour: the simulator.
struct BackendOptions {
  rt::BackendKind Kind = rt::BackendKind::Sim;
  /// Virtual-to-real compute scale for native runs (ignored on the sim).
  double TimeScale = 0.0005;

  static BackendOptions sim() { return BackendOptions{}; }
  static BackendOptions native(double TimeScale = 0.0005) {
    BackendOptions BO;
    BO.Kind = rt::BackendKind::Native;
    BO.TimeScale = TimeScale;
    return BO;
  }
};

/// Runs the executable described by \p Spec of \p App on a fresh backend:
/// by default a simulated machine built from \p Model, or -- with
/// \p Backend native -- a real thread team (which ignores \p Model: the
/// hardware sets the prices). \p Perturb, when non-null, injects the
/// engine's fault schedule into the simulated machine for the duration of
/// the run (null: pristine machine; native backends ignore it -- reject
/// perturbed native runs before getting here). \p Obs, when non-null,
/// collects the run's decision log and (optionally) per-section interval
/// traces; both work identically on either backend.
fb::RunResult runApp(const App &App, unsigned Procs, const VersionSpec &Spec,
                     const rt::MachineModel &Model,
                     const fb::FeedbackConfig &Config = {},
                     fb::PolicyHistory *History = nullptr,
                     const perturb::PerturbationEngine *Perturb = nullptr,
                     RunObservation *Obs = nullptr,
                     const BackendOptions &Backend = {});

/// Flat-machine path: wraps \p Costs in the constant-cost model (the seed
/// behaviour, bit for bit).
fb::RunResult runApp(const App &App, unsigned Procs, const VersionSpec &Spec,
                     const fb::FeedbackConfig &Config = {},
                     fb::PolicyHistory *History = nullptr,
                     const rt::CostModel &Costs = rt::CostModel::dashLike(),
                     const perturb::PerturbationEngine *Perturb = nullptr,
                     RunObservation *Obs = nullptr);

/// Assembles the exportable obs::RunTrace of one finished run: \p Result's
/// per-occurrence section records, plus -- when \p Obs is non-null -- the
/// decision log and the per-section lock contention records (sections in
/// name order, locks by object id: deterministic output).
obs::RunTrace buildRunTrace(const std::string &AppName, unsigned Procs,
                            const std::string &Policy,
                            const fb::RunResult &Result,
                            const RunObservation *Obs = nullptr,
                            rt::BackendKind Backend = rt::BackendKind::Sim);

/// Convenience: end-to-end execution time in seconds.
double runAppSeconds(const App &App, unsigned Procs, const VersionSpec &Spec,
                     const fb::FeedbackConfig &Config = {});

/// Convenience: end-to-end execution time in seconds on \p Model.
double runAppSeconds(const App &App, unsigned Procs, const VersionSpec &Spec,
                     const rt::MachineModel &Model,
                     const fb::FeedbackConfig &Config = {});

/// Compatibility shims over the VersionSpec path.
inline fb::RunResult
runApp(const App &App, unsigned Procs, Flavour F,
       xform::PolicyKind Policy = xform::PolicyKind::Original,
       const fb::FeedbackConfig &Config = {},
       fb::PolicyHistory *History = nullptr,
       const rt::CostModel &Costs = rt::CostModel::dashLike(),
       const perturb::PerturbationEngine *Perturb = nullptr,
       RunObservation *Obs = nullptr) {
  return runApp(App, Procs,
                F == Flavour::Fixed ? VersionSpec::fixed(Policy)
                                    : VersionSpec{F, {}},
                Config, History, Costs, Perturb, Obs);
}

inline double runAppSeconds(const App &App, unsigned Procs, Flavour F,
                            xform::PolicyKind Policy =
                                xform::PolicyKind::Original,
                            const fb::FeedbackConfig &Config = {}) {
  return runAppSeconds(App, Procs,
                       F == Flavour::Fixed ? VersionSpec::fixed(Policy)
                                           : VersionSpec{F, {}},
                       Config);
}

} // namespace dynfb::apps

#endif // DYNFB_APPS_HARNESS_H
