//===- apps/Factory.cpp ---------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/Factory.h"

#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/kvserve/KvServeApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"

using namespace dynfb;
using namespace dynfb::apps;

std::vector<std::string> apps::appNames() {
  return {"barnes_hut", "water", "string", "kvserve"};
}

std::unique_ptr<App> apps::createApp(const std::string &Name, double Scale,
                                     const xform::VersionSpace &Space) {
  if (Name == "barnes_hut") {
    bh::BarnesHutConfig Config;
    Config.scale(Scale);
    return std::make_unique<bh::BarnesHutApp>(Config, Space);
  }
  if (Name == "water") {
    water::WaterConfig Config;
    Config.scale(Scale);
    return std::make_unique<water::WaterApp>(Config, Space);
  }
  if (Name == "string") {
    string_tomo::StringConfig Config;
    Config.scale(Scale);
    return std::make_unique<string_tomo::StringApp>(Config, Space);
  }
  if (Name == "kvserve") {
    kvserve::KvServeConfig Config;
    Config.scale(Scale);
    return std::make_unique<kvserve::KvServeApp>(Config, Space);
  }
  return nullptr;
}
