//===- apps/water/WaterApp.h - The Water benchmark ---------------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Water benchmark (paper Section 6.2): liquid-state molecular dynamics
/// over 512 molecules, with two computationally intensive parallel sections
/// per timestep. INTERF computes pairwise intermolecular forces: each
/// molecule pair updates the force accumulators of both molecules, so after
/// coalescing nothing can be lifted -- the Bounded and Aggressive policies
/// generate the same code. POTENG accumulates the potential energy into one
/// global accumulator object: straight-line coalescing finds nothing
/// (Original and Bounded coincide) while the Aggressive policy lifts the
/// global lock out of the partner loop, holding it for entire iterations --
/// the false exclusion that serializes the computation and destroys the
/// Aggressive version's scalability, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_WATER_WATERAPP_H
#define DYNFB_APPS_WATER_WATERAPP_H

#include "apps/App.h"
#include "apps/water/Molecules.h"

#include <memory>

namespace dynfb::apps::water {

/// Configuration of the Water benchmark.
struct WaterConfig {
  uint32_t NumMolecules = 512; ///< Paper input: 512 molecules.
  unsigned Timesteps = 2;
  uint64_t Seed = 7;
  /// Target mean half-neighbor-list length; the spherical cutoff radius is
  /// calibrated against the real geometry to hit it (capped at all pairs).
  double TargetMeanNeighbors = 128.0;
  /// INTERF: one molecule-pair force kernel (all nine atom pairs).
  rt::Nanos PairKernelNanos = 766000;
  /// POTENG: one of the nine energy terms of a molecule pair.
  rt::Nanos TermKernelNanos = 47600;
  /// Serial work per timestep (predictor/corrector, bookkeeping).
  rt::Nanos SerialPhaseNanos = rt::secondsToNanos(4.9);

  /// Scales the molecule count.
  void scale(double Factor);
};

/// The Water application.
class WaterApp : public App {
public:
  explicit WaterApp(const WaterConfig &Config,
                    const xform::VersionSpace &Space = {});
  ~WaterApp() override;

  rt::Schedule schedule() const override;
  const rt::DataBinding &binding(const std::string &Section) const override;

  static constexpr const char *InterfSection = "INTERF";
  static constexpr const char *PotengSection = "POTENG";

  const WaterConfig &config() const { return Config; }

  /// The real molecular geometry driving both sections' workloads.
  const MolecularSystem &system() const { return Sys; }

private:
  void buildProgram();

  WaterConfig Config;
  MolecularSystem Sys;

  unsigned InterfLoopId = 0;
  unsigned InterfPairCostClass = 0;
  unsigned PotengPartnerLoopId = 0;
  unsigned PotengTermLoopId = 0;
  unsigned PotengTermCostClass = 0;

  std::unique_ptr<rt::DataBinding> InterfBinding;
  std::unique_ptr<rt::DataBinding> PotengBinding;
};

} // namespace dynfb::apps::water

#endif // DYNFB_APPS_WATER_WATERAPP_H
