//===- apps/water/Molecules.cpp -------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/water/Molecules.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dynfb;
using namespace dynfb::apps::water;

namespace {

double dist2(const MolPos &A, const MolPos &B) {
  const double DX = A.X - B.X, DY = A.Y - B.Y, DZ = A.Z - B.Z;
  return DX * DX + DY * DY + DZ * DZ;
}

/// Mean half-list length at cutoff radius \p Rc.
double meanNeighbors(const std::vector<MolPos> &P, double Rc) {
  const double Rc2 = Rc * Rc;
  uint64_t Pairs = 0;
  for (size_t I = 0; I < P.size(); ++I)
    for (size_t J = I + 1; J < P.size(); ++J)
      if (dist2(P[I], P[J]) <= Rc2)
        ++Pairs;
  return static_cast<double>(Pairs) / static_cast<double>(P.size());
}

} // namespace

MolecularSystem apps::water::buildMolecularSystem(uint32_t N, uint64_t Seed,
                                                  double TargetMean) {
  assert(N >= 2 && "need at least two molecules");
  MolecularSystem Sys;

  // Jittered cubic lattice in the unit box.
  const uint32_t Side = static_cast<uint32_t>(
      std::ceil(std::cbrt(static_cast<double>(N))));
  const double Cell = 1.0 / static_cast<double>(Side);
  Rng R(Seed);
  Sys.Positions.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    const uint32_t X = I % Side;
    const uint32_t Y = (I / Side) % Side;
    const uint32_t Z = I / (Side * Side);
    Sys.Positions.push_back(MolPos{
        (X + 0.5 + R.uniform(-0.3, 0.3)) * Cell,
        (Y + 0.5 + R.uniform(-0.3, 0.3)) * Cell,
        (Z + 0.5 + R.uniform(-0.3, 0.3)) * Cell});
  }

  // Calibrate the cutoff by bisection on the mean half-list length. The
  // all-pairs limit is (N-1)/2.
  const double MaxMean = static_cast<double>(N - 1) / 2.0;
  const double Target = std::min(TargetMean, MaxMean);
  double Lo = 0.0, Hi = 2.0; // Whole box: sqrt(3) < 2.
  for (int Iter = 0; Iter < 40; ++Iter) {
    const double Mid = 0.5 * (Lo + Hi);
    if (meanNeighbors(Sys.Positions, Mid) < Target)
      Lo = Mid;
    else
      Hi = Mid;
    if (Hi - Lo < 1e-6)
      break;
  }
  Sys.CutoffRadius = 0.5 * (Lo + Hi);

  // Balanced half-lists: assign pair (i, j) to i when (i + j) is even,
  // else to j, so every molecule receives about half of its incident
  // pairs regardless of its index.
  Sys.Neighbors.assign(N, {});
  const double Rc2 = Sys.CutoffRadius * Sys.CutoffRadius;
  for (uint32_t I = 0; I < N; ++I)
    for (uint32_t J = I + 1; J < N; ++J) {
      if (dist2(Sys.Positions[I], Sys.Positions[J]) > Rc2)
        continue;
      if ((I + J) % 2 == 0)
        Sys.Neighbors[I].push_back(J);
      else
        Sys.Neighbors[J].push_back(I);
    }
  return Sys;
}
