//===- apps/water/Molecules.h - Real molecular geometry ---------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Real geometry for the Water benchmark: molecules placed on a jittered
/// cubic lattice in a box, with pairwise interactions restricted to a
/// spherical cutoff radius, as in the original application. The cutoff is
/// calibrated so the average neighbor count hits a target, and unordered
/// pairs are split into balanced half-lists (pair (i,j) is assigned to one
/// of its endpoints such that every molecule gets a similar amount of
/// work), which is what the parallel loop iterates over.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_WATER_MOLECULES_H
#define DYNFB_APPS_WATER_MOLECULES_H

#include <cstdint>
#include <vector>

namespace dynfb::apps::water {

/// Position of one molecule's center of mass.
struct MolPos {
  double X = 0, Y = 0, Z = 0;
};

/// The generated geometry and its neighbor structure.
struct MolecularSystem {
  std::vector<MolPos> Positions;
  /// Balanced half-lists: Neighbors[i] holds the partners of the pairs
  /// assigned to molecule i; every unordered pair within the cutoff
  /// appears in exactly one list.
  std::vector<std::vector<uint32_t>> Neighbors;
  double CutoffRadius = 0;

  uint64_t totalPairs() const {
    uint64_t Total = 0;
    for (const auto &L : Neighbors)
      Total += L.size();
    return Total;
  }
};

/// Builds \p N molecules on a jittered cubic lattice (unit box),
/// deterministic in \p Seed, and calibrates the cutoff radius so the mean
/// half-list length is within ~2% of \p TargetMeanNeighbors (capped by the
/// all-pairs limit (N-1)/2).
MolecularSystem buildMolecularSystem(uint32_t N, uint64_t Seed,
                                     double TargetMeanNeighbors);

} // namespace dynfb::apps::water

#endif // DYNFB_APPS_WATER_MOLECULES_H
