//===- apps/water/WaterApp.cpp --------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/water/WaterApp.h"

#include "ir/Builder.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::apps::water;
using namespace dynfb::ir;

void WaterConfig::scale(double Factor) {
  NumMolecules = std::max<uint32_t>(
      8, static_cast<uint32_t>(static_cast<double>(NumMolecules) * Factor));
  // The parallel sections are quadratic in the molecule count; scale the
  // serial phase quadratically too so the benchmark keeps the full-size
  // serial/parallel proportions.
  SerialPhaseNanos = static_cast<rt::Nanos>(
      static_cast<double>(SerialPhaseNanos) * Factor * Factor);
}

namespace {

/// INTERF binding: iteration i processes the pairs of its half-neighbor
/// list (real cutoff geometry); each pair updates both molecules.
class InterfBindingImpl final : public rt::DataBinding {
public:
  InterfBindingImpl(const WaterConfig &Config, const MolecularSystem &Sys,
                    unsigned LoopId, unsigned PairCostClass)
      : Config(Config), Sys(Sys), LoopId(LoopId),
        PairCostClass(PairCostClass) {}

  uint64_t iterationCount() const override { return Config.NumMolecules; }
  uint32_t objectCount() const override { return Config.NumMolecules; }
  rt::ObjectId thisObject(uint64_t Iter) const override {
    return static_cast<rt::ObjectId>(Iter);
  }
  std::vector<rt::ObjRef> sectionArgs(uint64_t) const override {
    return {rt::ObjRef::array(0)};
  }
  rt::ObjectId elementOf(rt::ArrayId, uint64_t Index,
                         const rt::LoopCtx &Ctx) const override {
    return Sys.Neighbors[Ctx.Iter][Index];
  }
  uint64_t tripCount(unsigned Loop, const rt::LoopCtx &Ctx) const override {
    assert(Loop == LoopId && "unexpected loop id");
    (void)Loop;
    return Sys.Neighbors[Ctx.Iter].size();
  }
  rt::Nanos computeNanos(unsigned CC, const rt::LoopCtx &Ctx) const override {
    assert(CC == PairCostClass && "unexpected cost class");
    (void)CC;
    // Per-pair timing jitter: real pair kernels vary with the molecular
    // geometry; without it the simulator's identical iterations would
    // self-synchronize into an unrealistically contention-free pipeline.
    const uint64_t Key = Ctx.Iter * 1000003ULL +
                         (Ctx.Loops.empty() ? 0 : Ctx.Loops.back().second);
    return static_cast<rt::Nanos>(
        static_cast<double>(Config.PairKernelNanos) *
        jitterFactor(Key, 0.15));
  }
  // Pure function of the iteration over construction-time state (neighbor
  // lists and jitter keys never change), so emitted ops are cacheable.
  int64_t iterationClass(uint64_t Iter) const override {
    return static_cast<int64_t>(Iter);
  }

private:
  const WaterConfig &Config;
  const MolecularSystem &Sys;
  const unsigned LoopId;
  const unsigned PairCostClass;
};

/// POTENG binding: iteration i accumulates nine energy terms per neighbor
/// into the global accumulator (object id NumMolecules).
class PotengBindingImpl final : public rt::DataBinding {
public:
  PotengBindingImpl(const WaterConfig &Config, const MolecularSystem &Sys,
                    unsigned PartnerLoopId, unsigned TermLoopId,
                    unsigned TermCostClass)
      : Config(Config), Sys(Sys), PartnerLoopId(PartnerLoopId),
        TermLoopId(TermLoopId), TermCostClass(TermCostClass) {}

  uint64_t iterationCount() const override { return Config.NumMolecules; }
  uint32_t objectCount() const override { return Config.NumMolecules + 1; }
  rt::ObjectId thisObject(uint64_t Iter) const override {
    return static_cast<rt::ObjectId>(Iter);
  }
  std::vector<rt::ObjRef> sectionArgs(uint64_t) const override {
    return {rt::ObjRef::array(0), rt::ObjRef::single(Config.NumMolecules)};
  }
  rt::ObjectId elementOf(rt::ArrayId, uint64_t Index,
                         const rt::LoopCtx &Ctx) const override {
    return Sys.Neighbors[Ctx.Iter][Index];
  }
  uint64_t tripCount(unsigned Loop, const rt::LoopCtx &Ctx) const override {
    if (Loop == PartnerLoopId)
      return Sys.Neighbors[Ctx.Iter].size();
    assert(Loop == TermLoopId && "unexpected loop id");
    return 9; // The nine atom pairs of two 3-atom molecules.
  }
  rt::Nanos computeNanos(unsigned CC, const rt::LoopCtx &Ctx) const override {
    assert(CC == TermCostClass && "unexpected cost class");
    (void)CC;
    uint64_t Key = Ctx.Iter * 1000003ULL + 17;
    for (const auto &[LoopId, Index] : Ctx.Loops)
      Key = Key * 31ULL + LoopId * 7ULL + Index;
    return static_cast<rt::Nanos>(
        static_cast<double>(Config.TermKernelNanos) *
        jitterFactor(Key, 0.15));
  }
  // Pure over construction-time state, like InterfBindingImpl above.
  int64_t iterationClass(uint64_t Iter) const override {
    return static_cast<int64_t>(Iter);
  }

private:
  const WaterConfig &Config;
  const MolecularSystem &Sys;
  const unsigned PartnerLoopId;
  const unsigned TermLoopId;
  const unsigned TermCostClass;
};

} // namespace

WaterApp::WaterApp(const WaterConfig &Config, const xform::VersionSpace &Space)
    : App("water"), Config(Config),
      Sys(buildMolecularSystem(Config.NumMolecules, Config.Seed,
                               Config.TargetMeanNeighbors)) {
  buildProgram();
  finalize(Space);
  InterfBinding = std::make_unique<InterfBindingImpl>(
      this->Config, Sys, InterfLoopId, InterfPairCostClass);
  PotengBinding = std::make_unique<PotengBindingImpl>(
      this->Config, Sys, PotengPartnerLoopId, PotengTermLoopId,
      PotengTermCostClass);
}

WaterApp::~WaterApp() = default;

void WaterApp::buildProgram() {
  // class molecule { lock mutex; double pos, fx, fy, fz; };
  ClassDecl *Molecule = M.createClass("molecule");
  const unsigned Pos = Molecule->addField("pos");
  const unsigned Fx = Molecule->addField("fx");
  const unsigned Fy = Molecule->addField("fy");
  const unsigned Fz = Molecule->addField("fz");

  // class accum { lock mutex; double poteng; };
  ClassDecl *Accum = M.createClass("accum");
  const unsigned Poteng = Accum->addField("poteng");

  // void molecule::interf(molecule m[])
  Method *Interf = M.createMethod("interf", Molecule);
  Interf->addParam(Param{"m", Molecule, /*IsArray=*/true});
  {
    MethodBuilder B(M, Interf);
    InterfLoopId = B.beginLoop();
    const Receiver Partner = Receiver::paramIndexed(0, InterfLoopId);
    const Expr *ThisPos = M.exprFieldRead(Receiver::thisObj(), Pos);
    const Expr *PartnerPos = M.exprFieldRead(Partner, Pos);
    // Forces of all nine atom pairs of the molecule pair.
    InterfPairCostClass = B.compute({ThisPos, PartnerPos});
    const Expr *Fwd = M.exprExternCall("pair_force", {ThisPos, PartnerPos});
    const Expr *Bwd = M.exprExternCall("pair_force", {PartnerPos, ThisPos});
    // Accumulate the nine atom-pair contributions on this molecule (three
    // per force coordinate)...
    const unsigned Coords[3] = {Fx, Fy, Fz};
    for (unsigned K = 0; K < 9; ++K)
      B.update(Receiver::thisObj(), Coords[K % 3], BinOp::Add, Fwd);
    // ... and (negated) on the partner molecule.
    for (unsigned K = 0; K < 9; ++K)
      B.update(Partner, Coords[K % 3], BinOp::Add, Bwd);
    B.endLoop();
  }

  // void molecule::poteng(molecule m[], accum *global)
  Method *PotengM = M.createMethod("poteng", Molecule);
  PotengM->addParam(Param{"m", Molecule, /*IsArray=*/true});
  PotengM->addParam(Param{"global", Accum, /*IsArray=*/false});
  {
    MethodBuilder B(M, PotengM);
    PotengPartnerLoopId = B.beginLoop();
    const Receiver Partner = Receiver::paramIndexed(0, PotengPartnerLoopId);
    const Expr *ThisPos = M.exprFieldRead(Receiver::thisObj(), Pos);
    const Expr *PartnerPos = M.exprFieldRead(Partner, Pos);
    PotengTermLoopId = B.beginLoop();
    PotengTermCostClass = B.compute({ThisPos, PartnerPos});
    B.endLoop();
    // global->poteng += energy(this, partner);
    const Expr *E = M.exprExternCall("pair_energy", {ThisPos, PartnerPos});
    B.update(Receiver::param(1), Poteng, BinOp::Add, E);
    B.endLoop();
  }

  M.addSection(InterfSection, Interf);
  M.addSection(PotengSection, PotengM);
}

rt::Schedule WaterApp::schedule() const {
  rt::Schedule Sched;
  for (unsigned Step = 0; Step < Config.Timesteps; ++Step) {
    Sched.push_back(rt::Phase::serial(Config.SerialPhaseNanos / 2));
    Sched.push_back(rt::Phase::parallel(InterfSection));
    Sched.push_back(rt::Phase::serial(Config.SerialPhaseNanos -
                                      Config.SerialPhaseNanos / 2));
    Sched.push_back(rt::Phase::parallel(PotengSection));
  }
  return Sched;
}

const rt::DataBinding &WaterApp::binding(const std::string &Section) const {
  if (Section == InterfSection)
    return *InterfBinding;
  assert(Section == PotengSection && "unknown section");
  return *PotengBinding;
}
