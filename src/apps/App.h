//===- apps/App.h - Benchmark application base -------------------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common shape of the three benchmark applications (Barnes-Hut, Water,
/// String). Each application owns an IR module with its parallel sections,
/// the multi-versioned program the synchronization optimizer generates from
/// it, a data binding per section (derived from genuinely computed data:
/// octree traversals, pair lists, ray paths), and a phase schedule. The
/// base class builds execution backends for the four executable flavours
/// the paper measures: Serial, a fixed static policy, and Dynamic.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_APP_H
#define DYNFB_APPS_APP_H

#include "ir/Module.h"
#include "rt/Backend.h"
#include "rt/Binding.h"
#include "rt/CostModel.h"
#include "rt/MachineModel.h"
#include "rt/NativeBackend.h"
#include "rt/SectionRegistry.h"
#include "sim/Backend.h"
#include "xform/MultiVersion.h"

#include <memory>
#include <string>

namespace dynfb::apps {

/// Statistics of one parallel section measured on the serial version
/// (paper Tables 4, 9, 10).
struct SectionStats {
  double MeanSectionSeconds = 0; ///< Serial execution time of the section.
  uint64_t Iterations = 0;
  double MeanIterationSeconds = 0;
};

/// Executable flavour.
enum class Flavour {
  Serial,  ///< Lock-free serial code (run on one processor).
  Fixed,   ///< One statically chosen code version.
  Dynamic  ///< All versions + dynamic feedback, instrumented.
};

/// Which executable to build and -- for the Fixed flavour -- which point of
/// the version space to pin. This is the single description of "what runs"
/// shared by App backend construction and the Harness entry points.
struct VersionSpec {
  Flavour F = Flavour::Dynamic;
  /// The pinned version for Flavour::Fixed (ignored otherwise).
  xform::VersionDescriptor Fixed;

  static VersionSpec serial() { return {Flavour::Serial, {}}; }
  static VersionSpec fixed(xform::VersionDescriptor D) {
    return {Flavour::Fixed, D};
  }
  static VersionSpec fixed(xform::PolicyKind Policy,
                           rt::SchedSpec Sched = rt::SchedSpec::dynamic()) {
    return {Flavour::Fixed, xform::VersionDescriptor{Policy, Sched}};
  }
  static VersionSpec dynamicFeedback() { return {Flavour::Dynamic, {}}; }
};

/// Base class of the benchmark applications.
class App {
public:
  virtual ~App() = default;

  const ir::Module &module() const { return M; }
  ir::Module &module() { return M; }

  /// The generated versions (valid after finalize()).
  const xform::VersionedProgram &program() const { return Program; }

  /// The version space the application was finalized with.
  const xform::VersionSpace &versionSpace() const { return Program.Space; }

  /// The application's phase schedule.
  virtual rt::Schedule schedule() const = 0;

  /// The data binding of the named section.
  virtual const rt::DataBinding &binding(const std::string &Section) const = 0;

  /// The backend-agnostic section table for one executable described by
  /// \p Spec: every backend (simulator or native threads) is constructed
  /// from this single description. Bindings and IR are owned by the app and
  /// must outlive the backend.
  rt::SectionRegistry makeSectionRegistry(const VersionSpec &Spec) const;

  /// Builds a simulator backend for one executable described by \p Spec,
  /// on the machine \p Model describes (cloned into the backend).
  std::unique_ptr<sim::SimBackend>
  makeSimBackend(unsigned Procs, const rt::MachineModel &Model,
                 const VersionSpec &Spec) const;

  /// Builds a native-threads backend for the same executable. Native runs
  /// ignore MachineModel pricing (the hardware sets the prices); \p Opts
  /// carries the virtual-to-real time scale.
  std::unique_ptr<rt::NativeBackend>
  makeNativeBackend(unsigned Procs, const VersionSpec &Spec,
                    rt::NativeBackend::Options Opts) const;
  std::unique_ptr<rt::NativeBackend>
  makeNativeBackend(unsigned Procs, const VersionSpec &Spec) const {
    return makeNativeBackend(Procs, Spec, rt::NativeBackend::Options());
  }

  /// Flat-machine compatibility path: wraps \p Costs in the constant-cost
  /// model.
  std::unique_ptr<sim::SimBackend>
  makeSimBackend(unsigned Procs, const rt::CostModel &Costs,
                 const VersionSpec &Spec) const {
    return makeSimBackend(Procs, rt::FlatMachineModel(Costs), Spec);
  }

  /// Compatibility shim over the VersionSpec path.
  std::unique_ptr<sim::SimBackend>
  makeSimBackend(unsigned Procs, const rt::CostModel &Costs, Flavour F,
                 xform::PolicyKind FixedPolicy =
                     xform::PolicyKind::Original) const {
    return makeSimBackend(Procs, Costs,
                          F == Flavour::Fixed
                              ? VersionSpec::fixed(FixedPolicy)
                              : VersionSpec{F, {}});
  }

  /// Serial-version statistics of one section (Tables 4, 9, 10).
  SectionStats sectionStats(const std::string &Section,
                            const rt::CostModel &Costs) const;

protected:
  explicit App(std::string Name) : M(std::move(Name)) {}

  /// Runs version generation over \p Space; call once after the module is
  /// authored.
  void finalize(const xform::VersionSpace &Space = {}) {
    Program = xform::generateVersions(M, Space);
  }

  ir::Module M;
  xform::VersionedProgram Program;
};

} // namespace dynfb::apps

#endif // DYNFB_APPS_APP_H
