//===- apps/App.h - Benchmark application base -------------------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common shape of the three benchmark applications (Barnes-Hut, Water,
/// String). Each application owns an IR module with its parallel sections,
/// the multi-versioned program the synchronization optimizer generates from
/// it, a data binding per section (derived from genuinely computed data:
/// octree traversals, pair lists, ray paths), and a phase schedule. The
/// base class builds execution backends for the four executable flavours
/// the paper measures: Serial, a fixed static policy, and Dynamic.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_APPS_APP_H
#define DYNFB_APPS_APP_H

#include "ir/Module.h"
#include "rt/Backend.h"
#include "rt/Binding.h"
#include "rt/CostModel.h"
#include "sim/Backend.h"
#include "xform/MultiVersion.h"

#include <memory>
#include <string>

namespace dynfb::apps {

/// Statistics of one parallel section measured on the serial version
/// (paper Tables 4, 9, 10).
struct SectionStats {
  double MeanSectionSeconds = 0; ///< Serial execution time of the section.
  uint64_t Iterations = 0;
  double MeanIterationSeconds = 0;
};

/// Executable flavour.
enum class Flavour {
  Serial,  ///< Lock-free serial code (run on one processor).
  Fixed,   ///< One statically chosen synchronization policy.
  Dynamic  ///< All versions + dynamic feedback, instrumented.
};

/// Base class of the benchmark applications.
class App {
public:
  virtual ~App() = default;

  const ir::Module &module() const { return M; }
  ir::Module &module() { return M; }

  /// The generated versions (valid after finalize()).
  const xform::VersionedProgram &program() const { return Program; }

  /// The application's phase schedule.
  virtual rt::Schedule schedule() const = 0;

  /// The data binding of the named section.
  virtual const rt::DataBinding &binding(const std::string &Section) const = 0;

  /// Builds a simulator backend for one executable flavour.
  /// \p FixedPolicy selects the policy for Flavour::Fixed (ignored
  /// otherwise).
  std::unique_ptr<sim::SimBackend>
  makeSimBackend(unsigned Procs, const rt::CostModel &Costs, Flavour F,
                 xform::PolicyKind FixedPolicy =
                     xform::PolicyKind::Original) const;

  /// Serial-version statistics of one section (Tables 4, 9, 10).
  SectionStats sectionStats(const std::string &Section,
                            const rt::CostModel &Costs) const;

protected:
  explicit App(std::string Name) : M(std::move(Name)) {}

  /// Runs version generation; call once after the module is authored.
  void finalize() { Program = xform::generateVersions(M); }

  ir::Module M;
  xform::VersionedProgram Program;
};

} // namespace dynfb::apps

#endif // DYNFB_APPS_APP_H
