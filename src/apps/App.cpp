//===- apps/App.cpp -------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"

#include "rt/Interp.h"
#include "support/Compiler.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::xform;

rt::SectionRegistry App::makeSectionRegistry(const VersionSpec &Spec) const {
  rt::SectionRegistry Registry;
  for (const VersionedSection &VS : Program.Sections) {
    rt::SectionDesc Desc;
    Desc.Name = VS.Name;
    Desc.Binding = &binding(VS.Name);
    switch (Spec.F) {
    case Flavour::Serial:
      Desc.Versions.push_back(rt::IrVersion{"Serial", VS.SerialEntry, {}});
      break;
    case Flavour::Fixed: {
      const SectionVersion &V = VS.versionFor(Spec.Fixed);
      Desc.Versions.push_back(
          rt::IrVersion{Spec.Fixed.name(), V.Entry, Spec.Fixed.Sched});
      break;
    }
    case Flavour::Dynamic:
      for (const SectionVersion &V : VS.Versions)
        Desc.Versions.push_back(rt::IrVersion{V.label(), V.Entry, V.Sched});
      break;
    }
    Registry.addSection(std::move(Desc));
  }
  return Registry;
}

std::unique_ptr<sim::SimBackend>
App::makeSimBackend(unsigned Procs, const rt::MachineModel &Model,
                    const VersionSpec &Spec) const {
  // The Dynamic executable compiles in the overhead instrumentation; the
  // static flavours do not (paper Section 6).
  const bool Instrumented = Spec.F == Flavour::Dynamic;
  auto Backend = std::make_unique<sim::SimBackend>(Procs, Model, Instrumented);
  Backend->addSections(makeSectionRegistry(Spec));
  return Backend;
}

std::unique_ptr<rt::NativeBackend>
App::makeNativeBackend(unsigned Procs, const VersionSpec &Spec,
                       rt::NativeBackend::Options Opts) const {
  return std::make_unique<rt::NativeBackend>(Procs, makeSectionRegistry(Spec),
                                             Opts);
}

SectionStats App::sectionStats(const std::string &Section,
                               const rt::CostModel &Costs) const {
  const VersionedSection *VS = Program.find(Section);
  if (!VS)
    reportFatalError("sectionStats: unknown section name");
  const rt::DataBinding &B = binding(Section);
  rt::IterationEmitter Emitter(VS->SerialEntry, B, Costs);

  SectionStats Stats;
  Stats.Iterations = B.iterationCount();
  rt::Nanos Total = 0;
  for (uint64_t I = 0; I < Stats.Iterations; ++I)
    Total += Emitter.computeTime(I);
  Stats.MeanSectionSeconds = rt::nanosToSeconds(Total);
  Stats.MeanIterationSeconds =
      Stats.Iterations == 0
          ? 0.0
          : Stats.MeanSectionSeconds / static_cast<double>(Stats.Iterations);
  return Stats;
}
