//===- apps/App.cpp -------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"

#include "rt/Interp.h"
#include "support/Compiler.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::xform;

std::unique_ptr<sim::SimBackend>
App::makeSimBackend(unsigned Procs, const rt::MachineModel &Model,
                    const VersionSpec &Spec) const {
  // The Dynamic executable compiles in the overhead instrumentation; the
  // static flavours do not (paper Section 6).
  const bool Instrumented = Spec.F == Flavour::Dynamic;
  auto Backend = std::make_unique<sim::SimBackend>(Procs, Model, Instrumented);

  for (const VersionedSection &VS : Program.Sections) {
    std::vector<sim::SimVersion> Versions;
    switch (Spec.F) {
    case Flavour::Serial:
      Versions.push_back(sim::SimVersion{"Serial", VS.SerialEntry, {}});
      break;
    case Flavour::Fixed: {
      const SectionVersion &V = VS.versionFor(Spec.Fixed);
      Versions.push_back(
          sim::SimVersion{Spec.Fixed.name(), V.Entry, Spec.Fixed.Sched});
      break;
    }
    case Flavour::Dynamic:
      for (const SectionVersion &V : VS.Versions)
        Versions.push_back(sim::SimVersion{V.label(), V.Entry, V.Sched});
      break;
    }
    Backend->addSection(VS.Name, &binding(VS.Name), std::move(Versions));
  }
  return Backend;
}

SectionStats App::sectionStats(const std::string &Section,
                               const rt::CostModel &Costs) const {
  const VersionedSection *VS = Program.find(Section);
  if (!VS)
    reportFatalError("sectionStats: unknown section name");
  const rt::DataBinding &B = binding(Section);
  rt::IterationEmitter Emitter(VS->SerialEntry, B, Costs);

  SectionStats Stats;
  Stats.Iterations = B.iterationCount();
  rt::Nanos Total = 0;
  for (uint64_t I = 0; I < Stats.Iterations; ++I)
    Total += Emitter.computeTime(I);
  Stats.MeanSectionSeconds = rt::nanosToSeconds(Total);
  Stats.MeanIterationSeconds =
      Stats.Iterations == 0
          ? 0.0
          : Stats.MeanSectionSeconds / static_cast<double>(Stats.Iterations);
  return Stats;
}
