//===- obs/Json.cpp -------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>

using namespace dynfb;
using namespace dynfb::obs;

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

double JsonValue::getNumber(const std::string &Key, double Default) const {
  const JsonValue *V = find(Key);
  return V && V->kind() == Kind::Number ? V->asNumber() : Default;
}

int64_t JsonValue::getInt(const std::string &Key, int64_t Default) const {
  const JsonValue *V = find(Key);
  return V && V->kind() == Kind::Number ? V->asInt() : Default;
}

std::string JsonValue::getString(const std::string &Key,
                                 const std::string &Default) const {
  const JsonValue *V = find(Key);
  return V && V->kind() == Kind::String ? V->asString() : Default;
}

JsonValue JsonValue::boolean(bool V) {
  JsonValue J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}

JsonValue JsonValue::number(double V) {
  JsonValue J;
  J.K = Kind::Number;
  J.Num = V;
  return J;
}

JsonValue JsonValue::string(std::string V) {
  JsonValue J;
  J.K = Kind::String;
  J.Str = std::move(V);
  return J;
}

JsonValue JsonValue::array(std::vector<JsonValue> V) {
  JsonValue J;
  J.K = Kind::Array;
  J.Arr = std::move(V);
  return J;
}

JsonValue
JsonValue::object(std::vector<std::pair<std::string, JsonValue>> V) {
  JsonValue J;
  J.K = Kind::Object;
  J.Obj = std::move(V);
  return J;
}

namespace {

/// Recursive-descent JSON parser over a byte buffer.
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  std::optional<JsonValue> run() {
    JsonValue V;
    if (!parseValue(V))
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return V;
  }

private:
  bool fail(const std::string &Msg) {
    Error = format("json: %s at offset %zu", Msg.c_str(), Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C, const char *What) {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected ") + What);
    ++Pos;
    return true;
  }

  bool literal(const char *Word) {
    const size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("invalid literal (expected ") + Word + ")");
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"', "'\"'"))
      return false;
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      const char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      const char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          const char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape digit");
        }
        // BMP code point to UTF-8 (surrogate pairs are not recombined; the
        // exporters never emit them).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
  }

  bool parseValue(JsonValue &Out) {
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    const char C = Text[Pos];
    switch (C) {
    case '{': {
      ++Pos;
      std::vector<std::pair<std::string, JsonValue>> Members;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        Out = JsonValue::object({});
        return true;
      }
      while (true) {
        std::string Key;
        skipSpace();
        if (!parseString(Key))
          return false;
        if (!consume(':', "':'"))
          return false;
        JsonValue V;
        if (!parseValue(V))
          return false;
        Members.emplace_back(std::move(Key), std::move(V));
        skipSpace();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          Out = JsonValue::object(std::move(Members));
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++Pos;
      std::vector<JsonValue> Items;
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        Out = JsonValue::array({});
        return true;
      }
      while (true) {
        JsonValue V;
        if (!parseValue(V))
          return false;
        Items.push_back(std::move(V));
        skipSpace();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          Out = JsonValue::array(std::move(Items));
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::string(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = JsonValue::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = JsonValue::boolean(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = JsonValue::null();
      return true;
    default: {
      if (C != '-' && !std::isdigit(static_cast<unsigned char>(C)))
        return fail("unexpected character");
      const char *Begin = Text.c_str() + Pos;
      char *End = nullptr;
      const double Num = std::strtod(Begin, &End);
      if (End == Begin)
        return fail("malformed number");
      Pos += static_cast<size_t>(End - Begin);
      Out = JsonValue::number(Num);
      return true;
    }
    }
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> obs::parseJson(const std::string &Text,
                                        std::string &Error) {
  return Parser(Text, Error).run();
}

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (const char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", static_cast<unsigned>(
                                     static_cast<unsigned char>(C)));
      else
        Out += C;
    }
  }
  return Out;
}
