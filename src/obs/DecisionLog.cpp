//===- obs/DecisionLog.cpp ------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/DecisionLog.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace dynfb;
using namespace dynfb::obs;

const char *obs::decisionKindName(DecisionKind K) {
  switch (K) {
  case DecisionKind::Sample:
    return "sample";
  case DecisionKind::Switch:
    return "switch";
  case DecisionKind::DriftResample:
    return "drift_resample";
  case DecisionKind::Quarantine:
    return "quarantine";
  case DecisionKind::Reprobe:
    return "reprobe";
  case DecisionKind::WatchdogResample:
    return "watchdog_resample";
  case DecisionKind::Degraded:
    return "degraded";
  case DecisionKind::Prune:
    return "prune";
  case DecisionKind::Promote:
    return "promote";
  }
  DYNFB_UNREACHABLE("unknown decision kind");
}

const char *obs::switchReasonName(SwitchReason R) {
  switch (R) {
  case SwitchReason::None:
    return "none";
  case SwitchReason::BeatBest:
    return "beat-best";
  case SwitchReason::HysteresisHeld:
    return "hysteresis-held";
  case SwitchReason::Fallback:
    return "fallback";
  }
  DYNFB_UNREACHABLE("unknown switch reason");
}

std::optional<DecisionKind> obs::parseDecisionKind(const std::string &Name) {
  for (DecisionKind K :
       {DecisionKind::Sample, DecisionKind::Switch, DecisionKind::DriftResample,
        DecisionKind::Quarantine, DecisionKind::Reprobe,
        DecisionKind::WatchdogResample, DecisionKind::Degraded,
        DecisionKind::Prune, DecisionKind::Promote})
    if (Name == decisionKindName(K))
      return K;
  return std::nullopt;
}

std::optional<SwitchReason> obs::parseSwitchReason(const std::string &Name) {
  for (SwitchReason R : {SwitchReason::None, SwitchReason::BeatBest,
                         SwitchReason::HysteresisHeld, SwitchReason::Fallback})
    if (Name == switchReasonName(R))
      return R;
  return std::nullopt;
}

size_t DecisionLog::count(DecisionKind K) const {
  size_t N = 0;
  for (const DecisionEvent &E : Events)
    N += E.Kind == K;
  return N;
}

std::string DecisionLog::renderTimeline() const {
  std::string Out;
  for (const DecisionEvent &E : Events) {
    const std::string Overhead =
        std::isfinite(E.Overhead) ? format("%.4f", E.Overhead) : "n/a";
    switch (E.Kind) {
    case DecisionKind::Sample:
      Out += format("%10.4fs  %-10s sample  %-24s overhead %s"
                    " (%u repeats, %u degenerate)\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str(), Overhead.c_str(), E.Repeats,
                    E.Degenerate);
      break;
    case DecisionKind::Switch:
      Out += format("%10.4fs  %-10s switch  %-24s overhead %s [%s]\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str(), Overhead.c_str(),
                    switchReasonName(E.Reason));
      break;
    case DecisionKind::DriftResample:
      Out += format("%10.4fs  %-10s drift   %-24s overhead %s\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str(), Overhead.c_str());
      break;
    case DecisionKind::Quarantine:
      Out += format("%10.4fs  %-10s quarnt  %-24s overhead %s"
                    " (%u strikes, out for %u phases)\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str(), Overhead.c_str(), E.Degenerate,
                    E.Repeats);
      break;
    case DecisionKind::Reprobe:
      Out += format("%10.4fs  %-10s reprobe %-24s overhead %s (cleared)\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str(), Overhead.c_str());
      break;
    case DecisionKind::WatchdogResample:
      Out += format("%10.4fs  %-10s wtchdg  %-24s overhead %s"
                    " (%u bad intervals)\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str(), Overhead.c_str(), E.Degenerate);
      break;
    case DecisionKind::Degraded:
      Out += format("%10.4fs  %-10s degrad  %-24s all versions quarantined;"
                    " pinned\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str());
      break;
    case DecisionKind::Prune:
      Out += format("%10.4fs  %-10s prune   %-24s overhead %s (round %u)\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str(), Overhead.c_str(), E.Repeats);
      break;
    case DecisionKind::Promote:
      Out += format("%10.4fs  %-10s promote %-24s overhead %s (round %u)\n",
                    rt::nanosToSeconds(E.TimeNanos), E.Section.c_str(),
                    E.Label.c_str(), Overhead.c_str(), E.Repeats);
      break;
    }
  }
  return Out;
}
