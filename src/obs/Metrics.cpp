//===- obs/Metrics.cpp ----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace dynfb;
using namespace dynfb::obs;

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->value();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<MetricSample> Out;
  Out.reserve(Counters.size() + Gauges.size());
  for (const auto &[Name, C] : Counters)
    Out.push_back({Name, MetricSample::Kind::Counter, C->value(), 0.0});
  for (const auto &[Name, G] : Gauges)
    Out.push_back({Name, MetricSample::Kind::Gauge, 0, G->value()});
  std::sort(Out.begin(), Out.end(),
            [](const MetricSample &A, const MetricSample &B) {
              return A.Name < B.Name;
            });
  return Out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters) {
    (void)Name;
    C->reset();
  }
  for (auto &[Name, G] : Gauges) {
    (void)Name;
    G->reset();
  }
}

std::string MetricsRegistry::renderText() const {
  std::string Out;
  for (const MetricSample &S : snapshot())
    Out += S.K == MetricSample::Kind::Counter
               ? format("%s %llu\n", S.Name.c_str(),
                        static_cast<unsigned long long>(S.Count))
               : format("%s %g\n", S.Name.c_str(), S.Value);
  return Out;
}

std::string MetricsRegistry::toJson() const {
  std::string Out = "{";
  bool First = true;
  for (const MetricSample &S : snapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += S.K == MetricSample::Kind::Counter
               ? format("\n  \"%s\": %llu", S.Name.c_str(),
                        static_cast<unsigned long long>(S.Count))
               : format("\n  \"%s\": %.17g", S.Name.c_str(), S.Value);
  }
  Out += First ? "}\n" : "\n}\n";
  return Out;
}

MetricsRegistry &obs::globalMetrics() {
  static MetricsRegistry Registry;
  return Registry;
}
