//===- obs/Metrics.h - Named counter/gauge registry -------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight registry of named counters and gauges the runtime layers
/// (fb, sim, rt, perturb) publish into: lock contention, scheduler fetches,
/// barrier imbalance, perturbation activations, measurement-guard trips.
/// Counting is always on -- it never alters simulated behaviour or any
/// printed table -- and is only rendered when a caller explicitly asks
/// (dynfb-run --metrics-out, tests). Counter references are stable for the
/// registry's lifetime, so hot paths can look a counter up once and then
/// increment a relaxed atomic.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_OBS_METRICS_H
#define DYNFB_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dynfb::obs {

/// Monotonic event counter. Relaxed atomics: totals are exact because every
/// increment lands, but cross-counter ordering is unspecified (readers only
/// ever look at quiesced snapshots).
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-value gauge (e.g. a configuration echo or a high-water mark the
/// publisher maintains itself).
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// One registry entry at snapshot time.
struct MetricSample {
  enum class Kind { Counter, Gauge };
  std::string Name;
  Kind K = Kind::Counter;
  uint64_t Count = 0; ///< Counter value (Kind::Counter).
  double Value = 0.0; ///< Gauge value (Kind::Gauge).
};

/// Registry of named metrics. Registration (the first counter()/gauge()
/// call per name) takes a lock; the returned reference is stable, so
/// publishers cache it and pay only a relaxed atomic per event afterwards.
class MetricsRegistry {
public:
  /// Returns the counter named \p Name, creating it on first use.
  Counter &counter(const std::string &Name);

  /// Returns the gauge named \p Name, creating it on first use.
  Gauge &gauge(const std::string &Name);

  /// Returns the counter's current value, or 0 if \p Name was never
  /// registered (convenience for tests and reporting).
  uint64_t counterValue(const std::string &Name) const;

  /// All metrics, sorted by name (deterministic output).
  std::vector<MetricSample> snapshot() const;

  /// Zeroes every registered metric (registrations survive, so cached
  /// references stay valid). Lets tools scope "metrics of this run".
  void reset();

  /// Renders "name value" lines, sorted by name.
  std::string renderText() const;

  /// Renders a flat JSON object {"name": value, ...}, sorted by name.
  /// Counters render as integers, gauges as doubles.
  std::string toJson() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
};

/// The process-wide registry every layer publishes into by default.
MetricsRegistry &globalMetrics();

} // namespace dynfb::obs

#endif // DYNFB_OBS_METRICS_H
