//===- obs/Export.h - Run trace exchange formats ----------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serializable record of one run's adaptation behaviour: run metadata,
/// the controller's decision log, per-occurrence section overhead summaries
/// and accumulated per-lock contention. Two export formats (documented in
/// docs/OBSERVABILITY.md):
///
///  - JSONL: one JSON object per line, types "meta" / "decision" /
///    "section" / "lock". Lossless -- parseJsonl() round-trips, and
///    dynfb-report rebuilds a run's locking-overhead and hottest-locks
///    tables from the file alone.
///  - Chrome trace_event JSON, loadable in chrome://tracing / Perfetto:
///    section occurrences as duration events, decisions as instant events,
///    sampled overheads as counter tracks.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_OBS_EXPORT_H
#define DYNFB_OBS_EXPORT_H

#include "obs/DecisionLog.h"
#include "rt/Time.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dynfb::obs {

/// Schema version stamped into the "meta" line; bump when a field changes
/// meaning so downstream consumers can reject files they do not understand.
inline constexpr int64_t TraceSchemaVersion = 1;

/// The full run configuration stamped into trace meta at record time (the
/// "run_spec" object of the meta line; additive within schema 1, so PR-3-era
/// traces without one still parse -- Present is false there). Everything a
/// replay needs to reconstruct and re-drive the recorded run: workload
/// scale, version-space dimensions, feedback / robustness / resilience
/// knobs, the perturbation or traffic spec (whose text carries its own
/// seed), machine cost overrides and the native timescale. Plain value
/// types only: obs sits below fb in the library layering, so the fb
/// configuration is re-derived from these fields by src/replay.
struct RunSpec {
  bool Present = false; ///< False for traces recorded before replay support.
  double Scale = 1.0;
  std::string Dimensions; ///< --dimensions ("" = the default sync space).
  std::string Chunks;     ///< --chunks ("" = none).
  rt::Nanos SamplingNanos = 0;
  rt::Nanos ProductionNanos = 0;
  bool Cutoff = false;
  bool Ordering = false;
  bool Spanning = false;
  unsigned Repeats = 1;
  std::string Aggregate = "mean"; ///< mean | median | trimmed.
  double Hysteresis = 0.0;
  double Drift = 0.0;
  rt::Nanos SliceNanos = 0;
  unsigned QuarantineStrikes = 0;
  unsigned QuarantineWindow = 8;
  double QuarantineLimit = 1.0;
  unsigned QuarantineBackoff = 4;
  unsigned Watchdog = 0;
  double WatchdogLimit = 0.9;
  std::string Sampler = "exhaustive"; ///< Sampling strategy name.
  double SearchBudget = 0.5;          ///< --search-budget fraction.
  double UcbExplore = 2.0;            ///< --ucb-explore constant.
  std::string PerturbSpec;   ///< --perturb schedule text ("" = none).
  std::string TrafficSpec;   ///< --traffic spec text ("" = none).
  std::string CostOverrides; ///< --cost Field=nanos list ("" = none).
  double TimeScale = 0.0;    ///< Native backend only; 0 on the simulator.
};

/// Identity of the traced run.
struct TraceMeta {
  std::string App;    ///< Application/workload name.
  std::string Policy; ///< Executable policy ("dynamic", "bounded", ...).
  unsigned Procs = 0;
  rt::Nanos TotalNanos = 0; ///< End-to-end (virtual) run time.
  /// Machine model the run was simulated on and its full parameter set
  /// (rt::MachineModel::paramsString()); empty in traces written before the
  /// machine layer existed. Additive within schema 1: parsers ignore
  /// unknown meta keys.
  std::string Machine;
  std::string MachineParams;
  /// Execution substrate the run measured: "sim" (virtual time) or
  /// "native" (real threads, steady-clock timestamps). Like the machine
  /// fields, additive within schema 1; absent means "sim".
  std::string Backend = "sim";
  /// The recorded run configuration (self-description; additive within
  /// schema 1). Spec.Present distinguishes a replayable trace from one
  /// recorded before replay support existed.
  RunSpec Spec;
};

/// One parallel-section occurrence's aggregate measurements (the fields of
/// fb::SectionExecutionTrace the locking-overhead tables are built from).
struct SectionRecord {
  std::string Section;
  rt::Nanos StartNanos = 0;
  rt::Nanos EndNanos = 0;
  uint64_t AcquireReleasePairs = 0;
  rt::Nanos LockOpNanos = 0;
  rt::Nanos WaitNanos = 0;
  rt::Nanos SchedNanos = 0;
  rt::Nanos ExecNanos = 0;
  unsigned SamplingPhases = 0;
  unsigned SampledIntervals = 0;
  unsigned DegenerateIntervals = 0;
  unsigned EarlyResamples = 0;
  unsigned HysteresisHolds = 0;
};

/// One lock's contention accumulated over every interval of a run, per
/// section (from the simulator's cumulative IntervalTrace).
struct LockRecord {
  std::string Section;
  uint64_t Object = 0;
  uint64_t Acquires = 0;
  uint64_t Contended = 0;
  rt::Nanos WaitNanos = 0;
};

/// Everything the exporters serialize about one run.
struct RunTrace {
  TraceMeta Meta;
  std::vector<DecisionEvent> Decisions;
  std::vector<SectionRecord> Sections;
  std::vector<LockRecord> Locks;
};

/// Serializes \p Trace as JSONL (first line "meta", then "decision",
/// "section" and "lock" lines in that order; within a type, input order is
/// preserved).
std::string toJsonl(const RunTrace &Trace);

/// Parses a JSONL trace produced by toJsonl (unknown line types and object
/// keys are ignored, so newer writers stay readable). Every record toJsonl
/// writes ends in a newline, so a non-empty final line without one is a
/// file cut mid-write: it is rejected with a diagnostic naming the line
/// number rather than silently dropping the trailing events. On failure
/// returns nullopt and sets \p Error.
std::optional<RunTrace> parseJsonl(const std::string &Text,
                                   std::string &Error);

/// Serializes \p Trace in Chrome trace_event JSON object format
/// ({"traceEvents": [...], ...}).
std::string toChromeTrace(const RunTrace &Trace);

} // namespace dynfb::obs

#endif // DYNFB_OBS_EXPORT_H
