//===- obs/DecisionLog.h - Adaptation decision audit log --------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The audit trail of the dynamic feedback controller: one event per
/// sampled interval (which version, what aggregated overhead, how many
/// repeats and degenerate measurements) and one per decision (which version
/// entered production and why -- it beat the best, hysteresis held the
/// incumbent, or a degenerate sampling phase fell back to the last known
/// good), plus drift-triggered early resamples. A run's decision log is the
/// ground truth the JSONL/Chrome trace exporters and dynfb-report render;
/// with no log attached the controller records nothing and behaves
/// identically.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_OBS_DECISIONLOG_H
#define DYNFB_OBS_DECISIONLOG_H

#include "rt/Time.h"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace dynfb::obs {

/// What one decision-log event records.
enum class DecisionKind {
  Sample,           ///< One version's sampling interval completed.
  Switch,           ///< A production phase began with a chosen version.
  DriftResample,    ///< Production cut short: measured overhead drifted.
  Quarantine,       ///< A version struck out and left the sampling pool.
  Reprobe,          ///< A quarantined version re-probed healthy and
                    ///< re-entered the sampling pool.
  WatchdogResample, ///< Production cut short: too many consecutive bad
                    ///< intervals with no drift baseline to compare to.
  Degraded,         ///< Every version quarantined: the controller pinned
                    ///< the last known-good version instead of sampling.
  Prune,            ///< A partial-sampling strategy dropped a version from
                    ///< the current phase's search.
  Promote,          ///< A partial-sampling strategy advanced a version into
                    ///< the next search round (or made it the provisional
                    ///< winner).
};

/// Why a Switch event chose its version.
enum class SwitchReason {
  None,           ///< Not a Switch event.
  BeatBest,       ///< Lowest sampled overhead of the phase.
  HysteresisHeld, ///< Challenger won but not by the hysteresis margin;
                  ///< the incumbent stays.
  Fallback,       ///< Sampling degenerate: riding the last known good
                  ///< (or the first version on the very first phase).
};

const char *decisionKindName(DecisionKind K);
const char *switchReasonName(SwitchReason R);
std::optional<DecisionKind> parseDecisionKind(const std::string &Name);
std::optional<SwitchReason> parseSwitchReason(const std::string &Name);

/// One decision-log entry. Field meaning by Kind:
///  - Sample: Version/Label name the sampled version, Overhead is the
///    aggregated measurement (NaN when every repeat was degenerate),
///    Repeats counts the usable measurements aggregated and Degenerate the
///    discarded ones.
///  - Switch: Version/Label name the version entering production, Reason
///    says why, Overhead is the sampled overhead the decision was based on
///    (NaN for a fallback with no measurement).
///  - DriftResample: Version/Label name the running production version and
///    Overhead the drifted measurement that triggered the resample.
///  - Quarantine: Version/Label name the version leaving the sampling pool,
///    Overhead the offending measurement (NaN when the last strike was a
///    degenerate interval), Repeats the quarantine duration in sampling
///    phases and Degenerate the strike count.
///  - Reprobe: Version/Label name the version re-entering the pool and
///    Overhead the healthy re-probe measurement.
///  - WatchdogResample: Version/Label name the running production version,
///    Overhead the last bad measurement (NaN when degenerate) and
///    Degenerate the length of the bad streak.
///  - Degraded: Version/Label name the pinned last-known-good version;
///    Overhead is NaN (nothing was sampled).
///  - Prune/Promote: Version/Label name the version a partial-sampling
///    strategy dropped from / advanced within the phase's search, Overhead
///    the estimate the decision was taken on (NaN when never measured) and
///    Repeats the search round (halving) or pull count (ucb).
struct DecisionEvent {
  DecisionKind Kind = DecisionKind::Sample;
  rt::Nanos TimeNanos = 0; ///< Backend clock at the event.
  std::string Section;
  unsigned Version = 0;
  std::string Label;
  double Overhead = 0.0;
  unsigned Repeats = 0;
  unsigned Degenerate = 0;
  SwitchReason Reason = SwitchReason::None;
};

/// Append-only event log for one run. Not thread-safe: one controller
/// appends (controllers are single-threaded even over the real-threads
/// backend, which parallelizes inside runInterval).
class DecisionLog {
public:
  void append(DecisionEvent E) { Events.push_back(std::move(E)); }

  const std::vector<DecisionEvent> &events() const { return Events; }
  bool empty() const { return Events.empty(); }
  size_t size() const { return Events.size(); }
  void clear() { Events.clear(); }

  /// Number of events of \p K.
  size_t count(DecisionKind K) const;

  /// Human-readable policy timeline (one line per event).
  std::string renderTimeline() const;

private:
  std::vector<DecisionEvent> Events;
};

} // namespace dynfb::obs

#endif // DYNFB_OBS_DECISIONLOG_H
