//===- obs/Report.cpp -----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <map>

using namespace dynfb;
using namespace dynfb::obs;

namespace {

/// Per-section aggregate over every occurrence, in first-appearance order.
struct SectionAggregate {
  std::string Section;
  uint64_t Pairs = 0;
  rt::Nanos LockOpNanos = 0;
  rt::Nanos WaitNanos = 0;
  rt::Nanos ExecNanos = 0;
};

std::vector<SectionAggregate> aggregateSections(const RunTrace &Trace) {
  std::vector<SectionAggregate> Out;
  std::map<std::string, size_t> Index;
  for (const SectionRecord &S : Trace.Sections) {
    auto [It, Inserted] = Index.emplace(S.Section, Out.size());
    if (Inserted)
      Out.push_back(SectionAggregate{S.Section, 0, 0, 0, 0});
    SectionAggregate &A = Out[It->second];
    A.Pairs += S.AcquireReleasePairs;
    A.LockOpNanos += S.LockOpNanos;
    A.WaitNanos += S.WaitNanos;
    A.ExecNanos += S.ExecNanos;
  }
  return Out;
}

std::string proportion(rt::Nanos Part, rt::Nanos Whole) {
  return Whole > 0 ? format("%.3f", static_cast<double>(Part) /
                                        static_cast<double>(Whole))
                   : "0.000";
}

} // namespace

std::string obs::renderLockingOverheadTable(const RunTrace &Trace) {
  Table T("Locking overhead (rebuilt from trace)");
  T.setHeader({"Section", "Acquire/Release Pairs", "Locking (s)",
               "Waiting (s)", "Waiting Proportion"});
  SectionAggregate Total;
  for (const SectionAggregate &A : aggregateSections(Trace)) {
    T.addRow({A.Section, withThousandsSep(A.Pairs),
              formatDouble(rt::nanosToSeconds(A.LockOpNanos), 3),
              formatDouble(rt::nanosToSeconds(A.WaitNanos), 3),
              proportion(A.WaitNanos, A.ExecNanos)});
    Total.Pairs += A.Pairs;
    Total.LockOpNanos += A.LockOpNanos;
    Total.WaitNanos += A.WaitNanos;
    Total.ExecNanos += A.ExecNanos;
  }
  T.addRow({"(all sections)", withThousandsSep(Total.Pairs),
            formatDouble(rt::nanosToSeconds(Total.LockOpNanos), 3),
            formatDouble(rt::nanosToSeconds(Total.WaitNanos), 3),
            proportion(Total.WaitNanos, Total.ExecNanos)});
  return T.renderText();
}

std::string obs::renderHottestLocksTable(const RunTrace &Trace,
                                         size_t MaxLocks) {
  std::vector<LockRecord> Locks = Trace.Locks;
  std::sort(Locks.begin(), Locks.end(),
            [](const LockRecord &A, const LockRecord &B) {
              if (A.WaitNanos != B.WaitNanos)
                return A.WaitNanos > B.WaitNanos;
              if (A.Section != B.Section)
                return A.Section < B.Section;
              return A.Object < B.Object;
            });
  Table T("Hottest locks (by accumulated waiting time)");
  T.setHeader({"Section", "Object", "Acquires", "Contended", "Waiting (s)"});
  const size_t Shown = std::min(Locks.size(), MaxLocks);
  for (size_t I = 0; I < Shown; ++I) {
    const LockRecord &L = Locks[I];
    T.addRow({L.Section, format("%llu",
                                static_cast<unsigned long long>(L.Object)),
              withThousandsSep(L.Acquires), withThousandsSep(L.Contended),
              formatDouble(rt::nanosToSeconds(L.WaitNanos), 4)});
  }
  std::string Out = T.renderText();
  if (Locks.size() > Shown)
    Out += format("  (%zu more locks not shown)\n", Locks.size() - Shown);
  return Out;
}

std::string obs::renderReport(const RunTrace &Trace,
                              const ReportOptions &Options) {
  std::string Out =
      format("run: app %s, policy %s, %u procs, total %s\n",
             Trace.Meta.App.c_str(), Trace.Meta.Policy.c_str(),
             Trace.Meta.Procs,
             formatSeconds(rt::nanosToSeconds(Trace.Meta.TotalNanos))
                 .c_str());
  if (Trace.Meta.Spec.Present) {
    // Full provenance from the recorded run_spec: everything dynfb-run
    // --replay uses to reconstruct the run (docs/REPLAY.md).
    const RunSpec &S = Trace.Meta.Spec;
    const std::string Machine =
        Trace.Meta.Machine.empty() ? "dash-flat" : Trace.Meta.Machine;
    std::string Dims = S.Dimensions.empty() ? "sync" : S.Dimensions;
    if (!S.Chunks.empty())
      Dims += " (chunks " + S.Chunks + ")";
    Out += format("provenance: backend %s, machine %s, scale %g, "
                  "dimensions %s\n",
                  Trace.Meta.Backend.c_str(), Machine.c_str(), S.Scale,
                  Dims.c_str());
    Out += format("provenance: sampling %s, production %s, repeats %u "
                  "(%s)%s%s%s\n",
                  formatSeconds(rt::nanosToSeconds(S.SamplingNanos)).c_str(),
                  formatSeconds(rt::nanosToSeconds(S.ProductionNanos))
                      .c_str(),
                  S.Repeats, S.Aggregate.c_str(),
                  S.Cutoff ? ", cutoff" : "", S.Ordering ? ", ordering" : "",
                  S.Spanning ? ", spanning" : "");
    std::string Rob;
    if (S.Hysteresis > 0)
      Rob += format(", hysteresis %g", S.Hysteresis);
    if (S.Drift > 0)
      Rob += format(", drift %g", S.Drift);
    if (S.SliceNanos > 0)
      Rob += ", slice " + formatSeconds(rt::nanosToSeconds(S.SliceNanos));
    if (S.QuarantineStrikes > 0)
      Rob += format(", quarantine %u/%u limit %g backoff %u",
                    S.QuarantineStrikes, S.QuarantineWindow,
                    S.QuarantineLimit, S.QuarantineBackoff);
    if (S.Watchdog > 0)
      Rob += format(", watchdog %u limit %g", S.Watchdog, S.WatchdogLimit);
    if (!Rob.empty())
      Out += "provenance: robustness" + Rob.substr(1) + "\n";
    std::string Env;
    if (!S.PerturbSpec.empty())
      Env += ", perturb \"" + S.PerturbSpec + "\"";
    if (!S.TrafficSpec.empty())
      Env += ", traffic \"" + S.TrafficSpec + "\"";
    if (!S.CostOverrides.empty())
      Env += ", cost " + S.CostOverrides;
    if (S.TimeScale > 0)
      Env += format(", timescale %g", S.TimeScale);
    if (!Env.empty())
      Out += "provenance: environment" + Env.substr(1) + "\n";
  }
  Out += format("decisions: %zu events (%zu switches, %zu samples)\n",
                Trace.Decisions.size(),
                std::count_if(Trace.Decisions.begin(), Trace.Decisions.end(),
                              [](const DecisionEvent &E) {
                                return E.Kind == DecisionKind::Switch;
                              }),
                std::count_if(Trace.Decisions.begin(), Trace.Decisions.end(),
                              [](const DecisionEvent &E) {
                                return E.Kind == DecisionKind::Sample;
                              }));

  DecisionLog Timeline;
  for (const DecisionEvent &E : Trace.Decisions)
    if (Options.ShowSamples || E.Kind != DecisionKind::Sample)
      Timeline.append(E);
  if (!Timeline.empty()) {
    Out += "\npolicy timeline:\n";
    Out += Timeline.renderTimeline();
  }

  Out += "\n" + renderLockingOverheadTable(Trace);
  if (!Trace.Locks.empty())
    Out += "\n" + renderHottestLocksTable(Trace, Options.MaxLocks);
  return Out;
}
