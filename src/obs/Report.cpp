//===- obs/Report.cpp -----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <map>

using namespace dynfb;
using namespace dynfb::obs;

namespace {

/// Per-section aggregate over every occurrence, in first-appearance order.
struct SectionAggregate {
  std::string Section;
  uint64_t Pairs = 0;
  rt::Nanos LockOpNanos = 0;
  rt::Nanos WaitNanos = 0;
  rt::Nanos ExecNanos = 0;
};

std::vector<SectionAggregate> aggregateSections(const RunTrace &Trace) {
  std::vector<SectionAggregate> Out;
  std::map<std::string, size_t> Index;
  for (const SectionRecord &S : Trace.Sections) {
    auto [It, Inserted] = Index.emplace(S.Section, Out.size());
    if (Inserted)
      Out.push_back(SectionAggregate{S.Section, 0, 0, 0, 0});
    SectionAggregate &A = Out[It->second];
    A.Pairs += S.AcquireReleasePairs;
    A.LockOpNanos += S.LockOpNanos;
    A.WaitNanos += S.WaitNanos;
    A.ExecNanos += S.ExecNanos;
  }
  return Out;
}

std::string proportion(rt::Nanos Part, rt::Nanos Whole) {
  return Whole > 0 ? format("%.3f", static_cast<double>(Part) /
                                        static_cast<double>(Whole))
                   : "0.000";
}

} // namespace

std::string obs::renderLockingOverheadTable(const RunTrace &Trace) {
  Table T("Locking overhead (rebuilt from trace)");
  T.setHeader({"Section", "Acquire/Release Pairs", "Locking (s)",
               "Waiting (s)", "Waiting Proportion"});
  SectionAggregate Total;
  for (const SectionAggregate &A : aggregateSections(Trace)) {
    T.addRow({A.Section, withThousandsSep(A.Pairs),
              formatDouble(rt::nanosToSeconds(A.LockOpNanos), 3),
              formatDouble(rt::nanosToSeconds(A.WaitNanos), 3),
              proportion(A.WaitNanos, A.ExecNanos)});
    Total.Pairs += A.Pairs;
    Total.LockOpNanos += A.LockOpNanos;
    Total.WaitNanos += A.WaitNanos;
    Total.ExecNanos += A.ExecNanos;
  }
  T.addRow({"(all sections)", withThousandsSep(Total.Pairs),
            formatDouble(rt::nanosToSeconds(Total.LockOpNanos), 3),
            formatDouble(rt::nanosToSeconds(Total.WaitNanos), 3),
            proportion(Total.WaitNanos, Total.ExecNanos)});
  return T.renderText();
}

std::string obs::renderHottestLocksTable(const RunTrace &Trace,
                                         size_t MaxLocks) {
  std::vector<LockRecord> Locks = Trace.Locks;
  std::sort(Locks.begin(), Locks.end(),
            [](const LockRecord &A, const LockRecord &B) {
              if (A.WaitNanos != B.WaitNanos)
                return A.WaitNanos > B.WaitNanos;
              if (A.Section != B.Section)
                return A.Section < B.Section;
              return A.Object < B.Object;
            });
  Table T("Hottest locks (by accumulated waiting time)");
  T.setHeader({"Section", "Object", "Acquires", "Contended", "Waiting (s)"});
  const size_t Shown = std::min(Locks.size(), MaxLocks);
  for (size_t I = 0; I < Shown; ++I) {
    const LockRecord &L = Locks[I];
    T.addRow({L.Section, format("%llu",
                                static_cast<unsigned long long>(L.Object)),
              withThousandsSep(L.Acquires), withThousandsSep(L.Contended),
              formatDouble(rt::nanosToSeconds(L.WaitNanos), 4)});
  }
  std::string Out = T.renderText();
  if (Locks.size() > Shown)
    Out += format("  (%zu more locks not shown)\n", Locks.size() - Shown);
  return Out;
}

std::string obs::renderReport(const RunTrace &Trace,
                              const ReportOptions &Options) {
  std::string Out =
      format("run: app %s, policy %s, %u procs, total %s\n",
             Trace.Meta.App.c_str(), Trace.Meta.Policy.c_str(),
             Trace.Meta.Procs,
             formatSeconds(rt::nanosToSeconds(Trace.Meta.TotalNanos))
                 .c_str());
  Out += format("decisions: %zu events (%zu switches, %zu samples)\n",
                Trace.Decisions.size(),
                std::count_if(Trace.Decisions.begin(), Trace.Decisions.end(),
                              [](const DecisionEvent &E) {
                                return E.Kind == DecisionKind::Switch;
                              }),
                std::count_if(Trace.Decisions.begin(), Trace.Decisions.end(),
                              [](const DecisionEvent &E) {
                                return E.Kind == DecisionKind::Sample;
                              }));

  DecisionLog Timeline;
  for (const DecisionEvent &E : Trace.Decisions)
    if (Options.ShowSamples || E.Kind != DecisionKind::Sample)
      Timeline.append(E);
  if (!Timeline.empty()) {
    Out += "\npolicy timeline:\n";
    Out += Timeline.renderTimeline();
  }

  Out += "\n" + renderLockingOverheadTable(Trace);
  if (!Trace.Locks.empty())
    Out += "\n" + renderHottestLocksTable(Trace, Options.MaxLocks);
  return Out;
}
