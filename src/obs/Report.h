//===- obs/Report.h - Render a run report from a trace ----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a RunTrace (parsed from a JSONL trace file or built in-process)
/// into the human-readable run report dynfb-report prints: the adaptation
/// policy timeline, the locking-overhead table (the numbers dynfb-run
/// prints live, rebuilt from the trace alone) and the hottest-locks table.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_OBS_REPORT_H
#define DYNFB_OBS_REPORT_H

#include "obs/Export.h"

#include <cstddef>
#include <string>

namespace dynfb::obs {

struct ReportOptions {
  size_t MaxLocks = 10;      ///< Rows of the hottest-locks table.
  bool ShowSamples = false;  ///< Include per-sample lines in the timeline.
};

/// The locking-overhead table alone (per section plus a total row):
/// acquire/release pairs, locking seconds, waiting seconds and the waiting
/// proportion of execution time.
std::string renderLockingOverheadTable(const RunTrace &Trace);

/// The hottest-locks table alone: the \p MaxLocks locks with the most
/// accumulated waiting time, worst first (ties broken by section name then
/// object id, so the rendering is host-independent).
std::string renderHottestLocksTable(const RunTrace &Trace, size_t MaxLocks);

/// The full report: run header, policy timeline, locking-overhead table,
/// hottest-locks table.
std::string renderReport(const RunTrace &Trace,
                         const ReportOptions &Options = {});

} // namespace dynfb::obs

#endif // DYNFB_OBS_REPORT_H
