//===- obs/Export.cpp -----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"

#include "obs/Json.h"
#include "support/BuildInfo.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace dynfb;
using namespace dynfb::obs;

namespace {

std::string quoted(const std::string &S) {
  std::string Out = "\"";
  Out += jsonEscape(S);
  Out += '"';
  return Out;
}

std::string intField(const char *Key, int64_t V) {
  return format("\"%s\":%lld", Key, static_cast<long long>(V));
}

std::string uintField(const char *Key, uint64_t V) {
  return format("\"%s\":%llu", Key, static_cast<unsigned long long>(V));
}

/// Overheads serialize as null when non-finite (JSON has no NaN); the
/// parser maps null back to NaN.
std::string overheadField(double V) {
  return std::isfinite(V) ? format("\"overhead\":%.17g", V)
                          : std::string("\"overhead\":null");
}

/// %.17g round-trips every finite double exactly through strtod, the
/// property record -> replay -> record byte-identity relies on.
std::string doubleField(const char *Key, double V) {
  return format("\"%s\":%.17g", Key, V);
}

std::string boolField(const char *Key, bool V) {
  return format("\"%s\":%s", Key, V ? "true" : "false");
}

/// Appends "," followed by \p Field. Separate statements, not operator+ on
/// a string literal: GCC's -Wrestrict mis-fires on that pattern.
void addField(std::string &Out, const std::string &Field) {
  Out += ',';
  Out += Field;
}

/// The "run_spec" meta object: fixed key order, every field always present,
/// so a spec round-trips byte for byte.
std::string runSpecObject(const RunSpec &Spec) {
  std::string Out = "{";
  Out += doubleField("scale", Spec.Scale);
  Out += ",\"dimensions\":";
  Out += quoted(Spec.Dimensions);
  Out += ",\"chunks\":";
  Out += quoted(Spec.Chunks);
  addField(Out, intField("sampling_ns", Spec.SamplingNanos));
  addField(Out, intField("production_ns", Spec.ProductionNanos));
  addField(Out, boolField("cutoff", Spec.Cutoff));
  addField(Out, boolField("ordering", Spec.Ordering));
  addField(Out, boolField("spanning", Spec.Spanning));
  addField(Out, uintField("repeats", Spec.Repeats));
  Out += ",\"aggregate\":";
  Out += quoted(Spec.Aggregate);
  addField(Out, doubleField("hysteresis", Spec.Hysteresis));
  addField(Out, doubleField("drift", Spec.Drift));
  addField(Out, intField("slice_ns", Spec.SliceNanos));
  addField(Out, uintField("quarantine", Spec.QuarantineStrikes));
  addField(Out, uintField("quarantine_window", Spec.QuarantineWindow));
  addField(Out, doubleField("quarantine_limit", Spec.QuarantineLimit));
  addField(Out, uintField("quarantine_backoff", Spec.QuarantineBackoff));
  addField(Out, uintField("watchdog", Spec.Watchdog));
  addField(Out, doubleField("watchdog_limit", Spec.WatchdogLimit));
  Out += ",\"sampler\":";
  Out += quoted(Spec.Sampler);
  addField(Out, doubleField("search_budget", Spec.SearchBudget));
  addField(Out, doubleField("ucb_explore", Spec.UcbExplore));
  Out += ",\"perturb\":";
  Out += quoted(Spec.PerturbSpec);
  Out += ",\"traffic\":";
  Out += quoted(Spec.TrafficSpec);
  Out += ",\"cost\":";
  Out += quoted(Spec.CostOverrides);
  addField(Out, doubleField("timescale", Spec.TimeScale));
  Out += "}";
  return Out;
}

bool jsonBool(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.find(Key);
  return V && V->asBool();
}

RunSpec parseRunSpec(const JsonValue &Obj) {
  RunSpec Spec;
  Spec.Present = true;
  Spec.Scale = Obj.getNumber("scale", 1.0);
  Spec.Dimensions = Obj.getString("dimensions");
  Spec.Chunks = Obj.getString("chunks");
  Spec.SamplingNanos = Obj.getInt("sampling_ns");
  Spec.ProductionNanos = Obj.getInt("production_ns");
  Spec.Cutoff = jsonBool(Obj, "cutoff");
  Spec.Ordering = jsonBool(Obj, "ordering");
  Spec.Spanning = jsonBool(Obj, "spanning");
  Spec.Repeats = static_cast<unsigned>(Obj.getInt("repeats", 1));
  Spec.Aggregate = Obj.getString("aggregate", "mean");
  Spec.Hysteresis = Obj.getNumber("hysteresis");
  Spec.Drift = Obj.getNumber("drift");
  Spec.SliceNanos = Obj.getInt("slice_ns");
  Spec.QuarantineStrikes = static_cast<unsigned>(Obj.getInt("quarantine"));
  Spec.QuarantineWindow =
      static_cast<unsigned>(Obj.getInt("quarantine_window", 8));
  Spec.QuarantineLimit = Obj.getNumber("quarantine_limit", 1.0);
  Spec.QuarantineBackoff =
      static_cast<unsigned>(Obj.getInt("quarantine_backoff", 4));
  Spec.Watchdog = static_cast<unsigned>(Obj.getInt("watchdog"));
  Spec.WatchdogLimit = Obj.getNumber("watchdog_limit", 0.9);
  Spec.Sampler = Obj.getString("sampler", "exhaustive");
  Spec.SearchBudget = Obj.getNumber("search_budget", 0.5);
  Spec.UcbExplore = Obj.getNumber("ucb_explore", 2.0);
  Spec.PerturbSpec = Obj.getString("perturb");
  Spec.TrafficSpec = Obj.getString("traffic");
  Spec.CostOverrides = Obj.getString("cost");
  Spec.TimeScale = Obj.getNumber("timescale");
  return Spec;
}

std::string decisionLine(const DecisionEvent &E) {
  std::string Out = "{\"type\":\"decision\",\"kind\":";
  Out += quoted(decisionKindName(E.Kind));
  addField(Out, intField("t_ns", E.TimeNanos));
  Out += ",\"section\":";
  Out += quoted(E.Section);
  addField(Out, uintField("version", E.Version));
  Out += ",\"label\":";
  Out += quoted(E.Label);
  addField(Out, overheadField(E.Overhead));
  addField(Out, uintField("repeats", E.Repeats));
  addField(Out, uintField("degenerate", E.Degenerate));
  if (E.Kind == DecisionKind::Switch) {
    Out += ",\"reason\":";
    Out += quoted(switchReasonName(E.Reason));
  }
  Out += "}";
  return Out;
}

std::string sectionLine(const SectionRecord &S) {
  std::string Out = "{\"type\":\"section\",\"section\":";
  Out += quoted(S.Section);
  addField(Out, intField("start_ns", S.StartNanos));
  addField(Out, intField("end_ns", S.EndNanos));
  addField(Out, uintField("pairs", S.AcquireReleasePairs));
  addField(Out, intField("lockop_ns", S.LockOpNanos));
  addField(Out, intField("wait_ns", S.WaitNanos));
  addField(Out, intField("sched_ns", S.SchedNanos));
  addField(Out, intField("exec_ns", S.ExecNanos));
  addField(Out, uintField("sampling_phases", S.SamplingPhases));
  addField(Out, uintField("sampled_intervals", S.SampledIntervals));
  addField(Out, uintField("degenerate", S.DegenerateIntervals));
  addField(Out, uintField("early_resamples", S.EarlyResamples));
  addField(Out, uintField("hysteresis_holds", S.HysteresisHolds));
  Out += "}";
  return Out;
}

std::string lockLine(const LockRecord &L) {
  std::string Out = "{\"type\":\"lock\",\"section\":";
  Out += quoted(L.Section);
  addField(Out, uintField("object", L.Object));
  addField(Out, uintField("acquires", L.Acquires));
  addField(Out, uintField("contended", L.Contended));
  addField(Out, intField("wait_ns", L.WaitNanos));
  Out += "}";
  return Out;
}

} // namespace

std::string obs::toJsonl(const RunTrace &Trace) {
  std::string Out = "{\"type\":\"meta\"";
  addField(Out, intField("schema", TraceSchemaVersion));
  // Build provenance; readers ignore unknown keys, so old parsers accept it.
  Out += ",\"build\":";
  Out += quoted(buildHash());
  Out += ",\"app\":";
  Out += quoted(Trace.Meta.App);
  Out += ",\"policy\":";
  Out += quoted(Trace.Meta.Policy);
  addField(Out, uintField("procs", Trace.Meta.Procs));
  addField(Out, intField("total_ns", Trace.Meta.TotalNanos));
  // Additive within schema 1 (like the machine fields): absent means "sim".
  Out += ",\"backend\":";
  Out += quoted(Trace.Meta.Backend.empty() ? "sim" : Trace.Meta.Backend);
  if (!Trace.Meta.Machine.empty()) {
    Out += ",\"machine\":";
    Out += quoted(Trace.Meta.Machine);
    Out += ",\"machine_params\":";
    Out += quoted(Trace.Meta.MachineParams);
  }
  // Self-description for replay (additive within schema 1, like the machine
  // fields): the full recorded run configuration.
  if (Trace.Meta.Spec.Present) {
    Out += ",\"run_spec\":";
    Out += runSpecObject(Trace.Meta.Spec);
  }
  Out += "}\n";
  for (const DecisionEvent &E : Trace.Decisions) {
    Out += decisionLine(E);
    Out += '\n';
  }
  for (const SectionRecord &S : Trace.Sections) {
    Out += sectionLine(S);
    Out += '\n';
  }
  for (const LockRecord &L : Trace.Locks) {
    Out += lockLine(L);
    Out += '\n';
  }
  return Out;
}

std::optional<RunTrace> obs::parseJsonl(const std::string &Text,
                                        std::string &Error) {
  RunTrace Trace;
  // toJsonl terminates every record with a newline, so a non-empty final
  // line without one can only be a file cut mid-write (e.g. a crashed or
  // still-running recorder). Reject it up front with the line number: the
  // alternative -- parsing whatever prefix survived -- silently drops an
  // unknowable number of trailing events.
  const size_t LastNl = Text.find_last_of('\n');
  const std::string Tail =
      trim(LastNl == std::string::npos ? Text : Text.substr(LastNl + 1));
  if (!Tail.empty()) {
    const size_t FinalLine =
        1 + static_cast<size_t>(std::count(Text.begin(), Text.end(), '\n'));
    Error = format("line %zu: truncated record (no trailing newline; file "
                   "cut mid-write?)",
                   FinalLine);
    return std::nullopt;
  }
  bool SawMeta = false;
  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    const std::string Line = trim(Text.substr(Pos, End - Pos));
    Pos = End + 1;
    ++LineNo;
    if (Line.empty())
      continue;

    std::string JsonError;
    std::optional<JsonValue> V = parseJson(Line, JsonError);
    if (!V) {
      Error = format("line %zu: %s", LineNo, JsonError.c_str());
      return std::nullopt;
    }
    if (V->kind() != JsonValue::Kind::Object) {
      Error = format("line %zu: expected a JSON object", LineNo);
      return std::nullopt;
    }
    const std::string Type = V->getString("type");

    if (Type == "meta") {
      const int64_t Schema = V->getInt("schema", -1);
      if (Schema != TraceSchemaVersion) {
        Error = format("line %zu: unsupported trace schema %lld", LineNo,
                       static_cast<long long>(Schema));
        return std::nullopt;
      }
      Trace.Meta.App = V->getString("app");
      Trace.Meta.Policy = V->getString("policy");
      Trace.Meta.Procs = static_cast<unsigned>(V->getInt("procs"));
      Trace.Meta.TotalNanos = V->getInt("total_ns");
      Trace.Meta.Machine = V->getString("machine");
      Trace.Meta.MachineParams = V->getString("machine_params");
      Trace.Meta.Backend = V->getString("backend");
      if (Trace.Meta.Backend.empty())
        Trace.Meta.Backend = "sim";
      if (const JsonValue *RS = V->find("run_spec"))
        if (RS->kind() == JsonValue::Kind::Object)
          Trace.Meta.Spec = parseRunSpec(*RS);
      SawMeta = true;
    } else if (Type == "decision") {
      DecisionEvent E;
      const std::optional<DecisionKind> Kind =
          parseDecisionKind(V->getString("kind"));
      if (!Kind) {
        Error = format("line %zu: unknown decision kind '%s'", LineNo,
                       V->getString("kind").c_str());
        return std::nullopt;
      }
      E.Kind = *Kind;
      E.TimeNanos = V->getInt("t_ns");
      E.Section = V->getString("section");
      E.Version = static_cast<unsigned>(V->getInt("version"));
      E.Label = V->getString("label");
      const JsonValue *Overhead = V->find("overhead");
      E.Overhead = Overhead && Overhead->kind() == JsonValue::Kind::Number
                       ? Overhead->asNumber()
                       : std::nan("");
      E.Repeats = static_cast<unsigned>(V->getInt("repeats"));
      E.Degenerate = static_cast<unsigned>(V->getInt("degenerate"));
      if (E.Kind == DecisionKind::Switch) {
        const std::optional<SwitchReason> Reason =
            parseSwitchReason(V->getString("reason"));
        if (!Reason || *Reason == SwitchReason::None) {
          Error = format("line %zu: switch decision without a valid reason",
                         LineNo);
          return std::nullopt;
        }
        E.Reason = *Reason;
      }
      Trace.Decisions.push_back(std::move(E));
    } else if (Type == "section") {
      SectionRecord S;
      S.Section = V->getString("section");
      S.StartNanos = V->getInt("start_ns");
      S.EndNanos = V->getInt("end_ns");
      S.AcquireReleasePairs = static_cast<uint64_t>(V->getInt("pairs"));
      S.LockOpNanos = V->getInt("lockop_ns");
      S.WaitNanos = V->getInt("wait_ns");
      S.SchedNanos = V->getInt("sched_ns");
      S.ExecNanos = V->getInt("exec_ns");
      S.SamplingPhases = static_cast<unsigned>(V->getInt("sampling_phases"));
      S.SampledIntervals =
          static_cast<unsigned>(V->getInt("sampled_intervals"));
      S.DegenerateIntervals = static_cast<unsigned>(V->getInt("degenerate"));
      S.EarlyResamples = static_cast<unsigned>(V->getInt("early_resamples"));
      S.HysteresisHolds =
          static_cast<unsigned>(V->getInt("hysteresis_holds"));
      Trace.Sections.push_back(std::move(S));
    } else if (Type == "lock") {
      LockRecord L;
      L.Section = V->getString("section");
      L.Object = static_cast<uint64_t>(V->getInt("object"));
      L.Acquires = static_cast<uint64_t>(V->getInt("acquires"));
      L.Contended = static_cast<uint64_t>(V->getInt("contended"));
      L.WaitNanos = V->getInt("wait_ns");
      Trace.Locks.push_back(std::move(L));
    }
    // Unknown types are skipped: forward compatibility.
  }
  if (!SawMeta) {
    Error = "trace has no meta line";
    return std::nullopt;
  }
  return Trace;
}

std::string obs::toChromeTrace(const RunTrace &Trace) {
  // Stable thread id per section, in first-appearance order.
  std::map<std::string, unsigned> Tids;
  auto TidOf = [&](const std::string &Section) {
    auto It = Tids.find(Section);
    if (It != Tids.end())
      return It->second;
    const unsigned Tid = static_cast<unsigned>(Tids.size()) + 1;
    Tids.emplace(Section, Tid);
    return Tid;
  };
  auto Micros = [](rt::Nanos N) {
    return format("%.3f", static_cast<double>(N) / 1000.0);
  };

  std::vector<std::string> Events;
  Events.push_back(
      format("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
             "\"args\":{\"name\":\"dynfb %s (%s, %u procs)\"}}",
             jsonEscape(Trace.Meta.App).c_str(),
             jsonEscape(Trace.Meta.Policy).c_str(), Trace.Meta.Procs));

  for (const SectionRecord &S : Trace.Sections)
    Events.push_back(format(
        "{\"name\":\"%s\",\"cat\":\"section\",\"ph\":\"X\",\"ts\":%s,"
        "\"dur\":%s,\"pid\":1,\"tid\":%u,\"args\":{\"pairs\":%llu,"
        "\"lockop_ns\":%lld,\"wait_ns\":%lld,\"exec_ns\":%lld}}",
        jsonEscape(S.Section).c_str(), Micros(S.StartNanos).c_str(),
        Micros(S.EndNanos - S.StartNanos).c_str(), TidOf(S.Section),
        static_cast<unsigned long long>(S.AcquireReleasePairs),
        static_cast<long long>(S.LockOpNanos),
        static_cast<long long>(S.WaitNanos),
        static_cast<long long>(S.ExecNanos)));

  for (const DecisionEvent &E : Trace.Decisions) {
    const unsigned Tid = TidOf(E.Section);
    if (E.Kind == DecisionKind::Sample) {
      // Sampled overheads as a per-section counter track, one series per
      // version label. Skip unmeasurable samples: a counter needs a number.
      if (std::isfinite(E.Overhead))
        Events.push_back(format(
            "{\"name\":\"overhead %s\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,"
            "\"args\":{\"%s\":%.6f}}",
            jsonEscape(E.Section).c_str(), Micros(E.TimeNanos).c_str(),
            jsonEscape(E.Label).c_str(), E.Overhead));
      continue;
    }
    std::string Name;
    switch (E.Kind) {
    case DecisionKind::Sample:
      break; // Handled above.
    case DecisionKind::Switch:
      Name = format("switch %s [%s]", E.Label.c_str(),
                    switchReasonName(E.Reason));
      break;
    case DecisionKind::DriftResample:
      Name = format("drift resample (%s)", E.Label.c_str());
      break;
    case DecisionKind::Quarantine:
      Name = format("quarantine %s", E.Label.c_str());
      break;
    case DecisionKind::Reprobe:
      Name = format("reprobe %s", E.Label.c_str());
      break;
    case DecisionKind::WatchdogResample:
      Name = format("watchdog resample (%s)", E.Label.c_str());
      break;
    case DecisionKind::Degraded:
      Name = format("degraded: pinned %s", E.Label.c_str());
      break;
    case DecisionKind::Prune:
      Name = format("prune %s (round %u)", E.Label.c_str(), E.Repeats);
      break;
    case DecisionKind::Promote:
      Name = format("promote %s (round %u)", E.Label.c_str(), E.Repeats);
      break;
    }
    Events.push_back(
        format("{\"name\":\"%s\",\"cat\":\"decision\",\"ph\":\"i\","
               "\"ts\":%s,\"pid\":1,\"tid\":%u,\"s\":\"t\"}",
               jsonEscape(Name).c_str(), Micros(E.TimeNanos).c_str(), Tid));
  }

  for (const auto &[Section, Tid] : Tids)
    Events.push_back(
        format("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":%u,\"args\":{\"name\":\"section %s\"}}",
               Tid, jsonEscape(Section).c_str()));

  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (size_t I = 0; I < Events.size(); ++I) {
    Out += Events[I];
    Out += I + 1 < Events.size() ? ",\n" : "\n";
  }
  Out += "]}\n";
  return Out;
}
