//===- obs/Json.h - Minimal JSON reader/writer helpers ----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON value, recursive-descent parser and string
/// escaper, sized for the observability exchange formats (JSONL decision
/// traces, Chrome trace_event files, metrics dumps). Not a general-purpose
/// JSON library: numbers are doubles, object key order is preserved, and
/// duplicate keys keep the first occurrence.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_OBS_JSON_H
#define DYNFB_OBS_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dynfb::obs {

/// One parsed JSON value.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  /// Typed accessors; the caller is responsible for checking kind() (an
  /// off-kind access returns the type's zero value, never traps).
  bool asBool() const { return K == Kind::Bool && B; }
  double asNumber() const { return K == Kind::Number ? Num : 0.0; }
  int64_t asInt() const { return static_cast<int64_t>(asNumber()); }
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &items() const { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Object lookup; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;

  /// Convenience object accessors with defaults.
  double getNumber(const std::string &Key, double Default = 0.0) const;
  int64_t getInt(const std::string &Key, int64_t Default = 0) const;
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool V);
  static JsonValue number(double V);
  static JsonValue string(std::string V);
  static JsonValue array(std::vector<JsonValue> V);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). On failure returns nullopt and sets \p Error to a one-line
/// diagnostic with a byte offset.
std::optional<JsonValue> parseJson(const std::string &Text,
                                   std::string &Error);

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included).
std::string jsonEscape(const std::string &S);

} // namespace dynfb::obs

#endif // DYNFB_OBS_JSON_H
