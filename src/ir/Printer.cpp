//===- ir/Printer.cpp -----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

using namespace dynfb;
using namespace dynfb::ir;

std::string ir::printReceiver(const Receiver &R, const Method &M) {
  switch (R.Kind) {
  case RecvKind::This:
    return "this";
  case RecvKind::Param:
    return M.param(R.ParamIdx).Name;
  case RecvKind::ParamIndexed:
    return M.param(R.ParamIdx).Name + "[i" + format("%u", R.LoopId) + "]";
  }
  DYNFB_UNREACHABLE("invalid receiver kind");
}

std::string ir::printExpr(const Expr *E, const Method &Context) {
  switch (E->kind()) {
  case ExprKind::FieldRead: {
    const auto &FR = exprCast<FieldReadExpr>(E);
    const ClassDecl *Cls = nullptr;
    switch (FR.Recv.Kind) {
    case RecvKind::This:
      Cls = Context.owner();
      break;
    case RecvKind::Param:
    case RecvKind::ParamIndexed:
      Cls = Context.param(FR.Recv.ParamIdx).ObjClass;
      break;
    }
    const std::string FieldName =
        Cls ? Cls->field(FR.Field).Name : format("f%u", FR.Field);
    return printReceiver(FR.Recv, Context) + "->" + FieldName;
  }
  case ExprKind::ParamRead:
    return Context.param(exprCast<ParamReadExpr>(E).ParamIdx).Name;
  case ExprKind::ConstFloat:
    return format("%g", exprCast<ConstFloatExpr>(E).Value);
  case ExprKind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    return "(" + printExpr(B.LHS, Context) + " " + binOpName(B.Op) + " " +
           printExpr(B.RHS, Context) + ")";
  }
  case ExprKind::ExternCall: {
    const auto &C = exprCast<ExternCallExpr>(E);
    std::string Out = C.Name + "(";
    for (size_t I = 0; I < C.Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += printExpr(C.Args[I], Context);
    }
    return Out + ")";
  }
  }
  DYNFB_UNREACHABLE("invalid expression kind");
}

static void printStmtList(const std::vector<Stmt *> &List, const Method &M,
                          unsigned Indent, std::string &Out) {
  const std::string Pad(Indent, ' ');
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Compute: {
      const auto &C = stmtCast<ComputeStmt>(S);
      Out += Pad + format("compute #%u", C.CostClass);
      if (!C.Reads.empty()) {
        Out += " reads(";
        for (size_t I = 0; I < C.Reads.size(); ++I) {
          if (I != 0)
            Out += ", ";
          Out += printExpr(C.Reads[I], M);
        }
        Out += ")";
      }
      Out += ";\n";
      break;
    }
    case StmtKind::Update: {
      const auto &U = stmtCast<UpdateStmt>(S);
      const ClassDecl *Cls = U.Recv.Kind == RecvKind::This
                                 ? M.owner()
                                 : M.param(U.Recv.ParamIdx).ObjClass;
      const std::string FieldName =
          Cls ? Cls->field(U.Field).Name : format("f%u", U.Field);
      const std::string Target =
          printReceiver(U.Recv, M) + "->" + FieldName;
      if (U.Op == BinOp::Assign)
        Out += Pad + Target + " = " + printExpr(U.Value, M) + ";\n";
      else
        Out += Pad + Target + " = " + Target + " " + binOpName(U.Op) + " " +
               printExpr(U.Value, M) + ";\n";
      break;
    }
    case StmtKind::Acquire:
      Out += Pad + printReceiver(stmtCast<AcquireStmt>(S).Recv, M) +
             "->mutex.acquire();\n";
      break;
    case StmtKind::Release:
      Out += Pad + printReceiver(stmtCast<ReleaseStmt>(S).Recv, M) +
             "->mutex.release();\n";
      break;
    case StmtKind::Call: {
      const auto &C = stmtCast<CallStmt>(S);
      Out += Pad + printReceiver(C.Recv, M) + "->" + C.callee()->name() + "(";
      for (size_t I = 0; I < C.ObjArgs.size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += printReceiver(C.ObjArgs[I], M);
      }
      Out += ");\n";
      break;
    }
    case StmtKind::Loop: {
      const auto &L = stmtCast<LoopStmt>(S);
      Out += Pad + format("for i%u in 0..n%u {\n", L.LoopId, L.LoopId);
      printStmtList(L.Body, M, Indent + 2, Out);
      Out += Pad + "}\n";
      break;
    }
    }
  }
}

std::string ir::printMethod(const Method &M) {
  std::string Out =
      "void " + M.owner()->name() + "::" + M.name() + "(";
  for (size_t I = 0; I < M.params().size(); ++I) {
    if (I != 0)
      Out += ", ";
    const Param &P = M.param(static_cast<unsigned>(I));
    if (P.isObject())
      Out += P.ObjClass->name() + (P.IsArray ? " " + P.Name + "[]"
                                             : " *" + P.Name);
    else
      Out += "double " + P.Name;
  }
  Out += ") {\n";
  printStmtList(M.body(), M, 2, Out);
  Out += "}\n";
  return Out;
}

std::string ir::printModule(const Module &M, bool IncludeSynthetic) {
  std::string Out = "module " + M.name() + "\n\n";
  for (const auto &C : M.classes()) {
    Out += "class " + C->name() + " { lock mutex; ";
    for (const Field &F : C->fields())
      Out += "double " + F.Name + "; ";
    Out += "};\n";
  }
  Out += "\n";
  for (const auto &Meth : M.methods()) {
    if (!IncludeSynthetic && Meth->isSynthetic())
      continue;
    Out += printMethod(*Meth);
    Out += "\n";
  }
  for (const ParallelSection &S : M.sections())
    Out += "parallel section " + S.Name + ": for all objects o: o->" +
           S.IterMethod->name() + "(...)\n";
  return Out;
}
