//===- ir/Clone.h - Deep cloning of method closures ------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-clones a method together with every method it (transitively) calls,
/// producing fresh synthetic methods the synchronization optimizer can
/// mutate without disturbing the original program. Loop ids and compute
/// cost classes are preserved so data bindings remain valid across versions.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_CLONE_H
#define DYNFB_IR_CLONE_H

#include "ir/Module.h"

#include <map>
#include <string>

namespace dynfb::ir {

/// Result of cloning a method closure.
struct CloneResult {
  Method *Root = nullptr;
  std::map<const Method *, Method *> Map; ///< original -> clone
};

/// Clones the closure rooted at \p Root into \p M. Clone names get
/// \p Suffix appended. Calls inside clones are retargeted to the cloned
/// callees. Requires the closure to be acyclic (no recursion), which holds
/// for all programs in this repository and is asserted.
CloneResult cloneMethodClosure(Module &M, const Method *Root,
                               const std::string &Suffix);

/// Clones a single statement tree, retargeting calls through \p CalleeMap
/// (calls to methods absent from the map keep their original target).
Stmt *cloneStmt(Module &M, const Stmt *S,
                const std::map<const Method *, Method *> &CalleeMap);

} // namespace dynfb::ir

#endif // DYNFB_IR_CLONE_H
