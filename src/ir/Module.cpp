//===- ir/Module.cpp ------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

using namespace dynfb::ir;

template <typename T, typename... ArgTs>
T *Module::allocStmt(ArgTs &&...Args) {
  auto Owned = std::make_unique<T>(std::forward<ArgTs>(Args)...);
  T *Raw = Owned.get();
  StmtArena.push_back(std::move(Owned));
  return Raw;
}

template <typename T, typename... ArgTs>
const T *Module::allocExpr(ArgTs &&...Args) {
  auto Owned = std::make_unique<T>(std::forward<ArgTs>(Args)...);
  const T *Raw = Owned.get();
  ExprArena.push_back(std::move(Owned));
  return Raw;
}

ClassDecl *Module::createClass(std::string ClassName) {
  Classes.push_back(
      std::make_unique<ClassDecl>(NextClassId++, std::move(ClassName)));
  return Classes.back().get();
}

Method *Module::createMethod(std::string MethodName, const ClassDecl *Owner) {
  Methods.push_back(
      std::make_unique<Method>(NextMethodId++, std::move(MethodName), Owner));
  return Methods.back().get();
}

ParallelSection *Module::addSection(std::string SectionName,
                                    const Method *IterMethod) {
  Sections.push_back(ParallelSection{std::move(SectionName), IterMethod});
  return &Sections.back();
}

ComputeStmt *Module::createCompute(unsigned CostClass,
                                   std::vector<const Expr *> Reads) {
  return allocStmt<ComputeStmt>(CostClass, std::move(Reads));
}

UpdateStmt *Module::createUpdate(Receiver Recv, unsigned Field, BinOp Op,
                                 const Expr *Value) {
  return allocStmt<UpdateStmt>(Recv, Field, Op, Value);
}

AcquireStmt *Module::createAcquire(Receiver Recv) {
  return allocStmt<AcquireStmt>(Recv);
}

ReleaseStmt *Module::createRelease(Receiver Recv) {
  return allocStmt<ReleaseStmt>(Recv);
}

CallStmt *Module::createCall(const Method *Callee, Receiver Recv,
                             std::vector<Receiver> ObjArgs) {
  return allocStmt<CallStmt>(Callee, Recv, std::move(ObjArgs));
}

LoopStmt *Module::createLoop(unsigned LoopId, std::vector<Stmt *> Body) {
  return allocStmt<LoopStmt>(LoopId, std::move(Body));
}

const FieldReadExpr *Module::exprFieldRead(Receiver Recv, unsigned Field) {
  return allocExpr<FieldReadExpr>(Recv, Field);
}

const ParamReadExpr *Module::exprParamRead(unsigned ParamIdx) {
  return allocExpr<ParamReadExpr>(ParamIdx);
}

const ConstFloatExpr *Module::exprConst(double Value) {
  return allocExpr<ConstFloatExpr>(Value);
}

const BinaryExpr *Module::exprBinary(BinOp Op, const Expr *LHS,
                                     const Expr *RHS) {
  return allocExpr<BinaryExpr>(Op, LHS, RHS);
}

const ExternCallExpr *Module::exprExternCall(std::string FnName,
                                             std::vector<const Expr *> Args) {
  return allocExpr<ExternCallExpr>(std::move(FnName), std::move(Args));
}

const Method *Module::findMethod(const std::string &MethodName) const {
  for (const auto &M : Methods)
    if (M->name() == MethodName)
      return M.get();
  return nullptr;
}

const ParallelSection *
Module::findSection(const std::string &SectionName) const {
  for (const ParallelSection &S : Sections)
    if (S.Name == SectionName)
      return &S;
  return nullptr;
}
