//===- ir/Builder.h - Fluent method-body construction ----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MethodBuilder assembles method bodies with an insertion-point stack, in
/// the spirit of llvm::IRBuilder. Applications author their IR programs
/// through this interface; explicit Acquire/Release statements are normally
/// inserted later by the synchronization passes, not by hand.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_BUILDER_H
#define DYNFB_IR_BUILDER_H

#include "ir/Module.h"

#include <vector>

namespace dynfb::ir {

/// Builds the body of one method. Loops are opened with beginLoop() (which
/// returns the module-unique loop id usable in ParamIndexed receivers and
/// data bindings) and closed with endLoop().
class MethodBuilder {
public:
  MethodBuilder(Module &M, Method *Target);
  ~MethodBuilder();

  /// Appends a pure computation with a fresh module-unique cost class;
  /// returns the cost class so the data binding can price it.
  unsigned compute(std::vector<const Expr *> Reads = {});

  /// Appends a pure computation with an existing cost class (for several
  /// sites sharing one kernel).
  void computeWithClass(unsigned CostClass,
                        std::vector<const Expr *> Reads = {});

  /// Appends the commuting update `recv->field = recv->field <op> value`.
  void update(Receiver Recv, unsigned Field, BinOp Op, const Expr *Value);

  /// Appends a method invocation.
  void call(const Method *Callee, Receiver Recv,
            std::vector<Receiver> ObjArgs = {});

  /// Opens a counted loop and returns its module-unique id. Statements
  /// appended until the matching endLoop() form the loop body.
  unsigned beginLoop();

  /// Closes the innermost open loop.
  void endLoop();

  /// Appends an explicit acquire/release (used by tests and passes; app
  /// code normally relies on the default-placement pass).
  void acquire(Receiver Recv);
  void release(Receiver Recv);

private:
  std::vector<Stmt *> &current();

  Module &M;
  Method *const Target;
  std::vector<LoopStmt *> OpenLoops;
};

} // namespace dynfb::ir

#endif // DYNFB_IR_BUILDER_H
