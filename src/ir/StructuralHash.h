//===- ir/StructuralHash.h - Structural equality of methods ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural hashing and equality over method closures. The multi-version
/// generator uses them to (a) share methods that are identical across
/// synchronization policies -- the paper's "closed subgraphs of the call
/// graph that are the same for all optimization policies" (Section 4.2) --
/// and (b) detect policy-equivalent section versions (e.g. Water INTERF's
/// Bounded and Aggressive versions).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_STRUCTURALHASH_H
#define DYNFB_IR_STRUCTURALHASH_H

#include "ir/Module.h"

#include <cstdint>

namespace dynfb::ir {

/// Hash of one expression tree.
uint64_t structuralHash(const Expr *E);

/// Hash of one statement tree. Call targets contribute their own structural
/// hash (closures must be acyclic, as everywhere in this repository).
uint64_t structuralHash(const Stmt *S);

/// Hash of a method: owner class, parameter shapes and body.
uint64_t structuralHash(const Method &M);

/// Deep structural equality of expression trees.
bool structurallyEqual(const Expr *A, const Expr *B);

/// Deep structural equality of statement trees (calls compare by callee
/// structural equality).
bool structurallyEqual(const Stmt *A, const Stmt *B);

/// Deep structural equality of methods: same owner, same parameter shapes,
/// structurally equal bodies. Names are ignored (variants differ only in
/// their suffixes).
bool structurallyEqual(const Method &A, const Method &B);

} // namespace dynfb::ir

#endif // DYNFB_IR_STRUCTURALHASH_H
