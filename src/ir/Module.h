//===- ir/Module.h - Top-level IR container --------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Module owns every IR entity (classes, methods, statements,
/// expressions) in arena style and hands out stable pointers. It also
/// allocates module-unique loop ids so bindings survive cloning.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_MODULE_H
#define DYNFB_IR_MODULE_H

#include "ir/Decl.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace dynfb::ir {

/// Arena-owning container of one program.
class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &name() const { return Name; }

  /// Creates a class declaration owned by this module.
  ClassDecl *createClass(std::string ClassName);

  /// Creates a method owned by this module.
  Method *createMethod(std::string MethodName, const ClassDecl *Owner);

  /// Allocates a fresh module-unique loop id.
  unsigned nextLoopId() { return NextLoopId++; }

  /// Allocates a fresh module-unique compute cost class.
  unsigned nextCostClass() { return NextCostClass++; }

  /// Marks \p Id as used so future nextLoopId() calls stay unique (the
  /// textual parser reconstructs printed ids).
  void reserveLoopId(unsigned Id) {
    if (Id >= NextLoopId)
      NextLoopId = Id + 1;
  }

  /// Marks \p CC as used so future nextCostClass() calls stay unique.
  void reserveCostClass(unsigned CC) {
    if (CC >= NextCostClass)
      NextCostClass = CC + 1;
  }

  /// Registers a parallel section. The entry method's receiver class is the
  /// iteration class.
  ParallelSection *addSection(std::string SectionName,
                              const Method *IterMethod);

  /// Statement factories. All returned pointers stay valid for the module's
  /// lifetime.
  ComputeStmt *createCompute(unsigned CostClass,
                             std::vector<const Expr *> Reads = {});
  UpdateStmt *createUpdate(Receiver Recv, unsigned Field, BinOp Op,
                           const Expr *Value);
  AcquireStmt *createAcquire(Receiver Recv);
  ReleaseStmt *createRelease(Receiver Recv);
  CallStmt *createCall(const Method *Callee, Receiver Recv,
                       std::vector<Receiver> ObjArgs = {});
  LoopStmt *createLoop(unsigned LoopId, std::vector<Stmt *> Body);

  /// Expression factories.
  const FieldReadExpr *exprFieldRead(Receiver Recv, unsigned Field);
  const ParamReadExpr *exprParamRead(unsigned ParamIdx);
  const ConstFloatExpr *exprConst(double Value);
  const BinaryExpr *exprBinary(BinOp Op, const Expr *LHS, const Expr *RHS);
  const ExternCallExpr *exprExternCall(std::string FnName,
                                       std::vector<const Expr *> Args);

  const std::vector<std::unique_ptr<ClassDecl>> &classes() const {
    return Classes;
  }
  const std::vector<std::unique_ptr<Method>> &methods() const {
    return Methods;
  }
  const std::vector<ParallelSection> &sections() const { return Sections; }

  /// Finds a method by name; returns nullptr if absent.
  const Method *findMethod(const std::string &MethodName) const;

  /// Finds a section by name; returns nullptr if absent.
  const ParallelSection *findSection(const std::string &SectionName) const;

private:
  template <typename T, typename... ArgTs> T *allocStmt(ArgTs &&...Args);
  template <typename T, typename... ArgTs>
  const T *allocExpr(ArgTs &&...Args);

  const std::string Name;
  std::vector<std::unique_ptr<ClassDecl>> Classes;
  std::vector<std::unique_ptr<Method>> Methods;
  std::vector<ParallelSection> Sections;
  std::deque<std::unique_ptr<Stmt>> StmtArena;
  std::deque<std::unique_ptr<Expr>> ExprArena;
  unsigned NextLoopId = 0;
  unsigned NextCostClass = 0;
  unsigned NextClassId = 0;
  unsigned NextMethodId = 0;
};

} // namespace dynfb::ir

#endif // DYNFB_IR_MODULE_H
