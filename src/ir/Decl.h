//===- ir/Decl.h - Classes, methods and parallel sections ------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations of the object-based IR: classes (whose instances the
/// compiler augments with a mutual exclusion lock, paper Section 2),
/// methods, and parallel sections (one parallel loop whose iteration body is
/// a method invocation, paper Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_DECL_H
#define DYNFB_IR_DECL_H

#include "ir/Stmt.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace dynfb::ir {

/// A scalar instance field of a class.
struct Field {
  std::string Name;
};

class ClassDecl;

/// A formal parameter of a method. Object-typed parameters carry their class
/// and arity (single object or array of objects); scalar parameters carry
/// neither and are referenced only from expressions.
struct Param {
  std::string Name;
  const ClassDecl *ObjClass = nullptr; ///< Null for scalar parameters.
  bool IsArray = false; ///< True for object-array parameters (e.g. body b[]).

  bool isObject() const { return ObjClass != nullptr; }
};

/// A class declaration. Every instance carries an implicit mutual exclusion
/// lock in addition to its fields, mirroring the paper's generated code.
class ClassDecl {
public:
  ClassDecl(unsigned Id, std::string Name)
      : Id(Id), Name(std::move(Name)) {}

  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }

  /// Adds a field and returns its index.
  unsigned addField(std::string FieldName) {
    Fields.push_back(Field{std::move(FieldName)});
    return static_cast<unsigned>(Fields.size() - 1);
  }

  const std::vector<Field> &fields() const { return Fields; }
  const Field &field(unsigned Idx) const {
    assert(Idx < Fields.size() && "field index out of range");
    return Fields[Idx];
  }

private:
  const unsigned Id;
  const std::string Name;
  std::vector<Field> Fields;
};

/// A method: receiver class, formal parameters and a statement body.
/// Synthetic methods are variants produced by the synchronization optimizer
/// (e.g. lock-stripped clones).
class Method {
public:
  Method(unsigned Id, std::string Name, const ClassDecl *Owner)
      : Id(Id), Name(std::move(Name)), Owner(Owner) {
    assert(Owner && "method without receiver class");
  }

  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }
  const ClassDecl *owner() const { return Owner; }

  /// Adds a parameter and returns its index.
  unsigned addParam(Param P) {
    Params.push_back(std::move(P));
    return static_cast<unsigned>(Params.size() - 1);
  }

  const std::vector<Param> &params() const { return Params; }
  const Param &param(unsigned Idx) const {
    assert(Idx < Params.size() && "param index out of range");
    return Params[Idx];
  }

  std::vector<Stmt *> &body() { return Body; }
  const std::vector<Stmt *> &body() const { return Body; }

  bool isSynthetic() const { return Synthetic; }
  void setSynthetic() { Synthetic = true; }

  /// Sentinel for loweringUsedParams: mask not yet computed.
  static constexpr uint32_t LoweringParamsUnknown = UINT32_MAX;

  /// Cached bitmask of parameters whose bound objects the micro-op lowering
  /// actually reads (lock-operation receivers and arguments forwarded to
  /// callees that read them -- expression operands never resolve objects).
  /// Structural metadata computed lazily by the interpreter on first use;
  /// atomic so concurrent emitters (native-threads backend) may race to
  /// store the same value. LoweringParamsUnknown until computed.
  uint32_t loweringUsedParams() const {
    return LoweringUsedParams.load(std::memory_order_relaxed);
  }
  void setLoweringUsedParams(uint32_t Mask) const {
    LoweringUsedParams.store(Mask, std::memory_order_relaxed);
  }

  /// Cached tri-state: does this method's lowering consist of compute time
  /// only (no lock operations, directly or through callees)? 0 = not yet
  /// computed, 1 = pure compute, 2 = not. Same caching discipline as
  /// loweringUsedParams.
  uint8_t loweringPureCompute() const {
    return LoweringPureCompute.load(std::memory_order_relaxed);
  }
  void setLoweringPureCompute(uint8_t V) const {
    LoweringPureCompute.store(V, std::memory_order_relaxed);
  }

private:
  const unsigned Id;
  const std::string Name;
  const ClassDecl *const Owner;
  std::vector<Param> Params;
  std::vector<Stmt *> Body;
  bool Synthetic = false;
  mutable std::atomic<uint32_t> LoweringUsedParams{LoweringParamsUnknown};
  mutable std::atomic<uint8_t> LoweringPureCompute{0};
};

/// A parallel section: a parallel loop whose iteration i invokes IterMethod
/// on the i-th object of the iteration class. The iteration count and the
/// binding of the method's object parameters are supplied at execution time
/// by the application's data binding.
struct ParallelSection {
  std::string Name;
  const Method *IterMethod = nullptr;
};

} // namespace dynfb::ir

#endif // DYNFB_IR_DECL_H
