//===- ir/Verifier.h - Structural and atomicity checking -------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier enforces the invariants every synchronization transformation
/// must preserve: well-formed receivers, balanced LIFO lock regions, no
/// self-deadlock, call typing, and (optionally, interprocedurally) that
/// every commuting update executes while its receiver's lock is held -- the
/// atomicity property the paper's generated code guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_VERIFIER_H
#define DYNFB_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace dynfb::ir {

/// Options controlling which invariants to enforce.
struct VerifyOptions {
  /// When set, every UpdateStmt reachable from a parallel section must
  /// execute while the lock of its receiver is held (checked
  /// interprocedurally with receiver translation across call frames).
  /// Leave unset for serial (lock-free) modules.
  bool RequireAtomicUpdates = false;
};

/// Returns the class of the object \p R designates inside \p M, or nullptr
/// if \p R is malformed.
const ClassDecl *receiverClass(const Receiver &R, const Method &M);

/// Verifies the whole module. Returns human-readable error strings; an
/// empty vector means the module is well-formed.
std::vector<std::string> verifyModule(const Module &M,
                                      const VerifyOptions &Opts = {});

/// Verifies a single method's structural invariants (receivers, balance,
/// typing of direct calls).
std::vector<std::string> verifyMethod(const Method &M);

/// Checks, interprocedurally from \p Entry, that every reachable UpdateStmt
/// executes while its receiver's lock is held. Used on each generated
/// section version (the paper's atomicity guarantee).
std::vector<std::string> verifyAtomicity(const Method &Entry);

} // namespace dynfb::ir

#endif // DYNFB_IR_VERIFIER_H
