//===- ir/Stmt.h - Statement nodes -----------------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement nodes of the object-based IR. A method body is a sequence of
/// statements; the synchronization optimizer works by inserting, removing
/// and moving Acquire/Release statements around the other statement kinds.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_STMT_H
#define DYNFB_IR_STMT_H

#include "ir/Expr.h"
#include "ir/Receiver.h"

#include <cassert>
#include <vector>

namespace dynfb::ir {

class Method;

/// Discriminator for Stmt subclasses.
enum class StmtKind {
  Compute, ///< Pure local computation with a symbolic cost class.
  Update,  ///< Commuting field update `recv->f = recv->f <op> e`.
  Acquire, ///< Acquire the mutual exclusion lock of a receiver object.
  Release, ///< Release the mutual exclusion lock of a receiver object.
  Call,    ///< Invocation of another method on a receiver object.
  Loop     ///< Counted loop; the trip count is bound at execution time.
};

/// Base class of all statements. Statements are arena-owned by their Module;
/// bodies hold non-owning pointers. Statements are mutable only through the
/// transformation passes.
class Stmt {
public:
  StmtKind kind() const { return Kind; }
  virtual ~Stmt() = default;

protected:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}

private:
  const StmtKind Kind;
};

/// Pure local computation: no object state is written. CostClass is a
/// module-unique tag the execution-time data binding maps to a cost (and the
/// native backends map to an actual kernel). Reads documents the
/// expressions the computation consumes, for commutativity analysis.
class ComputeStmt : public Stmt {
public:
  ComputeStmt(unsigned CostClass, std::vector<const Expr *> Reads)
      : Stmt(StmtKind::Compute), CostClass(CostClass),
        Reads(std::move(Reads)) {}

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Compute;
  }

  const unsigned CostClass;
  const std::vector<const Expr *> Reads;
};

/// Commuting field update `recv->field = recv->field <op> value`. In the
/// default synchronization placement every update executes inside its own
/// critical region on the receiver's lock.
class UpdateStmt : public Stmt {
public:
  UpdateStmt(Receiver Recv, unsigned Field, BinOp Op, const Expr *Value)
      : Stmt(StmtKind::Update), Recv(Recv), Field(Field), Op(Op),
        Value(Value) {
    assert(Value && "update with null value expression");
  }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Update; }

  const Receiver Recv;
  const unsigned Field;
  const BinOp Op;
  const Expr *const Value;
};

/// Acquire of the receiver object's mutual exclusion lock.
class AcquireStmt : public Stmt {
public:
  explicit AcquireStmt(Receiver Recv) : Stmt(StmtKind::Acquire), Recv(Recv) {}

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Acquire;
  }

  const Receiver Recv;
};

/// Release of the receiver object's mutual exclusion lock.
class ReleaseStmt : public Stmt {
public:
  explicit ReleaseStmt(Receiver Recv) : Stmt(StmtKind::Release), Recv(Recv) {}

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Release;
  }

  const Receiver Recv;
};

/// Invocation of \p Callee with receiver \p Recv. Object-typed arguments of
/// the callee are bound to receivers evaluated in the caller's frame;
/// scalar arguments are not modelled (they only matter inside expressions).
class CallStmt : public Stmt {
public:
  CallStmt(const Method *Callee, Receiver Recv,
           std::vector<Receiver> ObjArgs)
      : Stmt(StmtKind::Call), Recv(Recv), ObjArgs(std::move(ObjArgs)),
        Callee(Callee) {
    assert(Callee && "call with null callee");
  }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Call; }

  const Method *callee() const { return Callee; }

  /// Retargets the call; used by the multi-version generator to point calls
  /// at lock-stripped method variants.
  void setCallee(const Method *M) {
    assert(M && "cannot retarget call to null");
    Callee = M;
  }

  const Receiver Recv;
  const std::vector<Receiver> ObjArgs;

private:
  const Method *Callee;
};

/// Counted loop. The trip count is symbolic: the execution-time data binding
/// supplies it per dynamic instance. LoopId is module-unique and is
/// preserved by cloning so bindings and ParamIndexed receivers can refer to
/// a semantic loop across transformed versions.
class LoopStmt : public Stmt {
public:
  LoopStmt(unsigned LoopId, std::vector<Stmt *> Body)
      : Stmt(StmtKind::Loop), LoopId(LoopId), Body(std::move(Body)) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Loop; }

  const unsigned LoopId;
  std::vector<Stmt *> Body;
};

/// Checked downcast helpers for the Stmt hierarchy.
template <typename T> T *stmtDynCast(Stmt *S) {
  return S && T::classof(S) ? static_cast<T *>(S) : nullptr;
}
template <typename T> const T *stmtDynCast(const Stmt *S) {
  return S && T::classof(S) ? static_cast<const T *>(S) : nullptr;
}
template <typename T> const T &stmtCast(const Stmt *S) {
  assert(S && T::classof(S) && "invalid stmtCast");
  return *static_cast<const T *>(S);
}

} // namespace dynfb::ir

#endif // DYNFB_IR_STMT_H
