//===- ir/Receiver.h - Object references in the IR -------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Receiver names the object a statement touches: the enclosing method's
/// `this`, an object-typed parameter, or an element of an object-array
/// parameter selected by an enclosing loop's index (e.g. `b[i]` in the
/// paper's Figure 1). Lock identity, update targets and call receivers are
/// all expressed as Receivers.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_RECEIVER_H
#define DYNFB_IR_RECEIVER_H

namespace dynfb::ir {

/// How a Receiver designates its object.
enum class RecvKind {
  This,        ///< The enclosing method's receiver object.
  Param,       ///< An object-typed parameter (single object).
  ParamIndexed ///< An element of an object-array parameter, indexed by the
               ///< enclosing loop with id LoopId.
};

/// Reference to the object a statement operates on. Plain value type;
/// compared structurally.
struct Receiver {
  RecvKind Kind = RecvKind::This;
  unsigned ParamIdx = 0; ///< Parameter slot for Param / ParamIndexed.
  unsigned LoopId = 0;   ///< Selecting loop for ParamIndexed (module-unique
                         ///< loop id, stable across cloning).

  static Receiver thisObj() { return Receiver{RecvKind::This, 0, 0}; }
  static Receiver param(unsigned Idx) {
    return Receiver{RecvKind::Param, Idx, 0};
  }
  static Receiver paramIndexed(unsigned Idx, unsigned LoopId) {
    return Receiver{RecvKind::ParamIndexed, Idx, LoopId};
  }

  friend bool operator==(const Receiver &A, const Receiver &B) {
    if (A.Kind != B.Kind)
      return false;
    switch (A.Kind) {
    case RecvKind::This:
      return true;
    case RecvKind::Param:
      return A.ParamIdx == B.ParamIdx;
    case RecvKind::ParamIndexed:
      return A.ParamIdx == B.ParamIdx && A.LoopId == B.LoopId;
    }
    return false;
  }
  friend bool operator!=(const Receiver &A, const Receiver &B) {
    return !(A == B);
  }

  /// True if the designated object cannot change across iterations of the
  /// loop with id \p LoopId (i.e. it is not indexed by that loop).
  bool isInvariantIn(unsigned LoopIdQuery) const {
    return Kind != RecvKind::ParamIndexed || LoopId != LoopIdQuery;
  }
};

} // namespace dynfb::ir

#endif // DYNFB_IR_RECEIVER_H
