//===- ir/StructuralHash.cpp ----------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/StructuralHash.h"

#include "support/Compiler.h"

using namespace dynfb;
using namespace dynfb::ir;

static uint64_t combine(uint64_t Seed, uint64_t Value) {
  // Boost-style hash combine over 64 bits.
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4));
}

static uint64_t hashReceiver(const Receiver &R) {
  uint64_t H = static_cast<uint64_t>(R.Kind) + 1;
  H = combine(H, R.Kind == RecvKind::This ? 0 : R.ParamIdx);
  H = combine(H, R.Kind == RecvKind::ParamIndexed ? R.LoopId : 0);
  return H;
}

uint64_t ir::structuralHash(const Expr *E) {
  uint64_t H = static_cast<uint64_t>(E->kind()) * 0x100000001b3ULL;
  switch (E->kind()) {
  case ExprKind::FieldRead: {
    const auto &FR = exprCast<FieldReadExpr>(E);
    H = combine(H, hashReceiver(FR.Recv));
    H = combine(H, FR.Field);
    break;
  }
  case ExprKind::ParamRead:
    H = combine(H, exprCast<ParamReadExpr>(E).ParamIdx);
    break;
  case ExprKind::ConstFloat: {
    const double V = exprCast<ConstFloatExpr>(E).Value;
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    __builtin_memcpy(&Bits, &V, sizeof(Bits));
    H = combine(H, Bits);
    break;
  }
  case ExprKind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    H = combine(H, static_cast<uint64_t>(B.Op));
    H = combine(H, structuralHash(B.LHS));
    H = combine(H, structuralHash(B.RHS));
    break;
  }
  case ExprKind::ExternCall: {
    const auto &C = exprCast<ExternCallExpr>(E);
    for (char Ch : C.Name)
      H = combine(H, static_cast<uint64_t>(Ch));
    for (const Expr *Arg : C.Args)
      H = combine(H, structuralHash(Arg));
    break;
  }
  }
  return H;
}

uint64_t ir::structuralHash(const Stmt *S) {
  uint64_t H = (static_cast<uint64_t>(S->kind()) + 17) * 0xff51afd7ed558ccdULL;
  switch (S->kind()) {
  case StmtKind::Compute:
    H = combine(H, stmtCast<ComputeStmt>(S).CostClass);
    break;
  case StmtKind::Update: {
    const auto &U = stmtCast<UpdateStmt>(S);
    H = combine(H, hashReceiver(U.Recv));
    H = combine(H, U.Field);
    H = combine(H, static_cast<uint64_t>(U.Op));
    H = combine(H, structuralHash(U.Value));
    break;
  }
  case StmtKind::Acquire:
    H = combine(H, hashReceiver(stmtCast<AcquireStmt>(S).Recv));
    break;
  case StmtKind::Release:
    H = combine(H, hashReceiver(stmtCast<ReleaseStmt>(S).Recv));
    break;
  case StmtKind::Call: {
    const auto &C = stmtCast<CallStmt>(S);
    H = combine(H, hashReceiver(C.Recv));
    for (const Receiver &A : C.ObjArgs)
      H = combine(H, hashReceiver(A));
    H = combine(H, structuralHash(*C.callee()));
    break;
  }
  case StmtKind::Loop: {
    const auto &L = stmtCast<LoopStmt>(S);
    H = combine(H, L.LoopId);
    for (const Stmt *Child : L.Body)
      H = combine(H, structuralHash(Child));
    break;
  }
  }
  return H;
}

static uint64_t hashString(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char Ch : S)
    H = (H ^ static_cast<uint64_t>(Ch)) * 0x100000001b3ULL;
  return H;
}

uint64_t ir::structuralHash(const Method &M) {
  // Classes hash by name (consistent with structural equality across
  // modules).
  uint64_t H = hashString(M.owner()->name()) * 0xc4ceb9fe1a85ec53ULL + 1;
  for (const Param &P : M.params()) {
    H = combine(H, P.isObject() ? hashString(P.ObjClass->name()) : 0);
    H = combine(H, P.IsArray ? 1 : 0);
  }
  for (const Stmt *S : M.body())
    H = combine(H, structuralHash(S));
  return H;
}

bool ir::structurallyEqual(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::FieldRead: {
    const auto &FA = exprCast<FieldReadExpr>(A);
    const auto &FB = exprCast<FieldReadExpr>(B);
    return FA.Recv == FB.Recv && FA.Field == FB.Field;
  }
  case ExprKind::ParamRead:
    return exprCast<ParamReadExpr>(A).ParamIdx ==
           exprCast<ParamReadExpr>(B).ParamIdx;
  case ExprKind::ConstFloat:
    return exprCast<ConstFloatExpr>(A).Value ==
           exprCast<ConstFloatExpr>(B).Value;
  case ExprKind::Binary: {
    const auto &BA = exprCast<BinaryExpr>(A);
    const auto &BB = exprCast<BinaryExpr>(B);
    return BA.Op == BB.Op && structurallyEqual(BA.LHS, BB.LHS) &&
           structurallyEqual(BA.RHS, BB.RHS);
  }
  case ExprKind::ExternCall: {
    const auto &CA = exprCast<ExternCallExpr>(A);
    const auto &CB = exprCast<ExternCallExpr>(B);
    if (CA.Name != CB.Name || CA.Args.size() != CB.Args.size())
      return false;
    for (size_t I = 0; I < CA.Args.size(); ++I)
      if (!structurallyEqual(CA.Args[I], CB.Args[I]))
        return false;
    return true;
  }
  }
  DYNFB_UNREACHABLE("invalid expression kind");
}

bool ir::structurallyEqual(const Stmt *A, const Stmt *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case StmtKind::Compute:
    return stmtCast<ComputeStmt>(A).CostClass ==
           stmtCast<ComputeStmt>(B).CostClass;
  case StmtKind::Update: {
    const auto &UA = stmtCast<UpdateStmt>(A);
    const auto &UB = stmtCast<UpdateStmt>(B);
    return UA.Recv == UB.Recv && UA.Field == UB.Field && UA.Op == UB.Op &&
           structurallyEqual(UA.Value, UB.Value);
  }
  case StmtKind::Acquire:
    return stmtCast<AcquireStmt>(A).Recv == stmtCast<AcquireStmt>(B).Recv;
  case StmtKind::Release:
    return stmtCast<ReleaseStmt>(A).Recv == stmtCast<ReleaseStmt>(B).Recv;
  case StmtKind::Call: {
    const auto &CA = stmtCast<CallStmt>(A);
    const auto &CB = stmtCast<CallStmt>(B);
    if (!(CA.Recv == CB.Recv) || CA.ObjArgs.size() != CB.ObjArgs.size())
      return false;
    for (size_t I = 0; I < CA.ObjArgs.size(); ++I)
      if (!(CA.ObjArgs[I] == CB.ObjArgs[I]))
        return false;
    return structurallyEqual(*CA.callee(), *CB.callee());
  }
  case StmtKind::Loop: {
    const auto &LA = stmtCast<LoopStmt>(A);
    const auto &LB = stmtCast<LoopStmt>(B);
    if (LA.LoopId != LB.LoopId || LA.Body.size() != LB.Body.size())
      return false;
    for (size_t I = 0; I < LA.Body.size(); ++I)
      if (!structurallyEqual(LA.Body[I], LB.Body[I]))
        return false;
    return true;
  }
  }
  DYNFB_UNREACHABLE("invalid statement kind");
}

bool ir::structurallyEqual(const Method &A, const Method &B) {
  if (&A == &B)
    return true;
  // Classes compare by name so methods from different modules (e.g. a
  // parsed round-trip) can be compared; names are unique within a module.
  if (A.owner()->name() != B.owner()->name() ||
      A.params().size() != B.params().size() ||
      A.body().size() != B.body().size())
    return false;
  for (size_t I = 0; I < A.params().size(); ++I) {
    const Param &PA = A.param(static_cast<unsigned>(I));
    const Param &PB = B.param(static_cast<unsigned>(I));
    const bool ClassMatches =
        (PA.ObjClass == nullptr) == (PB.ObjClass == nullptr) &&
        (!PA.ObjClass || PA.ObjClass->name() == PB.ObjClass->name());
    if (!ClassMatches || PA.IsArray != PB.IsArray)
      return false;
  }
  for (size_t I = 0; I < A.body().size(); ++I)
    if (!structurallyEqual(A.body()[I], B.body()[I]))
      return false;
  return true;
}
