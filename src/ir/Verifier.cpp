//===- ir/Verifier.cpp ----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <set>
#include <vector>

using namespace dynfb;
using namespace dynfb::ir;

const ClassDecl *ir::receiverClass(const Receiver &R, const Method &M) {
  switch (R.Kind) {
  case RecvKind::This:
    return M.owner();
  case RecvKind::Param:
  case RecvKind::ParamIndexed: {
    if (R.ParamIdx >= M.params().size())
      return nullptr;
    const Param &P = M.param(R.ParamIdx);
    if (!P.isObject())
      return nullptr;
    if ((R.Kind == RecvKind::ParamIndexed) != P.IsArray)
      return nullptr;
    return P.ObjClass;
  }
  }
  return nullptr;
}

namespace {

/// Per-method structural walk. Tracks active loop ids (for ParamIndexed
/// enclosure checks) and the LIFO stack of open lock regions.
class MethodVerifier {
public:
  MethodVerifier(const Method &M, std::vector<std::string> &Errors)
      : M(M), Errors(Errors) {}

  void run() {
    walkList(M.body());
    if (!Held.empty())
      error("method ends with " + format("%zu", Held.size()) +
            " unreleased lock region(s)");
  }

private:
  void error(const std::string &Msg) {
    Errors.push_back("method '" + M.owner()->name() + "::" + M.name() +
                     "': " + Msg);
  }

  bool checkReceiver(const Receiver &R, const char *Role) {
    if (!receiverClass(R, M)) {
      error(std::string("malformed ") + Role + " receiver");
      return false;
    }
    if (R.Kind == RecvKind::ParamIndexed &&
        std::find(ActiveLoops.begin(), ActiveLoops.end(), R.LoopId) ==
            ActiveLoops.end()) {
      error(std::string(Role) + " receiver indexed by non-enclosing loop i" +
            format("%u", R.LoopId));
      return false;
    }
    return true;
  }

  void walkList(const std::vector<Stmt *> &List) {
    const size_t HeldAtEntry = Held.size();
    for (const Stmt *S : List)
      walkStmt(S);
    if (Held.size() != HeldAtEntry)
      error("lock regions not balanced within a statement list");
    while (Held.size() > HeldAtEntry)
      Held.pop_back();
  }

  void walkStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Compute:
      break;
    case StmtKind::Update:
      checkReceiver(stmtCast<UpdateStmt>(S).Recv, "update");
      break;
    case StmtKind::Acquire: {
      const Receiver R = stmtCast<AcquireStmt>(S).Recv;
      if (!checkReceiver(R, "acquire"))
        break;
      if (std::find(Held.begin(), Held.end(), R) != Held.end())
        error("re-acquire of already-held lock (self-deadlock)");
      Held.push_back(R);
      break;
    }
    case StmtKind::Release: {
      const Receiver R = stmtCast<ReleaseStmt>(S).Recv;
      if (!checkReceiver(R, "release"))
        break;
      if (Held.empty()) {
        error("release with no open lock region");
        break;
      }
      if (!(Held.back() == R)) {
        error("release does not match innermost open lock region (LIFO "
              "violation)");
        break;
      }
      Held.pop_back();
      break;
    }
    case StmtKind::Call: {
      const auto &C = stmtCast<CallStmt>(S);
      if (!checkReceiver(C.Recv, "call"))
        break;
      const Method *Callee = C.callee();
      if (C.Recv.Kind != RecvKind::This || Callee->owner() != M.owner())
        if (receiverClass(C.Recv, M) != Callee->owner())
          error("call receiver class does not match callee owner '" +
                Callee->owner()->name() + "'");
      // Check object-argument arity and classes.
      std::vector<unsigned> ObjParams;
      for (unsigned I = 0; I < Callee->params().size(); ++I)
        if (Callee->param(I).isObject())
          ObjParams.push_back(I);
      if (ObjParams.size() != C.ObjArgs.size()) {
        error("call to '" + Callee->name() + "' passes " +
              format("%zu", C.ObjArgs.size()) + " object args, callee has " +
              format("%zu", ObjParams.size()) + " object params");
        break;
      }
      for (size_t I = 0; I < C.ObjArgs.size(); ++I) {
        if (!checkReceiver(C.ObjArgs[I], "call argument"))
          continue;
        const Param &P = Callee->param(ObjParams[I]);
        if (receiverClass(C.ObjArgs[I], M) != P.ObjClass)
          error("call argument class mismatch for '" + Callee->name() + "'");
        // Array-ness must match: an array param needs an array receiver
        // (Param referencing an array param of the caller).
        const bool ArgIsArray =
            C.ObjArgs[I].Kind == RecvKind::Param &&
            M.param(C.ObjArgs[I].ParamIdx).IsArray;
        if (P.IsArray != ArgIsArray)
          error("call argument array-ness mismatch for '" + Callee->name() +
                "'");
      }
      break;
    }
    case StmtKind::Loop: {
      const auto &L = stmtCast<LoopStmt>(S);
      ActiveLoops.push_back(L.LoopId);
      walkList(L.Body);
      ActiveLoops.pop_back();
      break;
    }
    }
  }

  const Method &M;
  std::vector<std::string> &Errors;
  std::vector<unsigned> ActiveLoops;
  std::vector<Receiver> Held;
};

/// Interprocedural atomicity walk: checks that every UpdateStmt reachable
/// from a section entry executes with its receiver's lock held, translating
/// held receivers across call frames.
class AtomicityChecker {
public:
  AtomicityChecker(std::vector<std::string> &Errors) : Errors(Errors) {}

  void check(const Method &Entry) { walkMethod(Entry, {}); }

private:
  /// One receiver as the callee names it. Receivers the callee cannot name
  /// are dropped during translation (the callee cannot update through them
  /// either, except via ParamIndexed aliasing, which the apps do not use
  /// for held locks).
  static std::string keyOf(const Method &M, const std::vector<Receiver> &Held) {
    std::string K = format("%u:", M.id());
    for (const Receiver &R : Held)
      K += format("[%d,%u,%u]", static_cast<int>(R.Kind), R.ParamIdx,
                  R.LoopId);
    return K;
  }

  void walkMethod(const Method &M, std::vector<Receiver> Held) {
    const std::string Key = keyOf(M, Held);
    if (!Visited.insert(Key).second)
      return;
    walkList(M, M.body(), Held);
  }

  void walkList(const Method &M, const std::vector<Stmt *> &List,
                std::vector<Receiver> &Held) {
    for (const Stmt *S : List) {
      switch (S->kind()) {
      case StmtKind::Compute:
        break;
      case StmtKind::Update: {
        const Receiver R = stmtCast<UpdateStmt>(S).Recv;
        if (std::find(Held.begin(), Held.end(), R) == Held.end())
          Errors.push_back("atomicity violation: update of '" +
                           printableRecv(R, M) + "' in '" + M.name() +
                           "' outside its lock region");
        break;
      }
      case StmtKind::Acquire:
        Held.push_back(stmtCast<AcquireStmt>(S).Recv);
        break;
      case StmtKind::Release: {
        const Receiver R = stmtCast<ReleaseStmt>(S).Recv;
        auto It = std::find(Held.begin(), Held.end(), R);
        if (It != Held.end())
          Held.erase(It);
        break;
      }
      case StmtKind::Call: {
        const auto &C = stmtCast<CallStmt>(S);
        // Translate held receivers into the callee's frame.
        std::vector<Receiver> CalleeHeld;
        std::vector<unsigned> ObjParams;
        for (unsigned I = 0; I < C.callee()->params().size(); ++I)
          if (C.callee()->param(I).isObject())
            ObjParams.push_back(I);
        for (const Receiver &H : Held) {
          if (H == C.Recv)
            CalleeHeld.push_back(Receiver::thisObj());
          for (size_t A = 0; A < C.ObjArgs.size(); ++A)
            if (H == C.ObjArgs[A])
              CalleeHeld.push_back(Receiver::param(ObjParams[A]));
        }
        walkMethod(*C.callee(), std::move(CalleeHeld));
        break;
      }
      case StmtKind::Loop:
        walkList(M, stmtCast<LoopStmt>(S).Body, Held);
        break;
      }
    }
  }

  static std::string printableRecv(const Receiver &R, const Method &M) {
    switch (R.Kind) {
    case RecvKind::This:
      return "this";
    case RecvKind::Param:
    case RecvKind::ParamIndexed:
      return R.ParamIdx < M.params().size() ? M.param(R.ParamIdx).Name
                                            : "<bad param>";
    }
    return "<bad receiver>";
  }

  std::vector<std::string> &Errors;
  std::set<std::string> Visited;
};

} // namespace

std::vector<std::string> ir::verifyMethod(const Method &M) {
  std::vector<std::string> Errors;
  MethodVerifier(M, Errors).run();
  return Errors;
}

std::vector<std::string> ir::verifyAtomicity(const Method &Entry) {
  std::vector<std::string> Errors;
  AtomicityChecker(Errors).check(Entry);
  return Errors;
}

std::vector<std::string> ir::verifyModule(const Module &M,
                                          const VerifyOptions &Opts) {
  std::vector<std::string> Errors;
  for (const auto &Meth : M.methods())
    MethodVerifier(*Meth, Errors).run();
  if (Opts.RequireAtomicUpdates) {
    AtomicityChecker Checker(Errors);
    for (const ParallelSection &S : M.sections())
      Checker.check(*S.IterMethod);
  }
  return Errors;
}
