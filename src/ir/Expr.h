//===- ir/Expr.h - Expression nodes ----------------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Side-effect-free expression trees. Expressions appear as the right-hand
/// sides of commuting field updates (`sum = sum + interact(...)`) and as the
/// documented reads of compute statements. Commutativity analysis (paper
/// Section 2) inspects them to decide which fields an operation reads.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_EXPR_H
#define DYNFB_IR_EXPR_H

#include "ir/Receiver.h"

#include <cassert>
#include <string>
#include <vector>

namespace dynfb::ir {

/// Discriminator for Expr subclasses (LLVM-style hand-rolled RTTI).
enum class ExprKind {
  FieldRead,  ///< recv->field
  ParamRead,  ///< scalar parameter
  ConstFloat, ///< floating constant
  Binary,     ///< binary arithmetic
  ExternCall  ///< call to a pure external function (e.g. `interact`)
};

/// Binary operators. The commuting subset (Add, Mul, Min, Max) is what makes
/// field updates commute; Assign models a plain overwrite, which never
/// commutes with another update of the same field.
enum class BinOp { Add, Sub, Mul, Div, Min, Max, Assign };

/// Returns true if `f = f <op> e1` and `f = f <op> e2` produce the same
/// final value of `f` in either order (associative + commutative operator).
inline bool isCommutingOp(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
  case BinOp::Mul:
  case BinOp::Min:
  case BinOp::Max:
    return true;
  case BinOp::Sub:
  case BinOp::Div:
  case BinOp::Assign:
    return false;
  }
  return false;
}

/// Returns the source spelling of \p Op.
inline const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Min:
    return "min";
  case BinOp::Max:
    return "max";
  case BinOp::Assign:
    return "=";
  }
  return "?";
}

/// Base class of all expressions. Expressions are immutable once built and
/// arena-owned by their Module.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  virtual ~Expr() = default;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  const ExprKind Kind;
};

/// Read of `recv->field`.
class FieldReadExpr : public Expr {
public:
  FieldReadExpr(Receiver Recv, unsigned Field)
      : Expr(ExprKind::FieldRead), Recv(Recv), Field(Field) {}

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FieldRead;
  }

  const Receiver Recv;
  const unsigned Field;
};

/// Read of a scalar (non-object) parameter.
class ParamReadExpr : public Expr {
public:
  explicit ParamReadExpr(unsigned ParamIdx)
      : Expr(ExprKind::ParamRead), ParamIdx(ParamIdx) {}

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ParamRead;
  }

  const unsigned ParamIdx;
};

/// Floating-point constant.
class ConstFloatExpr : public Expr {
public:
  explicit ConstFloatExpr(double Value)
      : Expr(ExprKind::ConstFloat), Value(Value) {}

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ConstFloat;
  }

  const double Value;
};

/// Binary arithmetic on two subexpressions.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, const Expr *LHS, const Expr *RHS)
      : Expr(ExprKind::Binary), Op(Op), LHS(LHS), RHS(RHS) {
    assert(LHS && RHS && "binary expression with null operand");
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

  const BinOp Op;
  const Expr *const LHS;
  const Expr *const RHS;
};

/// Call to a pure external function (no side effects, result depends only on
/// the arguments) -- e.g. `interact(this->pos, b->pos)` in the paper's
/// Figure 1.
class ExternCallExpr : public Expr {
public:
  ExternCallExpr(std::string Name, std::vector<const Expr *> Args)
      : Expr(ExprKind::ExternCall), Name(std::move(Name)),
        Args(std::move(Args)) {}

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ExternCall;
  }

  const std::string Name;
  const std::vector<const Expr *> Args;
};

/// Checked downcast helpers in the spirit of llvm::cast/dyn_cast, scoped to
/// the Expr hierarchy.
template <typename T> const T *exprDynCast(const Expr *E) {
  return E && T::classof(E) ? static_cast<const T *>(E) : nullptr;
}
template <typename T> const T &exprCast(const Expr *E) {
  assert(E && T::classof(E) && "invalid exprCast");
  return *static_cast<const T *>(E);
}

} // namespace dynfb::ir

#endif // DYNFB_IR_EXPR_H
