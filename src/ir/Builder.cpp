//===- ir/Builder.cpp -----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include <cassert>

using namespace dynfb::ir;

MethodBuilder::MethodBuilder(Module &M, Method *Target)
    : M(M), Target(Target) {
  assert(Target && "builder needs a target method");
}

MethodBuilder::~MethodBuilder() {
  assert(OpenLoops.empty() && "method builder destroyed with open loops");
}

std::vector<Stmt *> &MethodBuilder::current() {
  return OpenLoops.empty() ? Target->body() : OpenLoops.back()->Body;
}

unsigned MethodBuilder::compute(std::vector<const Expr *> Reads) {
  const unsigned CC = M.nextCostClass();
  current().push_back(M.createCompute(CC, std::move(Reads)));
  return CC;
}

void MethodBuilder::computeWithClass(unsigned CostClass,
                                     std::vector<const Expr *> Reads) {
  current().push_back(M.createCompute(CostClass, std::move(Reads)));
}

void MethodBuilder::update(Receiver Recv, unsigned Field, BinOp Op,
                           const Expr *Value) {
  current().push_back(M.createUpdate(Recv, Field, Op, Value));
}

void MethodBuilder::call(const Method *Callee, Receiver Recv,
                         std::vector<Receiver> ObjArgs) {
  current().push_back(M.createCall(Callee, Recv, std::move(ObjArgs)));
}

unsigned MethodBuilder::beginLoop() {
  const unsigned Id = M.nextLoopId();
  LoopStmt *L = M.createLoop(Id, {});
  current().push_back(L);
  OpenLoops.push_back(L);
  return Id;
}

void MethodBuilder::endLoop() {
  assert(!OpenLoops.empty() && "endLoop without beginLoop");
  OpenLoops.pop_back();
}

void MethodBuilder::acquire(Receiver Recv) {
  current().push_back(M.createAcquire(Recv));
}

void MethodBuilder::release(Receiver Recv) {
  current().push_back(M.createRelease(Recv));
}
