//===- ir/Parser.cpp ------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

using namespace dynfb;
using namespace dynfb::ir;

namespace {

// ------------------------------- Lexer -------------------------------------

struct Token {
  enum class Kind { Ident, Number, Punct, End } K = Kind::End;
  std::string Text;
  unsigned Line = 1;

  bool is(const char *P) const {
    return K == Kind::Punct && Text == P;
  }
  bool isIdent(const char *S) const {
    return K == Kind::Ident && Text == S;
  }
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) { tokenize(); }

  const std::vector<Token> &tokens() const { return Tokens; }

private:
  void tokenize() {
    size_t I = 0;
    unsigned Line = 1;
    const size_t N = Text.size();
    while (I < N) {
      const char C = Text[I];
      if (C == '\n') {
        ++Line;
        ++I;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++I;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        // '$' participates in identifiers so compiler-generated version
        // names (one_interaction$agg, ...) round-trip.
        size_t J = I;
        while (J < N && (std::isalnum(static_cast<unsigned char>(Text[J])) ||
                         Text[J] == '_' || Text[J] == '$'))
          ++J;
        Tokens.push_back({Token::Kind::Ident, Text.substr(I, J - I), Line});
        I = J;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C))) {
        size_t J = I;
        while (J < N && (std::isalnum(static_cast<unsigned char>(Text[J])) ||
                         Text[J] == '.' || Text[J] == '+' ||
                         Text[J] == '-')) {
          // Stop a number before ".." (range punctuation) and before
          // +/- that is not an exponent sign.
          if (Text[J] == '.' && J + 1 < N && Text[J + 1] == '.')
            break;
          if ((Text[J] == '+' || Text[J] == '-') &&
              !(J > I && (Text[J - 1] == 'e' || Text[J - 1] == 'E')))
            break;
          ++J;
        }
        Tokens.push_back({Token::Kind::Number, Text.substr(I, J - I), Line});
        I = J;
        continue;
      }
      // Multi-character punctuation.
      if (C == ':' && I + 1 < N && Text[I + 1] == ':') {
        Tokens.push_back({Token::Kind::Punct, "::", Line});
        I += 2;
        continue;
      }
      if (C == '-' && I + 1 < N && Text[I + 1] == '>') {
        Tokens.push_back({Token::Kind::Punct, "->", Line});
        I += 2;
        continue;
      }
      if (C == '.' && I + 1 < N && Text[I + 1] == '.') {
        Tokens.push_back({Token::Kind::Punct, "..", Line});
        I += 2;
        continue;
      }
      Tokens.push_back({Token::Kind::Punct, std::string(1, C), Line});
      ++I;
    }
    Tokens.push_back({Token::Kind::End, "", Line});
  }

  const std::string &Text;
  std::vector<Token> Tokens;
};

// ------------------------------- Parser ------------------------------------

class Parser {
public:
  explicit Parser(const std::string &Text) : Lex(Text) {}

  ParseResult run() {
    parseTopLevel();
    ParseResult Result;
    if (!Error.empty()) {
      Result.Error = Error;
      return Result;
    }
    Result.M = std::move(M);
    return Result;
  }

private:
  // --- token cursor helpers ---
  const Token &peek(size_t Ahead = 0) const {
    const auto &Tokens = Lex.tokens();
    const size_t I = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[I];
  }
  const Token &next() {
    const Token &T = peek();
    if (T.K != Token::Kind::End)
      ++Pos;
    return T;
  }
  bool accept(const char *P) {
    if (peek().is(P)) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool acceptIdent(const char *S) {
    if (peek().isIdent(S)) {
      ++Pos;
      return true;
    }
    return false;
  }
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = format("line %u: ", peek().Line) + Msg + " (got '" +
              peek().Text + "')";
  }
  bool expect(const char *P) {
    if (accept(P))
      return true;
    fail(std::string("expected '") + P + "'");
    return false;
  }
  std::optional<std::string> expectIdent() {
    if (peek().K == Token::Kind::Ident)
      return next().Text;
    fail("expected identifier");
    return std::nullopt;
  }

  // --- symbol tables ---
  ClassDecl *findClass(const std::string &Name) {
    for (const auto &C : M->classes())
      if (C->name() == Name)
        return const_cast<ClassDecl *>(C.get());
    return nullptr;
  }
  Method *findMethod(const ClassDecl *Owner, const std::string &Name) {
    for (const auto &Meth : M->methods())
      if (Meth->owner() == Owner && Meth->name() == Name)
        return const_cast<Method *>(Meth.get());
    return nullptr;
  }
  static std::optional<unsigned> fieldIndex(const ClassDecl *Cls,
                                            const std::string &Name) {
    for (unsigned I = 0; I < Cls->fields().size(); ++I)
      if (Cls->field(I).Name == Name)
        return I;
    return std::nullopt;
  }
  static std::optional<unsigned> paramIndex(const Method *Meth,
                                            const std::string &Name) {
    for (unsigned I = 0; I < Meth->params().size(); ++I)
      if (Meth->param(I).Name == Name)
        return I;
    return std::nullopt;
  }

  /// Extracts the numeric suffix of `i<N>` / `n<N>` identifiers.
  static std::optional<unsigned> idSuffix(const std::string &Name,
                                          char Prefix) {
    if (Name.size() < 2 || Name[0] != Prefix)
      return std::nullopt;
    for (size_t I = 1; I < Name.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Name[I])))
        return std::nullopt;
    return static_cast<unsigned>(std::strtoul(Name.c_str() + 1, nullptr, 10));
  }

  // --- grammar ---
  void parseTopLevel() {
    if (!acceptIdent("module")) {
      fail("expected 'module'");
      return;
    }
    const auto Name = expectIdent();
    if (!Name)
      return;
    M = std::make_unique<Module>(*Name);

    // Pass 1: declarations (bodies skipped and recorded).
    struct PendingBody {
      Method *Meth = nullptr;
      size_t BodyStart = 0; ///< Token index just after '{'.
    };
    std::vector<PendingBody> Pending;

    while (Error.empty() && peek().K != Token::Kind::End) {
      if (acceptIdent("class")) {
        parseClass();
        continue;
      }
      if (acceptIdent("void")) {
        Method *Meth = parseSignature();
        if (!Meth)
          return;
        if (!expect("{"))
          return;
        Pending.push_back({Meth, Pos});
        skipBalancedBody();
        continue;
      }
      if (acceptIdent("parallel")) {
        parseSection();
        continue;
      }
      fail("expected 'class', 'void' or 'parallel'");
      return;
    }

    // Pass 2: bodies.
    for (const PendingBody &P : Pending) {
      if (!Error.empty())
        return;
      Pos = P.BodyStart;
      parseStmtList(P.Meth, P.Meth->body());
    }
  }

  void parseClass() {
    const auto Name = expectIdent();
    if (!Name || !expect("{"))
      return;
    ClassDecl *Cls = M->createClass(*Name);
    // `lock mutex;`
    if (!acceptIdent("lock") || !acceptIdent("mutex") || !expect(";")) {
      fail("expected 'lock mutex;'");
      return;
    }
    while (acceptIdent("double")) {
      const auto FieldName = expectIdent();
      if (!FieldName || !expect(";"))
        return;
      Cls->addField(*FieldName);
    }
    if (!expect("}") || !expect(";"))
      return;
  }

  Method *parseSignature() {
    const auto ClsName = expectIdent();
    if (!ClsName || !expect("::"))
      return nullptr;
    ClassDecl *Owner = findClass(*ClsName);
    if (!Owner) {
      fail("unknown class '" + *ClsName + "'");
      return nullptr;
    }
    const auto MethName = expectIdent();
    if (!MethName || !expect("("))
      return nullptr;
    Method *Meth = M->createMethod(*MethName, Owner);
    if (!accept(")")) {
      do {
        const auto TypeName = expectIdent();
        if (!TypeName)
          return nullptr;
        if (*TypeName == "double") {
          const auto PName = expectIdent();
          if (!PName)
            return nullptr;
          Meth->addParam(Param{*PName, nullptr, false});
          continue;
        }
        ClassDecl *PCls = findClass(*TypeName);
        if (!PCls) {
          fail("unknown parameter class '" + *TypeName + "'");
          return nullptr;
        }
        if (accept("*")) {
          const auto PName = expectIdent();
          if (!PName)
            return nullptr;
          Meth->addParam(Param{*PName, PCls, false});
        } else {
          const auto PName = expectIdent();
          if (!PName || !expect("[") || !expect("]"))
            return nullptr;
          Meth->addParam(Param{*PName, PCls, true});
        }
      } while (accept(","));
      if (!expect(")"))
        return nullptr;
    }
    return Meth;
  }

  void skipBalancedBody() {
    unsigned Depth = 1;
    while (Depth > 0 && peek().K != Token::Kind::End) {
      if (peek().is("{"))
        ++Depth;
      else if (peek().is("}"))
        --Depth;
      next();
    }
  }

  void parseSection() {
    // parallel section NAME: for all objects o: o-><method>(...)
    if (!acceptIdent("section")) {
      fail("expected 'section'");
      return;
    }
    const auto Name = expectIdent();
    if (!Name)
      return;
    // Skip to the method name: ... o -> IDENT ( ... )
    std::string MethodName;
    while (peek().K != Token::Kind::End) {
      if (peek().is("->")) {
        next();
        const auto MN = expectIdent();
        if (!MN)
          return;
        MethodName = *MN;
        break;
      }
      next();
    }
    // Skip the trailing (...) literally.
    if (expect("("))
      while (peek().K != Token::Kind::End && !accept(")"))
        next();
    for (const auto &Meth : M->methods())
      if (Meth->name() == MethodName) {
        M->addSection(*Name, Meth.get());
        return;
      }
    fail("section entry method '" + MethodName + "' not found");
  }

  /// Parses a receiver occurrence: this | name | name[iK].
  std::optional<Receiver> parseReceiver(const Method *Meth) {
    const auto Name = expectIdent();
    if (!Name)
      return std::nullopt;
    if (*Name == "this")
      return Receiver::thisObj();
    const auto PIdx = paramIndex(Meth, *Name);
    if (!PIdx) {
      fail("unknown parameter '" + *Name + "'");
      return std::nullopt;
    }
    if (accept("[")) {
      const auto Idx = expectIdent();
      if (!Idx || !expect("]"))
        return std::nullopt;
      const auto LoopId = idSuffix(*Idx, 'i');
      if (!LoopId) {
        fail("expected loop index 'iN'");
        return std::nullopt;
      }
      return Receiver::paramIndexed(*PIdx, *LoopId);
    }
    return Receiver::param(*PIdx);
  }

  static std::optional<BinOp> opFromToken(const Token &T) {
    if (T.is("+"))
      return BinOp::Add;
    if (T.is("-"))
      return BinOp::Sub;
    if (T.is("*"))
      return BinOp::Mul;
    if (T.is("/"))
      return BinOp::Div;
    if (T.isIdent("min"))
      return BinOp::Min;
    if (T.isIdent("max"))
      return BinOp::Max;
    return std::nullopt;
  }

  /// Parses a primary expression (the printer emits binaries parenthesized
  /// except at the top level of an update).
  const Expr *parseExpr(const Method *Meth) {
    if (peek().K == Token::Kind::Number)
      return M->exprConst(std::strtod(next().Text.c_str(), nullptr));
    if (accept("(")) {
      const Expr *LHS = parseExpr(Meth);
      if (!LHS)
        return nullptr;
      const auto Op = opFromToken(peek());
      if (!Op) {
        fail("expected binary operator");
        return nullptr;
      }
      next();
      const Expr *RHS = parseExpr(Meth);
      if (!RHS || !expect(")"))
        return nullptr;
      return M->exprBinary(*Op, LHS, RHS);
    }
    if (peek().K != Token::Kind::Ident) {
      fail("expected expression");
      return nullptr;
    }
    // this / param receiver followed by ->field, an extern call, or a
    // scalar parameter read.
    if (peek(1).is("(") && !peek().isIdent("this")) {
      const std::string FnName = next().Text;
      expect("(");
      std::vector<const Expr *> Args;
      if (!accept(")")) {
        do {
          const Expr *Arg = parseExpr(Meth);
          if (!Arg)
            return nullptr;
          Args.push_back(Arg);
        } while (accept(","));
        if (!expect(")"))
          return nullptr;
      }
      return M->exprExternCall(FnName, std::move(Args));
    }
    if ((peek(1).is("->") || peek(1).is("[")) || peek().isIdent("this")) {
      const auto Recv = parseReceiver(Meth);
      if (!Recv || !expect("->"))
        return nullptr;
      const auto FieldName = expectIdent();
      if (!FieldName)
        return nullptr;
      const ClassDecl *Cls = Recv->Kind == RecvKind::This
                                 ? Meth->owner()
                                 : Meth->param(Recv->ParamIdx).ObjClass;
      const auto FIdx = fieldIndex(Cls, *FieldName);
      if (!FIdx) {
        fail("unknown field '" + *FieldName + "'");
        return nullptr;
      }
      return M->exprFieldRead(*Recv, *FIdx);
    }
    // Scalar parameter read.
    const std::string Name = next().Text;
    const auto PIdx = paramIndex(Meth, Name);
    if (!PIdx) {
      fail("unknown name '" + Name + "' in expression");
      return nullptr;
    }
    return M->exprParamRead(*PIdx);
  }

  void parseStmtList(Method *Meth, std::vector<Stmt *> &Out) {
    while (Error.empty() && !accept("}")) {
      if (peek().K == Token::Kind::End) {
        fail("unterminated body");
        return;
      }
      parseStmt(Meth, Out);
    }
  }

  void parseStmt(Method *Meth, std::vector<Stmt *> &Out) {
    // compute #N [reads(...)];
    if (acceptIdent("compute")) {
      if (!expect("#"))
        return;
      if (peek().K != Token::Kind::Number) {
        fail("expected cost class number");
        return;
      }
      const unsigned CC =
          static_cast<unsigned>(std::strtoul(next().Text.c_str(), nullptr,
                                             10));
      M->reserveCostClass(CC);
      std::vector<const Expr *> Reads;
      if (acceptIdent("reads")) {
        if (!expect("("))
          return;
        do {
          const Expr *E = parseExpr(Meth);
          if (!E)
            return;
          Reads.push_back(E);
        } while (accept(","));
        if (!expect(")"))
          return;
      }
      if (!expect(";"))
        return;
      Out.push_back(M->createCompute(CC, std::move(Reads)));
      return;
    }

    // for iN in 0..nN { ... }
    if (acceptIdent("for")) {
      const auto Var = expectIdent();
      if (!Var)
        return;
      const auto LoopId = idSuffix(*Var, 'i');
      if (!LoopId) {
        fail("expected loop variable 'iN'");
        return;
      }
      if (!acceptIdent("in")) {
        fail("expected 'in'");
        return;
      }
      next(); // 0
      if (!expect(".."))
        return;
      next(); // nN
      if (!expect("{"))
        return;
      M->reserveLoopId(*LoopId);
      LoopStmt *L = M->createLoop(*LoopId, {});
      Out.push_back(L);
      parseStmtList(Meth, L->Body);
      return;
    }

    // Receiver-led statements.
    const auto Recv = parseReceiver(Meth);
    if (!Recv || !expect("->"))
      return;
    const auto Name = expectIdent();
    if (!Name)
      return;

    if (*Name == "mutex") {
      if (!expect("."))
        return;
      const auto Which = expectIdent();
      if (!Which || !expect("(") || !expect(")") || !expect(";"))
        return;
      if (*Which == "acquire")
        Out.push_back(M->createAcquire(*Recv));
      else if (*Which == "release")
        Out.push_back(M->createRelease(*Recv));
      else
        fail("expected acquire or release");
      return;
    }

    if (accept("(")) {
      // Method call.
      const ClassDecl *Cls = Recv->Kind == RecvKind::This
                                 ? Meth->owner()
                                 : Meth->param(Recv->ParamIdx).ObjClass;
      Method *Callee = findMethod(Cls, *Name);
      if (!Callee) {
        fail("unknown method '" + *Name + "'");
        return;
      }
      std::vector<Receiver> Args;
      if (!accept(")")) {
        do {
          const auto Arg = parseReceiver(Meth);
          if (!Arg)
            return;
          Args.push_back(*Arg);
        } while (accept(","));
        if (!expect(")"))
          return;
      }
      if (!expect(";"))
        return;
      Out.push_back(M->createCall(Callee, *Recv, std::move(Args)));
      return;
    }

    // Field update: target already consumed as recv->field; expect '='.
    const ClassDecl *Cls = Recv->Kind == RecvKind::This
                               ? Meth->owner()
                               : Meth->param(Recv->ParamIdx).ObjClass;
    const auto FIdx = fieldIndex(Cls, *Name);
    if (!FIdx) {
      fail("unknown field '" + *Name + "'");
      return;
    }
    if (!expect("="))
      return;
    const Expr *First = parseExpr(Meth);
    if (!First)
      return;
    if (const auto Op = opFromToken(peek())) {
      // Commuting form: target = target <op> value. Validate the repeated
      // target.
      const auto *FR = exprDynCast<FieldReadExpr>(First);
      if (!FR || !(FR->Recv == *Recv) || FR->Field != *FIdx) {
        fail("update must repeat its target on the right-hand side");
        return;
      }
      next();
      const Expr *Value = parseExpr(Meth);
      if (!Value || !expect(";"))
        return;
      Out.push_back(M->createUpdate(*Recv, *FIdx, *Op, Value));
      return;
    }
    if (!expect(";"))
      return;
    Out.push_back(M->createUpdate(*Recv, *FIdx, BinOp::Assign, First));
  }

  Lexer Lex;
  size_t Pos = 0;
  std::unique_ptr<Module> M;
  std::string Error;
};

} // namespace

ParseResult ir::parseModule(const std::string &Text) {
  return Parser(Text).run();
}
