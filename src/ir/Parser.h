//===- ir/Parser.h - Textual IR parsing --------------------------*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by ir/Printer.h back into a Module, so
/// programs can be stored, diffed and round-tripped like LLVM IR. The
/// grammar is exactly the printer's output language:
///
///   module <name>
///   class <name> { lock mutex; double <field>; ... };
///   void <class>::<method>(<params>) { <stmts> }
///   parallel section <name>: for all objects o: o-><method>(...)
///
/// Statements: `compute #N [reads(e, ...)];`, commuting updates
/// `r->f = r->f <op> e;` (or `r->f = e;` for overwrites),
/// `r->mutex.acquire();` / `r->mutex.release();`, calls `r->m(args);` and
/// loops `for iN in 0..nN { ... }`.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_PARSER_H
#define DYNFB_IR_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace dynfb::ir {

/// Result of parsing: the module, or an error message with a line number.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error; ///< Empty on success.

  bool ok() const { return M != nullptr; }
};

/// Parses \p Text (the printer's output language) into a fresh module.
ParseResult parseModule(const std::string &Text);

} // namespace dynfb::ir

#endif // DYNFB_IR_PARSER_H
