//===- ir/Printer.h - Textual IR dump --------------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR entities as stable, human-readable pseudo-source. Used by the
/// golden tests and for debugging transformed versions (the printed form of
/// the Barnes-Hut program before/after lifting matches the paper's
/// Figures 1 and 2 in structure).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_IR_PRINTER_H
#define DYNFB_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace dynfb::ir {

/// Renders one expression.
std::string printExpr(const Expr *E, const Method &Context);

/// Renders one method (signature + indented body).
std::string printMethod(const Method &M);

/// Renders the whole module: classes, methods, sections. When
/// \p IncludeSynthetic is false, compiler-generated method variants are
/// omitted (the author's source form).
std::string printModule(const Module &M, bool IncludeSynthetic = true);

/// Renders a receiver in context of \p M (e.g. "this", "b", "b[i2]").
std::string printReceiver(const Receiver &R, const Method &M);

} // namespace dynfb::ir

#endif // DYNFB_IR_PRINTER_H
