//===- ir/Clone.cpp -------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"

#include "support/Compiler.h"

#include <cassert>
#include <set>

using namespace dynfb;
using namespace dynfb::ir;

Stmt *ir::cloneStmt(Module &M, const Stmt *S,
                    const std::map<const Method *, Method *> &CalleeMap) {
  switch (S->kind()) {
  case StmtKind::Compute: {
    const auto &C = stmtCast<ComputeStmt>(S);
    return M.createCompute(C.CostClass, C.Reads);
  }
  case StmtKind::Update: {
    const auto &U = stmtCast<UpdateStmt>(S);
    return M.createUpdate(U.Recv, U.Field, U.Op, U.Value);
  }
  case StmtKind::Acquire:
    return M.createAcquire(stmtCast<AcquireStmt>(S).Recv);
  case StmtKind::Release:
    return M.createRelease(stmtCast<ReleaseStmt>(S).Recv);
  case StmtKind::Call: {
    const auto &C = stmtCast<CallStmt>(S);
    const Method *Target = C.callee();
    auto It = CalleeMap.find(Target);
    if (It != CalleeMap.end())
      Target = It->second;
    return M.createCall(Target, C.Recv, C.ObjArgs);
  }
  case StmtKind::Loop: {
    const auto &L = stmtCast<LoopStmt>(S);
    std::vector<Stmt *> Body;
    Body.reserve(L.Body.size());
    for (const Stmt *Child : L.Body)
      Body.push_back(cloneStmt(M, Child, CalleeMap));
    return M.createLoop(L.LoopId, std::move(Body));
  }
  }
  DYNFB_UNREACHABLE("invalid statement kind");
}

namespace {

/// Collects the called-method closure in post order (callees first) so each
/// clone can retarget to already-cloned callees.
void collectClosure(const Method *M, std::vector<const Method *> &PostOrder,
                    std::set<const Method *> &Visited,
                    std::set<const Method *> &OnStack) {
  if (Visited.count(M))
    return;
  assert(!OnStack.count(M) && "recursive method closure cannot be cloned");
  OnStack.insert(M);

  // Walk the body for call statements.
  std::vector<const std::vector<Stmt *> *> Work{&M->body()};
  std::vector<const Method *> Callees;
  while (!Work.empty()) {
    const std::vector<Stmt *> *List = Work.back();
    Work.pop_back();
    for (const Stmt *S : *List) {
      if (const auto *C = stmtDynCast<CallStmt>(S))
        Callees.push_back(C->callee());
      else if (const auto *L = stmtDynCast<LoopStmt>(S))
        Work.push_back(&L->Body);
    }
  }
  for (const Method *Callee : Callees)
    collectClosure(Callee, PostOrder, Visited, OnStack);

  OnStack.erase(M);
  Visited.insert(M);
  PostOrder.push_back(M);
}

} // namespace

CloneResult ir::cloneMethodClosure(Module &M, const Method *Root,
                                   const std::string &Suffix) {
  std::vector<const Method *> PostOrder;
  std::set<const Method *> Visited, OnStack;
  collectClosure(Root, PostOrder, Visited, OnStack);

  CloneResult Result;
  for (const Method *Orig : PostOrder) {
    Method *Clone = M.createMethod(Orig->name() + Suffix, Orig->owner());
    Clone->setSynthetic();
    for (const Param &P : Orig->params())
      Clone->addParam(P);
    for (const Stmt *S : Orig->body())
      Clone->body().push_back(cloneStmt(M, S, Result.Map));
    Result.Map[Orig] = Clone;
  }
  Result.Root = Result.Map.at(Root);
  return Result;
}
