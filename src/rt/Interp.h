//===- rt/Interp.h - IR-to-microcode lowering -------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IterationEmitter interprets one generated section version's IR for a
/// given parallel iteration, resolving receivers to concrete objects and
/// loop trip counts / compute costs through the application's DataBinding,
/// and emits the flat MicroOp sequence the machine executes. Commuting
/// updates are folded into compute time; adjacent computes are merged.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_INTERP_H
#define DYNFB_RT_INTERP_H

#include "ir/Module.h"
#include "rt/Binding.h"
#include "rt/CostModel.h"
#include "rt/MicroOp.h"

#include <vector>

namespace dynfb::rt {

/// Lowers iterations of one section version to micro-operations.
class IterationEmitter {
public:
  /// \p Entry is the section version's entry method; \p Binding supplies the
  /// data-dependent pieces; \p Costs prices field updates.
  IterationEmitter(const ir::Method *Entry, const DataBinding &Binding,
                   const CostModel &Costs);

  /// Appends iteration \p Iter's micro-ops to \p Out (Out is cleared first).
  void emit(uint64_t Iter, std::vector<MicroOp> &Out) const;

  /// Counts the acquire/release pairs iteration \p Iter executes, without
  /// materializing ops (used by analytical reports).
  uint64_t countPairs(uint64_t Iter) const;

  /// Sums the pure compute time of iteration \p Iter (updates included,
  /// lock constructs excluded).
  Nanos computeTime(uint64_t Iter) const;

private:
  struct Frame {
    ObjectId This = 0;
    std::vector<ObjRef> Params; ///< Indexed by object-parameter position.
  };

  void runMethod(const ir::Method *M, const Frame &F, LoopCtx &Ctx,
                 std::vector<MicroOp> &Out) const;
  void runList(const ir::Method *M, const std::vector<ir::Stmt *> &List,
               const Frame &F, LoopCtx &Ctx, std::vector<MicroOp> &Out) const;

  ObjectId resolveObject(const ir::Receiver &R, const ir::Method *M,
                         const Frame &F, const LoopCtx &Ctx) const;
  ObjRef resolveRef(const ir::Receiver &R, const ir::Method *M,
                    const Frame &F, const LoopCtx &Ctx) const;

  static void pushCompute(std::vector<MicroOp> &Out, Nanos Dur);

  const ir::Method *const Entry;
  const DataBinding &Binding;
  const CostModel Costs;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_INTERP_H
