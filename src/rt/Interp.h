//===- rt/Interp.h - IR-to-microcode lowering -------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IterationEmitter interprets one generated section version's IR for a
/// given parallel iteration, resolving receivers to concrete objects and
/// loop trip counts / compute costs through the application's DataBinding,
/// and emits the flat MicroOp sequence the machine executes. Commuting
/// updates are folded into compute time; adjacent computes are merged.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_INTERP_H
#define DYNFB_RT_INTERP_H

#include "ir/Module.h"
#include "rt/Binding.h"
#include "rt/CostModel.h"
#include "rt/MicroOp.h"

#include <vector>

namespace dynfb::rt {

/// Memoized micro-op sequences for one section version, keyed by
/// DataBinding::iterationClass. Owned by whoever owns the binding's
/// lifetime (the sim backend keeps one per version per section, so cached
/// sequences survive across section occurrences); filled lazily by
/// IterationEmitter::ops.
class EmittedOpsCache {
  friend class IterationEmitter;
  std::vector<std::vector<MicroOp>> Seqs; ///< Indexed by iteration class.
  std::vector<uint8_t> Filled;            ///< 1 once Seqs[Class] is valid.
};

/// Lowers iterations of one section version to micro-operations.
class IterationEmitter {
public:
  /// \p Entry is the section version's entry method; \p Binding supplies the
  /// data-dependent pieces; \p Costs prices field updates.
  IterationEmitter(const ir::Method *Entry, const DataBinding &Binding,
                   const CostModel &Costs);

  /// Appends iteration \p Iter's micro-ops to \p Out (Out is cleared first).
  void emit(uint64_t Iter, std::vector<MicroOp> &Out) const;

  /// Attaches a memoization cache for this emitter's (version, binding)
  /// pair. Only iterations the binding assigns a non-negative
  /// iterationClass are memoized; everything else falls back to live
  /// interpretation. Pass nullptr to detach.
  void attachCache(EmittedOpsCache *C) { Cache = C; }

  /// Iteration \p Iter's micro-ops: a reference into the attached cache on
  /// the memoized path, or into \p Scratch (re-emitted live) on the
  /// fallback path. The reference is valid until the cache is destroyed or
  /// \p Scratch is next touched, whichever path produced it.
  const std::vector<MicroOp> &ops(uint64_t Iter,
                                  std::vector<MicroOp> &Scratch) const;

  /// Counts the acquire/release pairs iteration \p Iter executes, without
  /// materializing ops (used by analytical reports).
  uint64_t countPairs(uint64_t Iter) const;

  /// Sums the pure compute time of iteration \p Iter (updates included,
  /// lock constructs excluded).
  Nanos computeTime(uint64_t Iter) const;

private:
  /// Fixed-capacity parameter storage: one call frame is built per callee
  /// invocation -- per loop trip in the hot emission path -- so Params must
  /// never touch the heap. Generated methods take at most a handful of
  /// object parameters; the capacity asserts rather than spills.
  class ParamArray {
  public:
    void resize(size_t N) {
      assert(N <= Cap && "generated method exceeds frame parameter capacity");
      for (size_t I = Size; I < N; ++I)
        Elems[I] = ObjRef();
      Size = N;
    }
    size_t size() const { return Size; }
    ObjRef &operator[](size_t I) {
      assert(I < Size && "parameter index out of range");
      return Elems[I];
    }
    const ObjRef &operator[](size_t I) const {
      assert(I < Size && "parameter index out of range");
      return Elems[I];
    }

  private:
    static constexpr size_t Cap = 8;
    ObjRef Elems[Cap];
    size_t Size = 0;
  };

  struct Frame {
    ObjectId This = 0;
    ParamArray Params; ///< Indexed by object-parameter position.
  };

  void runMethod(const ir::Method *M, const Frame &F, LoopCtx &Ctx,
                 std::vector<MicroOp> &Out) const;
  void runList(const ir::Method *M, const std::vector<ir::Stmt *> &List,
               const Frame &F, LoopCtx &Ctx, std::vector<MicroOp> &Out) const;

  /// Sums the compute time of a statement list whose lowering is pure
  /// compute (no lock operations, so no frames or object resolution are
  /// needed). Fast path for the hot per-trip emission of compute-only loop
  /// bodies; per-statement durations are clamped to >= 0 exactly as
  /// pushCompute would, so the folded result matches op-by-op emission.
  Nanos sumComputeList(const std::vector<ir::Stmt *> &List, LoopCtx &Ctx) const;

  ObjectId resolveObject(const ir::Receiver &R, const ir::Method *M,
                         const Frame &F, const LoopCtx &Ctx) const;
  ObjRef resolveRef(const ir::Receiver &R, const ir::Method *M,
                    const Frame &F, const LoopCtx &Ctx) const;

  static void pushCompute(std::vector<MicroOp> &Out, Nanos Dur);

  const ir::Method *const Entry;
  const DataBinding &Binding;
  const CostModel Costs;
  EmittedOpsCache *Cache = nullptr;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_INTERP_H
