//===- rt/NativeBackend.h - Real-threads execution backend ------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionBackend over real hardware threads: the native peer of
/// sim::SimBackend. It consumes the same SectionRegistry the simulator
/// consumes, hands out RealSectionRunners whose iteration bodies interpret
/// the generated IR (compute lowered to calibrated busy-wait, critical
/// regions to counting spin locks), and fills the same IntervalTrace
/// structures, so the feedback driver, observability exporters, and
/// experiment harness above it are backend-blind.
///
/// Two deliberate differences from the simulator:
///  - Time is the host steady clock, rebased to a per-backend epoch taken
///    at construction, so now() starts near zero like a simulated run.
///  - MachineModel pricing does not apply: the hardware sets the cost of a
///    lock op or a cache miss. The cost model passed in the options is used
///    only to materialize workload compute durations (which are then scaled
///    by TimeScale); machine selection is a simulator concept.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_NATIVEBACKEND_H
#define DYNFB_RT_NATIVEBACKEND_H

#include "rt/Backend.h"
#include "rt/CostModel.h"
#include "rt/RealRunner.h"
#include "rt/SectionRegistry.h"
#include "rt/ThreadTeam.h"

#include <map>
#include <memory>
#include <string>

namespace dynfb::rt {

/// Real-threads backend. Owns the worker team; sections come from a
/// backend-agnostic SectionRegistry (bindings and IR must outlive the
/// backend).
class NativeBackend : public ExecutionBackend {
public:
  struct Options {
    /// Virtual-to-real conversion for workload compute durations (0.0005
    /// runs 1 ms of virtual compute as a 0.5 us busy-wait).
    double TimeScale = 0.0005;
    /// Cost model used only to emit workload compute durations; defaults to
    /// the paper's DASH-like model so native workloads match the ones the
    /// simulator executes.
    CostModel Costs = CostModel::dashLike();
  };

  NativeBackend(unsigned NumProcs, SectionRegistry Sections, Options Opts);
  NativeBackend(unsigned NumProcs, SectionRegistry Sections)
      : NativeBackend(NumProcs, std::move(Sections), Options()) {}

  void runSerial(Nanos Dur) override;

  std::unique_ptr<IntervalRunner>
  beginSection(const std::string &Name) override;

  Nanos now() const override { return steadyNow() - Epoch; }

  BackendKind kind() const override { return BackendKind::Native; }

  void setCollectSectionTraces(bool Enable) override {
    CollectSectionTraces = Enable;
  }

  const std::map<std::string, IntervalTrace> &sectionTraces() const override {
    return SectionTraces;
  }

  ThreadTeam &team() { return Team; }
  double timeScale() const { return Opts.TimeScale; }

private:
  SectionRegistry Sections;
  Options Opts;
  ThreadTeam Team;
  Nanos Epoch;
  bool CollectSectionTraces = false;
  /// std::map: entry addresses are stable, so live runners can hold a
  /// pointer into it across later insertions.
  std::map<std::string, IntervalTrace> SectionTraces;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_NATIVEBACKEND_H
