//===- rt/SpinLock.cpp ----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/SpinLock.h"

#include <thread>

using namespace dynfb::rt;

uint64_t SpinLock::acquire() {
  uint64_t Failed = 0;
  while (!tryAcquire()) {
    ++Failed;
    // Back off briefly so single-core hosts make progress: after a burst of
    // raw attempts, yield the processor to the lock holder.
    if ((Failed & 0x3f) == 0)
      std::this_thread::yield();
  }
  return Failed;
}
