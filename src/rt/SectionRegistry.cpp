//===- rt/SectionRegistry.cpp ---------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/SectionRegistry.h"

#include <cassert>

using namespace dynfb;
using namespace dynfb::rt;

void SectionRegistry::addSection(SectionDesc Desc) {
  assert(Desc.Binding && "section registered without a binding");
  assert(!Desc.Versions.empty() && "section registered without versions");
  assert(!find(Desc.Name) && "duplicate section name");
  Sections.push_back(std::move(Desc));
}

const SectionDesc *SectionRegistry::find(const std::string &Name) const {
  for (const SectionDesc &D : Sections)
    if (D.Name == Name)
      return &D;
  return nullptr;
}
