//===- rt/CostModel.h - Machine cost parameters -----------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost parameters of the simulated shared-memory multiprocessor. The
/// defaults model the paper's platform, a 16-processor Stanford DASH: spin
/// locks with a hardware attempt construct, a ~9 microsecond timer read
/// (paper Section 4.1), and lock operation costs calibrated so the paper's
/// locking-overhead/execution-time ratios are reproduced.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_COSTMODEL_H
#define DYNFB_RT_COSTMODEL_H

#include "rt/Time.h"

namespace dynfb::rt {

/// Costs of the primitive machine operations, in (virtual) nanoseconds.
struct CostModel {
  /// Successful lock acquire (uncontended hardware acquire construct).
  Nanos AcquireNanos = 3000;
  /// Lock release.
  Nanos ReleaseNanos = 1500;
  /// One failed acquire attempt while spinning (paper Section 4.3: the
  /// waiting overhead is the failed-attempt cost times the failure count).
  Nanos FailedAcquireNanos = 1000;
  /// Reading the timer (paper: ~9 microseconds on DASH).
  Nanos TimerReadNanos = 9000;
  /// One barrier episode per processor (synchronous policy switching).
  Nanos BarrierNanos = 20000;
  /// Fetching the next iteration from the dynamic loop scheduler.
  Nanos SchedFetchNanos = 1500;
  /// One commuting field update (load-op-store).
  Nanos UpdateNanos = 250;
  /// Extra cost per lock operation when the overhead instrumentation is
  /// compiled in (counter increments; the paper measures this to be small).
  Nanos InstrumentNanos = 150;

  /// The default DASH-like machine.
  static CostModel dashLike() { return CostModel{}; }

  /// Combined cost of one successful acquire/release pair.
  Nanos pairNanos(bool Instrumented) const {
    return AcquireNanos + ReleaseNanos +
           (Instrumented ? 2 * InstrumentNanos : 0);
  }
};

} // namespace dynfb::rt

#endif // DYNFB_RT_COSTMODEL_H
