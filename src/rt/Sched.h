//===- rt/Sched.h - Parallel loop scheduling strategies ---------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop scheduling adaptation dimension. Every code version of a
/// parallel section binds one scheduling strategy for its parallel loop:
///  - Dynamic: dynamic self-scheduling -- each processor fetches one
///    iteration at a time from the shared counter (the paper's execution
///    model, and the repository's historical behaviour).
///  - Chunked: blocked self-scheduling -- each fetch claims a contiguous
///    chunk of iterations, amortizing the scheduler fetch over the chunk at
///    the price of coarser potential switch points (the timer is only
///    polled at chunk boundaries) and load imbalance at the tail.
/// The strategy is a runtime property of the dispatch loop, not of the
/// generated method body: versions that differ only in scheduling share
/// their section code.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_SCHED_H
#define DYNFB_RT_SCHED_H

#include "support/Compiler.h"

#include <cstdint>
#include <string>

namespace dynfb::rt {

/// Iteration-assignment strategy of a parallel loop.
enum class SchedKind { Dynamic, Chunked };

/// One point of the loop scheduling dimension.
struct SchedSpec {
  SchedKind Kind = SchedKind::Dynamic;
  /// Iterations claimed per scheduler fetch (Chunked only; >= 2).
  uint64_t ChunkIters = 1;

  static SchedSpec dynamic() { return SchedSpec{}; }
  static SchedSpec chunked(uint64_t Iters) {
    DYNFB_CHECK(Iters >= 2, "chunked scheduling needs a chunk size >= 2");
    return SchedSpec{SchedKind::Chunked, Iters};
  }

  /// Iterations one fetch claims under this strategy.
  uint64_t chunkIters() const {
    return Kind == SchedKind::Chunked ? ChunkIters : 1;
  }

  /// Display name as used in version-space listings ("dyn", "chunk8").
  std::string name() const {
    switch (Kind) {
    case SchedKind::Dynamic:
      return "dyn";
    case SchedKind::Chunked:
      return "chunk" + std::to_string(ChunkIters);
    }
    DYNFB_UNREACHABLE("invalid scheduling kind");
  }

  /// Suffix for synthetic names ("" for the default dynamic strategy).
  std::string suffix() const {
    switch (Kind) {
    case SchedKind::Dynamic:
      return "";
    case SchedKind::Chunked:
      return "$c" + std::to_string(ChunkIters);
    }
    DYNFB_UNREACHABLE("invalid scheduling kind");
  }

  friend bool operator==(const SchedSpec &A, const SchedSpec &B) {
    return A.Kind == B.Kind && A.chunkIters() == B.chunkIters();
  }
  friend bool operator!=(const SchedSpec &A, const SchedSpec &B) {
    return !(A == B);
  }
};

} // namespace dynfb::rt

#endif // DYNFB_RT_SCHED_H
