//===- rt/Sched.h - Parallel loop scheduling strategies ---------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop scheduling adaptation dimension. Every code version of a
/// parallel section binds one scheduling strategy for its parallel loop:
///  - Dynamic: dynamic self-scheduling -- each processor fetches one
///    iteration at a time from the shared counter (the paper's execution
///    model, and the repository's historical behaviour).
///  - Chunked: blocked self-scheduling -- each fetch claims a contiguous
///    chunk of iterations, amortizing the scheduler fetch over the chunk at
///    the price of coarser potential switch points (the timer is only
///    polled at chunk boundaries) and load imbalance at the tail.
///  - Factoring / WeightedFactoring / AdaptiveFactoring: the dynamic loop
///    scheduling (DLS) family -- each fetch claims a chunk computed from the
///    iterations still unassigned, so chunks start large and taper toward
///    the tail. Factoring claims remaining/(2P); weighted factoring scales
///    that by a per-processor weight (faster processors claim more);
///    adaptive factoring tapers quadratically in the remaining fraction, a
///    deterministic stand-in for the variance-driven variant.
/// The strategy is a runtime property of the dispatch loop, not of the
/// generated method body: versions that differ only in scheduling share
/// their section code.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_SCHED_H
#define DYNFB_RT_SCHED_H

#include "support/Compiler.h"

#include <algorithm>
#include <cstdint>
#include <string>

namespace dynfb::rt {

/// Iteration-assignment strategy of a parallel loop.
enum class SchedKind {
  Dynamic,
  Chunked,
  Factoring,
  WeightedFactoring,
  AdaptiveFactoring,
};

/// One point of the loop scheduling dimension.
struct SchedSpec {
  SchedKind Kind = SchedKind::Dynamic;
  /// Iterations claimed per scheduler fetch (Chunked only; >= 2).
  uint64_t ChunkIters = 1;

  static SchedSpec dynamic() { return SchedSpec{}; }
  static SchedSpec chunked(uint64_t Iters) {
    DYNFB_CHECK(Iters >= 2, "chunked scheduling needs a chunk size >= 2");
    return SchedSpec{SchedKind::Chunked, Iters};
  }
  static SchedSpec factoring() { return SchedSpec{SchedKind::Factoring, 1}; }
  static SchedSpec weightedFactoring() {
    return SchedSpec{SchedKind::WeightedFactoring, 1};
  }
  static SchedSpec adaptiveFactoring() {
    return SchedSpec{SchedKind::AdaptiveFactoring, 1};
  }

  /// True when the chunk a fetch claims depends on loop progress (the DLS
  /// family); fixed-chunk strategies can hoist chunkIters() out of the
  /// dispatch loop.
  bool variableChunk() const {
    return Kind == SchedKind::Factoring ||
           Kind == SchedKind::WeightedFactoring ||
           Kind == SchedKind::AdaptiveFactoring;
  }

  /// Iterations one fetch claims under a fixed-chunk strategy (the DLS
  /// family reports its floor of 1; use fetchIters() at fetch time).
  uint64_t chunkIters() const {
    return Kind == SchedKind::Chunked ? ChunkIters : 1;
  }

  /// Iterations one fetch claims given \p Remaining unassigned iterations of
  /// a \p Total -iteration loop, fetched by processor \p ProcIdx of
  /// \p Procs. Deterministic: the claim depends only on these arguments.
  uint64_t fetchIters(uint64_t Remaining, uint64_t Total, unsigned Procs,
                      unsigned ProcIdx) const {
    if (Remaining == 0)
      return 1;
    const uint64_t TwoP = 2 * static_cast<uint64_t>(Procs ? Procs : 1);
    switch (Kind) {
    case SchedKind::Dynamic:
      return 1;
    case SchedKind::Chunked:
      return ChunkIters;
    case SchedKind::Factoring:
      // Batch of remaining/(2P) per fetch: every processor's claim within a
      // "round" of remaining work is the same, halving assigned-but-unrun
      // work each sweep (Hummel et al.'s factoring).
      return std::max<uint64_t>(1, (Remaining + TwoP - 1) / TwoP);
    case SchedKind::WeightedFactoring: {
      // Factoring scaled by a fixed per-processor weight 2*(P-p)/(P+1)
      // (weights average to 1 across the team); lower-indexed processors
      // stand in for the faster machines of the weighted-factoring paper.
      const uint64_t P = Procs ? Procs : 1;
      const uint64_t W2 = 2 * (P - std::min<uint64_t>(ProcIdx, P - 1));
      const uint64_t Scaled = (Remaining * W2) / (P + 1);
      return std::max<uint64_t>(1, (Scaled + TwoP - 1) / TwoP);
    }
    case SchedKind::AdaptiveFactoring: {
      // Deterministic stand-in for adaptive factoring: the chunk tapers
      // with the square of the remaining fraction, so claims shrink faster
      // than plain factoring as the tail approaches.
      const uint64_t T = Total ? Total : Remaining;
      const uint64_t Num = Remaining * Remaining;
      const uint64_t Den = TwoP * T;
      return std::max<uint64_t>(1, (Num + Den - 1) / Den);
    }
    }
    DYNFB_UNREACHABLE("invalid scheduling kind");
  }

  /// Display name as used in version-space listings ("dyn", "chunk8",
  /// "fac").
  std::string name() const {
    switch (Kind) {
    case SchedKind::Dynamic:
      return "dyn";
    case SchedKind::Chunked:
      return "chunk" + std::to_string(ChunkIters);
    case SchedKind::Factoring:
      return "fac";
    case SchedKind::WeightedFactoring:
      return "wfac";
    case SchedKind::AdaptiveFactoring:
      return "afac";
    }
    DYNFB_UNREACHABLE("invalid scheduling kind");
  }

  /// Suffix for synthetic names ("" for the default dynamic strategy).
  std::string suffix() const {
    switch (Kind) {
    case SchedKind::Dynamic:
      return "";
    case SchedKind::Chunked:
      return "$c" + std::to_string(ChunkIters);
    case SchedKind::Factoring:
      return "$fac";
    case SchedKind::WeightedFactoring:
      return "$wfac";
    case SchedKind::AdaptiveFactoring:
      return "$afac";
    }
    DYNFB_UNREACHABLE("invalid scheduling kind");
  }

  friend bool operator==(const SchedSpec &A, const SchedSpec &B) {
    return A.Kind == B.Kind && A.chunkIters() == B.chunkIters();
  }
  friend bool operator!=(const SchedSpec &A, const SchedSpec &B) {
    return !(A == B);
  }
};

} // namespace dynfb::rt

#endif // DYNFB_RT_SCHED_H
