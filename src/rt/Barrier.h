//===- rt/Barrier.h - Reusable thread barrier -------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable sense-reversing barrier for the real-threads backend. The
/// generated code switches policies synchronously: when an interval expires,
/// each processor waits at a barrier until all processors have detected the
/// expiration (paper Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_BARRIER_H
#define DYNFB_RT_BARRIER_H

#include <atomic>
#include <cstdint>

namespace dynfb::rt {

/// Reusable barrier over a fixed participant count.
class Barrier {
public:
  explicit Barrier(unsigned Participants);

  /// Blocks until all participants arrive. Safe to reuse immediately.
  void arriveAndWait();

private:
  const unsigned Participants;
  std::atomic<unsigned> Count;
  std::atomic<uint32_t> Generation{0};
};

} // namespace dynfb::rt

#endif // DYNFB_RT_BARRIER_H
