//===- rt/MicroOp.h - Flattened iteration micro-operations ------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One parallel-loop iteration, lowered to a flat sequence of primitive
/// machine operations: compute for a duration, acquire a lock, release a
/// lock. The simulator advances processors through these sequences; commuting
/// updates are folded into compute durations at emission time and adjacent
/// computes are merged.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_MICROOP_H
#define DYNFB_RT_MICROOP_H

#include "rt/Binding.h"
#include "rt/Time.h"

namespace dynfb::rt {

/// One primitive operation of an iteration.
struct MicroOp {
  enum class Kind : uint8_t { Compute, Acquire, Release };

  Kind K = Kind::Compute;
  ObjectId Obj = 0; ///< Lock identity for Acquire/Release.
  Nanos Dur = 0;    ///< Duration for Compute.

  static MicroOp compute(Nanos Dur) {
    return MicroOp{Kind::Compute, 0, Dur};
  }
  static MicroOp acquire(ObjectId O) {
    return MicroOp{Kind::Acquire, O, 0};
  }
  static MicroOp release(ObjectId O) {
    return MicroOp{Kind::Release, O, 0};
  }
};

} // namespace dynfb::rt

#endif // DYNFB_RT_MICROOP_H
