//===- rt/NativeSection.h - IR sections on real threads ---------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes generated IR section versions on the real-threads backend: the
/// interpreter lowers each iteration to micro-ops, compute durations become
/// calibrated busy-wait (scaled by a virtual-to-real time factor), and
/// acquire/release operate on an array of real counting spin locks indexed
/// by object id. This completes the backend matrix: the same generated
/// code runs on the deterministic simulator or on actual hardware threads,
/// behind the same IntervalRunner contract.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_NATIVESECTION_H
#define DYNFB_RT_NATIVESECTION_H

#include "ir/Module.h"
#include "rt/Binding.h"
#include "rt/CostModel.h"
#include "rt/Interp.h"
#include "rt/RealRunner.h"
#include "rt/SpinLock.h"

#include <memory>
#include <string>
#include <vector>

namespace dynfb::rt {

/// One IR version to execute natively.
struct NativeIrVersion {
  std::string Label;
  const ir::Method *Entry = nullptr;
  SchedSpec Sched;
};

/// Builds a RealSectionRunner whose iteration bodies interpret the given IR
/// versions. \p TimeScale converts virtual nanoseconds of compute cost into
/// real busy-wait nanoseconds (e.g. 0.001 runs a 1 ms virtual kernel as a
/// 1 us spin) so workloads stay testable. The returned runner owns the
/// lock table and emitters; \p Binding and the IR must outlive it.
std::unique_ptr<RealSectionRunner>
makeNativeIrRunner(ThreadTeam &Team, const DataBinding &Binding,
                   std::vector<NativeIrVersion> Versions,
                   const CostModel &Costs, double TimeScale);

/// Busy-waits for approximately \p Dur of real time (exposed for tests and
/// calibration).
void busyWait(Nanos Dur);

} // namespace dynfb::rt

#endif // DYNFB_RT_NATIVESECTION_H
