//===- rt/SectionTrace.h - Interval tracing and contention reports -*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optional per-interval tracing, shared by every execution backend:
/// per-processor time decomposition (compute / lock ops / waiting /
/// dispatch+polling) and per-lock contention summaries. The simulator fills
/// it from simulated processor timelines, the native backend from real
/// worker clocks; the exporters and contention-analysis tools consume the
/// same structure either way.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_SECTIONTRACE_H
#define DYNFB_RT_SECTIONTRACE_H

#include "rt/Binding.h"
#include "rt/Time.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dynfb::rt {

/// Filled by a section runner's runInterval when a trace is attached.
struct IntervalTrace {
  /// One processor's time decomposition over the interval.
  struct ProcSummary {
    Nanos ComputeNanos = 0;  ///< Useful computation (incl. updates).
    Nanos LockOpNanos = 0;   ///< Successful acquire/release constructs.
    Nanos WaitNanos = 0;     ///< Spinning on held locks.
    Nanos OverheadNanos = 0; ///< Scheduler fetches + timer polls.
    uint64_t Iterations = 0; ///< Iterations fetched and executed.

    Nanos total() const {
      return ComputeNanos + LockOpNanos + WaitNanos + OverheadNanos;
    }
  };

  /// One lock's contention summary over the interval.
  struct LockSummary {
    uint64_t Acquires = 0;  ///< Successful acquires.
    uint64_t Contended = 0; ///< Acquires that had to wait.
    Nanos WaitNanos = 0;
  };

  std::vector<ProcSummary> Procs;
  std::map<ObjectId, LockSummary> Locks;

  /// When set, runInterval accumulates into the trace instead of resetting
  /// it, so one trace can summarize a whole run of a section (the trace
  /// exporter's per-section lock table). Defaults to the original
  /// per-interval semantics.
  bool Cumulative = false;

  void clear() {
    Procs.clear();
    Locks.clear();
  }

  /// Locks ordered by total waiting time, worst first (the false-exclusion
  /// suspects).
  std::vector<std::pair<ObjectId, LockSummary>> hottestLocks() const;

  /// Human-readable report.
  std::string renderText() const;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_SECTIONTRACE_H
