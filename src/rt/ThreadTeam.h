//===- rt/ThreadTeam.h - Persistent worker team -----------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent pool of worker threads for the real-threads backend. Jobs
/// are closures invoked once per worker with the worker index; run()
/// blocks until every worker has finished. Keeping the threads alive across
/// sections mirrors the paper's SPMD execution model.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_THREADTEAM_H
#define DYNFB_RT_THREADTEAM_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dynfb::rt {

/// Fixed-size worker team. Worker 0 is the calling thread, so a team of
/// size N uses N-1 background threads.
class ThreadTeam {
public:
  explicit ThreadTeam(unsigned Size);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam &) = delete;
  ThreadTeam &operator=(const ThreadTeam &) = delete;

  unsigned size() const { return Size; }

  /// Runs \p Job(WorkerIdx) on every worker (0..size-1) and blocks until all
  /// have returned. Worker 0 executes on the calling thread.
  void run(const std::function<void(unsigned)> &Job);

private:
  void workerMain(unsigned Idx);

  const unsigned Size;
  std::vector<std::thread> Threads;

  std::mutex Mtx;
  std::condition_variable CvStart, CvDone;
  const std::function<void(unsigned)> *CurrentJob = nullptr;
  uint64_t JobGeneration = 0;
  unsigned Remaining = 0;
  bool ShuttingDown = false;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_THREADTEAM_H
