//===- rt/SectionTrace.cpp ------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/SectionTrace.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace dynfb;
using namespace dynfb::rt;

std::vector<std::pair<ObjectId, IntervalTrace::LockSummary>>
IntervalTrace::hottestLocks() const {
  std::vector<std::pair<ObjectId, LockSummary>> Out(Locks.begin(),
                                                    Locks.end());
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    if (A.second.WaitNanos != B.second.WaitNanos)
      return A.second.WaitNanos > B.second.WaitNanos;
    return A.first < B.first;
  });
  return Out;
}

std::string IntervalTrace::renderText() const {
  std::string Out = "interval trace:\n";
  for (size_t P = 0; P < Procs.size(); ++P) {
    const ProcSummary &S = Procs[P];
    const double Total = static_cast<double>(S.total());
    auto Pct = [&](Nanos N) {
      return Total > 0 ? 100.0 * static_cast<double>(N) / Total : 0.0;
    };
    Out += format("  proc %2zu: %6llu iters  compute %5.1f%%  locks %5.1f%%"
                  "  waiting %5.1f%%  dispatch %5.1f%%\n",
                  P, static_cast<unsigned long long>(S.Iterations),
                  Pct(S.ComputeNanos), Pct(S.LockOpNanos), Pct(S.WaitNanos),
                  Pct(S.OverheadNanos));
  }
  const auto Hot = hottestLocks();
  const size_t Shown = std::min<size_t>(Hot.size(), 5);
  for (size_t I = 0; I < Shown; ++I) {
    const auto &[Obj, S] = Hot[I];
    Out += format("  lock %u: %llu acquires, %llu contended, total wait %s\n",
                  Obj, static_cast<unsigned long long>(S.Acquires),
                  static_cast<unsigned long long>(S.Contended),
                  formatSeconds(nanosToSeconds(S.WaitNanos)).c_str());
  }
  return Out;
}
