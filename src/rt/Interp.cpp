//===- rt/Interp.cpp ------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Interp.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;

IterationEmitter::IterationEmitter(const Method *Entry,
                                   const DataBinding &Binding,
                                   const CostModel &Costs)
    : Entry(Entry), Binding(Binding), Costs(Costs) {
  assert(Entry && "emitter needs an entry method");
}

namespace {

void markUsedRecv(const Receiver &R, uint32_t &Mask) {
  switch (R.Kind) {
  case RecvKind::This:
    return;
  case RecvKind::Param:
  case RecvKind::ParamIndexed:
    Mask |= 1u << R.ParamIdx;
    return;
  }
}

uint32_t usedParamsOf(const Method *M);

void markUsedList(const std::vector<Stmt *> &List, uint32_t &Mask) {
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Compute:
    case StmtKind::Update:
      // Lowered without resolving any object: compute reads only the cost
      // class, updates fold into compute time.
      break;
    case StmtKind::Acquire:
      markUsedRecv(stmtCast<AcquireStmt>(S).Recv, Mask);
      break;
    case StmtKind::Release:
      markUsedRecv(stmtCast<ReleaseStmt>(S).Recv, Mask);
      break;
    case StmtKind::Call: {
      const auto &C = stmtCast<CallStmt>(S);
      markUsedRecv(C.Recv, Mask);
      // An argument matters only if the callee's lowering reads the
      // parameter it binds.
      const uint32_t CalleeMask = usedParamsOf(C.callee());
      size_t NextArg = 0;
      for (unsigned P = 0; P < C.callee()->params().size(); ++P) {
        if (!C.callee()->param(P).isObject())
          continue;
        assert(NextArg < C.ObjArgs.size() && "missing object argument");
        if (CalleeMask & (1u << P))
          markUsedRecv(C.ObjArgs[NextArg], Mask);
        ++NextArg;
      }
      break;
    }
    case StmtKind::Loop:
      markUsedList(stmtCast<LoopStmt>(S).Body, Mask);
      break;
    }
  }
}

/// The bitmask of \p M's parameters whose bound objects the lowering reads,
/// computed on demand and cached on the method (see Method docs). A
/// recursion cycle leaves the in-progress conservative all-used mask in
/// place for the inner query.
uint32_t usedParamsOf(const Method *M) {
  const uint32_t Cached = M->loweringUsedParams();
  if (Cached != Method::LoweringParamsUnknown)
    return Cached;
  M->setLoweringUsedParams(0x7fffffffu);
  uint32_t Mask = 0;
  markUsedList(M->body(), Mask);
  M->setLoweringUsedParams(Mask);
  return Mask;
}

bool pureComputeOf(const Method *M);

/// Does \p List lower to compute time only -- no lock operations emitted,
/// directly or through callees? Such a list needs no call frames and no
/// object resolution, so its trips can be folded into a running duration.
bool pureComputeList(const std::vector<Stmt *> &List) {
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Compute:
    case StmtKind::Update:
      break;
    case StmtKind::Acquire:
    case StmtKind::Release:
      return false;
    case StmtKind::Call:
      if (!pureComputeOf(stmtCast<CallStmt>(S).callee()))
        return false;
      break;
    case StmtKind::Loop:
      if (!pureComputeList(stmtCast<LoopStmt>(S).Body))
        return false;
      break;
    }
  }
  return true;
}

/// Cached method-level purity (see Method::loweringPureCompute). A
/// recursion cycle sees the in-progress conservative "not pure" state.
bool pureComputeOf(const Method *M) {
  const uint8_t Cached = M->loweringPureCompute();
  if (Cached)
    return Cached == 1;
  M->setLoweringPureCompute(2);
  const bool Pure = pureComputeList(M->body());
  M->setLoweringPureCompute(Pure ? 1 : 2);
  return Pure;
}

} // namespace

void IterationEmitter::pushCompute(std::vector<MicroOp> &Out, Nanos Dur) {
  if (Dur <= 0)
    return;
  if (!Out.empty() && Out.back().K == MicroOp::Kind::Compute) {
    Out.back().Dur += Dur;
    return;
  }
  Out.push_back(MicroOp::compute(Dur));
}

ObjRef IterationEmitter::resolveRef(const Receiver &R, const Method *M,
                                    const Frame &F, const LoopCtx &Ctx) const {
  (void)M;
  switch (R.Kind) {
  case RecvKind::This:
    return ObjRef::single(F.This);
  case RecvKind::Param: {
    assert(R.ParamIdx < F.Params.size() && "unbound parameter");
    return F.Params[R.ParamIdx];
  }
  case RecvKind::ParamIndexed: {
    assert(R.ParamIdx < F.Params.size() && "unbound parameter");
    const ObjRef &Arr = F.Params[R.ParamIdx];
    assert(Arr.IsArray && "indexed receiver over non-array binding");
    return ObjRef::single(
        Binding.elementOf(Arr.Id, Ctx.indexOf(R.LoopId), Ctx));
  }
  }
  DYNFB_UNREACHABLE("invalid receiver kind");
}

ObjectId IterationEmitter::resolveObject(const Receiver &R, const Method *M,
                                         const Frame &F,
                                         const LoopCtx &Ctx) const {
  const ObjRef Ref = resolveRef(R, M, F, Ctx);
  assert(!Ref.IsArray && "expected a single object, found an array");
  return Ref.Id;
}

Nanos IterationEmitter::sumComputeList(const std::vector<Stmt *> &List,
                                       LoopCtx &Ctx) const {
  Nanos Sum = 0;
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Compute: {
      const Nanos D =
          Binding.computeNanos(stmtCast<ComputeStmt>(S).CostClass, Ctx);
      if (D > 0)
        Sum += D;
      break;
    }
    case StmtKind::Update:
      if (Costs.UpdateNanos > 0)
        Sum += Costs.UpdateNanos;
      break;
    case StmtKind::Call:
      // Pure-compute callees never read their receiver or parameters, so
      // no frame is built.
      Sum += sumComputeList(stmtCast<CallStmt>(S).callee()->body(), Ctx);
      break;
    case StmtKind::Loop: {
      const auto &L = stmtCast<LoopStmt>(S);
      const uint64_t Trip = Binding.tripCount(L.LoopId, Ctx);
      Ctx.Loops.emplace_back(L.LoopId, 0);
      for (uint64_t I = 0; I < Trip; ++I) {
        Ctx.Loops.back().second = I;
        Sum += sumComputeList(L.Body, Ctx);
      }
      Ctx.Loops.pop_back();
      break;
    }
    case StmtKind::Acquire:
    case StmtKind::Release:
      DYNFB_UNREACHABLE("lock operation in a pure-compute list");
    }
  }
  return Sum;
}

void IterationEmitter::runList(const Method *M,
                               const std::vector<Stmt *> &List,
                               const Frame &F, LoopCtx &Ctx,
                               std::vector<MicroOp> &Out) const {
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Compute:
      pushCompute(Out,
                  Binding.computeNanos(stmtCast<ComputeStmt>(S).CostClass,
                                       Ctx));
      break;
    case StmtKind::Update:
      pushCompute(Out, Costs.UpdateNanos);
      break;
    case StmtKind::Acquire:
      Out.push_back(MicroOp::acquire(
          resolveObject(stmtCast<AcquireStmt>(S).Recv, M, F, Ctx)));
      break;
    case StmtKind::Release:
      Out.push_back(MicroOp::release(
          resolveObject(stmtCast<ReleaseStmt>(S).Recv, M, F, Ctx)));
      break;
    case StmtKind::Call: {
      const auto &C = stmtCast<CallStmt>(S);
      const Method *Callee = C.callee();
      if (pureComputeOf(Callee)) {
        pushCompute(Out, sumComputeList(Callee->body(), Ctx));
        break;
      }
      const uint32_t CalleeUsed = usedParamsOf(Callee);
      Frame CalleeFrame;
      CalleeFrame.This = resolveObject(C.Recv, M, F, Ctx);
      CalleeFrame.Params.resize(Callee->params().size());
      size_t NextArg = 0;
      for (unsigned P = 0; P < Callee->params().size(); ++P) {
        if (!Callee->param(P).isObject())
          continue;
        assert(NextArg < C.ObjArgs.size() && "missing object argument");
        // Bind only parameters the callee's lowering reads; resolving the
        // rest (a binding query per loop trip on the hot path) is dead work.
        if (CalleeUsed & (1u << P))
          CalleeFrame.Params[P] = resolveRef(C.ObjArgs[NextArg], M, F, Ctx);
        ++NextArg;
      }
      runMethod(Callee, CalleeFrame, Ctx, Out);
      break;
    }
    case StmtKind::Loop: {
      const auto &L = stmtCast<LoopStmt>(S);
      const uint64_t Trip = Binding.tripCount(L.LoopId, Ctx);
      Ctx.Loops.emplace_back(L.LoopId, 0);
      if (pureComputeList(L.Body)) {
        // Compute-only body: fold every trip into one running duration
        // instead of building a frame and merging op-by-op per trip. The
        // merged output is identical because adjacent computes coalesce.
        Nanos Sum = 0;
        for (uint64_t I = 0; I < Trip; ++I) {
          Ctx.Loops.back().second = I;
          Sum += sumComputeList(L.Body, Ctx);
        }
        pushCompute(Out, Sum);
      } else {
        for (uint64_t I = 0; I < Trip; ++I) {
          Ctx.Loops.back().second = I;
          runList(M, L.Body, F, Ctx, Out);
        }
      }
      Ctx.Loops.pop_back();
      break;
    }
    }
  }
}

void IterationEmitter::runMethod(const Method *M, const Frame &F, LoopCtx &Ctx,
                                 std::vector<MicroOp> &Out) const {
  runList(M, M->body(), F, Ctx, Out);
}

void IterationEmitter::emit(uint64_t Iter, std::vector<MicroOp> &Out) const {
  Out.clear();
  Frame Top;
  Top.This = Binding.thisObject(Iter);
  Top.Params.resize(Entry->params().size());
  if (const uint32_t EntryUsed = usedParamsOf(Entry)) {
    const std::vector<ObjRef> Args = Binding.sectionArgs(Iter);
    size_t NextArg = 0;
    for (unsigned P = 0; P < Entry->params().size(); ++P) {
      if (!Entry->param(P).isObject())
        continue;
      assert(NextArg < Args.size() && "binding supplies too few section args");
      if (EntryUsed & (1u << P))
        Top.Params[P] = Args[NextArg];
      ++NextArg;
    }
  }
  LoopCtx Ctx;
  Ctx.Iter = Iter;
  runMethod(Entry, Top, Ctx, Out);
}

const std::vector<MicroOp> &
IterationEmitter::ops(uint64_t Iter, std::vector<MicroOp> &Scratch) const {
  const int64_t Class = Cache ? Binding.iterationClass(Iter) : -1;
  if (Class < 0) {
    emit(Iter, Scratch);
    return Scratch;
  }
  const size_t Key = static_cast<size_t>(Class);
  if (Key >= Cache->Seqs.size()) {
    const size_t NewSize =
        std::max<size_t>(Key + 1, Binding.iterationCount());
    Cache->Seqs.resize(NewSize);
    Cache->Filled.resize(NewSize, 0);
  }
  if (!Cache->Filled[Key]) {
    emit(Iter, Cache->Seqs[Key]);
    Cache->Filled[Key] = 1;
    return Cache->Seqs[Key];
  }
#ifndef NDEBUG
  // A cache hit must match a live emit exactly: a binding whose iterations
  // drift while claiming a stable iterationClass corrupts the simulation.
  emit(Iter, Scratch);
  const std::vector<MicroOp> &Cached = Cache->Seqs[Key];
  assert(Scratch.size() == Cached.size() && "stale ops cache");
  for (size_t I = 0; I < Cached.size(); ++I)
    assert(Scratch[I].K == Cached[I].K && Scratch[I].Obj == Cached[I].Obj &&
           Scratch[I].Dur == Cached[I].Dur && "stale ops cache");
#endif
  return Cache->Seqs[Key];
}

uint64_t IterationEmitter::countPairs(uint64_t Iter) const {
  std::vector<MicroOp> Ops;
  emit(Iter, Ops);
  uint64_t Pairs = 0;
  for (const MicroOp &Op : Ops)
    if (Op.K == MicroOp::Kind::Acquire)
      ++Pairs;
  return Pairs;
}

Nanos IterationEmitter::computeTime(uint64_t Iter) const {
  std::vector<MicroOp> Ops;
  emit(Iter, Ops);
  Nanos Total = 0;
  for (const MicroOp &Op : Ops)
    if (Op.K == MicroOp::Kind::Compute)
      Total += Op.Dur;
  return Total;
}
