//===- rt/Interp.cpp ------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Interp.h"

#include "support/Compiler.h"

#include <cassert>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;

IterationEmitter::IterationEmitter(const Method *Entry,
                                   const DataBinding &Binding,
                                   const CostModel &Costs)
    : Entry(Entry), Binding(Binding), Costs(Costs) {
  assert(Entry && "emitter needs an entry method");
}

void IterationEmitter::pushCompute(std::vector<MicroOp> &Out, Nanos Dur) {
  if (Dur <= 0)
    return;
  if (!Out.empty() && Out.back().K == MicroOp::Kind::Compute) {
    Out.back().Dur += Dur;
    return;
  }
  Out.push_back(MicroOp::compute(Dur));
}

ObjRef IterationEmitter::resolveRef(const Receiver &R, const Method *M,
                                    const Frame &F, const LoopCtx &Ctx) const {
  (void)M;
  switch (R.Kind) {
  case RecvKind::This:
    return ObjRef::single(F.This);
  case RecvKind::Param: {
    assert(R.ParamIdx < F.Params.size() && "unbound parameter");
    return F.Params[R.ParamIdx];
  }
  case RecvKind::ParamIndexed: {
    assert(R.ParamIdx < F.Params.size() && "unbound parameter");
    const ObjRef &Arr = F.Params[R.ParamIdx];
    assert(Arr.IsArray && "indexed receiver over non-array binding");
    return ObjRef::single(
        Binding.elementOf(Arr.Id, Ctx.indexOf(R.LoopId), Ctx));
  }
  }
  DYNFB_UNREACHABLE("invalid receiver kind");
}

ObjectId IterationEmitter::resolveObject(const Receiver &R, const Method *M,
                                         const Frame &F,
                                         const LoopCtx &Ctx) const {
  const ObjRef Ref = resolveRef(R, M, F, Ctx);
  assert(!Ref.IsArray && "expected a single object, found an array");
  return Ref.Id;
}

void IterationEmitter::runList(const Method *M,
                               const std::vector<Stmt *> &List,
                               const Frame &F, LoopCtx &Ctx,
                               std::vector<MicroOp> &Out) const {
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Compute:
      pushCompute(Out,
                  Binding.computeNanos(stmtCast<ComputeStmt>(S).CostClass,
                                       Ctx));
      break;
    case StmtKind::Update:
      pushCompute(Out, Costs.UpdateNanos);
      break;
    case StmtKind::Acquire:
      Out.push_back(MicroOp::acquire(
          resolveObject(stmtCast<AcquireStmt>(S).Recv, M, F, Ctx)));
      break;
    case StmtKind::Release:
      Out.push_back(MicroOp::release(
          resolveObject(stmtCast<ReleaseStmt>(S).Recv, M, F, Ctx)));
      break;
    case StmtKind::Call: {
      const auto &C = stmtCast<CallStmt>(S);
      const Method *Callee = C.callee();
      Frame CalleeFrame;
      CalleeFrame.This = resolveObject(C.Recv, M, F, Ctx);
      CalleeFrame.Params.resize(Callee->params().size());
      size_t NextArg = 0;
      for (unsigned P = 0; P < Callee->params().size(); ++P) {
        if (!Callee->param(P).isObject())
          continue;
        assert(NextArg < C.ObjArgs.size() && "missing object argument");
        CalleeFrame.Params[P] = resolveRef(C.ObjArgs[NextArg++], M, F, Ctx);
      }
      runMethod(Callee, CalleeFrame, Ctx, Out);
      break;
    }
    case StmtKind::Loop: {
      const auto &L = stmtCast<LoopStmt>(S);
      const uint64_t Trip = Binding.tripCount(L.LoopId, Ctx);
      Ctx.Loops.emplace_back(L.LoopId, 0);
      for (uint64_t I = 0; I < Trip; ++I) {
        Ctx.Loops.back().second = I;
        runList(M, L.Body, F, Ctx, Out);
      }
      Ctx.Loops.pop_back();
      break;
    }
    }
  }
}

void IterationEmitter::runMethod(const Method *M, const Frame &F, LoopCtx &Ctx,
                                 std::vector<MicroOp> &Out) const {
  runList(M, M->body(), F, Ctx, Out);
}

void IterationEmitter::emit(uint64_t Iter, std::vector<MicroOp> &Out) const {
  Out.clear();
  Frame Top;
  Top.This = Binding.thisObject(Iter);
  const std::vector<ObjRef> Args = Binding.sectionArgs(Iter);
  Top.Params.resize(Entry->params().size());
  size_t NextArg = 0;
  for (unsigned P = 0; P < Entry->params().size(); ++P) {
    if (!Entry->param(P).isObject())
      continue;
    assert(NextArg < Args.size() && "binding supplies too few section args");
    Top.Params[P] = Args[NextArg++];
  }
  LoopCtx Ctx;
  Ctx.Iter = Iter;
  runMethod(Entry, Top, Ctx, Out);
}

uint64_t IterationEmitter::countPairs(uint64_t Iter) const {
  std::vector<MicroOp> Ops;
  emit(Iter, Ops);
  uint64_t Pairs = 0;
  for (const MicroOp &Op : Ops)
    if (Op.K == MicroOp::Kind::Acquire)
      ++Pairs;
  return Pairs;
}

Nanos IterationEmitter::computeTime(uint64_t Iter) const {
  std::vector<MicroOp> Ops;
  emit(Iter, Ops);
  Nanos Total = 0;
  for (const MicroOp &Op : Ops)
    if (Op.K == MicroOp::Kind::Compute)
      Total += Op.Dur;
  return Total;
}
