//===- rt/MachineModel.h - Pluggable machine cost models --------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable machine layer above the flat CostModel: a MachineModel
/// prices each primitive event (acquire/release/failed-attempt/timer/
/// barrier/sched-fetch/update) as a function of machine state -- which
/// processor runs it, which node last held the lock's cache line, how many
/// waiters are queued behind the lock. The paper's central claim is that
/// the best synchronization policy depends on the machine; this layer makes
/// "machine" a first-class experimental variable.
///
/// Three models ship (see createMachineModel):
///
///  - "dash-flat": the constant-cost model every paper table was produced
///    on. Bit-for-bit the default: pricing returns exactly the CostModel
///    constants, so all goldens stay byte-identical.
///  - "dash-numa": DASH's two-level cluster topology (4 processors per
///    cluster). A lock acquire is cheap when the lock's line is already in
///    the acquirer's cluster, expensive when the line must migrate from
///    another cluster, with a per-queued-waiter surcharge for migratory
///    hand-off chains. sim::SimMachine tracks each lock's home node.
///  - "uma-cheaplock": a modern-SMP-like flat machine where lock operations
///    are cheap relative to timer reads -- flipping which policy wins.
///
/// Every parameter of a model (the flat cost block plus any model-specific
/// extras) is exposed by name through params()/setParam(), so the full
/// parameter set can be stamped into result files, cache keys and trace
/// meta, and overridden from the command line (dynfb-run --cost).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_MACHINEMODEL_H
#define DYNFB_RT_MACHINEMODEL_H

#include "rt/CostModel.h"
#include "rt/Time.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dynfb::rt {

/// One lock event's machine state, as the simulator sees it.
struct LockEvent {
  unsigned Proc = 0;    ///< Processor executing the operation.
  uint32_t Object = 0;  ///< Lock object id within the section.
  /// Node that last held the lock's cache line, -1 when the line is cold
  /// (never acquired in this run). Maintained by sim::SimMachine.
  int Home = -1;
  /// Number of processors still queued on the lock when the operation
  /// completes (0 for an uncontended acquire).
  unsigned ContentionDepth = 0;
};

/// Abstract machine: a flat cost block plus per-event pricing hooks. The
/// base-class implementations return the flat constants, so a model only
/// overrides the events its topology makes state-dependent.
class MachineModel {
public:
  explicit MachineModel(CostModel Costs) : Costs(Costs) {}
  virtual ~MachineModel();

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// The flat cost block. Compute/update pricing inside the IR emitter and
  /// every event the model does not override read from here.
  const CostModel &costs() const { return Costs; }

  /// Cluster of \p Proc. Flat machines map every processor to node 0.
  virtual unsigned nodeOf(unsigned Proc) const {
    (void)Proc;
    return 0;
  }
  /// True when pricing depends on lock home nodes: the simulator then
  /// maintains the home tracker and queries the model per lock event. The
  /// flat models keep the seed's exact constant-folded arithmetic.
  virtual bool topologyAware() const { return false; }

  /// Event pricing, in virtual nanoseconds.
  virtual Nanos acquireNanos(const LockEvent &E) const {
    (void)E;
    return Costs.AcquireNanos;
  }
  virtual Nanos releaseNanos(const LockEvent &E) const {
    (void)E;
    return Costs.ReleaseNanos;
  }
  virtual Nanos failedAcquireNanos() const { return Costs.FailedAcquireNanos; }
  virtual Nanos timerReadNanos(unsigned Proc) const {
    (void)Proc;
    return Costs.TimerReadNanos;
  }
  virtual Nanos barrierNanos() const { return Costs.BarrierNanos; }
  virtual Nanos schedFetchNanos(unsigned Proc) const {
    (void)Proc;
    return Costs.SchedFetchNanos;
  }
  Nanos updateNanos() const { return Costs.UpdateNanos; }
  Nanos instrumentNanos() const { return Costs.InstrumentNanos; }

  /// The full parameter set, ordered: the eight flat cost fields by their
  /// struct names, then any model-specific extras.
  std::vector<std::pair<std::string, Nanos>> params() const;
  /// Canonical "Name=Value,Name=Value" rendering of params() -- the string
  /// stamped into exp job configs (hence result files and the cache key)
  /// and JSONL trace meta.
  std::string paramsString() const;
  /// All parameter names, for did-you-mean hints.
  std::vector<std::string> paramNames() const;
  /// Sets the named parameter; false when the name is unknown to this
  /// model. Values are non-negative integer nanoseconds (extras may
  /// validate further, e.g. ClusterProcs must be at least 1).
  bool setParam(const std::string &Name, Nanos Value);

  virtual std::unique_ptr<MachineModel> clone() const = 0;

protected:
  CostModel Costs;

  /// A model-specific named parameter slot, registered by subclass
  /// constructors (the slot must live inside the model object so clone()
  /// copies it).
  struct ExtraParam {
    std::string Name;
    Nanos *Slot;
    Nanos MinValue = 0;
  };
  std::vector<ExtraParam> Extras;
};

/// The constant-cost machine every paper table was produced on ("dash-flat"
/// with the default cost block). Also the wrapper the CostModel-based
/// compatibility entry points use for arbitrary flat cost blocks.
class FlatMachineModel final : public MachineModel {
public:
  explicit FlatMachineModel(CostModel Costs = CostModel::dashLike())
      : MachineModel(Costs) {}
  std::string name() const override { return "dash-flat"; }
  std::string description() const override {
    return "constant-cost 16-processor DASH (the paper's tables)";
  }
  std::unique_ptr<MachineModel> clone() const override {
    return std::make_unique<FlatMachineModel>(*this);
  }
};

/// DASH's two-level cluster topology: 4 processors per cluster, lock lines
/// migrate between clusters through the directory. Acquire pricing:
///
///   home < 0 (cold line)        AcquireNanos      (directory allocation)
///   home == acquirer's cluster  LocalAcquireNanos (line already local)
///   home != acquirer's cluster  RemoteAcquireNanos
///                               + depth * MigrateHopNanos
///
/// The last case is the migratory pattern: every cross-cluster hand-off
/// fetches the dirty line from the previous holder's cluster, and each
/// waiter queued behind the lock adds one more hop the line is forwarded
/// through. Releases stay local (the releaser owns the line).
class DashNumaModel final : public MachineModel {
public:
  DashNumaModel();
  std::string name() const override { return "dash-numa"; }
  std::string description() const override {
    return "two-level DASH: cluster-local locks cheap, migratory expensive";
  }
  unsigned nodeOf(unsigned Proc) const override {
    return Proc / static_cast<unsigned>(ClusterProcs);
  }
  bool topologyAware() const override { return true; }
  Nanos acquireNanos(const LockEvent &E) const override;
  std::unique_ptr<MachineModel> clone() const override;

  Nanos ClusterProcs = 4;
  Nanos LocalAcquireNanos = 1500;
  Nanos RemoteAcquireNanos = 9000;
  Nanos MigrateHopNanos = 750;

private:
  void registerExtras();
};

/// A modern-SMP-like UMA machine: lock operations are two orders of
/// magnitude cheaper than on DASH while shared-data updates (dirty-line
/// transfers) and timer reads stay comparatively expensive, so
/// critical-region residency -- not lock-operation count -- decides the
/// policy ordering, and finer-grain locking wins where DASH favoured
/// maximal coarsening.
class UmaCheapLockModel final : public MachineModel {
public:
  UmaCheapLockModel();
  std::string name() const override { return "uma-cheaplock"; }
  std::string description() const override {
    return "modern SMP: cheap locks relative to timer reads";
  }
  std::unique_ptr<MachineModel> clone() const override {
    return std::make_unique<UmaCheapLockModel>(*this);
  }
};

/// The shipped model names, in registry order.
std::vector<std::string> machineModelNames();

/// Creates the named model with its default parameters; nullptr when the
/// name is unknown.
std::unique_ptr<MachineModel> createMachineModel(const std::string &Name);

/// Applies a "Field=nanos[,Field=nanos]" override spec to \p M (the format
/// paramsString() emits and dynfb-run --cost accepts). False with \p Error
/// set -- including a did-you-mean hint for near-miss field names -- on any
/// unknown field or malformed value.
bool applyCostOverrides(MachineModel &M, const std::string &Spec,
                        std::string &Error);

} // namespace dynfb::rt

#endif // DYNFB_RT_MACHINEMODEL_H
