//===- rt/Time.h - Time representation --------------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time is represented as signed 64-bit nanoseconds throughout the runtime,
/// whether the clock is the simulator's virtual clock or the host's steady
/// clock. Helpers convert to and from seconds for reporting.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_TIME_H
#define DYNFB_RT_TIME_H

#include <cstdint>

namespace dynfb::rt {

/// Nanoseconds, virtual or real.
using Nanos = int64_t;

inline constexpr Nanos NanosPerSecond = 1000000000LL;

/// Converts seconds to nanoseconds (truncating).
inline constexpr Nanos secondsToNanos(double Seconds) {
  return static_cast<Nanos>(Seconds * 1e9);
}

/// Converts nanoseconds to seconds.
inline constexpr double nanosToSeconds(Nanos N) {
  return static_cast<double>(N) * 1e-9;
}

/// Converts milliseconds to nanoseconds.
inline constexpr Nanos millisToNanos(double Millis) {
  return static_cast<Nanos>(Millis * 1e6);
}

} // namespace dynfb::rt

#endif // DYNFB_RT_TIME_H
