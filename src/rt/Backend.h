//===- rt/Backend.h - Whole-program execution backend -----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A backend executes a whole application run: an alternating sequence of
/// serial phases and parallel sections (the execution structure the paper's
/// compiler generates). The driver walks the application's schedule, asking
/// the backend for an IntervalRunner per parallel-section occurrence.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_BACKEND_H
#define DYNFB_RT_BACKEND_H

#include "rt/IntervalRunner.h"
#include "rt/Time.h"

#include <memory>
#include <string>
#include <vector>

namespace dynfb::rt {

/// One phase of an application run.
struct Phase {
  enum class Kind { Serial, Parallel };
  Kind K = Kind::Serial;
  Nanos SerialNanos = 0;   ///< Serial work (Kind::Serial).
  std::string SectionName; ///< Parallel section name (Kind::Parallel).

  static Phase serial(Nanos Dur) {
    Phase P;
    P.K = Kind::Serial;
    P.SerialNanos = Dur;
    return P;
  }
  static Phase parallel(std::string Name) {
    Phase P;
    P.K = Kind::Parallel;
    P.SectionName = std::move(Name);
    return P;
  }
};

/// An application's phase schedule.
using Schedule = std::vector<Phase>;

/// Execution backend abstraction (simulator or real threads).
class ExecutionBackend {
public:
  virtual ~ExecutionBackend() = default;

  /// Executes \p Dur of serial (single-processor) work.
  virtual void runSerial(Nanos Dur) = 0;

  /// Starts one occurrence of the named parallel section; the returned
  /// runner is positioned at its first iteration.
  virtual std::unique_ptr<IntervalRunner>
  beginSection(const std::string &Name) = 0;

  /// Current backend time.
  virtual Nanos now() const = 0;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_BACKEND_H
