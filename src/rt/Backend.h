//===- rt/Backend.h - Whole-program execution backend -----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A backend executes a whole application run: an alternating sequence of
/// serial phases and parallel sections (the execution structure the paper's
/// compiler generates). The driver walks the application's schedule, asking
/// the backend for an IntervalRunner per parallel-section occurrence.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_BACKEND_H
#define DYNFB_RT_BACKEND_H

#include "rt/IntervalRunner.h"
#include "rt/SectionTrace.h"
#include "rt/Time.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dynfb::perturb {
class PerturbationEngine;
} // namespace dynfb::perturb

namespace dynfb::rt {

/// One phase of an application run.
struct Phase {
  enum class Kind { Serial, Parallel };
  Kind K = Kind::Serial;
  Nanos SerialNanos = 0;   ///< Serial work (Kind::Serial).
  std::string SectionName; ///< Parallel section name (Kind::Parallel).

  static Phase serial(Nanos Dur) {
    Phase P;
    P.K = Kind::Serial;
    P.SerialNanos = Dur;
    return P;
  }
  static Phase parallel(std::string Name) {
    Phase P;
    P.K = Kind::Parallel;
    P.SectionName = std::move(Name);
    return P;
  }
};

/// An application's phase schedule.
using Schedule = std::vector<Phase>;

/// Which execution substrate a backend runs on. Everything above
/// ExecutionBackend is backend-blind; the kind exists only for stamping
/// traces/results and for the few flags that are genuinely sim-only.
enum class BackendKind { Sim, Native };

/// Stable lowercase name ("sim" / "native"), the value exported in trace
/// metadata and experiment result files.
constexpr const char *backendKindName(BackendKind K) {
  return K == BackendKind::Native ? "native" : "sim";
}

/// Execution backend abstraction (simulator or real threads).
class ExecutionBackend {
public:
  virtual ~ExecutionBackend() = default;

  /// Executes \p Dur of serial (single-processor) work.
  virtual void runSerial(Nanos Dur) = 0;

  /// Starts one occurrence of the named parallel section; the returned
  /// runner is positioned at its first iteration.
  virtual std::unique_ptr<IntervalRunner>
  beginSection(const std::string &Name) = 0;

  /// Current backend time.
  virtual Nanos now() const = 0;

  /// The substrate this backend executes on. Defaults to Sim, the
  /// historical backend (mock backends in tests are simulators in spirit).
  virtual BackendKind kind() const { return BackendKind::Sim; }

  /// When enabled, every runner handed out by beginSection carries a
  /// cumulative IntervalTrace owned by the backend (one per section name),
  /// accumulating lock contention and per-processor time decomposition over
  /// the whole run -- the data behind the trace exporter's lock records.
  /// Off by default: tracing is observation only, never part of a plain
  /// run's cost. Backends without instrumentation ignore the request.
  virtual void setCollectSectionTraces(bool Enable) { (void)Enable; }

  /// The accumulated per-section traces (empty unless collection was
  /// enabled before the run, or the backend has no instrumentation).
  virtual const std::map<std::string, IntervalTrace> &sectionTraces() const {
    static const std::map<std::string, IntervalTrace> Empty;
    return Empty;
  }

  /// Installs a perturbation engine for the run. Fault injection is a
  /// property of the simulated machine; backends running on real hardware
  /// ignore it (callers that need perturbations must insist on the
  /// simulator before getting here).
  virtual void setPerturbation(const perturb::PerturbationEngine *Engine) {
    (void)Engine;
  }
};

} // namespace dynfb::rt

#endif // DYNFB_RT_BACKEND_H
