//===- rt/Barrier.cpp -----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Barrier.h"

using namespace dynfb::rt;

Barrier::Barrier(unsigned Participants)
    : Participants(Participants), Count(Participants) {}

void Barrier::arriveAndWait() {
  const uint32_t Gen = Generation.load(std::memory_order_acquire);
  if (Count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last arriver: reset and release the generation.
    Count.store(Participants, std::memory_order_relaxed);
    Generation.fetch_add(1, std::memory_order_release);
    Generation.notify_all();
    return;
  }
  uint32_t Cur = Generation.load(std::memory_order_acquire);
  while (Cur == Gen) {
    Generation.wait(Cur, std::memory_order_acquire);
    Cur = Generation.load(std::memory_order_acquire);
  }
}
