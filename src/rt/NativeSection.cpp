//===- rt/NativeSection.cpp -----------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/NativeSection.h"

#include <cassert>

using namespace dynfb;
using namespace dynfb::rt;

void dynfb::rt::busyWait(Nanos Dur) {
  if (Dur <= 0)
    return;
  const Nanos End = steadyNow() + Dur;
  while (steadyNow() < End) {
    // Spin.
  }
}

namespace {

/// State shared by every version closure of one native IR section.
struct NativeIrState {
  std::unique_ptr<SpinLock[]> Locks;
  uint32_t LockCount = 0;
  std::vector<IterationEmitter> Emitters;
  double TimeScale = 1.0;
};

} // namespace

std::unique_ptr<RealSectionRunner>
rt::makeNativeIrRunner(ThreadTeam &Team, const DataBinding &Binding,
                       std::vector<NativeIrVersion> Versions,
                       const CostModel &Costs, double TimeScale) {
  assert(!Versions.empty() && "section needs at least one version");
  auto State = std::make_shared<NativeIrState>();
  State->LockCount = Binding.objectCount();
  State->Locks = std::make_unique<SpinLock[]>(State->LockCount);
  State->TimeScale = TimeScale;
  State->Emitters.reserve(Versions.size());
  for (const NativeIrVersion &V : Versions)
    State->Emitters.emplace_back(V.Entry, Binding, Costs);

  std::vector<NativeVersion> Native;
  Native.reserve(Versions.size());
  for (size_t VI = 0; VI < Versions.size(); ++VI) {
    Native.push_back(NativeVersion{
        Versions[VI].Label,
        [State, VI](uint64_t Iter, WorkerCtx &Ctx) {
          thread_local std::vector<MicroOp> Ops;
          State->Emitters[VI].emit(Iter, Ops);
          for (const MicroOp &Op : Ops) {
            switch (Op.K) {
            case MicroOp::Kind::Compute:
              busyWait(static_cast<Nanos>(static_cast<double>(Op.Dur) *
                                          State->TimeScale));
              break;
            case MicroOp::Kind::Acquire:
              assert(Op.Obj < State->LockCount && "object id out of range");
              Ctx.acquire(State->Locks[Op.Obj], Op.Obj);
              break;
            case MicroOp::Kind::Release:
              Ctx.release(State->Locks[Op.Obj]);
              break;
            }
          }
        },
        Versions[VI].Sched});
  }
  return std::make_unique<RealSectionRunner>(Team, std::move(Native),
                                             Binding.iterationCount());
}
