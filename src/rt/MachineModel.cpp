//===- rt/MachineModel.cpp ------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/MachineModel.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdlib>

using namespace dynfb;
using namespace dynfb::rt;

MachineModel::~MachineModel() = default;

namespace {

/// The flat cost block's fields by struct name, shared by params() and
/// setParam().
struct CostField {
  const char *Name;
  Nanos CostModel::*Member;
};

const CostField CostFields[] = {
    {"AcquireNanos", &CostModel::AcquireNanos},
    {"ReleaseNanos", &CostModel::ReleaseNanos},
    {"FailedAcquireNanos", &CostModel::FailedAcquireNanos},
    {"TimerReadNanos", &CostModel::TimerReadNanos},
    {"BarrierNanos", &CostModel::BarrierNanos},
    {"SchedFetchNanos", &CostModel::SchedFetchNanos},
    {"UpdateNanos", &CostModel::UpdateNanos},
    {"InstrumentNanos", &CostModel::InstrumentNanos},
};

} // namespace

std::vector<std::pair<std::string, Nanos>> MachineModel::params() const {
  std::vector<std::pair<std::string, Nanos>> Out;
  for (const CostField &F : CostFields)
    Out.emplace_back(F.Name, Costs.*F.Member);
  for (const ExtraParam &E : Extras)
    Out.emplace_back(E.Name, *E.Slot);
  return Out;
}

std::string MachineModel::paramsString() const {
  std::string Out;
  for (const auto &[Name, Value] : params()) {
    if (!Out.empty())
      Out += ',';
    Out += Name;
    Out += '=';
    Out += format("%lld", static_cast<long long>(Value));
  }
  return Out;
}

std::vector<std::string> MachineModel::paramNames() const {
  std::vector<std::string> Out;
  for (const auto &[Name, Value] : params())
    Out.push_back(Name);
  return Out;
}

bool MachineModel::setParam(const std::string &Name, Nanos Value) {
  if (Value < 0)
    return false;
  for (const CostField &F : CostFields)
    if (Name == F.Name) {
      Costs.*F.Member = Value;
      return true;
    }
  for (const ExtraParam &E : Extras)
    if (Name == E.Name) {
      if (Value < E.MinValue)
        return false;
      *E.Slot = Value;
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// dash-numa
//===----------------------------------------------------------------------===//

DashNumaModel::DashNumaModel() : MachineModel(CostModel::dashLike()) {
  registerExtras();
}

void DashNumaModel::registerExtras() {
  Extras = {
      {"ClusterProcs", &ClusterProcs, 1},
      {"LocalAcquireNanos", &LocalAcquireNanos, 0},
      {"RemoteAcquireNanos", &RemoteAcquireNanos, 0},
      {"MigrateHopNanos", &MigrateHopNanos, 0},
  };
}

Nanos DashNumaModel::acquireNanos(const LockEvent &E) const {
  if (E.Home < 0)
    return Costs.AcquireNanos; // Cold line: directory allocation.
  if (static_cast<unsigned>(E.Home) == nodeOf(E.Proc))
    return LocalAcquireNanos; // Line already in this cluster.
  // Migratory: fetch the dirty line from the previous holder's cluster,
  // plus one forwarding hop per waiter queued behind the lock.
  return RemoteAcquireNanos +
         static_cast<Nanos>(E.ContentionDepth) * MigrateHopNanos;
}

std::unique_ptr<MachineModel> DashNumaModel::clone() const {
  auto M = std::make_unique<DashNumaModel>();
  M->Costs = Costs;
  M->ClusterProcs = ClusterProcs;
  M->LocalAcquireNanos = LocalAcquireNanos;
  M->RemoteAcquireNanos = RemoteAcquireNanos;
  M->MigrateHopNanos = MigrateHopNanos;
  return M;
}

//===----------------------------------------------------------------------===//
// uma-cheaplock
//===----------------------------------------------------------------------===//

UmaCheapLockModel::UmaCheapLockModel() : MachineModel(CostModel{}) {
  // Modern-SMP constants: an uncontended lock operation is a cache-hit
  // atomic RMW in the tens of nanoseconds, while a shared-data update is a
  // dirty-line transfer between private caches -- the expensive event on
  // this machine -- and the timer read keeps a DASH-like relative cost.
  // Lock-operation count stops mattering, so the policy ordering is decided
  // by critical-region residency: Aggressive's lifted regions serialize the
  // coherence-miss updates they span, and a finer-grain policy wins where
  // DASH favoured maximal lock coarsening.
  Costs.AcquireNanos = 20;
  Costs.ReleaseNanos = 10;
  Costs.FailedAcquireNanos = 10;
  Costs.TimerReadNanos = 6000;
  Costs.BarrierNanos = 8000;
  Costs.SchedFetchNanos = 300;
  Costs.UpdateNanos = 1000;
  Costs.InstrumentNanos = 40;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

std::vector<std::string> rt::machineModelNames() {
  return {"dash-flat", "dash-numa", "uma-cheaplock"};
}

std::unique_ptr<MachineModel>
rt::createMachineModel(const std::string &Name) {
  if (Name == "dash-flat")
    return std::make_unique<FlatMachineModel>();
  if (Name == "dash-numa")
    return std::make_unique<DashNumaModel>();
  if (Name == "uma-cheaplock")
    return std::make_unique<UmaCheapLockModel>();
  return nullptr;
}

bool rt::applyCostOverrides(MachineModel &M, const std::string &Spec,
                            std::string &Error) {
  for (const std::string &Item : splitString(Spec, ',')) {
    if (Item.empty())
      continue;
    const size_t Eq = Item.find('=');
    if (Eq == std::string::npos) {
      Error = "cost override '" + Item + "' wants Field=nanos";
      return false;
    }
    const std::string Field = Item.substr(0, Eq);
    const std::string ValueText = Item.substr(Eq + 1);
    char *End = nullptr;
    errno = 0; // strtoll saturates out-of-range input and only sets errno.
    const long long Value = std::strtoll(ValueText.c_str(), &End, 10);
    if (ValueText.empty() || (End && *End != '\0') || errno == ERANGE ||
        Value < 0) {
      Error = "cost override '" + Item +
              "' wants a non-negative integer nanosecond value";
      return false;
    }
    if (!M.setParam(Field, static_cast<Nanos>(Value))) {
      const std::string Hint = closestMatch(Field, M.paramNames());
      Error = "machine '" + M.name() + "' has no cost field '" + Field + "'";
      if (!Hint.empty())
        Error += " (did you mean '" + Hint + "'?)";
      return false;
    }
  }
  return true;
}
