//===- rt/Binding.h - Execution-time data binding ----------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DataBinding supplies everything the IR leaves symbolic when a parallel
/// section executes: the iteration count, the objects iterations and
/// parameters refer to, per-instance loop trip counts (e.g. the number of
/// interactions a Barnes-Hut body computes, derived from the real octree),
/// and the cost of each compute kernel. Applications implement one binding
/// per parallel section.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_BINDING_H
#define DYNFB_RT_BINDING_H

#include "rt/Time.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace dynfb::rt {

/// Identity of one lockable object in the executing program. Each object id
/// denotes one instance with one mutual exclusion lock.
using ObjectId = uint32_t;

/// Handle of an object array the binding can index into.
using ArrayId = uint32_t;

/// A bound object argument: a single object or an array of objects.
struct ObjRef {
  bool IsArray = false;
  uint32_t Id = 0; ///< ObjectId when !IsArray, ArrayId otherwise.

  static ObjRef single(ObjectId O) { return ObjRef{false, O}; }
  static ObjRef array(ArrayId A) { return ObjRef{true, A}; }
};

/// Dynamic loop context during interpretation: the parallel iteration index
/// and the stack of active (loop id, index) pairs, outermost first, spanning
/// call frames.
struct LoopCtx {
  uint64_t Iter = 0;
  std::vector<std::pair<unsigned, uint64_t>> Loops;

  /// Index value of the active loop with id \p LoopId. Asserts presence.
  uint64_t indexOf(unsigned LoopId) const {
    for (auto It = Loops.rbegin(); It != Loops.rend(); ++It)
      if (It->first == LoopId)
        return It->second;
    assert(false && "loop id not active");
    return 0;
  }
};

/// Application-provided binding of one parallel section's symbolic pieces.
class DataBinding {
public:
  virtual ~DataBinding() = default;

  /// Number of parallel iterations of the section.
  virtual uint64_t iterationCount() const = 0;

  /// Number of distinct lockable objects the section may touch; object ids
  /// are in [0, objectCount()).
  virtual uint32_t objectCount() const = 0;

  /// Object the i-th iteration's method is invoked on.
  virtual ObjectId thisObject(uint64_t Iter) const = 0;

  /// Object arguments of the entry method (in object-parameter order).
  virtual std::vector<ObjRef> sectionArgs(uint64_t Iter) const = 0;

  /// Element \p Index of array \p Arr. \p Ctx carries the parallel
  /// iteration and active loop indices (e.g. Water's partner molecule is a
  /// function of both the iteration and the partner-loop index).
  virtual ObjectId elementOf(ArrayId Arr, uint64_t Index,
                             const LoopCtx &Ctx) const = 0;

  /// Trip count of the loop with id \p LoopId in context \p Ctx.
  virtual uint64_t tripCount(unsigned LoopId, const LoopCtx &Ctx) const = 0;

  /// Cost of one execution of the compute kernel \p CostClass in \p Ctx.
  virtual Nanos computeNanos(unsigned CostClass, const LoopCtx &Ctx) const = 0;

  /// Cache key for iteration \p Iter's emitted micro-op sequence, or a
  /// negative value when the sequence cannot be cached. Two iterations with
  /// the same non-negative class must lower to identical micro-op sequences
  /// (per code version) for the binding's whole lifetime, and keys must be
  /// dense in [0, iterationCount()). Bindings whose iterations depend on
  /// mutable state keep the default: every emit interprets the IR live.
  virtual int64_t iterationClass(uint64_t Iter) const {
    (void)Iter;
    return -1;
  }
};

} // namespace dynfb::rt

#endif // DYNFB_RT_BINDING_H
