//===- rt/Evaluator.cpp ---------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Evaluator.h"

#include "ir/Verifier.h"
#include "support/Compiler.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;

uint64_t ObjectStore::initialValue(unsigned ClsId, ObjectId Obj,
                                   unsigned Field) {
  SplitMix64 H((uint64_t(ClsId) << 40) ^ (uint64_t(Obj) << 8) ^ Field);
  return H.next() | 1; // Nonzero.
}

uint64_t ObjectStore::read(const ClassDecl *Cls, ObjectId Obj,
                           unsigned Field) const {
  auto It = Values.find(std::make_tuple(Cls->id(), Obj, Field));
  if (It != Values.end())
    return It->second;
  return initialValue(Cls->id(), Obj, Field);
}

void ObjectStore::write(const ClassDecl *Cls, ObjectId Obj, unsigned Field,
                        uint64_t Value) {
  Values[std::make_tuple(Cls->id(), Obj, Field)] = Value;
}

uint64_t ObjectStore::digest() const {
  // Order-insensitive: sum of per-cell hashes (wrap-around addition
  // commutes).
  uint64_t Sum = 0;
  for (const auto &[Key, Value] : Values) {
    SplitMix64 H((uint64_t(std::get<0>(Key)) << 44) ^
                 (uint64_t(std::get<1>(Key)) << 12) ^ std::get<2>(Key));
    Sum += H.next() ^ (Value * 0x9e3779b97f4a7c15ULL);
  }
  return Sum;
}

uint64_t rt::applyBinOp(BinOp Op, uint64_t Old, uint64_t Value) {
  switch (Op) {
  case BinOp::Add:
    return Old + Value;
  case BinOp::Sub:
    return Old - Value;
  case BinOp::Mul:
    return Old * Value;
  case BinOp::Div:
    return Value == 0 ? Old : Old / Value;
  case BinOp::Min:
    return std::min(Old, Value);
  case BinOp::Max:
    return std::max(Old, Value);
  case BinOp::Assign:
    return Value;
  }
  DYNFB_UNREACHABLE("invalid binary operator");
}

SectionEvaluator::SectionEvaluator(const Method *Entry,
                                   const DataBinding &Binding)
    : Entry(Entry), Binding(Binding) {
  assert(Entry && "evaluator needs an entry method");
}

ObjRef SectionEvaluator::resolveRef(const Receiver &R, const Frame &F,
                                    const LoopCtx &Ctx) const {
  switch (R.Kind) {
  case RecvKind::This:
    return ObjRef::single(F.This);
  case RecvKind::Param:
    assert(R.ParamIdx < F.Params.size() && "unbound parameter");
    return F.Params[R.ParamIdx];
  case RecvKind::ParamIndexed: {
    const ObjRef &Arr = F.Params[R.ParamIdx];
    assert(Arr.IsArray && "indexed receiver over non-array binding");
    return ObjRef::single(
        Binding.elementOf(Arr.Id, Ctx.indexOf(R.LoopId), Ctx));
  }
  }
  DYNFB_UNREACHABLE("invalid receiver kind");
}

ObjectId SectionEvaluator::resolveObject(const Receiver &R, const Method *M,
                                         const Frame &F,
                                         const LoopCtx &Ctx) const {
  (void)M;
  const ObjRef Ref = resolveRef(R, F, Ctx);
  assert(!Ref.IsArray && "expected a single object");
  return Ref.Id;
}

uint64_t SectionEvaluator::evalExpr(const Expr *E, const Method *M,
                                    const Frame &F, const LoopCtx &Ctx,
                                    const ObjectStore &Store) const {
  switch (E->kind()) {
  case ExprKind::FieldRead: {
    const auto &FR = exprCast<FieldReadExpr>(E);
    const ClassDecl *Cls = receiverClass(FR.Recv, *M);
    assert(Cls && "malformed receiver");
    return Store.read(Cls, resolveObject(FR.Recv, M, F, Ctx), FR.Field);
  }
  case ExprKind::ParamRead: {
    // Scalar parameters: deterministic value derived from the iteration.
    SplitMix64 H(Ctx.Iter * 131ULL +
                 exprCast<ParamReadExpr>(E).ParamIdx);
    return H.next();
  }
  case ExprKind::ConstFloat:
    return static_cast<uint64_t>(exprCast<ConstFloatExpr>(E).Value);
  case ExprKind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    return applyBinOp(B.Op, evalExpr(B.LHS, M, F, Ctx, Store),
                      evalExpr(B.RHS, M, F, Ctx, Store));
  }
  case ExprKind::ExternCall: {
    const auto &C = exprCast<ExternCallExpr>(E);
    uint64_t H = 0xcbf29ce484222325ULL;
    for (char Ch : C.Name)
      H = (H ^ static_cast<uint64_t>(Ch)) * 0x100000001b3ULL;
    for (const Expr *Arg : C.Args)
      H = (H ^ evalExpr(Arg, M, F, Ctx, Store)) * 0x100000001b3ULL;
    return H;
  }
  }
  DYNFB_UNREACHABLE("invalid expression kind");
}

void SectionEvaluator::runList(const Method *M,
                               const std::vector<Stmt *> &List,
                               const Frame &F, LoopCtx &Ctx,
                               ObjectStore &Store) const {
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Compute:
    case StmtKind::Acquire:
    case StmtKind::Release:
      break; // No value effects.
    case StmtKind::Update: {
      const auto &U = stmtCast<UpdateStmt>(S);
      const ClassDecl *Cls = receiverClass(U.Recv, *M);
      assert(Cls && "malformed update receiver");
      const ObjectId Obj = resolveObject(U.Recv, M, F, Ctx);
      const uint64_t Value = evalExpr(U.Value, M, F, Ctx, Store);
      Store.write(Cls, Obj, U.Field,
                  applyBinOp(U.Op, Store.read(Cls, Obj, U.Field), Value));
      break;
    }
    case StmtKind::Call: {
      const auto &C = stmtCast<CallStmt>(S);
      const Method *Callee = C.callee();
      Frame CalleeFrame;
      CalleeFrame.This = resolveObject(C.Recv, M, F, Ctx);
      CalleeFrame.ThisClass = Callee->owner();
      CalleeFrame.Params.resize(Callee->params().size());
      size_t NextArg = 0;
      for (unsigned P = 0; P < Callee->params().size(); ++P) {
        if (!Callee->param(P).isObject())
          continue;
        assert(NextArg < C.ObjArgs.size() && "missing object argument");
        CalleeFrame.Params[P] = resolveRef(C.ObjArgs[NextArg++], F, Ctx);
      }
      runList(Callee, Callee->body(), CalleeFrame, Ctx, Store);
      break;
    }
    case StmtKind::Loop: {
      const auto &L = stmtCast<LoopStmt>(S);
      const uint64_t Trip = Binding.tripCount(L.LoopId, Ctx);
      Ctx.Loops.emplace_back(L.LoopId, 0);
      for (uint64_t I = 0; I < Trip; ++I) {
        Ctx.Loops.back().second = I;
        runList(M, L.Body, F, Ctx, Store);
      }
      Ctx.Loops.pop_back();
      break;
    }
    }
  }
}

void SectionEvaluator::runIteration(uint64_t Iter, ObjectStore &Store) const {
  Frame Top;
  Top.This = Binding.thisObject(Iter);
  Top.ThisClass = Entry->owner();
  const std::vector<ObjRef> Args = Binding.sectionArgs(Iter);
  Top.Params.resize(Entry->params().size());
  size_t NextArg = 0;
  for (unsigned P = 0; P < Entry->params().size(); ++P) {
    if (!Entry->param(P).isObject())
      continue;
    assert(NextArg < Args.size() && "binding supplies too few section args");
    Top.Params[P] = Args[NextArg++];
  }
  LoopCtx Ctx;
  Ctx.Iter = Iter;
  runList(Entry, Entry->body(), Top, Ctx, Store);
}

void SectionEvaluator::runAll(const std::vector<uint64_t> &Order,
                              ObjectStore &Store) const {
  for (uint64_t Iter : Order)
    runIteration(Iter, Store);
}
