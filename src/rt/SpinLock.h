//===- rt/SpinLock.h - Counting test-and-set spin lock ----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A test-and-test-and-set spin lock mirroring the paper's use of the DASH
/// hardware lock construct: the caller repeatedly attempts to acquire and
/// counts failed attempts, from which the waiting overhead is computed
/// (paper Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_SPINLOCK_H
#define DYNFB_RT_SPINLOCK_H

#include <atomic>
#include <cstdint>

namespace dynfb::rt {

/// Counting spin lock for the real-threads backend.
class SpinLock {
public:
  /// One hardware-style acquire attempt; true if the lock was taken.
  bool tryAcquire() {
    if (Flag.load(std::memory_order_relaxed) != 0)
      return false;
    return Flag.exchange(1, std::memory_order_acquire) == 0;
  }

  /// Spins until acquired; returns the number of failed attempts.
  uint64_t acquire();

  void release() { Flag.store(0, std::memory_order_release); }

  bool isHeld() const { return Flag.load(std::memory_order_relaxed) != 0; }

private:
  std::atomic<uint32_t> Flag{0};
};

} // namespace dynfb::rt

#endif // DYNFB_RT_SPINLOCK_H
