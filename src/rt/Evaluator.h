//===- rt/Evaluator.h - Semantic evaluation of generated code ---*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes section versions for their *values* rather than their costs:
/// expressions are evaluated over an object store and commuting updates
/// mutate it. Arithmetic is exact wrap-around 64-bit integer arithmetic,
/// so the commuting operators (+, *, min, max) are exactly associative and
/// commutative -- the final store is provably independent of both the lock
/// placement and the iteration execution order, and the tests verify
/// exactly that: every generated version of a section computes the same
/// final state, under any schedule. (A transformation bug that dropped or
/// duplicated an update would show up immediately.)
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_EVALUATOR_H
#define DYNFB_RT_EVALUATOR_H

#include "ir/Module.h"
#include "rt/Binding.h"

#include <cstdint>
#include <map>
#include <tuple>

namespace dynfb::rt {

/// Field storage, keyed by (class, object, field). Objects of different
/// classes are distinct even when a binding reuses numeric ids across
/// classes (ids only name locks; identity is class-qualified).
class ObjectStore {
public:
  /// Current value; unwritten fields have a deterministic nonzero initial
  /// value derived from their identity (nonzero so multiplicative
  /// accumulators stay informative).
  uint64_t read(const ir::ClassDecl *Cls, ObjectId Obj,
                unsigned Field) const;

  void write(const ir::ClassDecl *Cls, ObjectId Obj, unsigned Field,
             uint64_t Value);

  /// Order-insensitive digest of the whole store (for equality checks).
  uint64_t digest() const;

  friend bool operator==(const ObjectStore &A, const ObjectStore &B) {
    return A.Values == B.Values;
  }

private:
  static uint64_t initialValue(unsigned ClsId, ObjectId Obj, unsigned Field);

  std::map<std::tuple<unsigned, ObjectId, unsigned>, uint64_t> Values;
};

/// Evaluates iterations of one section version against an ObjectStore.
/// Pure extern calls are modelled as deterministic hash functions of their
/// argument values (the same extern name always computes the same
/// function).
class SectionEvaluator {
public:
  SectionEvaluator(const ir::Method *Entry, const DataBinding &Binding);

  /// Executes iteration \p Iter, mutating \p Store.
  void runIteration(uint64_t Iter, ObjectStore &Store) const;

  /// Executes all iterations in the order given by \p Order (must be a
  /// permutation of [0, iterationCount())).
  void runAll(const std::vector<uint64_t> &Order, ObjectStore &Store) const;

private:
  struct Frame {
    ObjectId This = 0;
    const ir::ClassDecl *ThisClass = nullptr;
    std::vector<ObjRef> Params;
  };

  void runList(const ir::Method *M, const std::vector<ir::Stmt *> &List,
               const Frame &F, LoopCtx &Ctx, ObjectStore &Store) const;
  uint64_t evalExpr(const ir::Expr *E, const ir::Method *M, const Frame &F,
                    const LoopCtx &Ctx, const ObjectStore &Store) const;
  ObjectId resolveObject(const ir::Receiver &R, const ir::Method *M,
                         const Frame &F, const LoopCtx &Ctx) const;
  ObjRef resolveRef(const ir::Receiver &R, const Frame &F,
                    const LoopCtx &Ctx) const;

  const ir::Method *const Entry;
  const DataBinding &Binding;
};

/// Applies one commuting update operator over wrap-around 64-bit values.
uint64_t applyBinOp(ir::BinOp Op, uint64_t Old, uint64_t Value);

} // namespace dynfb::rt

#endif // DYNFB_RT_EVALUATOR_H
