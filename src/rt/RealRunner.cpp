//===- rt/RealRunner.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/RealRunner.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace dynfb::rt;

Nanos dynfb::rt::steadyNow() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              Epoch)
      .count();
}

void WorkerCtx::acquire(SpinLock &L) {
  const Nanos T0 = steadyNow();
  const uint64_t Failed = L.acquire();
  const Nanos T1 = steadyNow();
  ++Stats.AcquireReleasePairs;
  Stats.FailedAcquires += Failed;
  if (Failed == 0) {
    Stats.LockOpNanos += T1 - T0;
  } else {
    // Split: a nominal uncontended-acquire slice counts as lock op, the
    // remainder is waiting.
    const Nanos Nominal = 50;
    Stats.LockOpNanos += Nominal;
    Stats.WaitNanos += (T1 - T0 > Nominal) ? (T1 - T0 - Nominal) : 0;
  }
}

void WorkerCtx::release(SpinLock &L) {
  const Nanos T0 = steadyNow();
  L.release();
  Stats.LockOpNanos += steadyNow() - T0;
}

RealSectionRunner::RealSectionRunner(ThreadTeam &Team,
                                     std::vector<NativeVersion> Versions,
                                     uint64_t NumIterations)
    : Team(Team), Versions(std::move(Versions)),
      SchedInstrumented(std::any_of(
          this->Versions.begin(), this->Versions.end(),
          [](const NativeVersion &V) {
            return V.Sched.Kind != SchedKind::Dynamic;
          })),
      NumIterations(NumIterations) {
  assert(!this->Versions.empty() && "section needs at least one version");
}

IntervalReport RealSectionRunner::runInterval(unsigned V, Nanos Target) {
  assert(V < Versions.size() && "version index out of range");
  static obs::Counter &Intervals =
      obs::globalMetrics().counter("rt.native.intervals");
  Intervals.add();
  const NativeVersion &Version = Versions[V];

  const Nanos Start = steadyNow();
  const Nanos Deadline = Start + Target;

  std::vector<OverheadStats> PerWorker(Team.size());
  std::vector<Nanos> EndTimes(Team.size(), Start);

  const uint64_t Chunk = Version.Sched.chunkIters();
  Team.run([&](unsigned Worker) {
    WorkerCtx Ctx;
    const Nanos WorkerStart = steadyNow();
    for (;;) {
      // Potential switch point: poll the timer at chunk granularity (every
      // iteration under dynamic self-scheduling).
      if (steadyNow() >= Deadline)
        break;
      const uint64_t Begin = NextIter.fetch_add(Chunk);
      if (Begin >= NumIterations)
        break;
      const uint64_t End = std::min(Begin + Chunk, NumIterations);
      for (uint64_t Iter = Begin; Iter < End; ++Iter)
        Version.Body(Iter, Ctx);
    }
    const Nanos WorkerEnd = steadyNow();
    Ctx.Stats.ExecNanos = WorkerEnd - WorkerStart;
    PerWorker[Worker] = Ctx.Stats;
    EndTimes[Worker] = WorkerEnd;
  });
  // Team.run returning is the synchronous-switch barrier: all workers have
  // stopped running the old version.

  IntervalReport Report;
  Nanos LastEnd = Start;
  for (unsigned W = 0; W < Team.size(); ++W)
    if (EndTimes[W] > LastEnd)
      LastEnd = EndTimes[W];
  for (unsigned W = 0; W < Team.size(); ++W) {
    if (SchedInstrumented) {
      // A worker out of work spins at the switch barrier until the slowest
      // finishes; count that as waiting so scheduling-induced imbalance
      // enters the overhead the controller compares.
      PerWorker[W].WaitNanos += LastEnd - EndTimes[W];
      PerWorker[W].ExecNanos += LastEnd - EndTimes[W];
    }
    Report.Stats.merge(PerWorker[W]);
  }
  Report.EffectiveNanos = LastEnd - Start;
  Report.Finished = NextIter.load() >= NumIterations;
  return Report;
}
