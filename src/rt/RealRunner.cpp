//===- rt/RealRunner.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/RealRunner.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace dynfb::rt;

Nanos dynfb::rt::steadyNow() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              Epoch)
      .count();
}

void WorkerCtx::acquire(SpinLock &L) {
  const Nanos T0 = steadyNow();
  const uint64_t Failed = L.acquire();
  const Nanos T1 = steadyNow();
  ++Stats.AcquireReleasePairs;
  Stats.FailedAcquires += Failed;
  if (Failed == 0) {
    Stats.LockOpNanos += T1 - T0;
  } else {
    // Split: a nominal uncontended-acquire slice counts as lock op, the
    // remainder is waiting.
    const Nanos Nominal = 50;
    Stats.LockOpNanos += Nominal;
    Stats.WaitNanos += (T1 - T0 > Nominal) ? (T1 - T0 - Nominal) : 0;
  }
}

void WorkerCtx::acquire(SpinLock &L, ObjectId Obj) {
  const Nanos T0 = steadyNow();
  const uint64_t Failed = L.acquire();
  const Nanos T1 = steadyNow();
  ++Stats.AcquireReleasePairs;
  Stats.FailedAcquires += Failed;
  IntervalTrace::LockSummary &Summary = LockStats[Obj];
  ++Summary.Acquires;
  if (Failed == 0) {
    Stats.LockOpNanos += T1 - T0;
  } else {
    const Nanos Nominal = 50;
    const Nanos Waited = (T1 - T0 > Nominal) ? (T1 - T0 - Nominal) : 0;
    Stats.LockOpNanos += Nominal;
    Stats.WaitNanos += Waited;
    ++Summary.Contended;
    Summary.WaitNanos += Waited;
  }
}

void WorkerCtx::release(SpinLock &L) {
  const Nanos T0 = steadyNow();
  L.release();
  Stats.LockOpNanos += steadyNow() - T0;
}

RealSectionRunner::RealSectionRunner(ThreadTeam &Team,
                                     std::vector<NativeVersion> Versions,
                                     uint64_t NumIterations)
    : Team(Team), Versions(std::move(Versions)),
      SchedInstrumented(std::any_of(
          this->Versions.begin(), this->Versions.end(),
          [](const NativeVersion &V) {
            return V.Sched.Kind != SchedKind::Dynamic;
          })),
      NumIterations(NumIterations) {
  assert(!this->Versions.empty() && "section needs at least one version");
}

IntervalReport RealSectionRunner::runInterval(unsigned V, Nanos Target) {
  assert(V < Versions.size() && "version index out of range");
  static obs::Counter &Intervals =
      obs::globalMetrics().counter("rt.native.intervals");
  Intervals.add();
  const NativeVersion &Version = Versions[V];

  const Nanos Start = steadyNow();
  const Nanos Deadline = Start + Target;

  std::vector<OverheadStats> PerWorker(Team.size());
  std::vector<uint64_t> PerWorkerIters(Team.size(), 0);
  std::vector<std::map<ObjectId, IntervalTrace::LockSummary>> PerWorkerLocks(
      Team.size());
  std::vector<Nanos> EndTimes(Team.size(), Start);

  const bool VariableChunk = Version.Sched.variableChunk();
  const uint64_t Chunk = Version.Sched.chunkIters();
  const unsigned Workers = static_cast<unsigned>(Team.size());
  Team.run([&](unsigned Worker) {
    WorkerCtx Ctx;
    const Nanos WorkerStart = steadyNow();
    for (;;) {
      // Potential switch point: poll the timer at chunk granularity (every
      // iteration under dynamic self-scheduling).
      if (steadyNow() >= Deadline)
        break;
      uint64_t Begin, End;
      if (!VariableChunk) {
        Begin = NextIter.fetch_add(Chunk);
        if (Begin >= NumIterations)
          break;
        End = std::min(Begin + Chunk, NumIterations);
      } else {
        // DLS claims depend on the unassigned remainder, so the fetch is a
        // CAS loop instead of a fetch_add of a fixed chunk.
        Begin = NextIter.load(std::memory_order_relaxed);
        do {
          if (Begin >= NumIterations)
            break;
          const uint64_t Claim = Version.Sched.fetchIters(
              NumIterations - Begin, NumIterations, Workers, Worker);
          End = std::min(Begin + Claim, NumIterations);
        } while (!NextIter.compare_exchange_weak(Begin, End));
        if (Begin >= NumIterations)
          break;
      }
      for (uint64_t Iter = Begin; Iter < End; ++Iter)
        Version.Body(Iter, Ctx);
      Ctx.Iterations += End - Begin;
    }
    const Nanos WorkerEnd = steadyNow();
    Ctx.Stats.ExecNanos = WorkerEnd - WorkerStart;
    PerWorker[Worker] = Ctx.Stats;
    PerWorkerIters[Worker] = Ctx.Iterations;
    PerWorkerLocks[Worker] = std::move(Ctx.LockStats);
    EndTimes[Worker] = WorkerEnd;
  });
  // Team.run returning is the synchronous-switch barrier: all workers have
  // stopped running the old version.

  IntervalReport Report;
  Nanos LastEnd = Start;
  for (unsigned W = 0; W < Team.size(); ++W)
    if (EndTimes[W] > LastEnd)
      LastEnd = EndTimes[W];
  for (unsigned W = 0; W < Team.size(); ++W) {
    if (SchedInstrumented) {
      // A worker out of work spins at the switch barrier until the slowest
      // finishes; count that as waiting so scheduling-induced imbalance
      // enters the overhead the controller compares.
      PerWorker[W].WaitNanos += LastEnd - EndTimes[W];
      PerWorker[W].ExecNanos += LastEnd - EndTimes[W];
    }
    Report.Stats.merge(PerWorker[W]);
  }
  Report.EffectiveNanos = LastEnd - Start;
  Report.Finished = NextIter.load() >= NumIterations;

  if (Trace) {
    if (!Trace->Cumulative)
      Trace->clear();
    if (Trace->Procs.size() < Team.size())
      Trace->Procs.resize(Team.size());
    for (unsigned W = 0; W < Team.size(); ++W) {
      const OverheadStats &S = PerWorker[W];
      IntervalTrace::ProcSummary &P = Trace->Procs[W];
      // Real threads measure wall time, not categorized time: compute is
      // what remains of the worker's execution after the instrumented
      // overheads (clamped against clock jitter).
      const Nanos Categorized = S.LockOpNanos + S.WaitNanos + S.SchedNanos;
      P.ComputeNanos +=
          S.ExecNanos > Categorized ? S.ExecNanos - Categorized : 0;
      P.LockOpNanos += S.LockOpNanos;
      P.WaitNanos += S.WaitNanos;
      P.OverheadNanos += S.SchedNanos;
      P.Iterations += PerWorkerIters[W];
      for (const auto &[Obj, Summary] : PerWorkerLocks[W]) {
        IntervalTrace::LockSummary &Into = Trace->Locks[Obj];
        Into.Acquires += Summary.Acquires;
        Into.Contended += Summary.Contended;
        Into.WaitNanos += Summary.WaitNanos;
      }
    }
  }
  return Report;
}
