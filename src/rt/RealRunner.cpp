//===- rt/RealRunner.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/RealRunner.h"

#include <cassert>
#include <chrono>

using namespace dynfb::rt;

Nanos dynfb::rt::steadyNow() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              Epoch)
      .count();
}

void WorkerCtx::acquire(SpinLock &L) {
  const Nanos T0 = steadyNow();
  const uint64_t Failed = L.acquire();
  const Nanos T1 = steadyNow();
  ++Stats.AcquireReleasePairs;
  Stats.FailedAcquires += Failed;
  if (Failed == 0) {
    Stats.LockOpNanos += T1 - T0;
  } else {
    // Split: a nominal uncontended-acquire slice counts as lock op, the
    // remainder is waiting.
    const Nanos Nominal = 50;
    Stats.LockOpNanos += Nominal;
    Stats.WaitNanos += (T1 - T0 > Nominal) ? (T1 - T0 - Nominal) : 0;
  }
}

void WorkerCtx::release(SpinLock &L) {
  const Nanos T0 = steadyNow();
  L.release();
  Stats.LockOpNanos += steadyNow() - T0;
}

RealSectionRunner::RealSectionRunner(ThreadTeam &Team,
                                     std::vector<NativeVersion> Versions,
                                     uint64_t NumIterations)
    : Team(Team), Versions(std::move(Versions)),
      NumIterations(NumIterations) {
  assert(!this->Versions.empty() && "section needs at least one version");
}

IntervalReport RealSectionRunner::runInterval(unsigned V, Nanos Target) {
  assert(V < Versions.size() && "version index out of range");
  const NativeVersion &Version = Versions[V];

  const Nanos Start = steadyNow();
  const Nanos Deadline = Start + Target;

  std::vector<OverheadStats> PerWorker(Team.size());
  std::vector<Nanos> EndTimes(Team.size(), Start);

  Team.run([&](unsigned Worker) {
    WorkerCtx Ctx;
    const Nanos WorkerStart = steadyNow();
    for (;;) {
      // Potential switch point: poll the timer at iteration granularity.
      if (steadyNow() >= Deadline)
        break;
      const uint64_t Iter = NextIter.fetch_add(1);
      if (Iter >= NumIterations)
        break;
      Version.Body(Iter, Ctx);
    }
    const Nanos WorkerEnd = steadyNow();
    Ctx.Stats.ExecNanos = WorkerEnd - WorkerStart;
    PerWorker[Worker] = Ctx.Stats;
    EndTimes[Worker] = WorkerEnd;
  });
  // Team.run returning is the synchronous-switch barrier: all workers have
  // stopped running the old version.

  IntervalReport Report;
  Nanos LastEnd = Start;
  for (unsigned W = 0; W < Team.size(); ++W) {
    Report.Stats.merge(PerWorker[W]);
    if (EndTimes[W] > LastEnd)
      LastEnd = EndTimes[W];
  }
  Report.EffectiveNanos = LastEnd - Start;
  Report.Finished = NextIter.load() >= NumIterations;
  return Report;
}
