//===- rt/SectionRegistry.h - Backend-agnostic section table ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single backend-agnostic description of an application's parallel
/// sections: name -> data binding + generated IR versions (each with its
/// scheduling strategy). Applications build one registry per executable
/// flavour; any ExecutionBackend -- the simulator or the native-threads
/// backend -- consumes it verbatim, so there is exactly one construction
/// path no matter where the code runs.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_SECTIONREGISTRY_H
#define DYNFB_RT_SECTIONREGISTRY_H

#include "ir/Module.h"
#include "rt/Binding.h"
#include "rt/Sched.h"

#include <string>
#include <vector>

namespace dynfb::rt {

/// One generated code version of a parallel section, by IR entry method.
struct IrVersion {
  std::string Label;
  const ir::Method *Entry = nullptr;
  SchedSpec Sched;
};

/// One parallel section: its data binding plus the versions the executable
/// carries. \p Binding must outlive every backend built from the registry.
struct SectionDesc {
  std::string Name;
  const DataBinding *Binding = nullptr;
  std::vector<IrVersion> Versions;
};

/// Ordered collection of section descriptions (registration order is the
/// program's section order).
class SectionRegistry {
public:
  /// Registers a section; the name must be unique and the description must
  /// carry a binding and at least one version.
  void addSection(SectionDesc Desc);

  /// The description for \p Name, or nullptr.
  const SectionDesc *find(const std::string &Name) const;

  const std::vector<SectionDesc> &sections() const { return Sections; }
  bool empty() const { return Sections.empty(); }

private:
  std::vector<SectionDesc> Sections;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_SECTIONREGISTRY_H
