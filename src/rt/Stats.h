//===- rt/Stats.h - Overhead measurement (paper Section 4.3) ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three measurements the generated code collects to evaluate a
/// synchronization policy: locking overhead (acquire/release pair count
/// times pair cost), waiting overhead (failed acquire count times attempt
/// cost) and execution time. The total overhead is (locking + waiting) /
/// execution time, always in [0, 1].
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_STATS_H
#define DYNFB_RT_STATS_H

#include "rt/Time.h"

#include <cstdint>
#include <vector>

namespace dynfb::rt {

/// Counts a totalOverhead() ratio clamp (component nanos exceeded
/// ExecNanos) in the metrics registry; fatal under strict-accounting
/// builds (-DDYNFB_STRICT_ACCOUNTING). Defined in Stats.cpp so this header
/// stays free of the obs dependency.
void noteClampedOverheadRatio();

/// Aggregated overhead measurements over some span of execution (one
/// sampling interval, one production interval, or a whole run). ExecNanos
/// sums the per-processor execution time, and -- as in the paper -- includes
/// the waiting time and the time spent acquiring and releasing locks.
struct OverheadStats {
  uint64_t AcquireReleasePairs = 0; ///< Successful acquire (and release) count.
  uint64_t FailedAcquires = 0;      ///< Failed acquire attempts while spinning.
  Nanos LockOpNanos = 0;            ///< Time in successful lock constructs.
  Nanos WaitNanos = 0;              ///< Time spent waiting (spinning).
  /// Scheduling overhead (iteration fetches). Only measured when the
  /// version space has a scheduling dimension -- the pure-synchronization
  /// space compiles the paper's original instrumentation, which does not
  /// observe the scheduler.
  Nanos SchedNanos = 0;
  Nanos ExecNanos = 0;              ///< Total execution time across processors.

  /// Total overhead in [0, 1]: the proportion of the execution time spent
  /// executing lock constructs, waiting for locks (or, with a scheduling
  /// dimension, for the switch barrier) or fetching iterations. A ratio
  /// above 1.0 means the component nanos exceed ExecNanos -- an accounting
  /// error, not a measurement: it is still clamped (the controller needs a
  /// comparable value) but every such clamp is counted in the metrics
  /// registry ("rt.overhead.ratio_clamped") instead of being silently
  /// hidden, and aborts under DYNFB_STRICT_ACCOUNTING builds.
  double totalOverhead() const {
    if (ExecNanos <= 0)
      return 0.0;
    const double Ratio =
        static_cast<double>(LockOpNanos + WaitNanos + SchedNanos) /
        static_cast<double>(ExecNanos);
    if (Ratio > 1.0) {
      noteClampedOverheadRatio();
      return 1.0;
    }
    return Ratio < 0.0 ? 0.0 : Ratio;
  }

  /// Proportion of execution time spent waiting (the paper's Figure 7).
  double waitingProportion() const {
    if (ExecNanos <= 0)
      return 0.0;
    return static_cast<double>(WaitNanos) / static_cast<double>(ExecNanos);
  }

  /// Folds \p Other into this accumulator.
  void merge(const OverheadStats &Other) {
    AcquireReleasePairs += Other.AcquireReleasePairs;
    FailedAcquires += Other.FailedAcquires;
    LockOpNanos += Other.LockOpNanos;
    WaitNanos += Other.WaitNanos;
    SchedNanos += Other.SchedNanos;
    ExecNanos += Other.ExecNanos;
  }

  /// True when the measurement can yield a meaningful overhead: some
  /// execution time was observed and no component is negative. Intervals
  /// failing this are "degenerate" -- the feedback controller counts and
  /// discards them instead of letting a 0/0 masquerade as a perfect (zero
  /// overhead) measurement. SchedNanos is a component of the total overhead
  /// like the other two, so a negative scheduling measurement (e.g. a
  /// mis-merged chunked-dispatch sample) is just as unmeasurable.
  bool isMeasurable() const {
    return ExecNanos > 0 && LockOpNanos >= 0 && WaitNanos >= 0 &&
           SchedNanos >= 0;
  }
};

/// How a sampling phase folds repeated overhead measurements of one version
/// into the value versions are compared by. Mean reproduces the paper's
/// single-measurement behaviour; Median and TrimmedMean resist outliers
/// injected by environmental perturbations (cf. Pac-Sim's robust live
/// sampling).
enum class OverheadAggregation {
  Mean,
  Median,
  TrimmedMean, ///< Mean of the middle (1 - 2*TrimFraction) of the samples.
};

/// Aggregates \p Samples (each already a valid overhead in [0, 1]) with the
/// chosen estimator. Non-finite samples are discarded first; an empty (or
/// fully discarded) sample set yields NaN -- the degenerate-interval
/// sentinel the feedback controller discards -- never 0, which would
/// masquerade as a perfect zero-overhead measurement and steer the version
/// decision. \p TrimFraction in [0, 0.5) is the per-tail trim proportion
/// for TrimmedMean.
double aggregateOverheads(std::vector<double> Samples,
                          OverheadAggregation How,
                          double TrimFraction = 0.2);

} // namespace dynfb::rt

#endif // DYNFB_RT_STATS_H
