//===- rt/Stats.h - Overhead measurement (paper Section 4.3) ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three measurements the generated code collects to evaluate a
/// synchronization policy: locking overhead (acquire/release pair count
/// times pair cost), waiting overhead (failed acquire count times attempt
/// cost) and execution time. The total overhead is (locking + waiting) /
/// execution time, always in [0, 1].
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_STATS_H
#define DYNFB_RT_STATS_H

#include "rt/Time.h"

#include <cstdint>

namespace dynfb::rt {

/// Aggregated overhead measurements over some span of execution (one
/// sampling interval, one production interval, or a whole run). ExecNanos
/// sums the per-processor execution time, and -- as in the paper -- includes
/// the waiting time and the time spent acquiring and releasing locks.
struct OverheadStats {
  uint64_t AcquireReleasePairs = 0; ///< Successful acquire (and release) count.
  uint64_t FailedAcquires = 0;      ///< Failed acquire attempts while spinning.
  Nanos LockOpNanos = 0;            ///< Time in successful lock constructs.
  Nanos WaitNanos = 0;              ///< Time spent waiting (spinning).
  Nanos ExecNanos = 0;              ///< Total execution time across processors.

  /// Total overhead in [0, 1]: the proportion of the execution time spent
  /// executing lock constructs or waiting for locks.
  double totalOverhead() const {
    if (ExecNanos <= 0)
      return 0.0;
    const double Ratio = static_cast<double>(LockOpNanos + WaitNanos) /
                         static_cast<double>(ExecNanos);
    return Ratio < 0.0 ? 0.0 : (Ratio > 1.0 ? 1.0 : Ratio);
  }

  /// Proportion of execution time spent waiting (the paper's Figure 7).
  double waitingProportion() const {
    if (ExecNanos <= 0)
      return 0.0;
    return static_cast<double>(WaitNanos) / static_cast<double>(ExecNanos);
  }

  /// Folds \p Other into this accumulator.
  void merge(const OverheadStats &Other) {
    AcquireReleasePairs += Other.AcquireReleasePairs;
    FailedAcquires += Other.FailedAcquires;
    LockOpNanos += Other.LockOpNanos;
    WaitNanos += Other.WaitNanos;
    ExecNanos += Other.ExecNanos;
  }
};

} // namespace dynfb::rt

#endif // DYNFB_RT_STATS_H
