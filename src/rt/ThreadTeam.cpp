//===- rt/ThreadTeam.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/ThreadTeam.h"

#include <cassert>

using namespace dynfb::rt;

ThreadTeam::ThreadTeam(unsigned Size) : Size(Size) {
  assert(Size >= 1 && "team needs at least one worker");
  Threads.reserve(Size - 1);
  for (unsigned I = 1; I < Size; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> Lock(Mtx);
    ShuttingDown = true;
  }
  CvStart.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadTeam::run(const std::function<void(unsigned)> &Job) {
  {
    std::lock_guard<std::mutex> Lock(Mtx);
    CurrentJob = &Job;
    Remaining = Size - 1;
    ++JobGeneration;
  }
  CvStart.notify_all();

  // Worker 0 is the caller.
  Job(0);

  std::unique_lock<std::mutex> Lock(Mtx);
  CvDone.wait(Lock, [this] { return Remaining == 0; });
  CurrentJob = nullptr;
}

void ThreadTeam::workerMain(unsigned Idx) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(unsigned)> *Job = nullptr;
    {
      std::unique_lock<std::mutex> Lock(Mtx);
      CvStart.wait(Lock, [&] {
        return ShuttingDown || JobGeneration != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = JobGeneration;
      Job = CurrentJob;
    }
    (*Job)(Idx);
    {
      std::lock_guard<std::mutex> Lock(Mtx);
      if (--Remaining == 0)
        CvDone.notify_all();
    }
  }
}
