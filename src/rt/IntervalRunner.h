//===- rt/IntervalRunner.h - Backend abstraction for feedback ---*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract between the dynamic feedback controller and an execution
/// backend. A runner owns one parallel section execution: the controller
/// repeatedly asks it to run a chosen code version until a target interval
/// expires (or the section's work is exhausted), and receives the overhead
/// measurements of that interval. Both the DASH-like simulator and the
/// real-threads backend implement this interface; the controller is
/// backend-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_INTERVALRUNNER_H
#define DYNFB_RT_INTERVALRUNNER_H

#include "rt/Stats.h"
#include "rt/Time.h"

#include <string>

namespace dynfb::rt {

/// Outcome of one interval: the measurements, the effective duration (from
/// interval start until the last processor passed the synchronous switch
/// barrier -- the paper's "effective sampling interval"), and whether the
/// section finished during the interval.
struct IntervalReport {
  OverheadStats Stats;
  Nanos EffectiveNanos = 0;
  bool Finished = false;
  /// Net virtual time attributable to injected environmental faults during
  /// the interval (0 on backends without fault injection and whenever no
  /// perturbation schedule is active). Signed: timer noise can run fast.
  Nanos InjectedNanos = 0;
};

/// One parallel section execution, multi-versioned.
class IntervalRunner {
public:
  virtual ~IntervalRunner() = default;

  /// Number of generated code versions of this section.
  virtual unsigned numVersions() const = 0;

  /// Display label of version \p V (e.g. "Original", "Bounded/Aggressive").
  virtual std::string versionLabel(unsigned V) const = 0;

  /// Runs version \p V from the current position until \p Target time has
  /// elapsed (honoring potential switch points at iteration boundaries) or
  /// the section finishes. All processors switch synchronously at a barrier.
  virtual IntervalReport runInterval(unsigned V, Nanos Target) = 0;

  /// True when every iteration of the section has executed.
  virtual bool done() const = 0;

  /// Restarts the section from its first iteration.
  virtual void reset() = 0;

  /// Current time on this backend's clock.
  virtual Nanos now() const = 0;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_INTERVALRUNNER_H
