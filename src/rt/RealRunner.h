//===- rt/RealRunner.h - Real-threads section runner ------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-threads execution backend: native multi-versioned parallel
/// sections driven by the dynamic feedback controller through the
/// IntervalRunner interface. Iterations are scheduled dynamically over a
/// persistent worker team; each worker polls the clock at iteration
/// boundaries (the potential switch points) and all workers join a barrier
/// before the policy switches -- the synchronous switching of Section 4.1.
///
/// Application code expresses a version as a closure over (iteration index,
/// WorkerCtx); critical regions use WorkerCtx::acquire/release on SpinLocks
/// so the locking and waiting overheads are measured exactly as the paper's
/// instrumentation measures them.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_RT_REALRUNNER_H
#define DYNFB_RT_REALRUNNER_H

#include "rt/IntervalRunner.h"
#include "rt/Sched.h"
#include "rt/SectionTrace.h"
#include "rt/SpinLock.h"
#include "rt/ThreadTeam.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dynfb::rt {

/// Returns the host steady clock as Nanos since an arbitrary process epoch.
Nanos steadyNow();

/// Per-worker instrumentation context. Iteration bodies perform their
/// critical regions through it so overhead is accounted.
class WorkerCtx {
public:
  /// Acquires \p L, accumulating failed-attempt count, waiting time and
  /// lock-op time.
  void acquire(SpinLock &L);

  /// Like acquire, additionally recording a per-lock contention summary
  /// under \p Obj (feeds the section's IntervalTrace lock table).
  void acquire(SpinLock &L, ObjectId Obj);

  /// Releases \p L.
  void release(SpinLock &L);

  OverheadStats Stats;
  uint64_t Iterations = 0; ///< Iterations this worker executed.
  std::map<ObjectId, IntervalTrace::LockSummary> LockStats;
};

/// One native code version of a parallel section. \p Sched selects the
/// iteration-assignment strategy: dynamic self-scheduling fetches one
/// iteration per shared-counter increment, chunked scheduling claims a
/// contiguous block per fetch and polls the deadline only between blocks.
struct NativeVersion {
  std::string Label;
  std::function<void(uint64_t Iter, WorkerCtx &Ctx)> Body;
  SchedSpec Sched;
};

/// IntervalRunner over real threads.
class RealSectionRunner : public IntervalRunner {
public:
  RealSectionRunner(ThreadTeam &Team, std::vector<NativeVersion> Versions,
                    uint64_t NumIterations);

  unsigned numVersions() const override {
    return static_cast<unsigned>(Versions.size());
  }
  std::string versionLabel(unsigned V) const override {
    return Versions[V].Label;
  }
  IntervalReport runInterval(unsigned V, Nanos Target) override;
  bool done() const override { return NextIter.load() >= NumIterations; }
  void reset() override { NextIter.store(0); }
  Nanos now() const override { return steadyNow() - ClockOffset; }

  /// Rebases now() to a backend-local epoch so occurrence timestamps taken
  /// from the runner and from ExecutionBackend::now() share one timeline
  /// (the feedback driver mixes both).
  void setClockOffset(Nanos Offset) { ClockOffset = Offset; }

  /// Attaches an interval trace filled after every runInterval barrier
  /// (per-worker time decomposition and per-lock contention). With
  /// Trace->Cumulative the trace accumulates over the runner's lifetime.
  void attachTrace(IntervalTrace *T) { Trace = T; }

private:
  ThreadTeam &Team;
  const std::vector<NativeVersion> Versions;
  /// See SimSectionRunner: with a scheduling dimension the instrumentation
  /// additionally counts switch-barrier waiting, so scheduling-induced load
  /// imbalance is visible to the controller.
  const bool SchedInstrumented;
  const uint64_t NumIterations;
  std::atomic<uint64_t> NextIter{0};
  Nanos ClockOffset = 0;
  IntervalTrace *Trace = nullptr;
};

} // namespace dynfb::rt

#endif // DYNFB_RT_REALRUNNER_H
