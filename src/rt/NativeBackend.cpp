//===- rt/NativeBackend.cpp -----------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/NativeBackend.h"

#include "rt/NativeSection.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace dynfb;
using namespace dynfb::rt;

NativeBackend::NativeBackend(unsigned NumProcs, SectionRegistry Sections,
                             Options Opts)
    : Sections(std::move(Sections)), Opts(Opts),
      Team(std::max(1u, NumProcs)), Epoch(steadyNow()) {}

void NativeBackend::runSerial(Nanos Dur) {
  // Serial phases burn real time at the same virtual-to-real scale as the
  // parallel compute, so phase timestamps stay proportional to a simulated
  // run's.
  busyWait(static_cast<Nanos>(static_cast<double>(Dur) * Opts.TimeScale));
}

std::unique_ptr<IntervalRunner>
NativeBackend::beginSection(const std::string &Name) {
  const SectionDesc *Desc = Sections.find(Name);
  if (!Desc)
    reportFatalError("beginSection: unknown parallel section name");
  std::vector<NativeIrVersion> Versions;
  Versions.reserve(Desc->Versions.size());
  for (const IrVersion &V : Desc->Versions)
    Versions.push_back(NativeIrVersion{V.Label, V.Entry, V.Sched});
  std::unique_ptr<RealSectionRunner> Runner = makeNativeIrRunner(
      Team, *Desc->Binding, std::move(Versions), Opts.Costs, Opts.TimeScale);
  Runner->setClockOffset(Epoch);
  if (CollectSectionTraces) {
    IntervalTrace &Trace = SectionTraces[Name];
    Trace.Cumulative = true;
    Runner->attachTrace(&Trace);
  }
  return Runner;
}
