//===- rt/Stats.cpp -------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Stats.h"

#include <algorithm>
#include <cmath>

namespace dynfb::rt {

double aggregateOverheads(std::vector<double> Samples,
                          OverheadAggregation How, double TrimFraction) {
  Samples.erase(std::remove_if(Samples.begin(), Samples.end(),
                               [](double X) { return !std::isfinite(X); }),
                Samples.end());
  if (Samples.empty())
    return 0.0;
  if (Samples.size() == 1)
    return Samples.front();

  switch (How) {
  case OverheadAggregation::Mean: {
    double Sum = 0.0;
    for (double X : Samples)
      Sum += X;
    return Sum / static_cast<double>(Samples.size());
  }
  case OverheadAggregation::Median: {
    std::sort(Samples.begin(), Samples.end());
    const size_t N = Samples.size();
    return N % 2 == 1 ? Samples[N / 2]
                      : 0.5 * (Samples[N / 2 - 1] + Samples[N / 2]);
  }
  case OverheadAggregation::TrimmedMean: {
    std::sort(Samples.begin(), Samples.end());
    const size_t N = Samples.size();
    const double Frac = std::clamp(TrimFraction, 0.0, 0.49);
    size_t Cut = static_cast<size_t>(static_cast<double>(N) * Frac);
    if (2 * Cut >= N) // Never trim everything.
      Cut = (N - 1) / 2;
    double Sum = 0.0;
    for (size_t I = Cut; I < N - Cut; ++I)
      Sum += Samples[I];
    return Sum / static_cast<double>(N - 2 * Cut);
  }
  }
  return 0.0;
}

} // namespace dynfb::rt
