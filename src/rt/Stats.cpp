//===- rt/Stats.cpp -------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// OverheadStats is header-only; this file anchors the library target.
//
//===----------------------------------------------------------------------===//

#include "rt/Stats.h"

namespace dynfb::rt {
// Anchor.
} // namespace dynfb::rt
