//===- rt/Stats.cpp -------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Stats.h"

#include "obs/Metrics.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dynfb::rt {

void noteClampedOverheadRatio() {
  // One registration, then a relaxed atomic per clamp: cheap enough for the
  // (never-taken-in-correct-accounting) hot path.
  static obs::Counter &Clamps =
      obs::globalMetrics().counter("rt.overhead.ratio_clamped");
  Clamps.add();
#ifdef DYNFB_STRICT_ACCOUNTING
  DYNFB_CHECK(false, "overhead components exceed execution time");
#endif
}

double aggregateOverheads(std::vector<double> Samples,
                          OverheadAggregation How, double TrimFraction) {
  Samples.erase(std::remove_if(Samples.begin(), Samples.end(),
                               [](double X) { return !std::isfinite(X); }),
                Samples.end());
  if (Samples.empty())
    return std::numeric_limits<double>::quiet_NaN();
  if (Samples.size() == 1)
    return Samples.front();

  switch (How) {
  case OverheadAggregation::Mean: {
    double Sum = 0.0;
    for (double X : Samples)
      Sum += X;
    return Sum / static_cast<double>(Samples.size());
  }
  case OverheadAggregation::Median: {
    std::sort(Samples.begin(), Samples.end());
    const size_t N = Samples.size();
    return N % 2 == 1 ? Samples[N / 2]
                      : 0.5 * (Samples[N / 2 - 1] + Samples[N / 2]);
  }
  case OverheadAggregation::TrimmedMean: {
    std::sort(Samples.begin(), Samples.end());
    const size_t N = Samples.size();
    const double Frac = std::clamp(TrimFraction, 0.0, 0.49);
    size_t Cut = static_cast<size_t>(static_cast<double>(N) * Frac);
    if (2 * Cut >= N) // Never trim everything.
      Cut = (N - 1) / 2;
    double Sum = 0.0;
    for (size_t I = Cut; I < N - Cut; ++I)
      Sum += Samples[I];
    return Sum / static_cast<double>(N - 2 * Cut);
  }
  }
  return 0.0;
}

} // namespace dynfb::rt
