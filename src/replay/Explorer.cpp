//===- replay/Explorer.cpp ------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "replay/Explorer.h"

#include "fb/Controller.h"
#include "sim/Backend.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <limits>
#include <map>

using namespace dynfb;
using namespace dynfb::replay;

namespace {

/// Large but overflow-safe interval target (the fixed-flavour convention).
constexpr rt::Nanos Unbounded = std::numeric_limits<rt::Nanos>::max() / 4;

/// Runs one section occurrence to completion with \p V pinned, from the
/// machine's current state, and records it as a what-if.
WhatIf runOccurrencePinned(sim::SimBackend &Backend, const std::string &Name,
                           size_t Occurrence, unsigned V) {
  const std::unique_ptr<sim::SimSectionRunner> Runner =
      Backend.beginSectionSim(Name);
  WhatIf W;
  W.Occurrence = Occurrence;
  W.Section = Name;
  W.Version = std::min(V, Runner->numVersions() - 1);
  W.Label = Runner->versionLabel(W.Version);
  W.StartNanos = Runner->now();
  while (!Runner->done()) {
    const rt::IntervalReport Report = Runner->runInterval(W.Version, Unbounded);
    W.Stats.merge(Report.Stats);
    if (Report.Finished)
      break;
  }
  W.DurationNanos = Runner->now() - W.StartNanos;
  return W;
}

} // namespace

std::vector<const WhatIf *> Exploration::occurrence(size_t Occ) const {
  std::vector<const WhatIf *> Out;
  for (const WhatIf &W : WhatIfs)
    if (W.Occurrence == Occ)
      Out.push_back(&W);
  return Out;
}

double RegretSummary::regretRatio() const {
  if (ClairvoyantParallelNanos <= 0)
    return 0.0;
  return static_cast<double>(DynamicParallelNanos) /
             static_cast<double>(ClairvoyantParallelNanos) -
         1.0;
}

RegretSummary replay::summarizeRegret(const Exploration &E) {
  RegretSummary S;
  for (size_t Occ = 0; Occ < E.Mainline.Occurrences.size(); ++Occ) {
    S.DynamicParallelNanos += E.Mainline.Occurrences[Occ].durationNanos();
    rt::Nanos Best = 0;
    bool Any = false;
    for (const WhatIf *W : E.occurrence(Occ))
      if (!Any || W->DurationNanos < Best) {
        Best = W->DurationNanos;
        Any = true;
      }
    S.ClairvoyantParallelNanos += Any ? Best : 0;
  }
  return S;
}

Exploration replay::explore(const apps::App &App, unsigned Procs,
                            const rt::MachineModel &Model,
                            const fb::FeedbackConfig &Config,
                            const perturb::PerturbationEngine *Perturb) {
  const std::unique_ptr<sim::SimBackend> Backend =
      App.makeSimBackend(Procs, Model, apps::VersionSpec::dynamicFeedback());
  Backend->setPerturbation(Perturb);

  Exploration E;
  fb::FeedbackController Controller(Config, nullptr, &E.Decisions);
  const rt::Nanos Start = Backend->now();
  size_t Occurrence = 0;

  for (const rt::Phase &P : App.schedule()) {
    switch (P.K) {
    case rt::Phase::Kind::Serial:
      Backend->runSerial(P.SerialNanos);
      break;
    case rt::Phase::Kind::Parallel: {
      // Fork: every version runs the whole occurrence from this state, and
      // the state is rewound before the next candidate -- so all what-ifs
      // (and the mainline below) start from the identical machine.
      const sim::SimMachine::Checkpoint CP = Backend->machine().checkpoint();
      const unsigned NumV =
          Backend->beginSectionSim(P.SectionName)->numVersions();
      for (unsigned V = 0; V < NumV; ++V) {
        E.WhatIfs.push_back(
            runOccurrencePinned(*Backend, P.SectionName, Occurrence, V));
        Backend->machine().restore(CP);
      }
      // Mainline: the real dynamic-feedback execution, from the same state
      // -- bit-identical to a run that never explored.
      const std::unique_ptr<rt::IntervalRunner> Runner =
          Backend->beginSection(P.SectionName);
      fb::SectionExecutionTrace Trace =
          Controller.executeSection(*Runner, P.SectionName);
      E.Mainline.ParallelStats.merge(Trace.Total);
      E.Mainline.Occurrences.push_back(std::move(Trace));
      ++Occurrence;
      break;
    }
    }
  }
  E.Mainline.TotalNanos = Backend->now() - Start;
  return E;
}

std::vector<WhatIf>
replay::runPinned(const apps::App &App, unsigned Procs,
                  const rt::MachineModel &Model, unsigned Version,
                  const perturb::PerturbationEngine *Perturb) {
  const std::unique_ptr<sim::SimBackend> Backend =
      App.makeSimBackend(Procs, Model, apps::VersionSpec::dynamicFeedback());
  Backend->setPerturbation(Perturb);

  std::vector<WhatIf> Out;
  for (const rt::Phase &P : App.schedule()) {
    switch (P.K) {
    case rt::Phase::Kind::Serial:
      Backend->runSerial(P.SerialNanos);
      break;
    case rt::Phase::Kind::Parallel:
      Out.push_back(
          runOccurrencePinned(*Backend, P.SectionName, Out.size(), Version));
      break;
    }
  }
  return Out;
}

std::string replay::renderWhatIfReport(const Exploration &E) {
  // Version labels in first-appearance (version) order, unioned across
  // sections: the counterfactual columns.
  std::vector<std::string> Labels;
  for (const WhatIf &W : E.WhatIfs)
    if (std::find(Labels.begin(), Labels.end(), W.Label) == Labels.end())
      Labels.push_back(W.Label);

  Table T("What-if exploration (checkpointed counterfactuals, seconds)");
  std::vector<std::string> Header{"#", "Section", "Dynamic"};
  for (const std::string &L : Labels)
    Header.push_back(L);
  Header.push_back("Clairvoyant");
  T.setHeader(Header);

  for (size_t Occ = 0; Occ < E.Mainline.Occurrences.size(); ++Occ) {
    const fb::SectionExecutionTrace &M = E.Mainline.Occurrences[Occ];
    const std::vector<const WhatIf *> Ws = E.occurrence(Occ);
    const WhatIf *Best = nullptr;
    for (const WhatIf *W : Ws)
      if (!Best || W->DurationNanos < Best->DurationNanos)
        Best = W;
    std::vector<std::string> Row{
        format("%zu", Occ), M.SectionName,
        formatDouble(rt::nanosToSeconds(M.durationNanos()), 3)};
    for (const std::string &L : Labels) {
      const WhatIf *Found = nullptr;
      for (const WhatIf *W : Ws)
        if (W->Label == L)
          Found = W;
      Row.push_back(
          Found ? formatDouble(rt::nanosToSeconds(Found->DurationNanos), 3) +
                      (Found == Best ? " *" : "")
                : std::string("-"));
    }
    Row.push_back(Best ? Best->Label : "-");
    T.addRow(Row);
  }

  const RegretSummary S = summarizeRegret(E);
  std::string Out = T.renderText();
  Out += format("  dynamic parallel time %s, clairvoyant oracle %s, regret "
                "%.1f%%\n",
                formatSeconds(rt::nanosToSeconds(S.DynamicParallelNanos))
                    .c_str(),
                formatSeconds(rt::nanosToSeconds(S.ClairvoyantParallelNanos))
                    .c_str(),
                S.regretRatio() * 100.0);
  return Out;
}
