//===- replay/Replay.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "replay/Replay.h"

#include "apps/Factory.h"
#include "apps/Harness.h"
#include "fb/Sampling.h"
#include "perturb/Traffic.h"
#include "support/StringUtils.h"
#include "xform/VersionSpace.h"

#include <utility>

using namespace dynfb;
using namespace dynfb::replay;

namespace {

/// Maps the recorded policy name to the executable flavour, exactly as
/// dynfb-run does on the way in.
std::optional<apps::VersionSpec> specForPolicy(const std::string &Policy) {
  if (Policy == "serial")
    return apps::VersionSpec::serial();
  if (Policy == "original")
    return apps::VersionSpec::fixed(xform::PolicyKind::Original);
  if (Policy == "bounded")
    return apps::VersionSpec::fixed(xform::PolicyKind::Bounded);
  if (Policy == "aggressive")
    return apps::VersionSpec::fixed(xform::PolicyKind::Aggressive);
  if (Policy == "dynamic")
    return apps::VersionSpec::dynamicFeedback();
  return std::nullopt;
}

/// Rebuilds the FeedbackConfig the recorded flags produced. Field for field
/// the mapping dynfb-run applies to its command line, so a replayed
/// controller sees the configuration the recorded one ran under.
std::optional<fb::FeedbackConfig> configFromSpec(const obs::RunSpec &Spec,
                                                 std::string &Error) {
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = Spec.SamplingNanos;
  Config.TargetProductionNanos = Spec.ProductionNanos;
  Config.EarlyCutoff = Spec.Cutoff;
  Config.UsePolicyOrdering = Spec.Ordering;
  Config.SpanSectionExecutions = Spec.Spanning;
  Config.SamplingRepeats = Spec.Repeats;
  if (Spec.Aggregate == "mean")
    Config.SamplingAggregation = rt::OverheadAggregation::Mean;
  else if (Spec.Aggregate == "median")
    Config.SamplingAggregation = rt::OverheadAggregation::Median;
  else if (Spec.Aggregate == "trimmed")
    Config.SamplingAggregation = rt::OverheadAggregation::TrimmedMean;
  else {
    Error = "run_spec has unknown aggregate '" + Spec.Aggregate + "'";
    return std::nullopt;
  }
  Config.SwitchHysteresis = Spec.Hysteresis;
  Config.DriftResampleThreshold = Spec.Drift;
  Config.ProductionSliceNanos = Spec.SliceNanos;
  Config.QuarantineStrikes = Spec.QuarantineStrikes;
  Config.QuarantineWindowPhases = Spec.QuarantineWindow;
  Config.QuarantineOverheadLimit = Spec.QuarantineLimit;
  Config.QuarantineBackoffPhases = Spec.QuarantineBackoff;
  Config.QuarantineBackoffMaxPhases = std::max(
      Config.QuarantineBackoffMaxPhases, Config.QuarantineBackoffPhases);
  Config.WatchdogBadSlices = Spec.Watchdog;
  Config.WatchdogOverheadLimit = Spec.WatchdogLimit;
  if (std::optional<fb::SamplerKind> K = fb::parseSamplerName(Spec.Sampler))
    Config.Sampler = *K;
  else {
    Error = "run_spec has unknown sampler '" + Spec.Sampler + "'";
    return std::nullopt;
  }
  Config.SearchBudgetFraction = Spec.SearchBudget;
  Config.UcbExplore = Spec.UcbExplore;
  return Config;
}

/// The "type" of one serialized JSONL line, for divergence messages.
std::string lineType(const std::string &Line) {
  const std::string Key = "\"type\":\"";
  const size_t Pos = Line.find(Key);
  if (Pos == std::string::npos)
    return "record";
  const size_t Start = Pos + Key.size();
  const size_t End = Line.find('"', Start);
  return End == std::string::npos ? "record" : Line.substr(Start, End - Start);
}

} // namespace

std::optional<MaterializedRun>
replay::materialize(const obs::RunTrace &Trace, std::string &Error) {
  const obs::TraceMeta &Meta = Trace.Meta;
  if (!Meta.Spec.Present) {
    Error = "trace has no run_spec (recorded before replay support; "
            "re-record with a current dynfb-run --trace-out)";
    return std::nullopt;
  }
  if (Meta.Backend != "sim") {
    Error = "trace was recorded on the '" + Meta.Backend +
            "' backend; only simulator traces are replayable (real time "
            "is not deterministic)";
    return std::nullopt;
  }
  if (Meta.Procs < 1) {
    Error = "trace meta has no processor count";
    return std::nullopt;
  }
  const obs::RunSpec &Spec = Meta.Spec;

  MaterializedRun Run;
  Run.Procs = Meta.Procs;
  Run.PolicyName = Meta.Policy;
  const std::optional<apps::VersionSpec> VSpec = specForPolicy(Meta.Policy);
  if (!VSpec) {
    Error = "trace meta has unknown policy '" + Meta.Policy + "'";
    return std::nullopt;
  }
  Run.Spec = *VSpec;

  xform::VersionSpace Space;
  if (!Spec.Dimensions.empty() || !Spec.Chunks.empty()) {
    std::optional<xform::VersionSpace> Parsed = xform::VersionSpace::parse(
        Spec.Dimensions.empty() ? "sync" : Spec.Dimensions, Spec.Chunks,
        Error);
    if (!Parsed)
      return std::nullopt;
    Space = std::move(*Parsed);
  }
  Run.App = apps::createApp(Meta.App, Spec.Scale, Space);
  if (!Run.App) {
    Error = "trace meta names unknown application '" + Meta.App + "'";
    return std::nullopt;
  }

  const std::string MachineName =
      Meta.Machine.empty() ? "dash-flat" : Meta.Machine;
  Run.Machine = rt::createMachineModel(MachineName);
  if (!Run.Machine) {
    Error = "trace meta names unknown machine model '" + MachineName + "'";
    return std::nullopt;
  }
  if (!Spec.CostOverrides.empty() &&
      !rt::applyCostOverrides(*Run.Machine, Spec.CostOverrides, Error))
    return std::nullopt;
  // The recorded parameter set is the ground truth: a mismatch means the
  // model's defaults changed since the recording, and a replay on different
  // prices would diverge for a reason the diff could not explain.
  if (!Meta.MachineParams.empty() &&
      Run.Machine->paramsString() != Meta.MachineParams) {
    Error = "rebuilt machine parameters differ from the recording "
            "(recorded '" +
            Meta.MachineParams + "', rebuilt '" +
            Run.Machine->paramsString() + "')";
    return std::nullopt;
  }

  const std::optional<fb::FeedbackConfig> Config =
      configFromSpec(Spec, Error);
  if (!Config)
    return std::nullopt;
  Run.Config = *Config;

  if (!Spec.PerturbSpec.empty() && !Spec.TrafficSpec.empty()) {
    Error = "run_spec carries both a perturbation schedule and a traffic "
            "spec; they are mutually exclusive";
    return std::nullopt;
  }
  if (!Spec.PerturbSpec.empty()) {
    std::optional<perturb::PerturbationSchedule> Schedule =
        perturb::parseSchedule(Spec.PerturbSpec, Error);
    if (!Schedule) {
      Error = "malformed recorded perturbation schedule: " + Error;
      return std::nullopt;
    }
    for (const std::string &Section : Schedule->referencedSections())
      if (!Run.App->program().find(Section)) {
        Error = "recorded perturbation schedule references unknown section "
                "'" +
                Section + "'";
        return std::nullopt;
      }
    if (!perturb::validateSchedule(*Schedule, Run.Procs, Error))
      return std::nullopt;
    Run.Perturb =
        std::make_unique<perturb::PerturbationEngine>(std::move(*Schedule));
  } else if (!Spec.TrafficSpec.empty()) {
    const std::optional<perturb::TrafficSpec> Traffic =
        perturb::parseTraffic(Spec.TrafficSpec, Error);
    if (!Traffic) {
      Error = "malformed recorded traffic spec: " + Error;
      return std::nullopt;
    }
    const auto &Sections = Run.App->program().Sections;
    const unsigned NumShards =
        Sections.empty()
            ? 0
            : Run.App->binding(Sections.front().Name).objectCount();
    perturb::PerturbationSchedule Schedule =
        perturb::compileTraffic(*Traffic, NumShards, Run.Procs);
    if (!perturb::validateSchedule(Schedule, Run.Procs, Error)) {
      Error = "recompiled traffic schedule invalid: " + Error;
      return std::nullopt;
    }
    Run.Perturb =
        std::make_unique<perturb::PerturbationEngine>(std::move(Schedule));
  }

  return Run;
}

std::string replay::compareTraces(const obs::RunTrace &Recorded,
                                  const obs::RunTrace &Replayed) {
  const std::vector<std::string> A = splitString(obs::toJsonl(Recorded), '\n');
  const std::vector<std::string> B = splitString(obs::toJsonl(Replayed), '\n');
  const size_t Common = std::min(A.size(), B.size());
  for (size_t I = 0; I < Common; ++I)
    if (A[I] != B[I])
      return format("line %zu (%s): recorded %s | replayed %s", I + 1,
                    lineType(A[I]).c_str(), A[I].c_str(), B[I].c_str());
  if (A.size() != B.size()) {
    const bool RecordedLonger = A.size() > B.size();
    const std::string &Extra = RecordedLonger ? A[Common] : B[Common];
    return format("line %zu (%s): %s trace has %zu extra record(s), first: "
                  "%s",
                  Common + 1, lineType(Extra).c_str(),
                  RecordedLonger ? "recorded" : "replayed",
                  (RecordedLonger ? A.size() : B.size()) - Common,
                  Extra.c_str());
  }
  return "";
}

std::optional<ReplayResult> replay::replayTrace(const obs::RunTrace &Recorded,
                                                std::string &Error) {
  std::optional<MaterializedRun> Run = materialize(Recorded, Error);
  if (!Run)
    return std::nullopt;

  // Re-drive exactly the recording path: section traces on (the recording
  // had --trace-out), history only under policy ordering, observation
  // attached. Observation never alters the run, so the replayed behaviour
  // is the recorded configuration's behaviour.
  fb::PolicyHistory History;
  apps::RunObservation Obs;
  Obs.CollectSectionTraces = true;
  const fb::RunResult R = apps::runApp(
      *Run->App, Run->Procs, Run->Spec, *Run->Machine, Run->Config,
      Run->Config.UsePolicyOrdering ? &History : nullptr, Run->Perturb.get(),
      &Obs, apps::BackendOptions::sim());

  ReplayResult Result;
  Result.Replayed = apps::buildRunTrace(Recorded.Meta.App, Run->Procs,
                                        Run->PolicyName, R, &Obs,
                                        rt::BackendKind::Sim);
  Result.Replayed.Meta.Machine = Run->Machine->name();
  Result.Replayed.Meta.MachineParams = Run->Machine->paramsString();
  // The spec is configuration, not measurement: carried over verbatim so a
  // re-export of the replayed trace is replayable (and byte-identical when
  // the behaviour matched).
  Result.Replayed.Meta.Spec = Recorded.Meta.Spec;
  Result.Divergence = compareTraces(Recorded, Result.Replayed);
  return Result;
}
