//===- replay/Explorer.h - Checkpointed what-if exploration -----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an application under dynamic feedback while forking the simulated
/// machine at every parallel-phase boundary: before the controller executes
/// a section occurrence, the Explorer checkpoints the machine
/// (sim::SimMachine::checkpoint()), runs every code version of the section
/// to completion from that identical state, restores the checkpoint, and
/// only then lets the mainline controller proceed. The recorded what-ifs
/// are the counterfactual columns of dynfb-report --whatif ("what Bounded
/// would have done here") and the per-occurrence clairvoyant oracle the
/// regret summary compares dynamic feedback against. Checkpoint invariants
/// and the exactness argument live in docs/REPLAY.md; the replay_whatif
/// experiment gates counterfactuals == ground-truth fresh pinned runs.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_REPLAY_EXPLORER_H
#define DYNFB_REPLAY_EXPLORER_H

#include "apps/App.h"
#include "fb/Driver.h"
#include "obs/DecisionLog.h"
#include "rt/MachineModel.h"
#include "rt/Stats.h"

#include <string>
#include <vector>

namespace dynfb::perturb {
class PerturbationEngine;
} // namespace dynfb::perturb

namespace dynfb::replay {

/// One counterfactual: occurrence \p Occurrence (index into the mainline
/// run's parallel phases, in schedule order) executed entirely with version
/// \p Version from the forked machine state.
struct WhatIf {
  size_t Occurrence = 0;
  std::string Section;
  unsigned Version = 0;
  std::string Label;
  rt::Nanos StartNanos = 0;    ///< Fork time: the mainline clock at entry.
  rt::Nanos DurationNanos = 0; ///< What the occurrence would have cost.
  rt::OverheadStats Stats;
};

/// Everything one exploration produced: the mainline dynamic-feedback run
/// (bit-identical to an unexplored run -- the what-ifs execute between
/// restore points), its decision log, and every counterfactual.
struct Exploration {
  fb::RunResult Mainline;
  obs::DecisionLog Decisions;
  std::vector<WhatIf> WhatIfs;

  /// The what-ifs of one occurrence, in version order.
  std::vector<const WhatIf *> occurrence(size_t Occ) const;
};

/// Regret of the mainline run against the per-occurrence clairvoyant
/// oracle (the best what-if version of every occurrence, chosen with
/// perfect foresight and zero sampling cost).
struct RegretSummary {
  rt::Nanos DynamicParallelNanos = 0;     ///< Mainline time in sections.
  rt::Nanos ClairvoyantParallelNanos = 0; ///< Sum of per-occurrence minima.

  /// Fractional regret: dynamic / clairvoyant - 1 (0 = matched the oracle).
  double regretRatio() const;
};

RegretSummary summarizeRegret(const Exploration &E);

/// Runs \p App under dynamic feedback on a fresh simulator built from
/// \p Model, evaluating every version of every section occurrence from the
/// checkpointed phase-boundary state. \p Perturb may be null; when present
/// it perturbs mainline and counterfactuals identically (the engine is a
/// pure function of section, processor and virtual time).
Exploration explore(const apps::App &App, unsigned Procs,
                    const rt::MachineModel &Model,
                    const fb::FeedbackConfig &Config = {},
                    const perturb::PerturbationEngine *Perturb = nullptr);

/// Ground truth for the what-if gate: a fresh, uninterrupted run of the
/// same instrumented dynamic-flavour executable with one version pinned
/// for every occurrence (\p Version clamped per section to its last
/// version). Returns one WhatIf per parallel phase, in schedule order.
std::vector<WhatIf> runPinned(const apps::App &App, unsigned Procs,
                              const rt::MachineModel &Model, unsigned Version,
                              const perturb::PerturbationEngine *Perturb =
                                  nullptr);

/// The counterfactual table of dynfb-report --whatif: one row per
/// occurrence with the mainline (dynamic) duration, every version's
/// what-if duration, the clairvoyant choice, and the regret summary.
std::string renderWhatIfReport(const Exploration &E);

} // namespace dynfb::replay

#endif // DYNFB_REPLAY_EXPLORER_H
