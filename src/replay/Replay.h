//===- replay/Replay.h - Executable traces ----------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a self-describing JSONL adaptation trace (obs::RunTrace with a
/// recorded obs::RunSpec) back into an executable run configuration and
/// re-drives it on the simulator, verifying that every decision, section
/// record and lock record matches the recording. The simulator is fully
/// deterministic, so a divergence means the binary changed behaviour --
/// replay is the substrate for trace-driven bisection of controller
/// regressions. The contract (and the reasons native traces are not
/// replayable) lives in docs/REPLAY.md.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_REPLAY_REPLAY_H
#define DYNFB_REPLAY_REPLAY_H

#include "apps/App.h"
#include "fb/Config.h"
#include "obs/Export.h"
#include "perturb/Engine.h"
#include "rt/MachineModel.h"

#include <memory>
#include <optional>
#include <string>

namespace dynfb::replay {

/// A trace materialized back into everything needed to re-drive the run:
/// the application (rebuilt at the recorded scale over the recorded version
/// space), the machine model with the recorded cost overrides applied, the
/// perturbation engine (recompiled from the recorded --perturb/--traffic
/// spec, which carries its own seed), the feedback configuration and the
/// executable flavour.
struct MaterializedRun {
  std::unique_ptr<apps::App> App;
  std::unique_ptr<rt::MachineModel> Machine;
  std::unique_ptr<perturb::PerturbationEngine> Perturb; ///< May be null.
  fb::FeedbackConfig Config;
  apps::VersionSpec Spec;
  std::string PolicyName;
  unsigned Procs = 0;
};

/// Reconstructs the run configuration recorded in \p Trace's meta line.
/// Fails (nullopt, \p Error set) when the trace predates replay support
/// (no run_spec), was recorded on the native backend (real time is not
/// replayable), names an unknown app/machine/policy, or the rebuilt
/// machine's parameter set does not round-trip the recorded one.
std::optional<MaterializedRun> materialize(const obs::RunTrace &Trace,
                                           std::string &Error);

/// Outcome of one replay: the re-recorded trace plus the comparison against
/// the recording.
struct ReplayResult {
  obs::RunTrace Replayed;
  /// Empty when the replay matched the recording exactly; otherwise a
  /// one-line description of the first divergence (JSONL line number in the
  /// recorded file, record type, and both renderings).
  std::string Divergence;

  bool diverged() const { return !Divergence.empty(); }
};

/// Re-drives the run recorded in \p Recorded on a fresh simulator and
/// compares the resulting trace record by record. Fails (nullopt, \p Error
/// set) only when the trace cannot be materialized at all; a successful
/// replay that produced different behaviour is reported through
/// ReplayResult::Divergence.
std::optional<ReplayResult> replayTrace(const obs::RunTrace &Recorded,
                                        std::string &Error);

/// Record-by-record comparison of two traces through their canonical JSONL
/// rendering. Returns "" when identical, otherwise a one-line description
/// of the first mismatching line (its number and both renderings). The
/// decision lines are the per-interval adaptation record, so the first
/// mismatching line names the first diverging interval.
std::string compareTraces(const obs::RunTrace &Recorded,
                          const obs::RunTrace &Replayed);

} // namespace dynfb::replay

#endif // DYNFB_REPLAY_REPLAY_H
