//===- support/CommandLine.h - Minimal flag parsing ------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal `--flag=value` / `--flag value` parser for the bench and
/// example binaries. No registration step: callers query typed values with
/// defaults, and unknown-flag detection is available for strict tools.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_COMMANDLINE_H
#define DYNFB_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace dynfb {

/// Parsed command line: flags (`--name`, `--name=value`, `--name value`) and
/// positional arguments.
class CommandLine {
public:
  CommandLine(int Argc, const char *const *Argv);

  /// Returns true if `--name` was present (with or without a value).
  bool has(const std::string &Name) const;

  /// Typed accessors; return \p Default when the flag is absent. A flag
  /// present without a value yields the default for numeric accessors and
  /// true for getBool.
  std::string getString(const std::string &Name,
                        const std::string &Default) const;
  int64_t getInt(const std::string &Name, int64_t Default) const;
  double getDouble(const std::string &Name, double Default) const;
  bool getBool(const std::string &Name, bool Default) const;

  const std::vector<std::string> &positional() const { return Positional; }

  /// Returns the names of flags never queried via the accessors above --
  /// used by strict tools to reject typos.
  std::vector<std::string> unqueriedFlags() const;

private:
  struct Flag {
    std::string Name;
    std::string Value;
    bool HasValue;
    mutable bool Queried;
  };
  const Flag *find(const std::string &Name) const;

  std::vector<Flag> Flags;
  std::vector<std::string> Positional;
};

/// Strict-mode check for tools: fails on any present flag that is neither
/// in \p KnownFlags nor already queried through the typed accessors (the
/// latter lets branching tools list only their common flags). Prints one
/// diagnostic per unknown flag to stderr -- with a "did you mean" hint
/// against \p KnownFlags when an accepted flag is a plausible typo target --
/// plus a pointer at \p UsageHint. Returns true when the command line is
/// clean.
bool rejectUnknownFlags(const CommandLine &CL, const std::string &Tool,
                        const std::vector<std::string> &KnownFlags,
                        const std::string &UsageHint = "--help");

} // namespace dynfb

#endif // DYNFB_SUPPORT_COMMANDLINE_H
