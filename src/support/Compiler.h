//===- support/Compiler.h - Portability and diagnostics macros -*- C++ -*-===//
//
// Part of the dynfb project: a reproduction of Diniz & Rinard,
// "Dynamic Feedback: An Effective Technique for Adaptive Computing",
// PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used throughout the library: an unreachable
/// marker and a fatal-error helper for invariant violations that must be
/// diagnosed even in release builds.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_COMPILER_H
#define DYNFB_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace dynfb {

/// Prints \p Msg with source location to stderr and aborts. Used to document
/// control flow that must never be reached if the program invariants hold.
[[noreturn]] inline void reportUnreachable(const char *Msg, const char *File,
                                           unsigned Line) {
  std::fprintf(stderr, "%s:%u: unreachable executed: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal internal error (invariant violation detectable even in
/// builds with assertions disabled) and aborts.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "dynfb fatal error: %s\n", Msg);
  std::abort();
}

/// Backs DYNFB_CHECK: prints the failed condition with source location and
/// aborts. Unlike assert, this fires in every build configuration.
[[noreturn]] inline void reportCheckFailure(const char *Cond, const char *Msg,
                                            const char *File, unsigned Line) {
  std::fprintf(stderr, "%s:%u: check `%s` failed: %s\n", File, Line, Cond,
               Msg);
  std::abort();
}

} // namespace dynfb

#define DYNFB_UNREACHABLE(MSG)                                                 \
  ::dynfb::reportUnreachable(MSG, __FILE__, __LINE__)

/// Always-on invariant check for error paths that must be diagnosed even
/// with assertions compiled out (e.g. callers handing the simulator garbage
/// durations). Use assert() for internal hot-path invariants instead.
#define DYNFB_CHECK(COND, MSG)                                                 \
  do {                                                                         \
    if (!(COND))                                                               \
      ::dynfb::reportCheckFailure(#COND, MSG, __FILE__, __LINE__);             \
  } while (false)

#endif // DYNFB_SUPPORT_COMPILER_H
