//===- support/CommandLine.cpp --------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace dynfb;

CommandLine::CommandLine(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.size() < 3 || Arg[0] != '-' || Arg[1] != '-') {
      Positional.push_back(std::move(Arg));
      continue;
    }
    std::string Body = Arg.substr(2);
    const size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Flags.push_back(
          {Body.substr(0, Eq), Body.substr(Eq + 1), true, false});
      continue;
    }
    // `--name value` form: consume the next token if it does not look like
    // another flag.
    if (I + 1 < Argc) {
      std::string Next = Argv[I + 1];
      if (Next.size() < 2 || Next[0] != '-' || Next[1] != '-') {
        Flags.push_back({std::move(Body), std::move(Next), true, false});
        ++I;
        continue;
      }
    }
    Flags.push_back({std::move(Body), "", false, false});
  }
}

const CommandLine::Flag *CommandLine::find(const std::string &Name) const {
  for (const Flag &F : Flags)
    if (F.Name == Name) {
      F.Queried = true;
      return &F;
    }
  return nullptr;
}

bool CommandLine::has(const std::string &Name) const {
  return find(Name) != nullptr;
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  const Flag *F = find(Name);
  return F && F->HasValue ? F->Value : Default;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  const Flag *F = find(Name);
  if (!F || !F->HasValue)
    return Default;
  return std::strtoll(F->Value.c_str(), nullptr, 10);
}

double CommandLine::getDouble(const std::string &Name, double Default) const {
  const Flag *F = find(Name);
  if (!F || !F->HasValue)
    return Default;
  return std::strtod(F->Value.c_str(), nullptr);
}

bool CommandLine::getBool(const std::string &Name, bool Default) const {
  const Flag *F = find(Name);
  if (!F)
    return Default;
  if (!F->HasValue)
    return true;
  return F->Value == "1" || F->Value == "true" || F->Value == "yes" ||
         F->Value == "on";
}

std::vector<std::string> CommandLine::unqueriedFlags() const {
  std::vector<std::string> Out;
  for (const Flag &F : Flags)
    if (!F.Queried)
      Out.push_back(F.Name);
  return Out;
}

bool dynfb::rejectUnknownFlags(const CommandLine &CL,
                               const std::string &Tool,
                               const std::vector<std::string> &KnownFlags,
                               const std::string &UsageHint) {
  std::vector<std::string> Unknown;
  for (const std::string &Name : CL.unqueriedFlags())
    if (std::find(KnownFlags.begin(), KnownFlags.end(), Name) ==
        KnownFlags.end())
      Unknown.push_back(Name);
  if (Unknown.empty())
    return true;
  for (const std::string &Name : Unknown) {
    const std::string Suggestion = closestMatch(Name, KnownFlags);
    if (Suggestion.empty())
      std::fprintf(stderr, "%s: unknown flag '--%s'\n", Tool.c_str(),
                   Name.c_str());
    else
      std::fprintf(stderr, "%s: unknown flag '--%s' (did you mean '--%s'?)\n",
                   Tool.c_str(), Name.c_str(), Suggestion.c_str());
  }
  std::fprintf(stderr, "%s: run with %s for usage\n", Tool.c_str(),
               UsageHint.c_str());
  return false;
}
