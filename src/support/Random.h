//===- support/Random.h - Deterministic pseudo-random generators -*- C++ -*-=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable pseudo-random number generators. Every workload
/// generator in the repository draws from these so that all experiments are
/// bit-reproducible across hosts, independent of the C++ standard library's
/// unspecified distributions.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_RANDOM_H
#define DYNFB_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace dynfb {

/// SplitMix64: a tiny, high-quality 64-bit generator. Used directly for
/// cheap streams and to seed Xoshiro256StarStar.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Deterministic multiplicative jitter in [1 - Amplitude, 1 + Amplitude),
/// derived from a hash of \p Key. Workload bindings use it to break the
/// perfect lockstep a deterministic simulator would otherwise fall into:
/// identical iteration timings self-synchronize into contention-free
/// pipelines that a real machine's timing noise prevents.
inline double jitterFactor(uint64_t Key, double Amplitude) {
  SplitMix64 SM(Key);
  const double U = static_cast<double>(SM.next() >> 11) * 0x1.0p-53;
  return 1.0 + Amplitude * (2.0 * U - 1.0);
}

/// Xoshiro256**: the main workhorse generator for workload construction.
class Rng {
public:
  /// Constructs a generator whose stream is fully determined by \p Seed.
  explicit Rng(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : State)
      Word = SM.next();
  }

  /// Returns the next raw 64-bit value.
  uint64_t next64();

  /// Returns a uniformly distributed double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniformly distributed double in [\p Lo, \p Hi).
  double uniform(double Lo, double Hi) {
    assert(Lo <= Hi && "empty uniform range");
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Returns a uniformly distributed integer in [0, \p Bound) without modulo
  /// bias. \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a normally distributed value (Box-Muller) with the given mean
  /// and standard deviation.
  double gaussian(double Mean, double Sigma);

private:
  uint64_t State[4];
  bool HasSpare = false;
  double Spare = 0.0;
};

} // namespace dynfb

#endif // DYNFB_SUPPORT_RANDOM_H
