//===- support/TablePrinter.cpp -------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace dynfb;

void Table::setHeader(std::vector<std::string> Cells) {
  assert(Rows.empty() && "header must be set before rows");
  Header = std::move(Cells);
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Cells));
}

std::string Table::renderText() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C != 0)
        Line += "  ";
      // Left-align the first column (labels), right-align numbers.
      const std::string &Cell = Cells[C];
      const size_t Pad = Widths[C] - Cell.size();
      if (C == 0) {
        Line += Cell;
        Line.append(Pad, ' ');
      } else {
        Line.append(Pad, ' ');
        Line += Cell;
      }
    }
    Line += '\n';
    return Line;
  };

  size_t Total = Header.size() > 1 ? 2 * (Header.size() - 1) : 0;
  for (size_t W : Widths)
    Total += W;

  std::string Out;
  Out += Title;
  Out += '\n';
  Out.append(Total, '=');
  Out += '\n';
  Out += RenderRow(Header);
  Out.append(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}

static std::string csvEscape(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Out = "\"";
  for (char Ch : Cell) {
    if (Ch == '"')
      Out += '"';
    Out += Ch;
  }
  Out += '"';
  return Out;
}

std::string Table::renderCsv() const {
  std::string Out;
  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C != 0)
        Out += ',';
      Out += csvEscape(Cells[C]);
    }
    Out += '\n';
  };
  EmitRow(Header);
  for (const auto &Row : Rows)
    EmitRow(Row);
  return Out;
}

std::string dynfb::renderSeriesCsv(const SeriesSet &Set,
                                   const std::string &XName,
                                   const std::string &YName) {
  std::string Out = "series," + XName + "," + YName + "\n";
  for (const Series &S : Set.all())
    for (size_t I = 0; I < S.size(); ++I)
      Out += csvEscape(S.Label) + "," + format("%.9g", S.Times[I]) + "," +
             format("%.9g", S.Values[I]) + "\n";
  return Out;
}

std::string dynfb::renderSeriesText(const SeriesSet &Set) {
  std::string Out;
  for (const Series &S : Set.all()) {
    Out += S.Label;
    Out += ":\n";
    for (size_t I = 0; I < S.size(); ++I)
      Out += format("  %12.6f  %12.6f\n", S.Times[I], S.Values[I]);
  }
  return Out;
}
