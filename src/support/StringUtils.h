//===- support/StringUtils.h - Formatting helpers --------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting and small numeric renderers shared by
/// the table printers and the bench harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_STRINGUTILS_H
#define DYNFB_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace dynfb {

/// printf-style formatting into a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strips leading and trailing ASCII whitespace.
std::string trim(const std::string &S);

/// Splits \p S at every occurrence of \p Sep; adjacent separators yield
/// empty parts, and an empty input yields no parts.
std::vector<std::string> splitString(const std::string &S, char Sep);

/// Renders \p Value with \p Decimals fractional digits, e.g. 12.345 -> "12.3".
std::string formatDouble(double Value, int Decimals = 2);

/// Renders an integer with thousands separators, e.g. 15471616 ->
/// "15,471,616" (matching the typography of the paper's tables).
std::string withThousandsSep(uint64_t Value);

/// Renders \p Seconds as a compact human-readable duration for logs.
std::string formatSeconds(double Seconds);

/// Levenshtein edit distance between \p A and \p B.
size_t editDistance(const std::string &A, const std::string &B);

/// Returns the candidate closest to \p Word by edit distance, or "" when
/// none is plausibly a typo for it (distance above max(2, |Word|/3)).
/// Powers the "did you mean --x?" hints of strict flag checking.
std::string closestMatch(const std::string &Word,
                         const std::vector<std::string> &Candidates);

} // namespace dynfb

#endif // DYNFB_SUPPORT_STRINGUTILS_H
