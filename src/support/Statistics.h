//===- support/Statistics.h - Running statistics accumulators ---*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming statistics accumulators (Welford mean/variance, min/max) and a
/// small time-series recorder used to regenerate the paper's sampled-overhead
/// figures (Figures 5, 8 and 9).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_STATISTICS_H
#define DYNFB_SUPPORT_STATISTICS_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dynfb {

/// Streaming accumulator for count / mean / variance / min / max, using
/// Welford's numerically stable update.
class RunningStat {
public:
  /// Folds one observation into the accumulator.
  void add(double X) {
    ++N;
    const double Delta = X - Mean;
    Mean += Delta / static_cast<double>(N);
    M2 += Delta * (X - Mean);
    if (X < MinV)
      MinV = X;
    if (X > MaxV)
      MaxV = X;
    Total += X;
  }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStat &Other);

  uint64_t count() const { return N; }
  double sum() const { return Total; }
  double mean() const { return N == 0 ? 0.0 : Mean; }

  /// Population variance; zero for fewer than two observations.
  double variance() const {
    return N < 2 ? 0.0 : M2 / static_cast<double>(N);
  }

  double stddev() const;

  double min() const {
    assert(N > 0 && "min() of empty accumulator");
    return MinV;
  }
  double max() const {
    assert(N > 0 && "max() of empty accumulator");
    return MaxV;
  }

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Total = 0.0;
  double MinV = std::numeric_limits<double>::infinity();
  double MaxV = -std::numeric_limits<double>::infinity();
};

/// One labelled (time, value) series, e.g. the sampled overhead of one
/// synchronization policy over the execution of a parallel section.
struct Series {
  std::string Label;
  std::vector<double> Times;
  std::vector<double> Values;

  void addPoint(double T, double V) {
    Times.push_back(T);
    Values.push_back(V);
  }
  size_t size() const { return Times.size(); }
};

/// A collection of labelled series sharing one x-axis meaning. Provides the
/// data behind every time-series figure in the paper.
class SeriesSet {
public:
  /// Returns the series with \p Label, creating it on first use.
  Series &getOrCreate(const std::string &Label);

  /// Returns the series with \p Label or nullptr if absent.
  const Series *find(const std::string &Label) const;

  const std::vector<Series> &all() const { return All; }
  bool empty() const { return All.empty(); }

private:
  std::vector<Series> All;
};

} // namespace dynfb

#endif // DYNFB_SUPPORT_STATISTICS_H
