//===- support/Integration.h - Numerical quadrature ------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adaptive Simpson quadrature. The theory module uses it as an independent
/// cross-check of the closed-form work integrals (Equations 2-6 of the
/// paper); the tests compare both paths.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_INTEGRATION_H
#define DYNFB_SUPPORT_INTEGRATION_H

#include <functional>

namespace dynfb {

/// Integrates \p F over [\p A, \p B] with adaptive Simpson quadrature to the
/// requested absolute tolerance.
double integrate(const std::function<double(double)> &F, double A, double B,
                 double Tol = 1e-10);

} // namespace dynfb

#endif // DYNFB_SUPPORT_INTEGRATION_H
