//===- support/BuildInfo.cpp ----------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"

#ifndef DYNFB_BUILD_HASH
#define DYNFB_BUILD_HASH "unknown"
#endif

const char *dynfb::buildHash() { return DYNFB_BUILD_HASH; }
