//===- support/TablePrinter.h - Paper-style table rendering ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the rows/series the paper reports: fixed-width ASCII tables
/// (mirroring the paper's table layout) and CSV for plotting the figures.
/// The bench binaries print exactly these renderings.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_TABLEPRINTER_H
#define DYNFB_SUPPORT_TABLEPRINTER_H

#include "support/Statistics.h"

#include <string>
#include <vector>

namespace dynfb {

/// A simple column-aligned table with a title, a header row and data rows.
class Table {
public:
  explicit Table(std::string Title) : Title(std::move(Title)) {}

  /// Sets the header cells. Must be called before adding rows.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row; its arity must match the header's.
  void addRow(std::vector<std::string> Cells);

  size_t numRows() const { return Rows.size(); }
  size_t numCols() const { return Header.size(); }
  const std::string &title() const { return Title; }
  const std::vector<std::string> &header() const { return Header; }
  const std::vector<std::vector<std::string>> &rows() const { return Rows; }

  /// Renders the table as column-aligned ASCII text.
  std::string renderText() const;

  /// Renders the table as CSV (header + rows, RFC-4180 quoting).
  std::string renderCsv() const;

private:
  std::string Title;
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Renders a SeriesSet as CSV with a shared x column per row:
/// label,x,y triples -- the format used for the paper's time-series figures.
std::string renderSeriesCsv(const SeriesSet &Set, const std::string &XName,
                            const std::string &YName);

/// Renders a SeriesSet as a coarse ASCII chart (one line per point) for
/// quick visual inspection in bench output.
std::string renderSeriesText(const SeriesSet &Set);

} // namespace dynfb

#endif // DYNFB_SUPPORT_TABLEPRINTER_H
