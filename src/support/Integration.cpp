//===- support/Integration.cpp --------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Integration.h"

#include <cmath>

using namespace dynfb;

namespace {

double simpson(double FA, double FM, double FB, double A, double B) {
  return (B - A) / 6.0 * (FA + 4.0 * FM + FB);
}

double adaptive(const std::function<double(double)> &F, double A, double B,
                double FA, double FM, double FB, double Whole, double Tol,
                unsigned Depth) {
  const double M = 0.5 * (A + B);
  const double LM = 0.5 * (A + M);
  const double RM = 0.5 * (M + B);
  const double FLM = F(LM);
  const double FRM = F(RM);
  const double Left = simpson(FA, FLM, FM, A, M);
  const double Right = simpson(FM, FRM, FB, M, B);
  const double Delta = Left + Right - Whole;
  if (Depth == 0 || std::fabs(Delta) <= 15.0 * Tol)
    return Left + Right + Delta / 15.0;
  return adaptive(F, A, M, FA, FLM, FM, Left, 0.5 * Tol, Depth - 1) +
         adaptive(F, M, B, FM, FRM, FB, Right, 0.5 * Tol, Depth - 1);
}

} // namespace

double dynfb::integrate(const std::function<double(double)> &F, double A,
                        double B, double Tol) {
  if (A == B)
    return 0.0;
  const double Sign = A < B ? 1.0 : -1.0;
  if (A > B) {
    const double T = A;
    A = B;
    B = T;
  }
  const double M = 0.5 * (A + B);
  const double FA = F(A);
  const double FM = F(M);
  const double FB = F(B);
  const double Whole = simpson(FA, FM, FB, A, B);
  return Sign * adaptive(F, A, B, FA, FM, FB, Whole, Tol, 40);
}
