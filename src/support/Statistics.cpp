//===- support/Statistics.cpp ---------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cmath>

using namespace dynfb;

void RunningStat::merge(const RunningStat &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  const double Delta = Other.Mean - Mean;
  const uint64_t Combined = N + Other.N;
  M2 += Other.M2 + Delta * Delta * static_cast<double>(N) *
                       static_cast<double>(Other.N) /
                       static_cast<double>(Combined);
  Mean += Delta * static_cast<double>(Other.N) / static_cast<double>(Combined);
  N = Combined;
  Total += Other.Total;
  if (Other.MinV < MinV)
    MinV = Other.MinV;
  if (Other.MaxV > MaxV)
    MaxV = Other.MaxV;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Series &SeriesSet::getOrCreate(const std::string &Label) {
  for (Series &S : All)
    if (S.Label == Label)
      return S;
  All.push_back(Series{Label, {}, {}});
  return All.back();
}

const Series *SeriesSet::find(const std::string &Label) const {
  for (const Series &S : All)
    if (S.Label == Label)
      return &S;
  return nullptr;
}
