//===- support/RootFinding.cpp --------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/RootFinding.h"

#include <cmath>

using namespace dynfb;

std::optional<RootResult> dynfb::bisect(
    const std::function<double(double)> &F, double Lo, double Hi, double Tol,
    unsigned MaxIter) {
  double FLo = F(Lo);
  double FHi = F(Hi);
  if (FLo == 0.0)
    return RootResult{Lo, 0.0};
  if (FHi == 0.0)
    return RootResult{Hi, 0.0};
  if ((FLo > 0.0) == (FHi > 0.0))
    return std::nullopt;
  for (unsigned I = 0; I < MaxIter; ++I) {
    const double Mid = 0.5 * (Lo + Hi);
    const double FMid = F(Mid);
    if (FMid == 0.0 || Hi - Lo < Tol)
      return RootResult{Mid, std::fabs(FMid)};
    if ((FMid > 0.0) == (FLo > 0.0)) {
      Lo = Mid;
      FLo = FMid;
    } else {
      Hi = Mid;
    }
  }
  const double Mid = 0.5 * (Lo + Hi);
  return RootResult{Mid, std::fabs(F(Mid))};
}

std::optional<RootResult> dynfb::newtonSafeguarded(
    const std::function<double(double)> &F,
    const std::function<double(double)> &DF, double X0, double Lo, double Hi,
    double Tol, unsigned MaxIter) {
  double FLo = F(Lo);
  double FHi = F(Hi);
  if ((FLo > 0.0) == (FHi > 0.0) && FLo != 0.0 && FHi != 0.0)
    return std::nullopt;
  double X = X0;
  if (X < Lo || X > Hi)
    X = 0.5 * (Lo + Hi);
  for (unsigned I = 0; I < MaxIter; ++I) {
    const double FX = F(X);
    if (std::fabs(FX) < Tol)
      return RootResult{X, std::fabs(FX)};
    // Maintain the bracket.
    if ((FX > 0.0) == (FLo > 0.0)) {
      Lo = X;
      FLo = FX;
    } else {
      Hi = X;
    }
    const double D = DF(X);
    double Next = (D != 0.0) ? X - FX / D : 0.5 * (Lo + Hi);
    if (Next <= Lo || Next >= Hi)
      Next = 0.5 * (Lo + Hi);
    if (std::fabs(Next - X) < Tol)
      return RootResult{Next, std::fabs(F(Next))};
    X = Next;
  }
  return RootResult{X, std::fabs(F(X))};
}
