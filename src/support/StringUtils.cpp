//===- support/StringUtils.cpp --------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace dynfb;

std::string dynfb::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  const int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed <= 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string dynfb::trim(const std::string &S) {
  size_t Begin = 0, End = S.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string> dynfb::splitString(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  if (S.empty())
    return Parts;
  size_t Begin = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Parts.push_back(S.substr(Begin, I - Begin));
      Begin = I + 1;
    }
  }
  return Parts;
}

std::string dynfb::formatDouble(double Value, int Decimals) {
  return format("%.*f", Decimals, Value);
}

std::string dynfb::withThousandsSep(uint64_t Value) {
  std::string Digits = format("%llu", static_cast<unsigned long long>(Value));
  std::string Out;
  const size_t Len = Digits.size();
  for (size_t I = 0; I < Len; ++I) {
    if (I != 0 && (Len - I) % 3 == 0)
      Out.push_back(',');
    Out.push_back(Digits[I]);
  }
  return Out;
}

size_t dynfb::editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diag = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      const size_t Sub = Diag + (A[I - 1] != B[J - 1]);
      Diag = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Sub});
    }
  }
  return Row[B.size()];
}

std::string
dynfb::closestMatch(const std::string &Word,
                    const std::vector<std::string> &Candidates) {
  const size_t MaxDistance = std::max<size_t>(2, Word.size() / 3);
  std::string Best;
  size_t BestDistance = MaxDistance + 1;
  for (const std::string &C : Candidates) {
    const size_t D = editDistance(Word, C);
    if (D < BestDistance) {
      BestDistance = D;
      Best = C;
    }
  }
  return Best;
}

std::string dynfb::formatSeconds(double Seconds) {
  if (Seconds < 1e-3)
    return format("%.1f us", Seconds * 1e6);
  if (Seconds < 1.0)
    return format("%.2f ms", Seconds * 1e3);
  return format("%.2f s", Seconds);
}
