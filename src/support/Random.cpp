//===- support/Random.cpp -------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cmath>

using namespace dynfb;

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

uint64_t Rng::next64() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next64();
    if (R >= Threshold)
      return R % Bound;
  }
}

double Rng::gaussian(double Mean, double Sigma) {
  if (HasSpare) {
    HasSpare = false;
    return Mean + Sigma * Spare;
  }
  double U, V, S;
  do {
    U = uniform(-1.0, 1.0);
    V = uniform(-1.0, 1.0);
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  const double Mul = std::sqrt(-2.0 * std::log(S) / S);
  Spare = V * Mul;
  HasSpare = true;
  return Mean + Sigma * U * Mul;
}
