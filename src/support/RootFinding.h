//===- support/RootFinding.h - 1-D root finders ----------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-dimensional root finders used by the theoretical analysis (Section 5
/// of the paper): bisection over a bracketing interval and safeguarded
/// Newton iteration. Both are deterministic and allocation-free.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_ROOTFINDING_H
#define DYNFB_SUPPORT_ROOTFINDING_H

#include <functional>
#include <optional>

namespace dynfb {

/// Result of a root search: the abscissa and the residual |f(x)|.
struct RootResult {
  double X;
  double Residual;
};

/// Finds a root of \p F in [\p Lo, \p Hi] by bisection. Requires
/// F(Lo) and F(Hi) to have opposite signs (or one of them to be zero);
/// returns std::nullopt otherwise.
std::optional<RootResult> bisect(const std::function<double(double)> &F,
                                 double Lo, double Hi, double Tol = 1e-12,
                                 unsigned MaxIter = 200);

/// Safeguarded Newton iteration: starts from \p X0 with derivative \p DF and
/// falls back to bisection on [\p Lo, \p Hi] whenever a step leaves the
/// bracket. Requires a sign change on the bracket.
std::optional<RootResult> newtonSafeguarded(
    const std::function<double(double)> &F,
    const std::function<double(double)> &DF, double X0, double Lo, double Hi,
    double Tol = 1e-12, unsigned MaxIter = 100);

} // namespace dynfb

#endif // DYNFB_SUPPORT_ROOTFINDING_H
