//===- support/BuildInfo.h - Build identity ---------------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The build hash stamped into exported artifacts (JSONL trace headers,
/// BENCH_results.json, cache entries) and printed by every tool's
/// --version. Captured from `git describe --always --dirty` at CMake
/// configure time; "unknown" when the source tree is not a git checkout.
/// Because it is a configure-time snapshot it can go stale between a commit
/// and the next reconfigure -- good enough to invalidate result caches
/// across builds, not a provenance attestation.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SUPPORT_BUILDINFO_H
#define DYNFB_SUPPORT_BUILDINFO_H

namespace dynfb {

/// The build identity, e.g. "b17017e" or "v1.2-4-gdeadbee-dirty".
const char *buildHash();

} // namespace dynfb

#endif // DYNFB_SUPPORT_BUILDINFO_H
