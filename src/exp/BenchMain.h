//===- exp/BenchMain.h - Shared main() of the bench binaries ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one main() behind every standalone bench binary: look up the named
/// experiment, expand its grid under the command-line options, run the jobs
/// sequentially in-process, and render the paper's tables. Keeping the
/// binaries this thin means dynfb-bench and the binaries can never drift --
/// both run the registered experiment definitions.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_EXP_BENCHMAIN_H
#define DYNFB_EXP_BENCHMAIN_H

#include <string>

namespace dynfb::exp {

/// Runs the named registered experiment as a standalone bench binary:
/// parses --scale/--procs/--chunks/--seed (rejecting unknown flags), runs
/// the grid in-process and returns the experiment renderer's exit code.
/// --scale is the absolute workload scale (default: the experiment's
/// DefaultScale), preserving each old binary's flag semantics.
int runBenchMain(const std::string &ExperimentName, int Argc, char **Argv);

} // namespace dynfb::exp

#endif // DYNFB_EXP_BENCHMAIN_H
