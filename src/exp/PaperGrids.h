//===- exp/PaperGrids.h - Execution-time grid experiment --------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's standard execution-time experiment (the shape of Tables 2
/// and 7 and the speedup figures) and its table renderings. Lives in
/// src/exp -- not bench/ -- because it is shared by three surfaces that
/// must print identically: the standalone bench binaries, the registered
/// experiments behind dynfb-bench, and dynfb-run --sweep. All rendering
/// goes through support/TablePrinter.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_EXP_PAPERGRIDS_H
#define DYNFB_EXP_PAPERGRIDS_H

#include "apps/Harness.h"
#include "support/TablePrinter.h"

#include <map>
#include <string>
#include <vector>

namespace dynfb::exp {

/// Execution times of every flavour at every processor count -- the shape
/// of the paper's Tables 2 and 7 -- plus the serial time.
struct TimingGrid {
  double SerialSeconds = 0;
  /// Row label -> (procs -> seconds).
  std::vector<std::pair<std::string, std::map<unsigned, double>>> Rows;
};

/// Runs the standard execution-time experiment: Serial on one processor,
/// each static policy and Dynamic on the paper's processor counts.
TimingGrid runTimingGrid(const apps::App &App,
                         const std::vector<unsigned> &Procs,
                         const fb::FeedbackConfig &Config = {});

/// The "Version | 1 | 2 | ..." header row shared by every
/// version-by-processor-count table (times, speedups, dynfb-run --sweep).
std::vector<std::string>
versionByProcsHeader(const std::vector<unsigned> &Procs);

/// Renders a TimingGrid as the paper's execution-time table.
Table timesTable(const std::string &Title, const TimingGrid &Grid,
                 const std::vector<unsigned> &Procs);

/// Renders the corresponding speedup series (the paper's speedup figures).
Table speedupTable(const std::string &Title, const TimingGrid &Grid,
                   const std::vector<unsigned> &Procs);

/// Speedup series as CSV for plotting.
std::string speedupCsv(const TimingGrid &Grid,
                       const std::vector<unsigned> &Procs);

} // namespace dynfb::exp

#endif // DYNFB_EXP_PAPERGRIDS_H
