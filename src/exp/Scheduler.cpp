//===- exp/Scheduler.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "exp/Scheduler.h"

#include "obs/Json.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dynfb;
using namespace dynfb::exp;

const char *exp::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok:
    return "ok";
  case JobStatus::Failed:
    return "failed";
  case JobStatus::Crashed:
    return "crashed";
  case JobStatus::TimedOut:
    return "timeout";
  }
  DYNFB_UNREACHABLE("covered switch");
}

std::string exp::jobResultToJson(const JobResult &R) {
  std::string Out = R.Ok ? "{\"ok\":true" : "{\"ok\":false";
  Out += ",\"error\":\"";
  Out += obs::jsonEscape(R.Error);
  Out += "\",\"metrics\":{";
  bool First = true;
  for (const Metric &M : R.Metrics) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += obs::jsonEscape(M.Name);
    Out += "\":";
    Out += std::isfinite(M.Value) ? format("%.17g", M.Value)
                                  : std::string("null");
  }
  Out += "}}";
  return Out;
}

bool exp::jobResultFromJson(const std::string &Text, JobResult &Out,
                            std::string &Error) {
  const std::optional<obs::JsonValue> V = obs::parseJson(Text, Error);
  if (!V)
    return false;
  if (V->kind() != obs::JsonValue::Kind::Object) {
    Error = "job result is not a JSON object";
    return false;
  }
  const obs::JsonValue *Ok = V->find("ok");
  Out = JobResult{};
  Out.Ok = Ok && Ok->asBool();
  Out.Error = V->getString("error");
  if (const obs::JsonValue *Metrics = V->find("metrics")) {
    for (const auto &[Name, Value] : Metrics->members())
      Out.add(Name, Value.kind() == obs::JsonValue::Kind::Number
                        ? Value.asNumber()
                        : std::nan(""));
  }
  return true;
}

namespace {

/// One in-flight child process.
struct Worker {
  size_t Job = 0;
  unsigned Attempt = 0;
  pid_t Pid = -1;
  int ReadFd = -1;
  int ErrFd = -1; ///< Child's redirected stderr, kept for crash reports.
  std::chrono::steady_clock::time_point Started;
  std::string Buffer; ///< Drained incrementally so a child never blocks on
                      ///< a full pipe.
  std::string ErrBuffer;
  double TimeoutSeconds = 0; ///< Effective budget for this job (0 = none).
  bool KilledOnTimeout = false;
};

/// Drains whatever is currently readable from \p Fd into \p Into without
/// blocking.
void drainFd(int Fd, std::string &Into) {
  char Buf[4096];
  for (;;) {
    const ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Into.append(Buf, static_cast<size_t>(N));
      continue;
    }
    return; // 0 = EOF (collected after waitpid); <0 = EAGAIN/EINTR.
  }
}

void drain(Worker &W) {
  drainFd(W.ReadFd, W.Buffer);
  drainFd(W.ErrFd, W.ErrBuffer);
}

/// The last (up to) \p MaxLines non-empty-trailing lines of \p Text --
/// what a crash report quotes of the child's stderr.
std::string lastLines(const std::string &Text, size_t MaxLines) {
  std::string Trimmed = Text;
  while (!Trimmed.empty() &&
         (Trimmed.back() == '\n' || Trimmed.back() == '\r'))
    Trimmed.pop_back();
  if (Trimmed.empty())
    return Trimmed;
  size_t Lines = 0, Pos = Trimmed.size();
  while (Pos > 0) {
    const size_t Nl = Trimmed.rfind('\n', Pos - 1);
    if (++Lines == MaxLines || Nl == std::string::npos)
      return Nl == std::string::npos ? Trimmed : Trimmed.substr(Nl + 1);
    Pos = Nl;
  }
  return Trimmed;
}

/// Human-readable signal description ("signal 6 (Aborted)").
std::string describeSignal(int Sig) {
  const char *Name = strsignal(Sig);
  return Name ? format("signal %d (%s)", Sig, Name)
              : format("signal %d", Sig);
}

} // namespace

std::vector<JobOutcome> exp::runJobs(
    size_t NumJobs,
    const std::function<JobResult(size_t Job, unsigned Attempt)> &Run,
    const SchedulerOptions &Opts) {
  std::vector<JobOutcome> Outcomes(NumJobs);
  if (NumJobs == 0)
    return Outcomes;

  unsigned Workers = Opts.Workers;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 4;
  }

  // Launch queue in index order; retries re-enter at the front so a flaky
  // job settles before new work starts (keeps attempt accounting simple and
  // bounds the window in which results are out of order).
  std::deque<std::pair<size_t, unsigned>> Queue; // (job, attempt)
  for (size_t I = 0; I < NumJobs; ++I)
    Queue.emplace_back(I, 0u);

  std::vector<Worker> Active;
  Active.reserve(Workers);

  auto Launch = [&](size_t Job, unsigned Attempt) {
    int Fds[2], EFds[2];
    DYNFB_CHECK(pipe(Fds) == 0, "pipe() failed");
    DYNFB_CHECK(pipe(EFds) == 0, "pipe() failed");
    // Parent ends are non-blocking: the poll loop drains opportunistically.
    int FlagsRc = fcntl(Fds[0], F_SETFL, O_NONBLOCK);
    DYNFB_CHECK(FlagsRc == 0, "fcntl(O_NONBLOCK) failed");
    FlagsRc = fcntl(EFds[0], F_SETFL, O_NONBLOCK);
    DYNFB_CHECK(FlagsRc == 0, "fcntl(O_NONBLOCK) failed");
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t Pid = fork();
    DYNFB_CHECK(Pid >= 0, "fork() failed");
    if (Pid == 0) {
      // Child: run the job, report the result over the pipe, _exit without
      // running atexit handlers (the parent owns shared state). stderr is
      // redirected into the second pipe so a crash report can quote the
      // child's final output (assertion message, DYNFB_CHECK diagnostic).
      close(Fds[0]);
      close(EFds[0]);
      dup2(EFds[1], 2);
      close(EFds[1]);
      JobResult R;
      R = Run(Job, Attempt);
      const std::string Wire = jobResultToJson(R);
      size_t Off = 0;
      while (Off < Wire.size()) {
        const ssize_t N =
            write(Fds[1], Wire.data() + Off, Wire.size() - Off);
        if (N <= 0) {
          if (errno == EINTR)
            continue;
          _exit(3); // Parent vanished; nothing sensible left to do.
        }
        Off += static_cast<size_t>(N);
      }
      close(Fds[1]);
      _exit(0);
    }
    close(Fds[1]);
    close(EFds[1]);
    Worker W;
    W.Job = Job;
    W.Attempt = Attempt;
    W.Pid = Pid;
    W.ReadFd = Fds[0];
    W.ErrFd = EFds[0];
    W.Started = std::chrono::steady_clock::now();
    W.TimeoutSeconds = Opts.TimeoutSeconds;
    if (Opts.TimeoutForJob) {
      const double Override = Opts.TimeoutForJob(Job);
      if (Override > 0)
        W.TimeoutSeconds = Override;
    }
    Active.push_back(std::move(W));
  };

  auto Settle = [&](size_t Job, JobOutcome Outcome, unsigned Attempt) {
    const bool Retryable = Outcome.Status == JobStatus::Crashed ||
                           Outcome.Status == JobStatus::TimedOut;
    if (Retryable && Attempt < Opts.Retries) {
      Queue.emplace_front(Job, Attempt + 1);
      return;
    }
    Outcome.Attempts = Attempt + 1;
    Outcomes[Job] = Outcome;
    if (Opts.OnSettled)
      Opts.OnSettled(Job, Outcomes[Job]);
  };

  while (!Queue.empty() || !Active.empty()) {
    while (!Queue.empty() && Active.size() < Workers) {
      const auto [Job, Attempt] = Queue.front();
      Queue.pop_front();
      Launch(Job, Attempt);
    }

    // Reap any finished children and enforce timeouts.
    bool Progress = false;
    const auto Now = std::chrono::steady_clock::now();
    for (size_t I = 0; I < Active.size();) {
      Worker &W = Active[I];
      drain(W);
      if (W.TimeoutSeconds > 0 && !W.KilledOnTimeout &&
          std::chrono::duration<double>(Now - W.Started).count() >
              W.TimeoutSeconds) {
        kill(W.Pid, SIGKILL);
        W.KilledOnTimeout = true;
      }
      int Status = 0;
      const pid_t Rc = waitpid(W.Pid, &Status, WNOHANG);
      if (Rc == 0) {
        ++I;
        continue;
      }
      Progress = true;
      drain(W);
      close(W.ReadFd);
      close(W.ErrFd);
      JobOutcome Outcome;
      Outcome.WallSeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        W.Started)
              .count();
      const std::string Tag = Opts.JobTag ? Opts.JobTag(W.Job) : "";
      const std::string TagSuffix = Tag.empty() ? "" : " [" + Tag + "]";
      if (W.KilledOnTimeout) {
        Outcome.Status = JobStatus::TimedOut;
        Outcome.Result.Ok = false;
        Outcome.Result.Error =
            format("timed out after %.1f s", W.TimeoutSeconds) + TagSuffix;
      } else if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0) {
        std::string Error;
        if (jobResultFromJson(W.Buffer, Outcome.Result, Error)) {
          Outcome.Status =
              Outcome.Result.Ok ? JobStatus::Ok : JobStatus::Failed;
        } else {
          Outcome.Status = JobStatus::Crashed;
          Outcome.Result.Ok = false;
          Outcome.Result.Error = "unreadable worker result: " + Error;
        }
      } else {
        Outcome.Status = JobStatus::Crashed;
        Outcome.Result.Ok = false;
        Outcome.Result.Error =
            (WIFSIGNALED(Status)
                 ? "worker killed by " + describeSignal(WTERMSIG(Status))
                 : format("worker exited with status %d",
                          WIFEXITED(Status) ? WEXITSTATUS(Status) : -1)) +
            TagSuffix;
        const std::string Stderr = lastLines(W.ErrBuffer, 20);
        if (!Stderr.empty())
          Outcome.Result.Error += "; last stderr output:\n" + Stderr;
      }
      Settle(W.Job, std::move(Outcome), W.Attempt);
      Active.erase(Active.begin() + static_cast<ptrdiff_t>(I));
    }
    if (!Progress && !Active.empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Outcomes;
}
