//===- exp/Experiments.cpp - Built-in experiment registrations ------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// The registered experiments: the paper's Barnes-Hut and Water
// execution-time and locking tables (Tables 2/3/7/8 with Figures 4/6), the
// version-space product sweep and the perturbation-adaptivity sweep. Each
// registration splits the old bench binary in two: MakeJobs/RunJob expand
// the parameter grid into independent, cacheable simulator runs, and
// Render reproduces the binary's human-readable output -- byte for byte --
// from the grid's results. The thin bench mains (bench/bench_table2_... et
// al.) and the dynfb-bench driver both work off these definitions.
//
//===----------------------------------------------------------------------===//

#include "exp/Experiment.h"
#include "exp/PaperGrids.h"

#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/kvserve/KvServeApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"
#include "fb/Sampling.h"
#include "perturb/Engine.h"
#include "perturb/Traffic.h"
#include "replay/Explorer.h"
#include "rt/MachineModel.h"
#include "sim/Throughput.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::exp;
using namespace dynfb::xform;

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

std::optional<PolicyKind> parsePolicyName(const std::string &Name) {
  for (PolicyKind P : AllPolicies)
    if (Name == policyName(P))
      return P;
  return std::nullopt;
}

JobResult jobError(const std::string &Msg) {
  JobResult R;
  R.Ok = false;
  R.Error = Msg;
  return R;
}

void printTable(const Table &T) {
  std::fputs(T.renderText().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Default virtual-to-real compute scale of native-backend jobs. Much
/// larger than dynfb-run's interactive 0.0005 default on purpose: a real
/// acquire/release pair costs ~300-400 ns on a contended cache line
/// (including the acquire path's two clock reads) where the simulator
/// prices ~4.5 virtual us, so at 0.08 a virtual nanosecond of compute and
/// a lock operation shrink by roughly the same factor and the native
/// compute-to-locking ratio tracks the simulated one -- the property the
/// backend_concordance gate measures. Smaller values make native runs
/// lock-dominated and invert policy orderings the simulator prices by
/// serialization instead.
constexpr double NativeJobTimeScale = 0.08;

/// Wall-clock repeats per native job; the reported metric is the median
/// (real time is noisy where virtual time is exact).
constexpr unsigned NativeJobRepeats = 3;

/// Base config every job carries: the identity axes of the grid, including
/// the machine model and its full parameter set (satellite of the machine
/// refactor: results on different machines -- or the same machine with
/// tweaked parameters -- never collide in the cache or a result file).
/// Native-backend jobs additionally carry the backend and its timescale --
/// and pin the machine to dash-flat, because a real thread team ignores
/// MachineModel pricing and a native result must never claim a machine it
/// did not price. Sim configs carry no backend key, so their cache keys and
/// the checked-in baselines are byte-identical to schema v2.
JobConfig baseConfig(const std::string &App, const RunOptions &Opts) {
  JobConfig C;
  C.set("app", App);
  C.setDouble("scale", Opts.Scale);
  C.setInt("seed", static_cast<int64_t>(Opts.Seed));
  const bool Native = Opts.wantsNativeBackend();
  const std::string Machine =
      Native || Opts.Machine.empty() ? "dash-flat" : Opts.Machine;
  C.set("machine", Machine);
  if (const std::unique_ptr<rt::MachineModel> M =
          rt::createMachineModel(Machine))
    C.set("machine_params", M->paramsString());
  // Unknown machine names reach RunJob and fail there, with a diagnostic.
  if (Native) {
    C.set("backend", "native");
    C.setDouble("timescale", NativeJobTimeScale);
  }
  return C;
}

bool configIsNative(const JobConfig &Config) {
  return Config.getString("backend", "sim") == "native";
}

/// Feedback budgets for native runs: real milliseconds, not the
/// simulator's virtual-seconds defaults (a native section executes in
/// milliseconds of wall clock; the sim default's 100 virtual seconds of
/// production would never resample). Sampling spans section executions
/// for the same reason the version-space experiment's does: native
/// occurrences last tens of milliseconds, and re-sampling every one would
/// drown the production phases the paper's guarantee relies on.
fb::FeedbackConfig nativeFeedbackConfig() {
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = rt::millisToNanos(1);
  Config.TargetProductionNanos = rt::millisToNanos(50);
  Config.SpanSectionExecutions = true;
  return Config;
}

/// One native-backend execution of \p Spec; wall-clock seconds.
fb::RunResult runNativeOnce(const App &TheApp, unsigned Procs,
                            const VersionSpec &Spec,
                            const rt::MachineModel &Model,
                            double TimeScale) {
  return runApp(TheApp, Procs, Spec, Model, nativeFeedbackConfig(), nullptr,
                nullptr, nullptr, BackendOptions::native(TimeScale));
}

/// Median wall-clock seconds of NativeJobRepeats native runs of \p Spec.
double nativeMedianSeconds(const App &TheApp, unsigned Procs,
                           const VersionSpec &Spec,
                           const rt::MachineModel &Model, double TimeScale) {
  std::vector<double> Samples;
  for (unsigned R = 0; R < NativeJobRepeats; ++R)
    Samples.push_back(rt::nanosToSeconds(
        runNativeOnce(TheApp, Procs, Spec, Model, TimeScale).TotalNanos));
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

/// Builds the machine model a job config names, with its stamped parameter
/// set applied (the round trip that makes parameter overrides cacheable).
std::unique_ptr<rt::MachineModel> machineFromConfig(const JobConfig &Config,
                                                    std::string &Error) {
  const std::string Name = Config.getString("machine", "dash-flat");
  std::unique_ptr<rt::MachineModel> M = rt::createMachineModel(Name);
  if (!M) {
    Error = "unknown machine model '" + Name + "'";
    return nullptr;
  }
  const std::string Params = Config.getString("machine_params");
  if (!Params.empty() && !rt::applyCostOverrides(*M, Params, Error))
    return nullptr;
  return M;
}

//===----------------------------------------------------------------------===//
// Tables 2/7 with Figures 4/6: the execution-time grids
//===----------------------------------------------------------------------===//

/// Grid: serial at one processor, each static policy and Dynamic at the
/// paper's processor counts. One job per cell.
std::vector<JobConfig> makeTimingGridJobs(const std::string &App,
                                          const RunOptions &Opts) {
  std::vector<JobConfig> Jobs;
  {
    JobConfig C = baseConfig(App, Opts);
    C.set("flavour", "serial");
    C.setInt("procs", 1);
    Jobs.push_back(std::move(C));
  }
  for (PolicyKind P : AllPolicies)
    for (unsigned N : PaperProcCounts) {
      JobConfig C = baseConfig(App, Opts);
      C.set("flavour", "fixed");
      C.set("policy", policyName(P));
      C.setInt("procs", N);
      Jobs.push_back(std::move(C));
    }
  for (unsigned N : PaperProcCounts) {
    JobConfig C = baseConfig(App, Opts);
    C.set("flavour", "dynamic");
    C.setInt("procs", N);
    Jobs.push_back(std::move(C));
  }
  return Jobs;
}

std::unique_ptr<App> makeGridApp(const JobConfig &Config) {
  const double Scale = Config.getDouble("scale", 1.0);
  if (Config.getString("app") == "barnes_hut") {
    bh::BarnesHutConfig C;
    C.scale(Scale);
    return std::make_unique<bh::BarnesHutApp>(C);
  }
  if (Config.getString("app") == "water") {
    water::WaterConfig C;
    C.scale(Scale);
    return std::make_unique<water::WaterApp>(C);
  }
  if (Config.getString("app") == "string") {
    string_tomo::StringConfig C;
    C.scale(Scale);
    return std::make_unique<string_tomo::StringApp>(C);
  }
  if (Config.getString("app") == "kvserve") {
    kvserve::KvServeConfig C;
    C.scale(Scale);
    return std::make_unique<kvserve::KvServeApp>(C);
  }
  return nullptr;
}

JobResult runTimingGridJob(const JobConfig &Config) {
  const std::unique_ptr<App> TheApp = makeGridApp(Config);
  if (!TheApp)
    return jobError("unknown app '" + Config.getString("app") + "'");
  const unsigned Procs = static_cast<unsigned>(Config.getInt("procs", 1));
  const std::string Flavour = Config.getString("flavour");
  VersionSpec Spec;
  if (Flavour == "serial")
    Spec = VersionSpec::serial();
  else if (Flavour == "dynamic")
    Spec = VersionSpec::dynamicFeedback();
  else if (Flavour == "fixed") {
    const std::optional<PolicyKind> P =
        parsePolicyName(Config.getString("policy"));
    if (!P)
      return jobError("unknown policy '" + Config.getString("policy") + "'");
    Spec = VersionSpec::fixed(*P);
  } else
    return jobError("unknown flavour '" + Flavour + "'");

  std::string Error;
  const std::unique_ptr<rt::MachineModel> Model =
      machineFromConfig(Config, Error);
  if (!Model)
    return jobError(Error);

  JobResult R;
  R.add("seconds",
        configIsNative(Config)
            ? nativeMedianSeconds(
                  *TheApp, Procs, Spec, *Model,
                  Config.getDouble("timescale", NativeJobTimeScale))
            : runAppSeconds(*TheApp, Procs, Spec, *Model));
  return R;
}

/// Reassembles the TimingGrid from the grid's results (same order as
/// makeTimingGridJobs).
TimingGrid gridFromResults(const std::vector<JobResult> &Results) {
  TimingGrid Grid;
  size_t I = 0;
  Grid.SerialSeconds = Results[I++].metric("seconds");
  for (PolicyKind P : AllPolicies) {
    std::map<unsigned, double> Row;
    for (unsigned N : PaperProcCounts)
      Row[N] = Results[I++].metric("seconds");
    Grid.Rows.emplace_back(policyName(P), std::move(Row));
  }
  std::map<unsigned, double> Dyn;
  for (unsigned N : PaperProcCounts)
    Dyn[N] = Results[I++].metric("seconds");
  Grid.Rows.emplace_back("Dynamic", std::move(Dyn));
  return Grid;
}

Experiment makeTable2BarnesHut() {
  Experiment E;
  E.Name = "table2_fig4_barnes_hut";
  E.Suite = "paper";
  E.Description =
      "Table 2 execution times + Figure 4 speedups for Barnes-Hut";
  E.MetricNames = {"seconds"};
  E.SupportsNativeBackend = true;
  E.MakeJobs = [](const RunOptions &Opts) {
    return makeTimingGridJobs("barnes_hut", Opts);
  };
  E.RunJob = runTimingGridJob;
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    bh::BarnesHutConfig Config;
    Config.scale(Opts.Scale);
    std::printf("== Barnes-Hut: %u bodies ==\n", Config.NumBodies);
    bh::BarnesHutApp App(Config);
    std::printf("(workload: %llu interactions per FORCES execution)\n\n",
                static_cast<unsigned long long>(App.totalInteractions()));

    const TimingGrid Grid = gridFromResults(Results);
    printTable(timesTable("Table 2: Execution Times for Barnes-Hut (seconds)",
                          Grid, PaperProcCounts));
    printTable(speedupTable("Figure 4: Speedups for Barnes-Hut", Grid,
                            PaperProcCounts));
    std::printf("CSV [fig4_speedups]:\n%s\n",
                speedupCsv(Grid, PaperProcCounts).c_str());
    return 0;
  };
  return E;
}

Experiment makeTable7Water() {
  Experiment E;
  E.Name = "table7_fig6_water";
  E.Suite = "paper";
  E.Description = "Table 7 execution times + Figure 6 speedups for Water";
  E.MetricNames = {"seconds"};
  E.SupportsNativeBackend = true;
  E.MakeJobs = [](const RunOptions &Opts) {
    return makeTimingGridJobs("water", Opts);
  };
  E.RunJob = runTimingGridJob;
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    water::WaterConfig Config;
    Config.scale(Opts.Scale);
    std::printf("== Water: %u molecules, %u timesteps ==\n\n",
                Config.NumMolecules, Config.Timesteps);

    const TimingGrid Grid = gridFromResults(Results);
    printTable(timesTable("Table 7: Execution Times for Water (seconds)",
                          Grid, PaperProcCounts));
    printTable(
        speedupTable("Figure 6: Speedups for Water", Grid, PaperProcCounts));
    std::printf("CSV [fig6_speedups]:\n%s\n",
                speedupCsv(Grid, PaperProcCounts).c_str());
    std::printf("Paper reference (seconds): Serial 165.8; Original 184.4 -> "
                "19.87; Bounded 175.8 -> 19.5; Aggressive 165.3 -> 73.54 "
                "(fails to scale); Dynamic 165.4 -> 20.54.\n");
    return 0;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Tables 3/8: the locking-overhead tables
//===----------------------------------------------------------------------===//

/// One job per table row: (flavour/policy, procs), metrics pairs +
/// lock_seconds.
JobConfig lockingJob(const std::string &App, const RunOptions &Opts,
                     const std::string &Flavour, const std::string &Policy,
                     unsigned Procs) {
  JobConfig C = baseConfig(App, Opts);
  C.set("flavour", Flavour);
  if (!Policy.empty())
    C.set("policy", Policy);
  C.setInt("procs", Procs);
  return C;
}

JobResult runLockingJob(const JobConfig &Config) {
  const std::unique_ptr<App> TheApp = makeGridApp(Config);
  if (!TheApp)
    return jobError("unknown app '" + Config.getString("app") + "'");
  const unsigned Procs = static_cast<unsigned>(Config.getInt("procs", 8));
  std::string Error;
  const std::unique_ptr<rt::MachineModel> Model =
      machineFromConfig(Config, Error);
  if (!Model)
    return jobError(Error);
  VersionSpec Spec;
  if (Config.getString("flavour") == "dynamic") {
    Spec = VersionSpec::dynamicFeedback();
  } else {
    const std::optional<PolicyKind> P =
        parsePolicyName(Config.getString("policy"));
    if (!P)
      return jobError("unknown policy '" + Config.getString("policy") + "'");
    Spec = VersionSpec::fixed(*P);
  }
  const fb::RunResult R =
      configIsNative(Config)
          ? runNativeOnce(*TheApp, Procs, Spec, *Model,
                          Config.getDouble("timescale", NativeJobTimeScale))
          : runApp(*TheApp, Procs, Spec, *Model);
  JobResult Out;
  Out.add("pairs", static_cast<double>(R.ParallelStats.AcquireReleasePairs));
  Out.add("lock_seconds", rt::nanosToSeconds(R.ParallelStats.LockOpNanos));
  return Out;
}

/// A locking-table row from one job's metrics.
std::vector<std::string> lockingRow(const std::string &Label,
                                    const JobResult &R) {
  return {Label,
          withThousandsSep(static_cast<uint64_t>(R.metric("pairs"))),
          formatDouble(R.metric("lock_seconds"), 3)};
}

Experiment makeTable3BhLocking() {
  Experiment E;
  E.Name = "table3_bh_locking";
  E.Suite = "paper";
  E.Description = "Table 3 locking overhead for Barnes-Hut";
  E.MetricNames = {"pairs", "lock_seconds"};
  E.SupportsNativeBackend = true;
  E.MakeJobs = [](const RunOptions &Opts) {
    std::vector<JobConfig> Jobs;
    for (PolicyKind P : AllPolicies)
      Jobs.push_back(lockingJob("barnes_hut", Opts, "fixed", policyName(P),
                                8));
    Jobs.push_back(lockingJob("barnes_hut", Opts, "dynamic", "", 8));
    return Jobs;
  };
  E.RunJob = runLockingJob;
  E.Render = [](const RunOptions &,
                const std::vector<JobResult> &Results) {
    Table T("Table 3: Locking Overhead for Barnes-Hut");
    T.setHeader({"Version", "Executed Acquire/Release Pairs",
                 "Absolute Locking Overhead (seconds)"});
    size_t I = 0;
    for (PolicyKind P : AllPolicies)
      T.addRow(lockingRow(policyName(P), Results[I++]));
    T.addRow(lockingRow("Dynamic", Results[I++]));
    printTable(T);
    std::printf("Paper reference: Original 15,471,xxx pairs; Bounded "
                "7,744,033; Aggressive 49,152; Dynamic 72,5xx (8 procs).\n");
    return 0;
  };
  return E;
}

Experiment makeTable8WaterLocking() {
  Experiment E;
  E.Name = "table8_water_locking";
  E.Suite = "paper";
  E.Description = "Table 8 locking overhead for Water";
  E.MetricNames = {"pairs", "lock_seconds"};
  E.SupportsNativeBackend = true;
  E.MakeJobs = [](const RunOptions &Opts) {
    std::vector<JobConfig> Jobs;
    for (PolicyKind P : AllPolicies)
      Jobs.push_back(lockingJob("water", Opts, "fixed", policyName(P), 8));
    for (unsigned Procs : {8u, 1u})
      Jobs.push_back(lockingJob("water", Opts, "dynamic", "", Procs));
    return Jobs;
  };
  E.RunJob = runLockingJob;
  E.Render = [](const RunOptions &,
                const std::vector<JobResult> &Results) {
    Table T("Table 8: Locking Overhead for Water");
    T.setHeader({"Version", "Executed Acquire/Release Pairs",
                 "Absolute Locking Overhead (seconds)"});
    size_t I = 0;
    for (PolicyKind P : AllPolicies)
      T.addRow(lockingRow(policyName(P), Results[I++]));
    for (unsigned Procs : {8u, 1u})
      T.addRow(lockingRow(format("Dynamic (%u procs)", Procs),
                          Results[I++]));
    printTable(T);
    std::printf("Paper reference: Original 4,200,xxx pairs; Bounded "
                "2,099,200; Aggressive 1,577,98x; Dynamic (8p) close to "
                "Bounded, Dynamic (1p) close to Aggressive.\n");
    return 0;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Version-space product sweep (extension experiment)
//===----------------------------------------------------------------------===//

fb::FeedbackConfig spanningConfig() {
  // Sampling spans section executions and the chosen version persists
  // across them: with a 9-version space, re-sampling every occurrence
  // would dwarf the production phases the paper's guarantee relies on.
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = rt::millisToNanos(10);
  Config.TargetProductionNanos = rt::secondsToNanos(100.0);
  Config.SpanSectionExecutions = true;
  return Config;
}

/// Builds the version-space app of one job. Water runs at 0.25x and 48
/// timesteps, Barnes-Hut at 0.125x and 16 FORCES executions -- enough
/// production phases to amortize sampling the 9-version space (the paper's
/// Section 5 tradeoff).
std::unique_ptr<App> makeSpaceApp(const JobConfig &Config,
                                  const VersionSpace &Space) {
  const double Scale = Config.getDouble("scale", 1.0);
  if (Config.getString("app") == "water") {
    water::WaterConfig C;
    C.scale(0.25 * Scale);
    C.Timesteps = 48;
    return std::make_unique<water::WaterApp>(C, Space);
  }
  if (Config.getString("app") == "barnes_hut") {
    bh::BarnesHutConfig C;
    C.scale(0.125 * Scale);
    C.ForcesExecutions = 16;
    return std::make_unique<bh::BarnesHutApp>(C, Space);
  }
  return nullptr;
}

JobResult runSpaceJob(const JobConfig &Config) {
  std::string Error;
  const std::string Chunks = Config.getString("chunks", "8,32");
  const bool Product = Config.getString("space") == "product";
  std::optional<VersionSpace> Space =
      Product ? VersionSpace::parse("sync,sched", Chunks, Error)
              : std::optional<VersionSpace>(VersionSpace());
  if (!Space)
    return jobError(Error);
  const std::unique_ptr<App> TheApp =
      Config.getString("space") == "default"
          ? makeSpaceApp(Config, VersionSpace())
          : makeSpaceApp(Config, *Space);
  if (!TheApp)
    return jobError("unknown app '" + Config.getString("app") + "'");
  const unsigned Procs = static_cast<unsigned>(Config.getInt("procs", 8));
  std::string MachineError;
  const std::unique_ptr<rt::MachineModel> Model =
      machineFromConfig(Config, MachineError);
  if (!Model)
    return jobError(MachineError);

  JobResult Out;
  if (Config.getString("flavour") == "fixed") {
    const std::string Version = Config.getString("version");
    for (const VersionDescriptor &D : Space->descriptors())
      if (D.name() == Version) {
        Out.add("seconds",
                runAppSeconds(*TheApp, Procs, VersionSpec::fixed(D), *Model));
        return Out;
      }
    return jobError("version '" + Version + "' not in the space");
  }
  const fb::RunResult Dyn = runApp(*TheApp, Procs,
                                   VersionSpec::dynamicFeedback(), *Model,
                                   spanningConfig());
  unsigned Sampled = 0, Phases = 0;
  for (const fb::SectionExecutionTrace &Trace : Dyn.Occurrences) {
    Sampled += Trace.SampledIntervals;
    Phases += Trace.SamplingPhases;
  }
  Out.add("seconds", rt::nanosToSeconds(Dyn.TotalNanos));
  Out.add("sampled_intervals", Sampled);
  Out.add("sampling_phases", Phases);
  return Out;
}

Experiment makeVersionSpace() {
  Experiment E;
  E.Name = "version_space";
  E.Suite = "extension";
  E.Description =
      "dynamic feedback over the 3x3 sync-by-scheduling version space";
  E.MetricNames = {"seconds", "sampled_intervals", "sampling_phases"};
  E.MakeJobs = [](const RunOptions &Opts) {
    const std::string Chunks = Opts.Chunks.empty() ? "8,32" : Opts.Chunks;
    std::string Error;
    const std::optional<VersionSpace> Space =
        VersionSpace::parse("sync,sched", Chunks, Error);
    std::vector<JobConfig> Jobs;
    if (!Space) // Parse errors surface when the job runs.
      return Jobs;
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    for (const char *App : {"water", "barnes_hut"}) {
      for (const VersionDescriptor &D : Space->descriptors()) {
        JobConfig C = baseConfig(App, Opts);
        C.set("space", "product");
        C.set("chunks", Chunks);
        C.set("flavour", "fixed");
        C.set("version", D.name());
        C.setInt("procs", Procs);
        Jobs.push_back(std::move(C));
      }
      JobConfig C = baseConfig(App, Opts);
      C.set("space", "product");
      C.set("chunks", Chunks);
      C.set("flavour", "dynamic");
      C.setInt("procs", Procs);
      Jobs.push_back(std::move(C));
    }
    // Sampling-cost reference: the default 3-version space, same workload.
    JobConfig C = baseConfig("water", Opts);
    C.set("space", "default");
    C.set("flavour", "dynamic");
    C.setInt("procs", Procs);
    Jobs.push_back(std::move(C));
    return Jobs;
  };
  E.RunJob = runSpaceJob;
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    const std::string Chunks = Opts.Chunks.empty() ? "8,32" : Opts.Chunks;
    std::string Error;
    const std::optional<VersionSpace> Space =
        VersionSpace::parse("sync,sched", Chunks, Error);
    if (!Space) {
      std::fprintf(stderr, "bench_version_space: %s\n", Error.c_str());
      return 1;
    }
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    std::printf("== Version spaces: %u versions (%zu policies x %zu "
                "schedulings), %u processors ==\n\n",
                static_cast<unsigned>(Space->size()),
                Space->policies().size(), Space->scheds().size(), Procs);

    struct SpaceSummary {
      std::string BestName;
      double BestSeconds = 0;
      double DynamicSeconds = 0;
    };
    size_t I = 0;
    std::map<std::string, SpaceSummary> Summaries;
    for (const char *AppName : {"water", "barnes_hut"}) {
      Table T(format("%s over the %u-version space (seconds)",
                     AppName == std::string("water") ? "Water" : "Barnes-Hut",
                     static_cast<unsigned>(Space->size())));
      T.setHeader({"Version", "sync", "sched", "Seconds", "vs best"});

      SpaceSummary &Sum = Summaries[AppName];
      const size_t FixedBase = I;
      for (const VersionDescriptor &D : Space->descriptors()) {
        const double Seconds = Results[I++].metric("seconds");
        if (Sum.BestName.empty() || Seconds < Sum.BestSeconds) {
          Sum.BestName = D.name();
          Sum.BestSeconds = Seconds;
        }
      }
      for (size_t K = 0; K < Space->size(); ++K) {
        const VersionDescriptor &D = Space->descriptors()[K];
        const double Seconds = Results[FixedBase + K].metric("seconds");
        T.addRow({D.name(), policyName(D.Policy), D.Sched.name(),
                  formatDouble(Seconds, 2),
                  formatDouble(Seconds / Sum.BestSeconds, 2)});
      }

      const JobResult &Dyn = Results[I++];
      Sum.DynamicSeconds = Dyn.metric("seconds");
      T.addRow({"Dynamic (feedback)", "-", "-",
                formatDouble(Sum.DynamicSeconds, 2),
                formatDouble(Sum.DynamicSeconds / Sum.BestSeconds, 2)});
      printTable(T);

      std::printf("  best fixed version: %s (%.2f s); dynamic feedback "
                  "%.2f s (%.1f%% over best), %u sampled intervals in %u "
                  "phases\n\n",
                  Sum.BestName.c_str(), Sum.BestSeconds, Sum.DynamicSeconds,
                  100.0 * (Sum.DynamicSeconds / Sum.BestSeconds - 1.0),
                  static_cast<unsigned>(Dyn.metric("sampled_intervals")),
                  static_cast<unsigned>(Dyn.metric("sampling_phases")));
    }

    const double SmallSeconds = Results[I++].metric("seconds");
    std::printf("sampling cost vs space size (Water): |space|=3 dynamic "
                "%.2f s, |space|=%u dynamic %.2f s\n",
                SmallSeconds, static_cast<unsigned>(Space->size()),
                Summaries["water"].DynamicSeconds);

    const bool WaterOk = Summaries["water"].DynamicSeconds <=
                         1.10 * Summaries["water"].BestSeconds;
    const bool BhOk = Summaries["barnes_hut"].DynamicSeconds <=
                      1.10 * Summaries["barnes_hut"].BestSeconds;
    std::printf("dynamic feedback within 10%% of best fixed version: water "
                "%s, barnes_hut %s\n",
                WaterOk ? "yes" : "NO", BhOk ? "yes" : "NO");
    return WaterOk && BhOk ? 0 : 1;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Sub-linear version search (extension experiment)
//===----------------------------------------------------------------------===//

/// The search workload: Water at 1/8 size but 4x the timesteps of the
/// version_space experiment. Small occurrences keep the sub-second sampling
/// slices of the partial strategies meaningful (an interval can never end
/// mid-occurrence, so occurrence cost is the slice granularity floor), and
/// the long timestep run gives every strategy the same production runway
/// after its search concludes.
std::unique_ptr<App> makeSearchApp(const JobConfig &Config,
                                   const VersionSpace &Space) {
  water::WaterConfig C;
  C.scale(0.125 * Config.getDouble("scale", 1.0));
  C.Timesteps = 192;
  return std::make_unique<water::WaterApp>(C, Space);
}

/// The feedback configuration of the search experiment: spanning phases
/// with sampling intervals long enough (1s) that a half-length or shorter
/// partial-sampling slice still covers several occurrences.
fb::FeedbackConfig searchConfig() {
  fb::FeedbackConfig Config = spanningConfig();
  Config.TargetSamplingNanos = rt::secondsToNanos(1.0);
  // 0.4 rather than the 0.5 default: interval overshoot at occurrence
  // boundaries is charged to the strategy, so the nominal budget leaves
  // headroom under the 50% gate.
  Config.SearchBudgetFraction = 0.4;
  return Config;
}

JobResult runVersionSearchJob(const JobConfig &Config) {
  std::string Error;
  const std::string Chunks = Config.getString("chunks", "8,fac,wfac,afac");
  const std::optional<VersionSpace> Space =
      VersionSpace::parse("sync,sched", Chunks, Error);
  if (!Space)
    return jobError(Error);
  const std::unique_ptr<App> TheApp = makeSearchApp(Config, *Space);
  const unsigned Procs = static_cast<unsigned>(Config.getInt("procs", 8));
  std::string MachineError;
  const std::unique_ptr<rt::MachineModel> Model =
      machineFromConfig(Config, MachineError);
  if (!Model)
    return jobError(MachineError);

  fb::FeedbackConfig FC = searchConfig();
  const std::string SamplerName = Config.getString("sampler", "exhaustive");
  const std::optional<fb::SamplerKind> Sampler =
      fb::parseSamplerName(SamplerName);
  if (!Sampler)
    return jobError("unknown sampler '" + SamplerName + "'");
  FC.Sampler = *Sampler;

  RunObservation Obs;
  const fb::RunResult Dyn =
      runApp(*TheApp, Procs, VersionSpec::dynamicFeedback(), *Model, FC,
             nullptr, nullptr, &Obs);

  double SamplingSeconds = 0;
  unsigned Sampled = 0, Prunes = 0, Promotes = 0;
  for (const fb::SectionExecutionTrace &Trace : Dyn.Occurrences) {
    SamplingSeconds += rt::nanosToSeconds(Trace.SampledNanos);
    Sampled += Trace.SampledIntervals;
    Prunes += Trace.Prunes;
    Promotes += Trace.Promotes;
  }
  // Decision-quality metric: the whole run's lock+wait+sched overhead
  // ratio. Production dominates the run, so this is in effect the true
  // overhead of the versions the strategy chose -- a strategy that saved
  // sampling by picking worse versions pays here, and one that picked the
  // same versions converges to the same ratio regardless of how its
  // sampled estimates were sliced.
  const double RunOverhead = Dyn.ParallelStats.totalOverhead();
  unsigned Switches = 0;
  for (const obs::DecisionEvent &E : Obs.Log.events())
    if (E.Kind == obs::DecisionKind::Switch)
      ++Switches;

  JobResult Out;
  Out.add("seconds", rt::nanosToSeconds(Dyn.TotalNanos));
  Out.add("run_overhead", RunOverhead);
  Out.add("sampling_seconds", SamplingSeconds);
  Out.add("sampled_intervals", Sampled);
  Out.add("switches", Switches);
  Out.add("prunes", Prunes);
  Out.add("promotes", Promotes);
  return Out;
}

Experiment makeVersionSearch() {
  Experiment E;
  E.Name = "version_search";
  E.Suite = "extension";
  E.Description = "sub-linear version search: halving and ucb vs exhaustive "
                  "sampling over the 3x5 sync-by-scheduling space";
  E.MetricNames = {"seconds",           "run_overhead", "sampling_seconds",
                   "sampled_intervals", "switches",     "prunes",
                   "promotes"};
  E.MakeJobs = [](const RunOptions &Opts) {
    const std::string Chunks =
        Opts.Chunks.empty() ? "8,fac,wfac,afac" : Opts.Chunks;
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    std::vector<JobConfig> Jobs;
    for (const char *Sampler : {"exhaustive", "halving", "ucb"}) {
      JobConfig C = baseConfig("water", Opts);
      C.set("chunks", Chunks);
      C.set("sampler", Sampler);
      C.setInt("procs", Procs);
      Jobs.push_back(std::move(C));
    }
    return Jobs;
  };
  E.RunJob = runVersionSearchJob;
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    const std::string Chunks =
        Opts.Chunks.empty() ? "8,fac,wfac,afac" : Opts.Chunks;
    std::string Error;
    const std::optional<VersionSpace> Space =
        VersionSpace::parse("sync,sched", Chunks, Error);
    if (!Space) {
      std::fprintf(stderr, "bench_version_search: %s\n", Error.c_str());
      return 1;
    }
    if (Results.size() < 3) {
      std::fprintf(stderr, "bench_version_search: incomplete results\n");
      return 1;
    }
    static const char *const Samplers[] = {"exhaustive", "halving", "ucb"};
    const JobResult &Ex = Results[0];
    std::printf("== Sub-linear version search: %u versions (%zu policies x "
                "%zu schedulings), Water, spanning feedback ==\n\n",
                static_cast<unsigned>(Space->size()),
                Space->policies().size(), Space->scheds().size());
    Table T("sampling strategies (cost measured in effective sampling "
            "seconds)");
    T.setHeader({"sampler", "seconds", "run overhead", "sampling s",
                 "intervals", "prunes", "promotes", "cost vs exhaustive"});
    for (size_t I = 0; I < 3; ++I) {
      const JobResult &R = Results[I];
      T.addRow({Samplers[I], formatDouble(R.metric("seconds"), 2),
                formatDouble(R.metric("run_overhead"), 4),
                formatDouble(R.metric("sampling_seconds"), 3),
                format("%u",
                       static_cast<unsigned>(R.metric("sampled_intervals"))),
                format("%u", static_cast<unsigned>(R.metric("prunes"))),
                format("%u", static_cast<unsigned>(R.metric("promotes"))),
                formatDouble(R.metric("sampling_seconds") /
                                 Ex.metric("sampling_seconds"),
                             2)});
    }
    printTable(T);

    bool AllOk = true;
    for (size_t I = 1; I < 3; ++I) {
      const JobResult &R = Results[I];
      const bool QualityOk = R.metric("run_overhead") <=
                             1.10 * Ex.metric("run_overhead") + 1e-12;
      const bool CostOk = R.metric("sampling_seconds") <=
                          0.50 * Ex.metric("sampling_seconds");
      std::printf("%s: chosen-version overhead within 10%% of exhaustive: "
                  "%s; sampling cost at most 50%%: %s\n",
                  Samplers[I], QualityOk ? "yes" : "NO",
                  CostOk ? "yes" : "NO");
      AllOk = AllOk && QualityOk && CostOk;
    }
    std::printf("gate: sub-linear search matches exhaustive decision "
                "quality at half the sampling cost: %s\n",
                AllOk ? "PASS" : "FAIL");
    return AllOk ? 0 : 1;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Perturbation adaptivity sweep (robustness experiment)
//===----------------------------------------------------------------------===//

struct FaultCase {
  const char *Name;
  const char *Spec; ///< Empty = pristine machine.
};

const FaultCase FaultCases[] = {
    {"pristine", ""},
    {"processor slowdown", "slowdown@1s-2.5s:factor=4:proc=0"},
    {"lock-hold spike", "lockhold@1s-2.5s:extra=20us"},
    {"contention burst", "contend@1s-2.5s:extra=200us"},
    {"timer noise", "timernoise@0s-inf:amp=5us"},
    {"workload phase shift", "phaseshift@1.5s-inf:factor=0.3"},
};

/// The paper's dynamic configuration, adapted to this short run: spanning
/// intervals (the sections are much shorter than a production interval)
/// and a 1 s production budget so the controller resamples a few times.
fb::FeedbackConfig perturbPaperConfig() {
  fb::FeedbackConfig Config;
  Config.SpanSectionExecutions = true;
  Config.TargetProductionNanos = rt::secondsToNanos(1);
  return Config;
}

/// The hardened configuration: identical, plus drift-triggered early
/// resampling and a little switch hysteresis.
fb::FeedbackConfig perturbRobustConfig() {
  fb::FeedbackConfig Config = perturbPaperConfig();
  Config.DriftResampleThreshold = 0.10;
  Config.SwitchHysteresis = 0.02;
  return Config;
}

JobResult runPerturbJob(const JobConfig &Config) {
  water::WaterConfig AppConfig;
  AppConfig.Timesteps = 8;
  AppConfig.scale(Config.getDouble("scale", 0.125));
  water::WaterApp App(AppConfig);
  const unsigned Procs = static_cast<unsigned>(Config.getInt("procs", 8));

  std::unique_ptr<perturb::PerturbationEngine> Engine;
  const std::string Spec = Config.getString("perturb");
  if (!Spec.empty()) {
    std::string Error;
    std::optional<perturb::PerturbationSchedule> Sched =
        perturb::parseSchedule(Spec, Error);
    if (!Sched)
      return jobError("internal spec error: " + Error);
    Engine =
        std::make_unique<perturb::PerturbationEngine>(std::move(*Sched));
  }

  std::string MachineError;
  const std::unique_ptr<rt::MachineModel> Model =
      machineFromConfig(Config, MachineError);
  if (!Model)
    return jobError(MachineError);

  const std::string Variant = Config.getString("variant");
  JobResult Out;
  if (Variant == "static") {
    const std::optional<PolicyKind> P =
        parsePolicyName(Config.getString("policy"));
    if (!P)
      return jobError("unknown policy '" + Config.getString("policy") + "'");
    Out.add("seconds",
            rt::nanosToSeconds(runApp(App, Procs, VersionSpec::fixed(*P),
                                      *Model, {}, nullptr, Engine.get())
                                   .TotalNanos));
    return Out;
  }
  const fb::FeedbackConfig FbConfig =
      Variant == "robust" ? perturbRobustConfig() : perturbPaperConfig();
  const fb::RunResult R =
      runApp(App, Procs, VersionSpec::dynamicFeedback(), *Model, FbConfig,
             nullptr, Engine.get());
  unsigned EarlyResamples = 0;
  for (const fb::SectionExecutionTrace &Trace : R.Occurrences)
    EarlyResamples += Trace.EarlyResamples;
  Out.add("seconds", rt::nanosToSeconds(R.TotalNanos));
  Out.add("early_resamples", EarlyResamples);
  return Out;
}

Experiment makePerturbationAdaptivity() {
  Experiment E;
  E.Name = "perturbation_adaptivity";
  E.Suite = "extension";
  E.Description =
      "dynamic feedback vs best static policy under injected faults";
  E.DefaultScale = 0.125;
  E.MetricNames = {"seconds", "early_resamples"};
  E.MakeJobs = [](const RunOptions &Opts) {
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    std::vector<JobConfig> Jobs;
    for (const FaultCase &FC : FaultCases) {
      for (PolicyKind P : AllPolicies) {
        JobConfig C = baseConfig("water", Opts);
        C.set("fault", FC.Name);
        C.set("perturb", FC.Spec);
        C.set("variant", "static");
        C.set("policy", policyName(P));
        C.setInt("procs", Procs);
        Jobs.push_back(std::move(C));
      }
      for (const char *Variant : {"paper", "robust"}) {
        JobConfig C = baseConfig("water", Opts);
        C.set("fault", FC.Name);
        C.set("perturb", FC.Spec);
        C.set("variant", Variant);
        C.setInt("procs", Procs);
        Jobs.push_back(std::move(C));
      }
    }
    return Jobs;
  };
  E.RunJob = runPerturbJob;
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    water::WaterConfig Config;
    Config.Timesteps = 8;
    Config.scale(Opts.Scale);
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    std::printf("Water at %u molecules x %u timesteps, %u processors; each "
                "fault class injected as a deterministic virtual-time "
                "schedule.\n\n",
                Config.NumMolecules, Config.Timesteps, Procs);

    Table T("Execution times under injected faults (seconds)");
    T.setHeader({"Fault class", "Best static", "Dynamic (paper)",
                 "Dynamic (robust)", "Early resamples"});
    size_t I = 0;
    for (const FaultCase &FC : FaultCases) {
      double BestStatic = 1e100;
      for (size_t P = 0; P < std::size(AllPolicies); ++P)
        BestStatic = std::min(BestStatic, Results[I++].metric("seconds"));
      const JobResult &Paper = Results[I++];
      const JobResult &Robust = Results[I++];
      T.addRow({FC.Name, formatDouble(BestStatic, 3),
                formatDouble(Paper.metric("seconds"), 3),
                formatDouble(Robust.metric("seconds"), 3),
                format("%u", static_cast<unsigned>(
                                 Robust.metric("early_resamples")))});
    }
    printTable(T);
    std::printf("Every schedule is virtual-time and seeded: rerunning this "
                "binary reproduces each cell bit for bit. Expectation: the "
                "dynamic versions stay within a few percent of the best "
                "static policy under every fault class, and drift-triggered "
                "resampling reacts to mid-run shifts without waiting out the "
                "production budget.\n");
    return 0;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Machine sensitivity sweep (extension experiment)
//===----------------------------------------------------------------------===//

/// Water's policy grid re-run on every shipped machine model. The paper's
/// central claim is that the best synchronization policy is a property of
/// the machine, not just the program: this sweep demonstrates it by
/// measuring every fixed policy and dynamic feedback on each model and
/// checking that (a) the best fixed policy differs between the NUMA and the
/// cheap-lock machine, and (b) dynamic feedback stays within 10% of the
/// best fixed policy on both -- without being retuned for either.
Experiment makeMachineSensitivity() {
  Experiment E;
  E.Name = "machine_sensitivity";
  E.Suite = "extension";
  E.Description =
      "best fixed policy vs dynamic feedback on each machine model";
  E.DefaultScale = 0.25;
  // String is the app with machine-dependent policy tension: Aggressive's
  // lifted critical regions have the fewest lock operations but the most
  // residency, so expensive locks (dash-numa) reward it while cheap locks
  // plus dirty-line update pricing (uma-cheaplock) punish it.
  E.MetricNames = {"seconds"};
  E.MakeJobs = [](const RunOptions &Opts) {
    // The machine is this experiment's swept dimension; Opts.Machine is
    // deliberately ignored.
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    std::vector<JobConfig> Jobs;
    for (const std::string &Machine : rt::machineModelNames()) {
      RunOptions MachineOpts = Opts;
      MachineOpts.Machine = Machine;
      for (PolicyKind P : AllPolicies) {
        JobConfig C = baseConfig("string", MachineOpts);
        C.set("flavour", "fixed");
        C.set("policy", policyName(P));
        C.setInt("procs", Procs);
        Jobs.push_back(std::move(C));
      }
      JobConfig C = baseConfig("string", MachineOpts);
      C.set("flavour", "dynamic");
      C.setInt("procs", Procs);
      Jobs.push_back(std::move(C));
    }
    return Jobs;
  };
  E.RunJob = runTimingGridJob;
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    string_tomo::StringConfig Config;
    Config.scale(Opts.Scale);
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    std::printf("== Machine sensitivity: String at %u rays, %ux%u grid, "
                "%u processors ==\n\n",
                Config.NumRays, Config.GridW, Config.GridH, Procs);

    Table T("Execution times by machine model (seconds)");
    std::vector<std::string> Header = {"Machine"};
    for (PolicyKind P : AllPolicies)
      Header.push_back(policyName(P));
    Header.push_back("Dynamic");
    Header.push_back("Best fixed");
    T.setHeader(Header);

    std::map<std::string, std::pair<std::string, double>> Best;
    std::map<std::string, double> Dynamic;
    size_t I = 0;
    for (const std::string &Machine : rt::machineModelNames()) {
      std::vector<std::string> Row = {Machine};
      std::string BestName;
      double BestSeconds = 0;
      for (PolicyKind P : AllPolicies) {
        const double Seconds = Results[I++].metric("seconds");
        // Three decimals: on uma-cheaplock the whole point is that the
        // policies converge to within a few milliseconds.
        Row.push_back(formatDouble(Seconds, 3));
        if (BestName.empty() || Seconds < BestSeconds) {
          BestName = policyName(P);
          BestSeconds = Seconds;
        }
      }
      const double Dyn = Results[I++].metric("seconds");
      Row.push_back(formatDouble(Dyn, 3));
      Row.push_back(BestName);
      T.addRow(Row);
      Best[Machine] = {BestName, BestSeconds};
      Dynamic[Machine] = Dyn;
    }
    printTable(T);

    const std::string NumaBest = Best["dash-numa"].first;
    const std::string UmaBest = Best["uma-cheaplock"].first;
    const bool Flips = NumaBest != UmaBest;
    const bool NumaOk =
        Dynamic["dash-numa"] <= 1.10 * Best["dash-numa"].second;
    const bool UmaOk =
        Dynamic["uma-cheaplock"] <= 1.10 * Best["uma-cheaplock"].second;
    std::printf("best fixed policy: dash-numa %s, uma-cheaplock %s -> %s\n",
                NumaBest.c_str(), UmaBest.c_str(),
                Flips ? "machine-dependent (as the paper argues)"
                      : "IDENTICAL (no machine sensitivity observed)");
    std::printf("dynamic feedback within 10%% of best fixed: dash-numa %s, "
                "uma-cheaplock %s\n",
                NumaOk ? "yes" : "NO", UmaOk ? "yes" : "NO");
    return Flips && NumaOk && UmaOk ? 0 : 1;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Serving under streaming traffic (robustness experiment)
//===----------------------------------------------------------------------===//

/// The serving traffic mixes, in display and job order.
const char *const ServingMixes[] = {"steady", "diurnal", "storm"};

/// Regret gate: dynamic feedback must finish within this factor of the
/// clairvoyant per-window oracle on every (machine, mix) cell. The oracle
/// pays no sampling cost, switches policy between windows for free, and --
/// because each policy's occurrences drift differently against the fixed
/// virtual-time traffic windows -- sometimes dodges a storm no real policy
/// could, so generous slack over 1.0 is structural (observed: 1.1-2.3
/// across seeds and scales).
constexpr double ServingRegretBound = 2.5;

/// The regret bound alone would not catch a controller that pins one bad
/// policy (the worst static sits near 2.0x the oracle on some mixes), so
/// the gate also requires dynamic within this factor of the best static
/// policy's serve time (observed: 1.0-1.4).
constexpr double ServingStaticBound = 1.5;

/// A window counts as re-adapted once dynamic's duration is back within
/// this factor of the window's oracle time; the rendered "readapt" column
/// is the longest run of consecutive windows above it.
constexpr double ServingReadaptFactor = 1.50;

/// The kvserve workload a serving job runs (scale and seed applied).
kvserve::KvServeConfig servingAppConfig(double Scale, uint64_t Seed) {
  kvserve::KvServeConfig C;
  C.scale(Scale);
  C.Seed ^= Seed;
  return C;
}

/// Nominal traffic-window length: the serial ingest phase plus an estimate
/// of the parallel serve time, rounded up to a millisecond so the rendered
/// spec round-trips exactly. Traffic windows live on the virtual-time axis
/// while SERVE occurrences drift with the measured policy, so this only
/// needs to be in the right ballpark for windows and occurrences to stay
/// roughly aligned.
rt::Nanos servingWindowNanos(const kvserve::KvServeConfig &C,
                             unsigned Procs) {
  // Every operation pays lookup + response assembly + roughly one lock
  // round trip; the geometric operation draw averages ~2.4 ops/request.
  const double PerOpNanos =
      static_cast<double>(C.LookupNanos + C.OpNanos) + 15e3;
  const double ServeNanos = static_cast<double>(C.RequestsPerWindow) * 2.4 *
                            PerOpNanos / std::max(1u, Procs);
  const rt::Nanos Window =
      C.IngestPhaseNanos + static_cast<rt::Nanos>(ServeNanos);
  return (Window + 999999) / 1000000 * 1000000;
}

/// The traffic stream of one (mix, scale, seed) cell.
perturb::TrafficSpec servingTraffic(const std::string &Mix,
                                    const kvserve::KvServeConfig &AppConfig,
                                    unsigned Procs, uint64_t Seed) {
  perturb::TrafficSpec T;
  if (Mix == "steady")
    T.Mix = perturb::TrafficMix::Steady;
  else if (Mix == "storm")
    T.Mix = perturb::TrafficMix::Storm;
  else
    T.Mix = perturb::TrafficMix::Diurnal;
  T.WindowNanos = servingWindowNanos(AppConfig, Procs);
  T.Windows = AppConfig.Windows;
  T.StormProbability = 0.35;
  T.Seed ^= Seed;
  return T;
}

/// The dynamic configuration under test: the robust spanning controller
/// with the resilience layer switched on. Short intervals -- serving
/// windows are tens of milliseconds, not the paper's 100-second production
/// runs -- scaled with the workload so the sampling-to-production ratio
/// stays constant across --scale.
fb::FeedbackConfig servingDynamicConfig(double Scale) {
  fb::FeedbackConfig Config;
  Config.SpanSectionExecutions = true;
  Config.TargetSamplingNanos =
      std::max<rt::Nanos>(rt::millisToNanos(0.25),
                          static_cast<rt::Nanos>(2e6 * Scale));
  Config.TargetProductionNanos = 10 * Config.TargetSamplingNanos;
  Config.DriftResampleThreshold = 0.10;
  Config.SwitchHysteresis = 0.02;
  Config.QuarantineStrikes = 2;
  Config.QuarantineOverheadLimit = 0.98;
  Config.WatchdogBadSlices = 3;
  Config.WatchdogOverheadLimit = 0.95;
  return Config;
}

JobResult runServingJob(const JobConfig &Config) {
  const kvserve::KvServeConfig AppConfig =
      servingAppConfig(Config.getDouble("scale", 1.0),
                       static_cast<uint64_t>(Config.getInt("seed", 0)));
  kvserve::KvServeApp App(AppConfig);
  const unsigned Procs = static_cast<unsigned>(Config.getInt("procs", 8));

  std::string Error;
  const std::optional<perturb::TrafficSpec> Traffic =
      perturb::parseTraffic(Config.getString("traffic"), Error);
  if (!Traffic)
    return jobError("internal traffic spec error: " + Error);
  const perturb::PerturbationEngine Engine(
      perturb::compileTraffic(*Traffic, AppConfig.NumShards, Procs));

  const std::unique_ptr<rt::MachineModel> Model =
      machineFromConfig(Config, Error);
  if (!Model)
    return jobError(Error);

  const std::string Variant = Config.getString("variant");
  fb::RunResult R;
  JobResult Out;
  if (Variant == "static") {
    const std::optional<PolicyKind> P =
        parsePolicyName(Config.getString("policy"));
    if (!P)
      return jobError("unknown policy '" + Config.getString("policy") + "'");
    R = runApp(App, Procs, VersionSpec::fixed(*P), *Model, {}, nullptr,
               &Engine);
  } else if (Variant == "dynamic") {
    R = runApp(App, Procs, VersionSpec::dynamicFeedback(), *Model,
               servingDynamicConfig(Config.getDouble("scale", 1.0)), nullptr,
               &Engine);
    unsigned Quarantines = 0, Reprobes = 0, Watchdog = 0, Degraded = 0;
    unsigned EarlyResamples = 0;
    for (const fb::SectionExecutionTrace &Trace : R.Occurrences) {
      Quarantines += Trace.Quarantines;
      Reprobes += Trace.Reprobes;
      Watchdog += Trace.WatchdogResamples;
      Degraded += Trace.DegradedPhases;
      EarlyResamples += Trace.EarlyResamples;
    }
    Out.add("quarantines", Quarantines);
    Out.add("reprobes", Reprobes);
    Out.add("watchdog_resamples", Watchdog);
    Out.add("degraded_phases", Degraded);
    Out.add("early_resamples", EarlyResamples);
  } else
    return jobError("unknown variant '" + Variant + "'");

  Out.add("seconds", rt::nanosToSeconds(R.TotalNanos));
  // Per-window durations, the raw material of the oracle and the regret
  // computation: occurrence W is traffic window W (SERVE runs once per
  // window).
  unsigned W = 0;
  for (const fb::SectionExecutionTrace &Trace : R.Occurrences)
    Out.add(format("w%u_seconds", W++),
            rt::nanosToSeconds(Trace.durationNanos()));
  return Out;
}

/// Dynamic feedback on a long-running server: kvserve under compiled
/// streaming traffic (diurnal intensity, rotating hot tenants, seeded
/// perturbation storms), on every machine model. Per (machine, mix) cell
/// the grid measures all fixed policies plus the resilient dynamic
/// configuration on the identical seeded stream; the renderer replays a
/// clairvoyant oracle (per-window best fixed policy) from the same per-
/// window durations and gates dynamic's cumulative regret against it.
Experiment makeServing() {
  Experiment E;
  E.Name = "serving";
  E.Suite = "extension";
  E.Description =
      "streaming serving traffic: dynamic regret vs clairvoyant oracle";
  std::vector<std::string> Metrics = {
      "seconds",          "quarantines",    "reprobes",
      "watchdog_resamples", "degraded_phases", "early_resamples"};
  for (unsigned W = 0; W < kvserve::KvServeConfig().Windows; ++W)
    Metrics.push_back(format("w%u_seconds", W));
  E.MetricNames = std::move(Metrics);
  E.MakeJobs = [](const RunOptions &Opts) {
    // The machine is a swept dimension, like machine_sensitivity;
    // Opts.Machine is deliberately ignored.
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    const kvserve::KvServeConfig AppConfig =
        servingAppConfig(Opts.Scale, Opts.Seed);
    std::vector<JobConfig> Jobs;
    for (const std::string &Machine : rt::machineModelNames()) {
      RunOptions MachineOpts = Opts;
      MachineOpts.Machine = Machine;
      for (const char *Mix : ServingMixes) {
        const std::string Traffic = perturb::renderTraffic(
            servingTraffic(Mix, AppConfig, Procs, Opts.Seed));
        for (PolicyKind P : AllPolicies) {
          JobConfig C = baseConfig("kvserve", MachineOpts);
          C.set("mix", Mix);
          C.set("traffic", Traffic);
          C.set("variant", "static");
          C.set("policy", policyName(P));
          C.setInt("procs", Procs);
          Jobs.push_back(std::move(C));
        }
        JobConfig C = baseConfig("kvserve", MachineOpts);
        C.set("mix", Mix);
        C.set("traffic", Traffic);
        C.set("variant", "dynamic");
        C.setInt("procs", Procs);
        Jobs.push_back(std::move(C));
      }
    }
    return Jobs;
  };
  E.RunJob = runServingJob;
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    const kvserve::KvServeConfig AppConfig =
        servingAppConfig(Opts.Scale, Opts.Seed);
    const unsigned Procs = Opts.Procs ? Opts.Procs : 8;
    std::printf("== Serving: kvserve at %u shards, %u requests/window, %u "
                "windows, %u processors ==\n"
                "All times are serve time (serial ingest excluded). Oracle = "
                "sum over windows of the best fixed policy's window time "
                "(clairvoyant, free switches). Regret = dynamic / oracle. "
                "Readapt = longest run of windows where dynamic exceeded "
                "%.2fx the window's oracle time.\n\n",
                AppConfig.NumShards, AppConfig.RequestsPerWindow,
                AppConfig.Windows, Procs, ServingReadaptFactor);

    Table T("Dynamic feedback vs clairvoyant oracle (serve seconds)");
    std::vector<std::string> Header = {"Machine", "Mix"};
    for (PolicyKind P : AllPolicies)
      Header.push_back(policyName(P));
    Header.insert(Header.end(), {"Dynamic", "Oracle", "Regret", "Readapt",
                                 "Quar", "Wdog"});
    T.setHeader(Header);

    bool RegretOk = true;
    size_t I = 0;
    for (const std::string &Machine : rt::machineModelNames()) {
      for (const char *Mix : ServingMixes) {
        const size_t Base = I;
        // Serve time of a result: the sum of its per-window durations
        // (the total "seconds" metric also counts the serial ingest
        // phases, which no policy can influence).
        const auto ServeSeconds = [&](const JobResult &R) {
          double Sum = 0;
          for (unsigned W = 0; W < AppConfig.Windows; ++W)
            Sum += R.metric(format("w%u_seconds", W));
          return Sum;
        };
        std::vector<std::string> Row = {Machine, Mix};
        double BestStatic = 1e100;
        for (size_t P = 0; P < std::size(AllPolicies); ++P) {
          const double Seconds = ServeSeconds(Results[I++]);
          Row.push_back(formatDouble(Seconds, 3));
          BestStatic = std::min(BestStatic, Seconds);
        }
        const JobResult &Dyn = Results[I++];

        // The clairvoyant oracle and the readapt streak, per window.
        double OracleSeconds = 0;
        unsigned Streak = 0, MaxStreak = 0;
        for (unsigned W = 0; W < AppConfig.Windows; ++W) {
          const std::string Name = format("w%u_seconds", W);
          double Oracle = 1e100;
          for (size_t P = 0; P < std::size(AllPolicies); ++P)
            Oracle = std::min(Oracle, Results[Base + P].metric(Name));
          OracleSeconds += Oracle;
          if (Dyn.metric(Name) > ServingReadaptFactor * Oracle)
            MaxStreak = std::max(MaxStreak, ++Streak);
          else
            Streak = 0;
        }

        const double DynSeconds = ServeSeconds(Dyn);
        const double Regret =
            OracleSeconds > 0 ? DynSeconds / OracleSeconds : 0;
        if (Regret > ServingRegretBound ||
            DynSeconds > ServingStaticBound * BestStatic)
          RegretOk = false;
        Row.push_back(formatDouble(DynSeconds, 3));
        Row.push_back(formatDouble(OracleSeconds, 3));
        Row.push_back(formatDouble(Regret, 3));
        Row.push_back(format("%u", MaxStreak));
        Row.push_back(
            format("%u", static_cast<unsigned>(Dyn.metric("quarantines"))));
        Row.push_back(format(
            "%u", static_cast<unsigned>(Dyn.metric("watchdog_resamples"))));
        T.addRow(Row);
      }
    }
    printTable(T);
    std::printf("dynamic feedback within %.2fx of the clairvoyant oracle "
                "and %.2fx of the best static policy on every machine and "
                "mix: %s\n",
                ServingRegretBound, ServingStaticBound,
                RegretOk ? "yes" : "NO");
    return RegretOk ? 0 : 1;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Backend concordance (extension experiment)
//===----------------------------------------------------------------------===//

/// The apps the concordance grid measures: the paper's grid apps (kvserve
/// is exercised by the serving experiment, not the concordance gate).
const char *const ConcordanceApps[] = {"water", "barnes_hut", "string"};

/// A fixed-policy pair only gates concordance when the two policies differ
/// by more than this relative band on BOTH backends: near-ties carry no
/// ordering information, and real wall clock is noisy where virtual time
/// is exact.
constexpr double ConcordanceTieBand = 0.10;

/// Dynamic feedback must finish within these factors of the best fixed
/// policy. The sim bound matches the paper-table experience; the native
/// bound is looser because sampling costs real milliseconds against runs
/// that are themselves only tens of milliseconds long.
constexpr double ConcordanceSimDynamicBound = 1.15;
constexpr double ConcordanceNativeDynamicBound = 1.60;

/// The tentpole's cross-backend validation: the simulator earns its keep
/// only if the policy tradeoffs it prices match what real threads observe.
/// Per app, the grid measures every fixed policy plus dynamic feedback on
/// both backends; the renderer checks that the fixed-policy ordering agrees
/// on every pair that is significant on both backends (a Kendall-tau-style
/// pairwise test with a tie band) and that dynamic feedback tracks the best
/// fixed policy on both. The machine axis is deliberately absent: the
/// native backend runs on real hardware and ignores MachineModel pricing,
/// so every job -- sim and native -- is pinned to dash-flat.
Experiment makeBackendConcordance() {
  Experiment E;
  E.Name = "backend_concordance";
  E.Suite = "extension";
  E.Description =
      "sim vs native threads: fixed-policy ordering agreement per app";
  E.DefaultScale = 0.125;
  E.MetricNames = {"seconds"};
  E.SupportsNativeBackend = true;
  E.MakeJobs = [](const RunOptions &Opts) {
    // The backend is this experiment's swept dimension; Opts.Backend is
    // deliberately ignored, as is Opts.Machine (see above).
    const unsigned Procs = Opts.Procs ? Opts.Procs : 2;
    std::vector<JobConfig> Jobs;
    for (const char *App : ConcordanceApps) {
      for (const char *Backend : {"", "native"}) {
        RunOptions Cell = Opts;
        Cell.Machine = "";
        Cell.Backend = Backend;
        for (PolicyKind P : AllPolicies) {
          JobConfig C = baseConfig(App, Cell);
          C.set("flavour", "fixed");
          C.set("policy", policyName(P));
          C.setInt("procs", Procs);
          Jobs.push_back(std::move(C));
        }
        JobConfig C = baseConfig(App, Cell);
        C.set("flavour", "dynamic");
        C.setInt("procs", Procs);
        Jobs.push_back(std::move(C));
      }
    }
    return Jobs;
  };
  E.RunJob = runTimingGridJob;
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    const unsigned Procs = Opts.Procs ? Opts.Procs : 2;
    std::printf("== Backend concordance: %zu apps x {sim, native} x %zu "
                "fixed policies + dynamic, %u processors ==\n",
                std::size(ConcordanceApps), std::size(AllPolicies), Procs);
    std::printf("machine sweep skipped: the native backend runs on real "
                "hardware and ignores MachineModel pricing, so every job "
                "(sim and native) is pinned to dash-flat\n\n");

    constexpr size_t NumPolicies = std::size(AllPolicies);
    bool AllOk = true;
    unsigned Concordant = 0, Gated = 0, Ties = 0;
    size_t I = 0;
    for (const char *App : ConcordanceApps) {
      double Fixed[2][NumPolicies];
      double Dyn[2];
      for (unsigned B = 0; B < 2; ++B) {
        for (size_t P = 0; P < NumPolicies; ++P)
          Fixed[B][P] = Results[I++].metric("seconds");
        Dyn[B] = Results[I++].metric("seconds");
      }

      Table T(format("%s (seconds; sim virtual, native median-of-%u wall "
                     "clock)",
                     App, NativeJobRepeats));
      T.setHeader({"Version", "Sim", "Native"});
      for (size_t P = 0; P < NumPolicies; ++P)
        T.addRow({policyName(AllPolicies[P]), formatDouble(Fixed[0][P], 3),
                  formatDouble(Fixed[1][P], 4)});
      T.addRow({"Dynamic", formatDouble(Dyn[0], 3),
                formatDouble(Dyn[1], 4)});
      printTable(T);

      // Pairwise ordering agreement over the significant pairs.
      for (size_t A = 0; A < NumPolicies; ++A)
        for (size_t B = A + 1; B < NumPolicies; ++B) {
          const auto Significant = [&](const double *Row) {
            const double Lo = std::min(Row[A], Row[B]);
            return Lo > 0 && (std::abs(Row[A] - Row[B]) / Lo) >
                                 ConcordanceTieBand;
          };
          if (!Significant(Fixed[0]) || !Significant(Fixed[1])) {
            ++Ties;
            continue;
          }
          ++Gated;
          const bool Agrees =
              (Fixed[0][A] < Fixed[0][B]) == (Fixed[1][A] < Fixed[1][B]);
          Concordant += Agrees;
          if (!Agrees) {
            AllOk = false;
            std::printf("  DISCORDANT on %s: sim orders %s %s %s, native "
                        "disagrees\n",
                        App, policyName(AllPolicies[A]),
                        Fixed[0][A] < Fixed[0][B] ? "<" : ">",
                        policyName(AllPolicies[B]));
          }
        }

      const double BestSim =
          *std::min_element(Fixed[0], Fixed[0] + NumPolicies);
      const double BestNative =
          *std::min_element(Fixed[1], Fixed[1] + NumPolicies);
      const bool SimOk = Dyn[0] <= ConcordanceSimDynamicBound * BestSim;
      const bool NativeOk =
          Dyn[1] <= ConcordanceNativeDynamicBound * BestNative;
      std::printf("  dynamic vs best fixed: sim %.2fx (<= %.2fx: %s), "
                  "native %.2fx (<= %.2fx: %s)\n\n",
                  Dyn[0] / BestSim, ConcordanceSimDynamicBound,
                  SimOk ? "yes" : "NO", Dyn[1] / BestNative,
                  ConcordanceNativeDynamicBound, NativeOk ? "yes" : "NO");
      AllOk = AllOk && SimOk && NativeOk;
    }

    std::printf("concordant policy pairs: %u/%u (%u near-tie pairs "
                "skipped)\n",
                Concordant, Gated, Ties);
    std::printf("backends agree on every significant policy ordering and "
                "dynamic tracks the best fixed policy on both: %s\n",
                AllOk ? "yes" : "NO");
    return AllOk ? 0 : 1;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Simulator throughput (performance trajectory)
//===----------------------------------------------------------------------===//

/// Every app makeGridApp builds, i.e. the simulator's full workload mix.
const char *const ThroughputApps[] = {"barnes_hut", "water", "string",
                                      "kvserve"};
const unsigned ThroughputProcCounts[] = {2, 8};

/// How fast the simulator itself runs, as opposed to how fast the simulated
/// programs are: each job executes one dynamic-feedback run and reports the
/// hot loop's work (simulated micro-ops, iterations, intervals) divided by
/// host wall-clock time. The work counts are deterministic; the rates are
/// host-dependent and exist to track the simulator's speed PR over PR (the
/// checked-in BENCH_sim_throughput.json trajectory), so nothing gates hard
/// on them. Wall clock is measured inside RunJob and therefore frozen into
/// cached results -- measure with --no-cache.
Experiment makeSimThroughput() {
  Experiment E;
  E.Name = "sim_throughput";
  E.Suite = "perf";
  E.Description =
      "simulator hot-loop speed: simulated micro-ops and intervals per "
      "wall-clock second";
  E.DefaultScale = 0.125;
  E.MetricNames = {"micro_ops",     "iterations",       "intervals",
                   "wall_seconds",  "mops_per_sec",     "intervals_per_sec"};
  E.MakeJobs = [](const RunOptions &Opts) {
    std::vector<JobConfig> Jobs;
    for (const char *App : ThroughputApps)
      for (unsigned N : ThroughputProcCounts) {
        if (Opts.Procs && Opts.Procs != N)
          continue;
        JobConfig C = baseConfig(App, Opts);
        C.set("flavour", "dynamic");
        C.setInt("procs", N);
        Jobs.push_back(std::move(C));
      }
    return Jobs;
  };
  E.RunJob = [](const JobConfig &Config) {
    const std::unique_ptr<App> TheApp = makeGridApp(Config);
    if (!TheApp)
      return jobError("unknown app '" + Config.getString("app") + "'");
    const unsigned Procs = static_cast<unsigned>(Config.getInt("procs", 2));
    std::string Error;
    const std::unique_ptr<rt::MachineModel> Model =
        machineFromConfig(Config, Error);
    if (!Model)
      return jobError(Error);

    // Deltas, not absolute counter reads: dynfb-bench may fork workers but
    // BenchMain runs jobs sequentially in one process, and only the delta
    // is this job's work either way. App construction stays outside the
    // timed region -- this measures the simulator, not the workload
    // generators.
    const sim::ThroughputCounters Before = sim::throughputCounters();
    const auto Start = std::chrono::steady_clock::now();
    runApp(*TheApp, Procs, VersionSpec::dynamicFeedback(), *Model);
    const double Wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    const sim::ThroughputCounters &After = sim::throughputCounters();

    const double MicroOps =
        static_cast<double>(After.MicroOps - Before.MicroOps);
    const double Iterations =
        static_cast<double>(After.Iterations - Before.Iterations);
    const double Intervals =
        static_cast<double>(After.Intervals - Before.Intervals);
    JobResult R;
    R.add("micro_ops", MicroOps);
    R.add("iterations", Iterations);
    R.add("intervals", Intervals);
    R.add("wall_seconds", Wall);
    R.add("mops_per_sec", Wall > 0 ? MicroOps / Wall / 1e6 : 0.0);
    R.add("intervals_per_sec", Wall > 0 ? Intervals / Wall : 0.0);
    return R;
  };
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    std::printf("== Simulator throughput: dynamic feedback across %zu apps "
                "==\n",
                std::size(ThroughputApps));
    std::printf("rates are host wall clock (trajectory data, no hard "
                "gate); cached results replay the recorded wall clock, so "
                "measure with --no-cache\n\n");

    Table T("hot-loop throughput");
    T.setHeader({"App", "Procs", "Micro-ops", "Mops/s", "Intervals/s"});
    bool ShapeOk = !Results.empty();
    double TotalOps = 0, TotalIntervals = 0, TotalWall = 0;
    size_t I = 0;
    for (const char *App : ThroughputApps)
      for (unsigned N : ThroughputProcCounts) {
        if (Opts.Procs && Opts.Procs != N)
          continue;
        const JobResult &R = Results[I++];
        const double Ops = R.metric("micro_ops");
        const double Wall = R.metric("wall_seconds");
        TotalOps += Ops;
        TotalIntervals += R.metric("intervals");
        TotalWall += Wall;
        ShapeOk = ShapeOk && Ops > 0 && Wall > 0;
        T.addRow({App, format("%u", N), format("%.0f", Ops),
                  formatDouble(R.metric("mops_per_sec"), 2),
                  formatDouble(R.metric("intervals_per_sec"), 1)});
      }
    if (TotalWall > 0)
      T.addRow({"TOTAL", "", format("%.0f", TotalOps),
                formatDouble(TotalOps / TotalWall / 1e6, 2),
                formatDouble(TotalIntervals / TotalWall, 1)});
    printTable(T);

    std::printf("shape ok (every job simulated micro-ops in measurable "
                "wall clock): %s\n",
                ShapeOk ? "yes" : "NO");
    return ShapeOk ? 0 : 1;
  };
  return E;
}

//===----------------------------------------------------------------------===//
// Replay what-if exactness
//===----------------------------------------------------------------------===//

/// Validates the checkpointed counterfactual machinery (replay::Explorer)
/// against ground truth: for every section occurrence, a what-if produced
/// by forking the run at the phase boundary (checkpoint, pin a version,
/// run the occurrence, restore) must agree EXACTLY -- same duration, same
/// overhead accounting -- with a fresh uninterrupted run that pinned the
/// same version from the start. On the default (non-topology) machine an
/// occurrence's cost is independent of the virtual clock and lock homes,
/// so this is an equality gate, not a tolerance gate: one diverging
/// nanosecond means checkpoint/restore leaked state. The clairvoyant
/// regret per app rides along as trajectory data.
Experiment makeReplayWhatif() {
  Experiment E;
  E.Name = "replay_whatif";
  E.Suite = "extension";
  E.Description =
      "checkpointed what-if counterfactuals match fresh pinned runs "
      "exactly, plus dynamic's regret vs the clairvoyant oracle";
  E.DefaultScale = 0.125;
  E.MetricNames = {"whatif_checks",     "mismatches",
                   "max_abs_diff_ns",   "dynamic_seconds",
                   "clairvoyant_seconds", "regret_ratio"};
  E.MakeJobs = [](const RunOptions &Opts) {
    std::vector<JobConfig> Jobs;
    for (const char *App : ThroughputApps) {
      const unsigned N = 8;
      if (Opts.Procs && Opts.Procs != N)
        continue;
      JobConfig C = baseConfig(App, Opts);
      C.set("flavour", "dynamic");
      C.setInt("procs", N);
      Jobs.push_back(std::move(C));
    }
    return Jobs;
  };
  E.RunJob = [](const JobConfig &Config) {
    const std::unique_ptr<App> TheApp = makeGridApp(Config);
    if (!TheApp)
      return jobError("unknown app '" + Config.getString("app") + "'");
    const unsigned Procs = static_cast<unsigned>(Config.getInt("procs", 8));
    std::string Error;
    const std::unique_ptr<rt::MachineModel> Model =
        machineFromConfig(Config, Error);
    if (!Model)
      return jobError(Error);

    const replay::Exploration Ex = replay::explore(*TheApp, Procs, *Model);
    unsigned MaxVersions = 0;
    for (const replay::WhatIf &W : Ex.WhatIfs)
      MaxVersions = std::max(MaxVersions, W.Version + 1);

    // Ground truth: one fresh uninterrupted run per candidate version,
    // nothing checkpointed. Sections with fewer versions clamp the pin, so
    // a ground-truth occurrence is matched by (occurrence, clamped
    // version); the duplicate checks this produces are harmless.
    uint64_t Checks = 0, Mismatches = 0;
    rt::Nanos MaxAbsDiff = 0;
    for (unsigned V = 0; V < MaxVersions; ++V) {
      const std::vector<replay::WhatIf> Fresh =
          replay::runPinned(*TheApp, Procs, *Model, V);
      for (const replay::WhatIf &G : Fresh)
        for (const replay::WhatIf *W : Ex.occurrence(G.Occurrence)) {
          if (W->Version != G.Version)
            continue;
          ++Checks;
          const rt::Nanos Diff =
              W->DurationNanos > G.DurationNanos
                  ? W->DurationNanos - G.DurationNanos
                  : G.DurationNanos - W->DurationNanos;
          MaxAbsDiff = std::max(MaxAbsDiff, Diff);
          const bool StatsEqual =
              W->Stats.AcquireReleasePairs == G.Stats.AcquireReleasePairs &&
              W->Stats.FailedAcquires == G.Stats.FailedAcquires &&
              W->Stats.LockOpNanos == G.Stats.LockOpNanos &&
              W->Stats.WaitNanos == G.Stats.WaitNanos &&
              W->Stats.SchedNanos == G.Stats.SchedNanos &&
              W->Stats.ExecNanos == G.Stats.ExecNanos;
          if (Diff != 0 || !StatsEqual)
            ++Mismatches;
        }
    }

    const replay::RegretSummary S = replay::summarizeRegret(Ex);
    JobResult R;
    R.add("whatif_checks", static_cast<double>(Checks));
    R.add("mismatches", static_cast<double>(Mismatches));
    R.add("max_abs_diff_ns", static_cast<double>(MaxAbsDiff));
    R.add("dynamic_seconds", rt::nanosToSeconds(S.DynamicParallelNanos));
    R.add("clairvoyant_seconds",
          rt::nanosToSeconds(S.ClairvoyantParallelNanos));
    R.add("regret_ratio", S.regretRatio());
    return R;
  };
  E.Render = [](const RunOptions &Opts,
                const std::vector<JobResult> &Results) {
    std::printf("== Replay what-if: checkpointed counterfactuals vs fresh "
                "pinned runs ==\n\n");
    Table T("what-if exactness and clairvoyant regret");
    T.setHeader({"App", "Checks", "Mismatches", "Dynamic", "Clairvoyant",
                 "Regret"});
    bool AllExact = !Results.empty();
    size_t I = 0;
    for (const char *App : ThroughputApps) {
      if (Opts.Procs && Opts.Procs != 8)
        continue;
      const JobResult &R = Results[I++];
      const double Checks = R.metric("whatif_checks");
      const double Mism = R.metric("mismatches");
      AllExact = AllExact && Checks > 0 && Mism == 0;
      T.addRow({App, format("%.0f", Checks), format("%.0f", Mism),
                formatSeconds(R.metric("dynamic_seconds")),
                formatSeconds(R.metric("clairvoyant_seconds")),
                format("%.1f%%", R.metric("regret_ratio") * 100.0)});
    }
    printTable(T);
    std::printf("gate: every checkpointed what-if bit-identical to its "
                "fresh pinned run: %s\n",
                AllExact ? "PASS" : "FAIL");
    return AllExact ? 0 : 1;
  };
  return E;
}

} // namespace

void exp::registerBuiltinExperiments() {
  static bool Registered = false;
  if (Registered)
    return;
  Registered = true;
  registry().add(makeTable2BarnesHut());
  registry().add(makeTable3BhLocking());
  registry().add(makeTable7Water());
  registry().add(makeTable8WaterLocking());
  registry().add(makeVersionSpace());
  registry().add(makeVersionSearch());
  registry().add(makePerturbationAdaptivity());
  registry().add(makeMachineSensitivity());
  registry().add(makeServing());
  registry().add(makeBackendConcordance());
  registry().add(makeSimThroughput());
  registry().add(makeReplayWhatif());
}
