//===- exp/PaperGrids.cpp -------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "exp/PaperGrids.h"

#include "support/StringUtils.h"

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::exp;
using namespace dynfb::xform;

TimingGrid exp::runTimingGrid(const App &App,
                              const std::vector<unsigned> &Procs,
                              const fb::FeedbackConfig &Config) {
  TimingGrid Grid;
  Grid.SerialSeconds =
      runAppSeconds(App, 1, Flavour::Serial, PolicyKind::Original, Config);

  for (PolicyKind P : AllPolicies) {
    std::map<unsigned, double> Row;
    for (unsigned N : Procs)
      Row[N] = runAppSeconds(App, N, Flavour::Fixed, P, Config);
    Grid.Rows.emplace_back(policyName(P), std::move(Row));
  }
  std::map<unsigned, double> Dyn;
  for (unsigned N : Procs)
    Dyn[N] = runAppSeconds(App, N, Flavour::Dynamic, PolicyKind::Original,
                           Config);
  Grid.Rows.emplace_back("Dynamic", std::move(Dyn));
  return Grid;
}

std::vector<std::string>
exp::versionByProcsHeader(const std::vector<unsigned> &Procs) {
  std::vector<std::string> Header{"Version"};
  for (unsigned N : Procs)
    Header.push_back(format("%u", N));
  return Header;
}

Table exp::timesTable(const std::string &Title, const TimingGrid &Grid,
                      const std::vector<unsigned> &Procs) {
  Table T(Title);
  T.setHeader(versionByProcsHeader(Procs));

  std::vector<std::string> SerialRow{"Serial", formatDouble(
      Grid.SerialSeconds, 2)};
  for (size_t I = 1; I < Procs.size(); ++I)
    SerialRow.push_back("-");
  T.addRow(SerialRow);

  for (const auto &[Label, Row] : Grid.Rows) {
    std::vector<std::string> Cells{Label};
    for (unsigned N : Procs)
      Cells.push_back(formatDouble(Row.at(N), 2));
    T.addRow(Cells);
  }
  return T;
}

Table exp::speedupTable(const std::string &Title, const TimingGrid &Grid,
                        const std::vector<unsigned> &Procs) {
  Table T(Title);
  T.setHeader(versionByProcsHeader(Procs));
  for (const auto &[Label, Row] : Grid.Rows) {
    std::vector<std::string> Cells{Label};
    for (unsigned N : Procs)
      Cells.push_back(formatDouble(Grid.SerialSeconds / Row.at(N), 2));
    T.addRow(Cells);
  }
  return T;
}

std::string exp::speedupCsv(const TimingGrid &Grid,
                            const std::vector<unsigned> &Procs) {
  SeriesSet Set;
  for (const auto &[Label, Row] : Grid.Rows) {
    Series &S = Set.getOrCreate(Label);
    for (unsigned N : Procs)
      S.addPoint(static_cast<double>(N), Grid.SerialSeconds / Row.at(N));
  }
  return renderSeriesCsv(Set, "processors", "speedup");
}
