//===- exp/Experiment.h - Declarative experiment registry -------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative experiment layer of src/exp: every paper table/figure,
/// ablation and version-space sweep registers as a named Experiment whose
/// parameter grid (app x policy/version space x processors x scale x seed)
/// expands into independent jobs. A job is the unit of scheduling, caching
/// and regression gating: it runs one simulator configuration and returns a
/// flat list of named metrics. The standalone bench binaries and the
/// dynfb-bench driver share these definitions -- the binaries render the
/// paper's tables from in-process job results, the driver fans the grid out
/// across worker processes and exports machine-readable summaries.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_EXP_EXPERIMENT_H
#define DYNFB_EXP_EXPERIMENT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dynfb::exp {

/// Schema version of every machine-readable artifact src/exp emits (result
/// files, cache entries); bump when a field changes meaning.
/// v2: job configs carry the machine model ("machine") and its full
/// parameter set ("machine_params"); result files carry the invocation's
/// machine in the header.
/// v3: the execution backend joins the axis set. Native-backend job configs
/// carry "backend" (and its "timescale"); sim configs stay unchanged, so v2
/// files -- and the checked-in sim baselines -- remain readable and their
/// job keys remain comparable. Result files carry the invocation's backend
/// in the header.
inline constexpr int64_t ResultSchemaVersion = 3;

/// Result-file schema versions parseResultFile accepts: v2 files differ
/// from v3 only by fields v3 made explicit, with compatible defaults.
inline constexpr int64_t MinResultSchemaVersion = 2;

/// One job's parameter assignment: ordered string key/value pairs. Values
/// are strings so a config round-trips losslessly through JSON and the
/// cache key; typed accessors parse on read.
class JobConfig {
public:
  /// Sets (or overwrites) one parameter. Insertion order is display order.
  void set(const std::string &Key, const std::string &Value);
  void setInt(const std::string &Key, int64_t Value);
  void setDouble(const std::string &Key, double Value);

  /// Returns the value of \p Key, or nullptr when absent.
  const std::string *find(const std::string &Key) const;

  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  int64_t getInt(const std::string &Key, int64_t Default = 0) const;
  double getDouble(const std::string &Key, double Default = 0.0) const;

  const std::vector<std::pair<std::string, std::string>> &entries() const {
    return KVs;
  }

  /// Canonical rendering: a JSON object with keys in sorted order --
  /// insertion-order independent, the input of the cache key.
  std::string canonical() const;

  /// Compact "k=v,k=v" label (insertion order) for progress lines.
  std::string label() const;

  friend bool operator==(const JobConfig &A, const JobConfig &B) {
    return A.canonical() == B.canonical();
  }

private:
  std::vector<std::pair<std::string, std::string>> KVs;
};

/// One named measurement a job produced.
struct Metric {
  std::string Name;
  double Value = 0.0;
};

/// What one job run returns. Ok=false carries a job-level diagnostic (the
/// scheduler also fails jobs that crash or time out, see Scheduler.h).
struct JobResult {
  bool Ok = true;
  std::string Error;
  std::vector<Metric> Metrics;

  void add(const std::string &Name, double Value) {
    Metrics.push_back({Name, Value});
  }
  /// Returns the named metric's value, or \p Default when absent.
  double metric(const std::string &Name, double Default = 0.0) const;
  bool hasMetric(const std::string &Name) const;
};

/// Invocation-wide options an experiment expands its grid under.
struct RunOptions {
  /// Workload scale factor, multiplied into each experiment's DefaultScale
  /// by the driver; the standalone binaries pass it through verbatim.
  double Scale = 1.0;
  /// Processor-count override for experiments that accept one (0 = each
  /// experiment's default).
  unsigned Procs = 0;
  /// Workload seed, stamped into every job config so reseeded runs never
  /// collide in the result cache.
  uint64_t Seed = 0;
  /// Chunk sizes for version-space experiments ("" = each experiment's
  /// default).
  std::string Chunks;
  /// Machine model every job runs on ("" = "dash-flat", the paper's
  /// machine). Stamped -- with the model's full parameter set -- into every
  /// job config, so results on different machines never collide in the
  /// cache. Experiments that sweep machines themselves (machine_sensitivity)
  /// ignore it.
  std::string Machine;
  /// Execution backend jobs run on ("" or "sim" = the simulator). Native
  /// jobs get "backend" stamped into their configs (sim configs carry no
  /// backend key, keeping their cache keys and the checked-in baselines
  /// stable). Experiments that sweep the backend themselves
  /// (backend_concordance) ignore it.
  std::string Backend;

  /// Whether this invocation asks for the native-threads backend.
  bool wantsNativeBackend() const { return Backend == "native"; }
};

/// A registered experiment: a named parameter grid plus the job runner and
/// the paper-table renderer over the grid's results.
class Experiment {
public:
  std::string Name;        ///< Registry key, e.g. "table2_fig4_barnes_hut".
  std::string Suite;       ///< Suite tag: "paper", "extension", ...
  std::string Description; ///< One line, shown by dynfb-bench list.
  /// Multiplied into RunOptions::Scale by the driver so experiments with a
  /// reduced natural scale (e.g. the perturbation sweep) keep it.
  double DefaultScale = 1.0;
  /// The metric names jobs may emit -- part of the schema hash, so renaming
  /// a metric invalidates cached results.
  std::vector<std::string> MetricNames;
  /// Whether MakeJobs honors RunOptions::Backend = "native". Experiments
  /// whose grids are sim-only (perturbation, serving, machine sweeps) leave
  /// this false and are skipped/rejected under --backend native.
  bool SupportsNativeBackend = false;

  /// Expands the parameter grid into jobs, deterministically ordered.
  /// Everything that affects a job's result is baked into its config --
  /// RunJob sees only the config, which is what the cache key hashes.
  std::function<std::vector<JobConfig>(const RunOptions &)> MakeJobs;
  /// Runs one job (pure: same config, same metrics -- the property the
  /// result cache relies on).
  std::function<JobResult(const JobConfig &)> RunJob;
  /// Renders the paper's human-readable output from the full grid's results
  /// (in MakeJobs order) and returns the process exit code. Only the
  /// standalone bench binaries call this.
  std::function<int(const RunOptions &, const std::vector<JobResult> &)>
      Render;

  /// Hash of the experiment's identity and metric schema: any rename or
  /// metric change moves every cache key of the experiment.
  uint64_t schemaHash() const;
};

/// The process-wide experiment registry.
class ExperimentRegistry {
public:
  /// Registers \p E; the name must be unique (checked).
  void add(Experiment E);

  /// Returns the named experiment, or nullptr.
  const Experiment *find(const std::string &Name) const;

  /// All experiments in registration order.
  const std::vector<Experiment> &all() const { return Experiments; }

  /// The experiments of \p Suite ("all" selects every suite).
  std::vector<const Experiment *> suite(const std::string &Suite) const;

private:
  std::vector<Experiment> Experiments;
};

ExperimentRegistry &registry();

/// Registers the built-in experiments (paper tables, version-space and
/// perturbation sweeps). Idempotent; call before using registry().
void registerBuiltinExperiments();

/// FNV-1a, the hash behind schema and cache keys (stable across hosts,
/// unlike std::hash).
uint64_t fnv1a(const std::string &S, uint64_t Seed = 0xcbf29ce484222325ull);

} // namespace dynfb::exp

#endif // DYNFB_EXP_EXPERIMENT_H
