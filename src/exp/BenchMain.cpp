//===- exp/BenchMain.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

#include "exp/Experiment.h"
#include "rt/MachineModel.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace dynfb;
using namespace dynfb::exp;

int exp::runBenchMain(const std::string &ExperimentName, int Argc,
                      char **Argv) {
  registerBuiltinExperiments();
  const Experiment *E = registry().find(ExperimentName);
  if (!E) {
    std::fprintf(stderr, "bench: experiment '%s' is not registered\n",
                 ExperimentName.c_str());
    return 2;
  }

  CommandLine CL(Argc, Argv);
  RunOptions Opts;
  Opts.Scale = CL.getDouble("scale", E->DefaultScale);
  Opts.Procs = static_cast<unsigned>(CL.getInt("procs", 0));
  Opts.Seed = static_cast<uint64_t>(CL.getInt("seed", 0));
  Opts.Chunks = CL.getString("chunks", "");
  Opts.Machine = CL.getString("machine", "");
  if (!rejectUnknownFlags(CL, ExperimentName,
                          {"scale", "procs", "seed", "chunks", "machine"},
                          "--scale F [--procs N] [--seed S] [--chunks K1,K2] "
                          "[--machine NAME]"))
    return 2;
  if (!Opts.Machine.empty() && !rt::createMachineModel(Opts.Machine)) {
    const std::string Near =
        closestMatch(Opts.Machine, rt::machineModelNames());
    const std::string Hint =
        Near.empty() ? "" : " (did you mean '" + Near + "'?)";
    std::string Known;
    for (const std::string &Name : rt::machineModelNames())
      Known += (Known.empty() ? "" : ", ") + Name;
    std::fprintf(stderr, "%s: unknown machine model '%s'%s; known: %s\n",
                 ExperimentName.c_str(), Opts.Machine.c_str(), Hint.c_str(),
                 Known.c_str());
    return 2;
  }

  const std::vector<JobConfig> Jobs = E->MakeJobs(Opts);
  std::vector<JobResult> Results;
  Results.reserve(Jobs.size());
  for (const JobConfig &Job : Jobs) {
    JobResult R = E->RunJob(Job);
    if (!R.Ok) {
      std::fprintf(stderr, "%s: job [%s] failed: %s\n",
                   ExperimentName.c_str(), Job.label().c_str(),
                   R.Error.c_str());
      return 1;
    }
    Results.push_back(std::move(R));
  }
  return E->Render(Opts, Results);
}
