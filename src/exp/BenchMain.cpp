//===- exp/BenchMain.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "exp/BenchMain.h"

#include "exp/Experiment.h"
#include "rt/MachineModel.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace dynfb;
using namespace dynfb::exp;

int exp::runBenchMain(const std::string &ExperimentName, int Argc,
                      char **Argv) {
  registerBuiltinExperiments();
  const Experiment *E = registry().find(ExperimentName);
  if (!E) {
    std::fprintf(stderr, "bench: experiment '%s' is not registered\n",
                 ExperimentName.c_str());
    return 2;
  }

  CommandLine CL(Argc, Argv);
  RunOptions Opts;
  Opts.Scale = CL.getDouble("scale", E->DefaultScale);
  Opts.Procs = static_cast<unsigned>(CL.getInt("procs", 0));
  Opts.Seed = static_cast<uint64_t>(CL.getInt("seed", 0));
  Opts.Chunks = CL.getString("chunks", "");
  Opts.Machine = CL.getString("machine", "");
  const std::string Backend = CL.getString("backend", "");
  Opts.Backend = Backend == "sim" ? "" : Backend;
  if (!rejectUnknownFlags(CL, ExperimentName,
                          {"scale", "procs", "seed", "chunks", "machine",
                           "backend"},
                          "--scale F [--procs N] [--seed S] [--chunks K1,K2] "
                          "[--machine NAME] [--backend sim|native]"))
    return 2;
  if (!Backend.empty() && Backend != "sim" && Backend != "native") {
    std::fprintf(stderr, "%s: unknown backend '%s' (known: sim, native)\n",
                 ExperimentName.c_str(), Backend.c_str());
    return 2;
  }
  if (Opts.wantsNativeBackend() && !E->SupportsNativeBackend) {
    std::fprintf(stderr,
                 "%s: this experiment is sim-only (its grid sweeps "
                 "simulator-priced dimensions); drop --backend native\n",
                 ExperimentName.c_str());
    return 2;
  }
  if (Opts.wantsNativeBackend() && !Opts.Machine.empty())
    std::fprintf(stderr,
                 "%s: note: the native backend runs on real hardware and "
                 "ignores MachineModel pricing; --machine %s has no effect "
                 "on native jobs\n",
                 ExperimentName.c_str(), Opts.Machine.c_str());
  if (!Opts.Machine.empty() && !rt::createMachineModel(Opts.Machine)) {
    const std::string Near =
        closestMatch(Opts.Machine, rt::machineModelNames());
    const std::string Hint =
        Near.empty() ? "" : " (did you mean '" + Near + "'?)";
    std::string Known;
    for (const std::string &Name : rt::machineModelNames())
      Known += (Known.empty() ? "" : ", ") + Name;
    std::fprintf(stderr, "%s: unknown machine model '%s'%s; known: %s\n",
                 ExperimentName.c_str(), Opts.Machine.c_str(), Hint.c_str(),
                 Known.c_str());
    return 2;
  }

  const std::vector<JobConfig> Jobs = E->MakeJobs(Opts);
  std::vector<JobResult> Results;
  Results.reserve(Jobs.size());
  for (const JobConfig &Job : Jobs) {
    JobResult R = E->RunJob(Job);
    if (!R.Ok) {
      std::fprintf(stderr, "%s: job [%s] failed: %s\n",
                   ExperimentName.c_str(), Job.label().c_str(),
                   R.Error.c_str());
      return 1;
    }
    Results.push_back(std::move(R));
  }
  return E->Render(Opts, Results);
}
