//===- exp/Cache.cpp ------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "exp/Cache.h"

#include "exp/Scheduler.h"
#include "obs/Json.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <filesystem>

using namespace dynfb;
using namespace dynfb::exp;

std::string CacheKey::hex() const { return format("%016llx",
    static_cast<unsigned long long>(Hash)); }

CacheKey exp::makeCacheKey(const Experiment &E, const JobConfig &Config,
                           const std::string &BuildHash) {
  uint64_t H = fnv1a(format("schema:%lld",
                            static_cast<long long>(ResultSchemaVersion)));
  H = fnv1a(format("exp:%016llx",
                   static_cast<unsigned long long>(E.schemaHash())),
            H);
  H = fnv1a("cfg:" + Config.canonical(), H);
  H = fnv1a("build:" + BuildHash, H);
  return CacheKey{H};
}

std::string ResultCache::path(const CacheKey &Key) const {
  return Dir + "/" + Key.hex() + ".json";
}

std::optional<JobResult> ResultCache::load(const CacheKey &Key) const {
  std::FILE *F = std::fopen(path(Key).c_str(), "rb");
  if (!F)
    return std::nullopt;
  std::string Text;
  char Buf[16 * 1024];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  const bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadError)
    return std::nullopt;

  std::string Error;
  const std::optional<obs::JsonValue> V = obs::parseJson(Text, Error);
  if (!V || V->getInt("schema", -1) != ResultSchemaVersion)
    return std::nullopt;
  const obs::JsonValue *Result = V->find("result");
  if (!Result)
    return std::nullopt;
  // Re-serialize the embedded result object and reuse the wire parser.
  JobResult R;
  std::string Wire = "{\"ok\":";
  const obs::JsonValue *Ok = Result->find("ok");
  Wire += Ok && Ok->asBool() ? "true" : "false";
  Wire += ",\"error\":\"";
  Wire += obs::jsonEscape(Result->getString("error"));
  Wire += "\",\"metrics\":{";
  if (const obs::JsonValue *Metrics = Result->find("metrics")) {
    bool First = true;
    for (const auto &[Name, Value] : Metrics->members()) {
      if (!First)
        Wire += ',';
      First = false;
      Wire += '"';
      Wire += obs::jsonEscape(Name);
      Wire += "\":";
      Wire += Value.kind() == obs::JsonValue::Kind::Number
                  ? format("%.17g", Value.asNumber())
                  : std::string("null");
    }
  }
  Wire += "}}";
  if (!jobResultFromJson(Wire, R, Error))
    return std::nullopt;
  return R;
}

bool ResultCache::store(const CacheKey &Key, const Experiment &E,
                        const JobConfig &Config,
                        const std::string &BuildHash,
                        const JobResult &Result, std::string &Error) const {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    Error = "cannot create cache directory '" + Dir + "': " + Ec.message();
    return false;
  }
  std::string Out = format("{\"schema\":%lld",
                           static_cast<long long>(ResultSchemaVersion));
  Out += ",\"build\":\"";
  Out += obs::jsonEscape(BuildHash);
  Out += "\",\"experiment\":\"";
  Out += obs::jsonEscape(E.Name);
  Out += "\",\"config\":";
  Out += Config.canonical();
  Out += ",\"result\":";
  Out += jobResultToJson(Result);
  Out += "}\n";

  // Write to a temp file and rename so concurrent readers never observe a
  // torn entry.
  const std::string Final = path(Key);
  const std::string Tmp = Final + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    Error = "cannot open '" + Tmp + "' for writing";
    return false;
  }
  const size_t Written = std::fwrite(Out.data(), 1, Out.size(), F);
  const int CloseRc = std::fclose(F);
  if (Written != Out.size() || CloseRc != 0) {
    Error = "failed writing '" + Tmp + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Final.c_str()) != 0) {
    Error = "failed renaming '" + Tmp + "' into place";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}
