//===- exp/Diff.h - Noise-aware regression gate -----------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The regression gate behind `dynfb-bench diff`: compares two result files
/// metric by metric. Jobs are matched by (experiment, canonical config);
/// metrics are cost-like (seconds, overheads, pair counts) and gate on
/// increase, except metrics named `*.ok` (0/1 acceptance flags) and
/// `*_per_sec` (throughputs) which gate on decrease. Thresholds are
/// noise-aware: a candidate only regresses when
/// it exceeds baseline * (1 + rel) + abs, with per-metric-suffix overrides
/// for known-noisier series, so simulator-deterministic metrics can gate
/// tightly while genuinely noisy ones get slack.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_EXP_DIFF_H
#define DYNFB_EXP_DIFF_H

#include "exp/Result.h"

#include <string>
#include <vector>

namespace dynfb::exp {

struct DiffOptions {
  /// Default relative tolerance (0.05 = a 5% cost increase passes).
  double RelTol = 0.05;
  /// Absolute slack added on top, absorbing noise near zero.
  double AbsTol = 1e-9;
  /// Per-metric overrides, matched by metric-name suffix ("seconds=0.10");
  /// the longest matching suffix wins.
  std::vector<std::pair<std::string, double>> SuffixRelTol;
  /// Metrics/jobs present in the baseline but missing from the candidate
  /// fail the gate (new candidate metrics never do).
  bool FailOnMissing = true;

  double relTolFor(const std::string &MetricName) const;
};

/// One compared metric.
struct MetricDelta {
  std::string Key;    ///< "<experiment> <config> <metric>".
  double Base = 0;
  double Cand = 0;
  double RelChange = 0; ///< (cand - base) / |base|; 0 when base == 0.
  bool Regressed = false;
  bool Improved = false;
};

struct DiffReport {
  std::vector<MetricDelta> Deltas;     ///< Regressions first, worst first.
  std::vector<std::string> MissingJobs;
  std::vector<std::string> MissingMetrics;
  std::vector<std::string> FailedJobs; ///< Candidate jobs not status ok.
  size_t Compared = 0;
  size_t Regressions = 0;
  size_t Improvements = 0;

  bool ok(const DiffOptions &Opts) const {
    return Regressions == 0 && FailedJobs.empty() &&
           (!Opts.FailOnMissing ||
            (MissingJobs.empty() && MissingMetrics.empty()));
  }
  std::string renderText(const DiffOptions &Opts) const;
};

/// Compares \p Cand against \p Base under \p Opts.
DiffReport diffResults(const ResultFile &Base, const ResultFile &Cand,
                       const DiffOptions &Opts = {});

} // namespace dynfb::exp

#endif // DYNFB_EXP_DIFF_H
