//===- exp/Cache.h - Content-addressed result cache -------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed result cache of src/exp. A job's cache key is the
/// hash of everything that determines its result: the result schema
/// version, the experiment's schema hash (name, suite and metric names),
/// the job config's canonical JSON and the build hash. Entries are single
/// JSON files named by the key under a cache directory, so re-running a
/// sweep after an unrelated edit (same build hash) is incremental: every
/// unchanged job is served from the cache without forking a worker.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_EXP_CACHE_H
#define DYNFB_EXP_CACHE_H

#include "exp/Experiment.h"

#include <optional>
#include <string>

namespace dynfb::exp {

/// A computed cache key.
struct CacheKey {
  uint64_t Hash = 0;
  std::string hex() const; ///< 16 lowercase hex digits, the file stem.
};

/// Derives the key of (\p E, \p Config) under \p BuildHash. Any change to
/// the experiment's metric schema, any config field (app, policy, procs,
/// scale, seed, machine and its full "machine_params" parameter set, ...),
/// the result schema version or the build moves the key -- so the same grid
/// on a different machine model, or the same model with one tweaked cost
/// parameter, never aliases a cached result.
CacheKey makeCacheKey(const Experiment &E, const JobConfig &Config,
                      const std::string &BuildHash);

/// A directory of cached job results, one JSON file per key.
class ResultCache {
public:
  /// \p Dir is created lazily on the first store.
  explicit ResultCache(std::string Dir) : Dir(std::move(Dir)) {}

  const std::string &dir() const { return Dir; }

  /// Loads the entry of \p Key; nullopt on miss, unreadable entry or
  /// schema mismatch (both treated as a miss, never an error).
  std::optional<JobResult> load(const CacheKey &Key) const;

  /// Stores \p Result under \p Key (with provenance: experiment, config,
  /// build). Returns false with \p Error set on I/O failure.
  bool store(const CacheKey &Key, const Experiment &E,
             const JobConfig &Config, const std::string &BuildHash,
             const JobResult &Result, std::string &Error) const;

private:
  std::string path(const CacheKey &Key) const;
  std::string Dir;
};

} // namespace dynfb::exp

#endif // DYNFB_EXP_CACHE_H
