//===- exp/Experiment.cpp -------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "exp/Experiment.h"

#include "obs/Json.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>

using namespace dynfb;
using namespace dynfb::exp;

void JobConfig::set(const std::string &Key, const std::string &Value) {
  for (auto &[K, V] : KVs)
    if (K == Key) {
      V = Value;
      return;
    }
  KVs.emplace_back(Key, Value);
}

void JobConfig::setInt(const std::string &Key, int64_t Value) {
  set(Key, format("%lld", static_cast<long long>(Value)));
}

void JobConfig::setDouble(const std::string &Key, double Value) {
  // Shortest representation that round-trips, so 0.125 canonicalizes as
  // "0.125" rather than a 17-digit expansion.
  std::string S = format("%g", Value);
  if (std::strtod(S.c_str(), nullptr) != Value)
    S = format("%.17g", Value);
  set(Key, S);
}

const std::string *JobConfig::find(const std::string &Key) const {
  for (const auto &[K, V] : KVs)
    if (K == Key)
      return &V;
  return nullptr;
}

std::string JobConfig::getString(const std::string &Key,
                                 const std::string &Default) const {
  const std::string *V = find(Key);
  return V ? *V : Default;
}

int64_t JobConfig::getInt(const std::string &Key, int64_t Default) const {
  const std::string *V = find(Key);
  return V ? std::strtoll(V->c_str(), nullptr, 10) : Default;
}

double JobConfig::getDouble(const std::string &Key, double Default) const {
  const std::string *V = find(Key);
  return V ? std::strtod(V->c_str(), nullptr) : Default;
}

std::string JobConfig::canonical() const {
  std::vector<std::pair<std::string, std::string>> Sorted = KVs;
  std::sort(Sorted.begin(), Sorted.end());
  std::string Out = "{";
  for (const auto &[K, V] : Sorted) {
    if (Out.size() > 1)
      Out += ',';
    Out += '"';
    Out += obs::jsonEscape(K);
    Out += "\":\"";
    Out += obs::jsonEscape(V);
    Out += '"';
  }
  Out += '}';
  return Out;
}

std::string JobConfig::label() const {
  // Long values (the machine parameter dump, fault specs) would drown the
  // progress line; elide their middle, keeping the start that identifies
  // them. Identity stays with canonical(), which never truncates.
  constexpr size_t MaxValueChars = 48;
  std::string Out;
  for (const auto &[K, V] : KVs) {
    if (!Out.empty())
      Out += ',';
    Out += K;
    Out += '=';
    if (V.size() > MaxValueChars)
      Out += V.substr(0, MaxValueChars - 3) + "...";
    else
      Out += V;
  }
  return Out;
}

double JobResult::metric(const std::string &Name, double Default) const {
  for (const Metric &M : Metrics)
    if (M.Name == Name)
      return M.Value;
  return Default;
}

bool JobResult::hasMetric(const std::string &Name) const {
  for (const Metric &M : Metrics)
    if (M.Name == Name)
      return true;
  return false;
}

uint64_t exp::fnv1a(const std::string &S, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t Experiment::schemaHash() const {
  uint64_t H = fnv1a(Name);
  H = fnv1a(Suite, H);
  for (const std::string &M : MetricNames)
    H = fnv1a("|" + M, H);
  return H;
}

void ExperimentRegistry::add(Experiment E) {
  DYNFB_CHECK(!E.Name.empty(), "experiment must be named");
  DYNFB_CHECK(find(E.Name) == nullptr, "duplicate experiment registration");
  Experiments.push_back(std::move(E));
}

const Experiment *ExperimentRegistry::find(const std::string &Name) const {
  for (const Experiment &E : Experiments)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

std::vector<const Experiment *>
ExperimentRegistry::suite(const std::string &Suite) const {
  std::vector<const Experiment *> Out;
  for (const Experiment &E : Experiments)
    if (Suite == "all" || E.Suite == Suite)
      Out.push_back(&E);
  return Out;
}

ExperimentRegistry &exp::registry() {
  static ExperimentRegistry R;
  return R;
}
