//===- exp/Result.h - Machine-readable result store -------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schema-versioned machine-readable summary `dynfb-bench run --out`
/// emits (BENCH_results.json): a header (schema, build hash, suite, scale,
/// seed) plus one record per job with its experiment, full config, settle
/// status, cache provenance and metrics. `dynfb-bench diff` consumes two of
/// these files (see Diff.h). The format is a single JSON document, parsed
/// with src/obs JSON; unknown keys are ignored so newer writers stay
/// readable.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_EXP_RESULT_H
#define DYNFB_EXP_RESULT_H

#include "exp/Scheduler.h"

#include <optional>
#include <string>
#include <vector>

namespace dynfb::exp {

/// One job's record in a result file.
struct JobRecord {
  std::string Experiment;
  JobConfig Config;
  JobStatus Status = JobStatus::Ok;
  unsigned Attempts = 1;
  bool FromCache = false;
  double WallSeconds = 0;
  JobResult Result;

  /// experiment + canonical config: the identity diff matches jobs by.
  std::string key() const { return Experiment + " " + Config.canonical(); }
};

/// A whole `dynfb-bench run` summary.
struct ResultFile {
  int64_t Schema = ResultSchemaVersion;
  std::string Build;
  std::string Suite;
  double ScaleFactor = 1.0;
  uint64_t Seed = 0;
  /// The invocation's machine model name (the per-job configs additionally
  /// carry the model's full parameter set as "machine_params").
  std::string Machine = "dash-flat";
  /// The invocation's execution backend (v3; v2 files default to "sim").
  std::string Backend = "sim";
  std::vector<JobRecord> Jobs;

  size_t cachedJobs() const;
  size_t failedJobs() const; ///< Jobs whose status is not Ok.
};

/// Serializes \p File as a JSON document (trailing newline included).
std::string toJson(const ResultFile &File);

/// Parses a result file; nullopt with \p Error set on malformed input or
/// an unsupported schema.
std::optional<ResultFile> parseResultFile(const std::string &Text,
                                          std::string &Error);

} // namespace dynfb::exp

#endif // DYNFB_EXP_RESULT_H
