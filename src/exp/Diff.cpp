//===- exp/Diff.cpp -------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "exp/Diff.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace dynfb;
using namespace dynfb::exp;

namespace {

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// `*.ok` metrics are 0/1 acceptance flags and `*_per_sec` metrics are
/// throughputs: higher is better for both.
bool higherIsBetter(const std::string &Name) {
  return endsWith(Name, ".ok") || Name == "ok" || endsWith(Name, "_per_sec");
}

} // namespace

double DiffOptions::relTolFor(const std::string &MetricName) const {
  double Tol = RelTol;
  size_t BestLen = 0;
  for (const auto &[Suffix, T] : SuffixRelTol)
    if (endsWith(MetricName, Suffix) && Suffix.size() >= BestLen) {
      BestLen = Suffix.size();
      Tol = T;
    }
  return Tol;
}

DiffReport exp::diffResults(const ResultFile &Base, const ResultFile &Cand,
                            const DiffOptions &Opts) {
  DiffReport Report;

  std::map<std::string, const JobRecord *> CandJobs;
  for (const JobRecord &J : Cand.Jobs) {
    CandJobs[J.key()] = &J;
    if (J.Status != JobStatus::Ok)
      Report.FailedJobs.push_back(J.key() + ": " + J.Result.Error);
  }

  for (const JobRecord &BaseJob : Base.Jobs) {
    if (BaseJob.Status != JobStatus::Ok)
      continue; // A broken baseline job gates nothing.
    const auto It = CandJobs.find(BaseJob.key());
    if (It == CandJobs.end()) {
      Report.MissingJobs.push_back(BaseJob.key());
      continue;
    }
    const JobRecord &CandJob = *It->second;
    if (CandJob.Status != JobStatus::Ok)
      continue; // Already reported via FailedJobs.

    for (const Metric &M : BaseJob.Result.Metrics) {
      if (!std::isfinite(M.Value))
        continue; // NaN sentinel (unmeasurable): nothing to gate on.
      if (!CandJob.Result.hasMetric(M.Name)) {
        Report.MissingMetrics.push_back(BaseJob.key() + " " + M.Name);
        continue;
      }
      const double CandValue = CandJob.Result.metric(M.Name);
      MetricDelta D;
      D.Key = BaseJob.Experiment + " " + BaseJob.Config.label() + " " +
              M.Name;
      D.Base = M.Value;
      D.Cand = CandValue;
      D.RelChange = M.Value != 0.0
                        ? (CandValue - M.Value) / std::fabs(M.Value)
                        : (CandValue == 0.0 ? 0.0 : INFINITY);
      const double Rel = Opts.relTolFor(M.Name);
      if (!std::isfinite(CandValue)) {
        D.Regressed = true; // A measurable metric became unmeasurable.
      } else if (higherIsBetter(M.Name)) {
        D.Regressed = CandValue < M.Value * (1.0 - Rel) - Opts.AbsTol;
        D.Improved = CandValue > M.Value * (1.0 + Rel) + Opts.AbsTol;
      } else {
        D.Regressed = CandValue > M.Value * (1.0 + Rel) + Opts.AbsTol;
        D.Improved = CandValue < M.Value * (1.0 - Rel) - Opts.AbsTol;
      }
      Report.Compared += 1;
      Report.Regressions += D.Regressed ? 1 : 0;
      Report.Improvements += D.Improved ? 1 : 0;
      Report.Deltas.push_back(std::move(D));
    }
  }

  std::stable_sort(Report.Deltas.begin(), Report.Deltas.end(),
                   [](const MetricDelta &A, const MetricDelta &B) {
                     if (A.Regressed != B.Regressed)
                       return A.Regressed;
                     return std::fabs(A.RelChange) > std::fabs(B.RelChange);
                   });
  return Report;
}

std::string DiffReport::renderText(const DiffOptions &Opts) const {
  std::string Out;
  Out += format("compared %zu metrics: %zu regressions, %zu improvements\n",
                Compared, Regressions, Improvements);
  size_t Shown = 0;
  for (const MetricDelta &D : Deltas) {
    if (!D.Regressed && !D.Improved)
      continue;
    if (++Shown > 40) {
      Out += format("  (%zu more changed metrics not shown)\n",
                    Regressions + Improvements - (Shown - 1));
      break;
    }
    Out += format("  %s %s: %.6g -> %.6g (%+.1f%%, tol %.1f%%)\n",
                  D.Regressed ? "REGRESSION" : "improvement",
                  D.Key.c_str(), D.Base, D.Cand, 100.0 * D.RelChange,
                  100.0 * Opts.relTolFor(D.Key.substr(
                              D.Key.find_last_of(' ') + 1)));
  }
  for (const std::string &J : FailedJobs)
    Out += "  FAILED JOB " + J + "\n";
  for (const std::string &J : MissingJobs)
    Out += "  MISSING JOB " + J + "\n";
  for (const std::string &M : MissingMetrics)
    Out += "  MISSING METRIC " + M + "\n";
  Out += ok(Opts) ? "gate: PASS\n" : "gate: FAIL\n";
  return Out;
}
