//===- exp/Scheduler.h - Fork-isolated parallel job scheduler ---*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel job scheduler of src/exp: fans a list of jobs out across a
/// pool of forked worker processes. Each job runs in its own child process
/// (a crashing or aborting job never takes down the sweep), is subject to a
/// per-job wall-clock timeout (the parent SIGKILLs overrunning children)
/// and bounded retry, and reports its JobResult back over a pipe. Jobs are
/// launched in index order and results are returned in index order
/// regardless of completion order, so a sweep's output is deterministic
/// given deterministic jobs.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_EXP_SCHEDULER_H
#define DYNFB_EXP_SCHEDULER_H

#include "exp/Experiment.h"

#include <functional>
#include <string>
#include <vector>

namespace dynfb::exp {

struct SchedulerOptions {
  /// Concurrent worker processes; 0 = the host's hardware concurrency.
  unsigned Workers = 0;
  /// Per-attempt wall-clock timeout in seconds; 0 = none.
  double TimeoutSeconds = 0;
  /// Per-job timeout override; when set and returning > 0 for a job, it
  /// replaces TimeoutSeconds for that job. Native-backend jobs use this:
  /// their budget is real wall clock derived from the workload scale, not
  /// the sim-tuned invocation-wide default.
  std::function<double(size_t Job)> TimeoutForJob;
  /// Per-job tag appended to timeout and crash diagnostics (e.g. "native
  /// backend"); empty/unset adds nothing.
  std::function<std::string(size_t Job)> JobTag;
  /// Additional attempts after a crash, timeout or nonzero child exit.
  unsigned Retries = 0;
  /// Called (from the parent, in completion order) after each job settles;
  /// for progress streaming.
  std::function<void(size_t Job, const struct JobOutcome &)> OnSettled;
};

enum class JobStatus {
  Ok,       ///< Child ran the job and returned a result with Ok=true.
  Failed,   ///< Job returned Ok=false (a job-level diagnostic, not a crash).
  Crashed,  ///< Child died on a signal or exited without reporting.
  TimedOut, ///< Child exceeded the per-job timeout and was killed.
};

const char *jobStatusName(JobStatus S);

/// How one job settled after up to 1+Retries attempts.
struct JobOutcome {
  JobStatus Status = JobStatus::Ok;
  unsigned Attempts = 0;     ///< Attempts actually made (>= 1).
  bool FromCache = false;    ///< Set by the caching layer, not the scheduler.
  double WallSeconds = 0;    ///< Wall clock of the final attempt.
  JobResult Result;          ///< Valid when Status is Ok or Failed.

  bool ok() const { return Status == JobStatus::Ok; }
};

/// Runs \p Run(job, attempt) for each job in [0, NumJobs) in forked child
/// processes, at most Opts.Workers at a time, and returns the outcomes in
/// job order. \p Run executes in the child; everything it observes of the
/// parent is a copy, and its JobResult is serialized back over a pipe.
std::vector<JobOutcome>
runJobs(size_t NumJobs,
        const std::function<JobResult(size_t Job, unsigned Attempt)> &Run,
        const SchedulerOptions &Opts = {});

/// JobResult <-> JSON, the pipe and cache wire format.
std::string jobResultToJson(const JobResult &R);
bool jobResultFromJson(const std::string &Text, JobResult &Out,
                       std::string &Error);

} // namespace dynfb::exp

#endif // DYNFB_EXP_SCHEDULER_H
