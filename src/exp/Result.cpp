//===- exp/Result.cpp -----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "exp/Result.h"

#include "obs/Json.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace dynfb;
using namespace dynfb::exp;

size_t ResultFile::cachedJobs() const {
  size_t N = 0;
  for (const JobRecord &J : Jobs)
    N += J.FromCache ? 1 : 0;
  return N;
}

size_t ResultFile::failedJobs() const {
  size_t N = 0;
  for (const JobRecord &J : Jobs)
    N += J.Status == JobStatus::Ok ? 0 : 1;
  return N;
}

std::string exp::toJson(const ResultFile &File) {
  std::string Out = format("{\"schema\":%lld",
                           static_cast<long long>(File.Schema));
  Out += ",\"build\":\"";
  Out += obs::jsonEscape(File.Build);
  Out += "\",\"suite\":\"";
  Out += obs::jsonEscape(File.Suite);
  Out += format("\",\"scale\":%g", File.ScaleFactor);
  Out += format(",\"seed\":%llu",
                static_cast<unsigned long long>(File.Seed));
  Out += ",\"machine\":\"";
  Out += obs::jsonEscape(File.Machine);
  Out += "\",\"backend\":\"";
  Out += obs::jsonEscape(File.Backend.empty() ? "sim" : File.Backend);
  Out += "\",\"jobs\":[";
  for (size_t I = 0; I < File.Jobs.size(); ++I) {
    const JobRecord &J = File.Jobs[I];
    if (I)
      Out += ',';
    Out += "\n {\"experiment\":\"";
    Out += obs::jsonEscape(J.Experiment);
    Out += "\",\"status\":\"";
    Out += jobStatusName(J.Status);
    Out += format("\",\"attempts\":%u", J.Attempts);
    Out += J.FromCache ? ",\"from_cache\":true" : ",\"from_cache\":false";
    Out += format(",\"wall_s\":%.6f", J.WallSeconds);
    Out += ",\"config\":";
    Out += J.Config.canonical();
    if (!J.Result.Error.empty()) {
      Out += ",\"error\":\"";
      Out += obs::jsonEscape(J.Result.Error);
      Out += '"';
    }
    Out += ",\"metrics\":{";
    for (size_t M = 0; M < J.Result.Metrics.size(); ++M) {
      if (M)
        Out += ',';
      Out += '"';
      Out += obs::jsonEscape(J.Result.Metrics[M].Name);
      Out += "\":";
      Out += std::isfinite(J.Result.Metrics[M].Value)
                 ? format("%.17g", J.Result.Metrics[M].Value)
                 : std::string("null");
    }
    Out += "}}";
  }
  Out += "\n]}\n";
  return Out;
}

std::optional<ResultFile> exp::parseResultFile(const std::string &Text,
                                               std::string &Error) {
  const std::optional<obs::JsonValue> V = obs::parseJson(Text, Error);
  if (!V)
    return std::nullopt;
  if (V->kind() != obs::JsonValue::Kind::Object) {
    Error = "result file is not a JSON object";
    return std::nullopt;
  }
  ResultFile File;
  File.Schema = V->getInt("schema", -1);
  if (File.Schema < MinResultSchemaVersion ||
      File.Schema > ResultSchemaVersion) {
    Error = format("unsupported result schema %lld (expected %lld..%lld)",
                   static_cast<long long>(File.Schema),
                   static_cast<long long>(MinResultSchemaVersion),
                   static_cast<long long>(ResultSchemaVersion));
    return std::nullopt;
  }
  File.Build = V->getString("build");
  File.Suite = V->getString("suite");
  File.ScaleFactor = V->getNumber("scale", 1.0);
  File.Seed = static_cast<uint64_t>(V->getInt("seed"));
  File.Machine = V->getString("machine", "dash-flat");
  File.Backend = V->getString("backend", "sim");

  const obs::JsonValue *Jobs = V->find("jobs");
  if (!Jobs || Jobs->kind() != obs::JsonValue::Kind::Array) {
    Error = "result file has no jobs array";
    return std::nullopt;
  }
  for (const obs::JsonValue &J : Jobs->items()) {
    JobRecord R;
    R.Experiment = J.getString("experiment");
    const std::string Status = J.getString("status");
    if (Status == "ok")
      R.Status = JobStatus::Ok;
    else if (Status == "failed")
      R.Status = JobStatus::Failed;
    else if (Status == "crashed")
      R.Status = JobStatus::Crashed;
    else if (Status == "timeout")
      R.Status = JobStatus::TimedOut;
    else {
      Error = "job with unknown status '" + Status + "'";
      return std::nullopt;
    }
    R.Attempts = static_cast<unsigned>(J.getInt("attempts", 1));
    const obs::JsonValue *FromCache = J.find("from_cache");
    R.FromCache = FromCache && FromCache->asBool();
    R.WallSeconds = J.getNumber("wall_s");
    if (const obs::JsonValue *Config = J.find("config"))
      for (const auto &[K, Val] : Config->members())
        R.Config.set(K, Val.asString());
    R.Result.Ok = R.Status == JobStatus::Ok;
    R.Result.Error = J.getString("error");
    if (const obs::JsonValue *Metrics = J.find("metrics"))
      for (const auto &[Name, Val] : Metrics->members())
        R.Result.add(Name, Val.kind() == obs::JsonValue::Kind::Number
                               ? Val.asNumber()
                               : std::nan(""));
    File.Jobs.push_back(std::move(R));
  }
  return File;
}
