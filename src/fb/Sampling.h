//===- fb/Sampling.h - Pluggable sampling-phase strategies ------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sampling-phase strategy seam of the feedback controller. A strategy
/// owns two decisions the paper's loop hard-codes: which version to measure
/// next (and for how long), and when the sampling phase is over. The
/// controller keeps everything else -- running intervals, logging,
/// degenerate-measurement handling, quarantine, hysteresis, the production
/// phase -- so a strategy is a pure search policy over version indices.
///
/// Protocol, per sampling phase:
///
///   beginPhase(Candidates, Labels)       // quarantined versions excluded
///   while (auto Req = next()) {
///     measure Req->Version for Req->SliceNanos
///     estimate = report(Req->Version, measured overhead or nullopt)
///     // controller stores *estimate as the version's sampled overhead
///   }                                    // next() == nullopt ends the phase
///
/// disqualify(V) tells the strategy a version was quarantined mid-phase and
/// must not be requested again. takeEvents() drains the prune/promote
/// events a partial-sampling strategy emits; the controller logs them and
/// resets the sampled overhead of every pruned version (which is what keeps
/// switch hysteresis from holding a pruned incumbent).
///
/// Three strategies ship (createSamplingStrategy):
///
///  - Exhaustive: the paper's loop, extracted. One full-length measurement
///    per candidate, in sampling order. Byte-identical to the historical
///    controller: same intervals, same decisions, same logs.
///  - Halving: successive halving. The phase budget (SearchBudgetFraction
///    of exhaustive's NumVersions * TargetSamplingNanos) is split over
///    ceil(log2 N) rounds; each round measures every survivor with one
///    equal slice of the round budget and prunes the worst half, until one
///    survivor remains.
///  - Ucb: UCB1 over running overhead means, seeded with a MachineModel
///    cost prior (one pseudo-observation per version). The phase budget
///    (SearchBudgetFraction of exhaustive's cost) is spent in short
///    slices: two thirds cover every version once, cheapest-prior first,
///    and the rest goes to the arms UCB considers promising, so the
///    eventual winner carries the most precise estimate.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_FB_SAMPLING_H
#define DYNFB_FB_SAMPLING_H

#include "fb/Config.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dynfb::fb {

/// Canonical strategy name ("exhaustive", "halving", "ucb").
const char *samplerName(SamplerKind K);

/// Parses a strategy name; nullopt when unknown.
std::optional<SamplerKind> parseSamplerName(const std::string &Name);

/// All strategy names, in declaration order (for listings and did-you-mean
/// hints).
std::vector<std::string> samplerNames();

/// One measurement the strategy asks the controller to take.
struct SampleRequest {
  unsigned Version = 0;
  rt::Nanos SliceNanos = 0;
};

/// A search decision a partial-sampling strategy took: a version pruned
/// from (or promoted into the next round of) the current phase's search.
struct SearchEvent {
  enum class Kind { Prune, Promote };
  Kind K = Kind::Prune;
  unsigned Version = 0;
  /// The overhead estimate the decision was taken on (NaN when the version
  /// was never measured, e.g. an unexplored arm at budget exhaustion).
  double Overhead = 0.0;
  /// Search round (halving) or pull count (ucb) at decision time.
  unsigned Round = 0;
};

/// Abstract sampling-phase search policy. Not thread-safe; one instance
/// drives one section's phases sequentially.
class SamplingStrategy {
public:
  virtual ~SamplingStrategy();

  /// Starts a new sampling phase over \p Candidates (version indices in
  /// sampling order, already filtered of quarantined versions). \p Labels
  /// holds every version's display label, indexed by version.
  virtual void beginPhase(const std::vector<unsigned> &Candidates,
                          const std::vector<std::string> &Labels) = 0;

  /// The next measurement to take; nullopt ends the sampling phase.
  virtual std::optional<SampleRequest> next() = 0;

  /// Reports the measurement taken for the most recent next() request
  /// (nullopt = degenerate, discarded by the controller). Returns the
  /// strategy's current overhead estimate for \p V -- what the controller
  /// stores as the version's sampled overhead -- or nullopt for "no
  /// estimate". Exhaustive passes the measurement through unchanged.
  virtual std::optional<double> report(unsigned V,
                                       std::optional<double> Overhead) = 0;

  /// Excludes \p V from the rest of the phase (quarantined mid-phase).
  virtual void disqualify(unsigned V) = 0;

  /// Measurements still planned if the phase ended right now (the
  /// controller's early cut-off accounting).
  virtual unsigned pendingCount() const = 0;

  /// Drains the prune/promote events accumulated since the last call.
  std::vector<SearchEvent> takeEvents() {
    std::vector<SearchEvent> Out;
    Out.swap(Events);
    return Out;
  }

protected:
  std::vector<SearchEvent> Events;
};

/// Creates the strategy \p Config selects. \p Config must outlive the
/// returned strategy (the Ucb strategy keeps Config.Machine).
std::unique_ptr<SamplingStrategy>
createSamplingStrategy(const FeedbackConfig &Config);

} // namespace dynfb::fb

#endif // DYNFB_FB_SAMPLING_H
