//===- fb/Controller.h - The dynamic feedback algorithm ---------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core technique. A parallel section executes an alternating
/// sequence of sampling and production phases: each sampling phase runs
/// every candidate code version for a target sampling interval and measures
/// its total overhead ((locking + waiting) / execution time, Section 4.3);
/// each production phase runs the version with the least sampled overhead
/// for a target production interval; the computation then resamples,
/// adapting dynamically if the best version has changed. Switching is
/// synchronous at iteration-boundary switch points (Section 4.1).
/// Optional refinements (Section 4.5): early cut-off of the sampling phase
/// and sampling-order selection from past executions.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_FB_CONTROLLER_H
#define DYNFB_FB_CONTROLLER_H

#include "fb/Config.h"
#include "fb/Sampling.h"
#include "obs/DecisionLog.h"
#include "rt/IntervalRunner.h"
#include "support/Statistics.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dynfb::fb {

/// Cross-execution memory: the best version observed per section, used by
/// the policy-ordering refinement. Keyed by descriptor name (the version
/// label, e.g. "Bounded/Aggressive" or "Original+chunk8") rather than raw
/// index, so recorded knowledge survives a reordered or extended version
/// space: the controller re-resolves the name against the current space
/// before every sampling phase.
class PolicyHistory {
public:
  std::optional<std::string> lastBest(const std::string &Section) const {
    auto It = Best.find(Section);
    if (It == Best.end())
      return std::nullopt;
    return It->second;
  }
  void recordBest(const std::string &Section, std::string VersionName) {
    Best[Section] = std::move(VersionName);
  }

private:
  std::map<std::string, std::string> Best;
};

/// Everything observed while executing one occurrence of a parallel section
/// under dynamic feedback.
struct SectionExecutionTrace {
  std::string SectionName;
  rt::Nanos StartNanos = 0;
  rt::Nanos EndNanos = 0;

  /// Aggregate measurements over the whole occurrence (sampling and
  /// production phases).
  rt::OverheadStats Total;

  /// Sampled overhead time series, one series per version label: the data
  /// behind the paper's Figures 5, 8 and 9.
  SeriesSet SampledOverheads;

  /// Version chosen for each production phase, in order.
  std::vector<unsigned> ChosenVersions;

  /// Effective sampling interval statistics per version label (Table 5
  /// and Tables 11/12).
  std::map<std::string, RunningStat> EffectiveSamplingByVersion;

  unsigned SamplingPhases = 0;
  unsigned SampledIntervals = 0;
  unsigned SkippedByCutoff = 0; ///< Versions not sampled due to early cut-off.

  // Robustness accounting (all zero in an unperturbed run with the
  // robustness knobs at their defaults).
  unsigned DegenerateIntervals = 0; ///< Zero-duration / unmeasurable
                                    ///< intervals discarded instead of
                                    ///< entering the statistics.
  unsigned EarlyResamples = 0;      ///< Production intervals cut short by
                                    ///< overhead drift.
  unsigned HysteresisHolds = 0;     ///< Switches suppressed by hysteresis.

  // Resilience accounting (all zero unless the quarantine / watchdog knobs
  // are enabled -- see FeedbackConfig).
  unsigned Quarantines = 0;       ///< Versions quarantined (or
                                  ///< re-quarantined after a bad re-probe).
  unsigned Reprobes = 0;          ///< Quarantined versions re-probed and
                                  ///< cleared back into the sampling pool.
  unsigned WatchdogResamples = 0; ///< Production phases cut short by the
                                  ///< bad-interval watchdog.
  unsigned DegradedPhases = 0;    ///< Sampling phases skipped because every
                                  ///< version was quarantined (the
                                  ///< last-known-good version was pinned).

  // Version-search accounting (all zero under the default exhaustive
  // sampler -- see FeedbackConfig::Sampler).
  unsigned Prunes = 0;   ///< Versions the sampling strategy dropped from a
                         ///< phase's search.
  unsigned Promotes = 0; ///< Versions advanced into later search rounds (or
                         ///< made provisional winner).
  /// Effective time spent inside sampling intervals, the cost a sub-linear
  /// strategy reduces (exhaustive spends ~NumVersions *
  /// TargetSamplingNanos per phase).
  rt::Nanos SampledNanos = 0;

  rt::Nanos durationNanos() const { return EndNanos - StartNanos; }

  /// The version used for the most production time (the de-facto decision).
  /// Checks the trace invariants (see assertInvariants).
  std::optional<unsigned> dominantVersion() const;

  /// Checked (release-mode) invariants every published trace satisfies: no
  /// NaN/inf anywhere, every sampled overhead within [0, 1], non-negative
  /// aggregate measurements and duration. The controller verifies these
  /// before returning a trace, so garbage measurements can never escape
  /// into the paper's tables and figures.
  void assertInvariants() const;
};

/// Drives one or more section occurrences with the dynamic feedback
/// algorithm.
class FeedbackController {
public:
  /// \p Log, when non-null, receives one event per sampled interval and per
  /// production decision (see obs::DecisionLog); it must outlive the
  /// controller. Logging never alters the algorithm.
  explicit FeedbackController(FeedbackConfig Config,
                              PolicyHistory *History = nullptr,
                              obs::DecisionLog *Log = nullptr)
      : Config(Config), History(History), Log(Log) {}

  /// Executes the section behind \p Runner to completion. With
  /// SpanSectionExecutions set, phase state persists inside the controller
  /// across calls for the same section name (Section 4.4's extension).
  SectionExecutionTrace executeSection(rt::IntervalRunner &Runner,
                                       const std::string &SectionName);

  /// The order in which versions are sampled, given the configuration and
  /// any history for this section (exposed for tests). \p Labels holds the
  /// display label of every version, in version order; history entries are
  /// resolved against it by name.
  std::vector<unsigned> samplingOrder(const std::vector<std::string> &Labels,
                                      const std::string &SectionName) const;

private:
  /// Cross-occurrence phase state for one section (spanning mode).
  struct SpanState {
    enum class PhaseKind { Sampling, Production } Phase =
        PhaseKind::Sampling;
    /// Sampling: the strategy driving the phase, its in-flight request, the
    /// phase's candidate order (kept for fallback decisions) and the
    /// per-version overhead estimates accumulated so far.
    std::unique_ptr<SamplingStrategy> Strategy;
    std::optional<SampleRequest> Current;
    std::vector<unsigned> Order;
    std::vector<std::optional<double>> Overheads;
    rt::OverheadStats CurrentIntervalStats;
    /// Remaining budget of the interval currently in progress.
    rt::Nanos Remaining = 0;
    /// Production: the version being run.
    unsigned ProductionVersion = 0;
    /// The sampled overhead the production version was chosen on (drift
    /// detection baseline); unset when production was entered by fallback.
    std::optional<double> ProductionOverhead;
    /// Last version that completed a production decision: the fallback when
    /// a sampling phase yields no usable measurement, and the incumbent for
    /// switch hysteresis.
    std::optional<unsigned> LastGood;
  };

  /// Per-version health tracked by the quarantine mechanism.
  struct VersionHealth {
    /// Sampling-phase numbers (1-based) of recent strikes; pruned to the
    /// sliding QuarantineWindowPhases window.
    std::vector<unsigned> StrikePhases;
    bool Quarantined = false;
    /// First phase number at which a quarantined version is re-probed.
    unsigned ReleasePhase = 0;
    /// Current quarantine duration; doubles per failed re-probe up to
    /// QuarantineBackoffMaxPhases, resets on a healthy re-probe.
    unsigned BackoffPhases = 0;
  };

  /// Cross-phase resilience state for one section (quarantine + watchdog).
  /// Only populated when the corresponding knobs are enabled.
  struct ResilienceState {
    unsigned PhaseCounter = 0; ///< Sampling phases started (1-based).
    std::vector<VersionHealth> Versions;
    unsigned WatchdogBad = 0;       ///< Current consecutive-bad-interval run.
    unsigned WatchdogThreshold = 0; ///< Escalated streak requirement;
                                    ///< 0 means Config.WatchdogBadSlices.
  };

  bool quarantineEnabled() const { return Config.QuarantineStrikes > 0; }
  bool watchdogEnabled() const { return Config.WatchdogBadSlices > 0; }

  /// Fetches (creating on first use) the resilience state for a section,
  /// sized for \p NumVersions.
  ResilienceState &resilienceState(const std::string &SectionName,
                                   size_t NumVersions);

  /// True when \p V is quarantined and not yet due for its re-probe.
  static bool isExcluded(const ResilienceState &RS, unsigned V);

  /// Feeds one sampling measurement (nullopt = degenerate) into the
  /// quarantine tracker: counts strikes, quarantines on the Kth strike in
  /// the window, and resolves re-probes of quarantined versions. Returns
  /// true when the version is quarantined after this measurement, in which
  /// case the caller must exclude it from the phase's decision.
  bool noteSampleHealth(const std::string &SectionName, ResilienceState &RS,
                        unsigned V, const std::string &Label,
                        std::optional<double> Overhead, rt::Nanos Now,
                        SectionExecutionTrace &Trace);

  /// Feeds one production interval measurement into the watchdog. Returns
  /// true when the bad-interval streak reached the (escalating) threshold
  /// and the production phase must be cut short for an early resample.
  bool noteProductionHealth(const std::string &SectionName,
                            ResilienceState &RS, unsigned V,
                            const std::string &Label,
                            std::optional<double> Overhead, rt::Nanos Now,
                            SectionExecutionTrace &Trace);

  SectionExecutionTrace executeSpanning(rt::IntervalRunner &Runner,
                                        const std::string &SectionName);
  SectionExecutionTrace executePerOccurrence(rt::IntervalRunner &Runner,
                                             const std::string &SectionName);

  /// Outcome of pickBest: the chosen version (nullopt when nothing was
  /// measurably sampled) and whether switch hysteresis held the incumbent
  /// against a challenger that won on raw overhead -- the distinction the
  /// decision log records as the switch reason.
  struct BestPick {
    std::optional<unsigned> V;
    bool HysteresisHeld = false;
  };

  /// Picks the sampled version with the least overhead (ties to the lowest
  /// index). With SwitchHysteresis enabled and a measured incumbent, the
  /// incumbent is kept unless the challenger improves by more than the
  /// margin; suppressed switches are counted in \p Trace. A quarantined
  /// incumbent (per \p RS, which may be null) is never held by hysteresis.
  BestPick pickBest(const std::vector<std::optional<double>> &Overheads,
                    std::optional<unsigned> Incumbent,
                    SectionExecutionTrace &Trace,
                    const ResilienceState *RS = nullptr) const;

  /// Drains \p S's prune/promote events: logs each, counts it, and resets
  /// the sampled overhead of every pruned version in \p Overheads -- a
  /// pruned version is out of this phase's decision, which is also what
  /// keeps switch hysteresis from holding a pruned incumbent.
  void drainSearchEvents(SamplingStrategy &S, const std::string &Section,
                         rt::Nanos Now,
                         const std::vector<std::string> &Labels,
                         std::vector<std::optional<double>> &Overheads,
                         SectionExecutionTrace &Trace) const;

  /// Records a policy-ordering history entry that no longer resolves
  /// against the current version space: bumps the fb.history_misses metric
  /// every time and emits a one-line stderr diagnostic once per distinct
  /// (section, stale name) pair.
  void noteHistoryMiss(const std::string &SectionName,
                       const std::string &StaleName) const;

  /// Decision-log emission helpers; no-ops without an attached log. Every
  /// event is mirrored into the global metrics registry ("fb.*" counters).
  void logSample(const std::string &Section, rt::Nanos T, unsigned V,
                 const std::string &Label, double Overhead, unsigned Repeats,
                 unsigned Degenerate) const;
  void logSwitch(const std::string &Section, rt::Nanos T, unsigned V,
                 const std::string &Label, double Overhead,
                 obs::SwitchReason Reason) const;
  void logDriftResample(const std::string &Section, rt::Nanos T, unsigned V,
                        const std::string &Label, double Overhead) const;
  void logQuarantine(const std::string &Section, rt::Nanos T, unsigned V,
                     const std::string &Label, double Overhead,
                     unsigned Strikes, unsigned OutPhases) const;
  void logReprobe(const std::string &Section, rt::Nanos T, unsigned V,
                  const std::string &Label, double Overhead) const;
  void logWatchdogResample(const std::string &Section, rt::Nanos T, unsigned V,
                           const std::string &Label, double Overhead,
                           unsigned Streak) const;
  void logDegraded(const std::string &Section, rt::Nanos T, unsigned V,
                   const std::string &Label) const;
  void logPrune(const std::string &Section, rt::Nanos T, unsigned V,
                const std::string &Label, double Overhead,
                unsigned Round) const;
  void logPromote(const std::string &Section, rt::Nanos T, unsigned V,
                  const std::string &Label, double Overhead,
                  unsigned Round) const;

  const FeedbackConfig Config;
  PolicyHistory *const History;
  obs::DecisionLog *const Log;
  std::map<std::string, SpanState> SpanStates;
  std::map<std::string, ResilienceState> Resilience;
  /// (section, stale name) pairs already reported by noteHistoryMiss.
  mutable std::set<std::string> ReportedHistoryMisses;
};

} // namespace dynfb::fb

#endif // DYNFB_FB_CONTROLLER_H
