//===- fb/Driver.h - Whole-run execution driver -----------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an application's phase schedule (alternating serial phases and
/// parallel sections) against an execution backend, either under dynamic
/// feedback or with a fixed statically-chosen version -- the four
/// executable flavours of the paper's experiments (Original / Bounded /
/// Aggressive / Dynamic).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_FB_DRIVER_H
#define DYNFB_FB_DRIVER_H

#include "fb/Controller.h"
#include "rt/Backend.h"

#include <string>
#include <vector>

namespace dynfb::fb {

/// How sections are executed.
enum class ExecMode {
  Dynamic, ///< Dynamic feedback over all registered versions.
  Fixed    ///< Always run version 0 (the backend registers exactly the
           ///< statically chosen version).
};

/// Options of one run.
struct RunOptions {
  ExecMode Mode = ExecMode::Dynamic;
  FeedbackConfig Config;
  PolicyHistory *History = nullptr; ///< Optional, for policy ordering.
  /// Optional decision log the feedback controller appends to (one event
  /// per sampled interval, production decision and drift resample). Must
  /// outlive the run; never alters the algorithm.
  obs::DecisionLog *Log = nullptr;
};

/// Result of one run.
struct RunResult {
  rt::Nanos TotalNanos = 0;      ///< End-to-end (virtual) execution time.
  rt::OverheadStats ParallelStats; ///< Aggregated over all parallel sections.
  std::vector<SectionExecutionTrace> Occurrences; ///< One per section phase.

  /// Merges the sampled-overhead series of every occurrence of \p Section
  /// into one SeriesSet (absolute times; the gaps between occurrences are
  /// the serial phases, as in the paper's time-series figures).
  SeriesSet mergedOverheadSeries(const std::string &Section) const;
};

/// Runs \p Sched on \p Backend.
RunResult runSchedule(rt::ExecutionBackend &Backend,
                      const rt::Schedule &Sched, const RunOptions &Options);

} // namespace dynfb::fb

#endif // DYNFB_FB_DRIVER_H
