//===- fb/Config.h - Dynamic feedback configuration -------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the dynamic feedback algorithm: the target sampling and
/// production intervals (paper Section 4.4; defaults are the paper's
/// experimental settings of 10 milliseconds and 100 seconds) and the
/// optional early cut-off / policy ordering refinements of Section 4.5.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_FB_CONFIG_H
#define DYNFB_FB_CONFIG_H

#include "rt/Stats.h"
#include "rt/Time.h"

namespace dynfb::rt {
class MachineModel;
} // namespace dynfb::rt

namespace dynfb::fb {

/// Which sampling strategy drives a sampling phase (see fb/Sampling.h).
/// Exhaustive reproduces the paper: every candidate version is measured
/// once per phase. Halving and Ucb trade per-version certainty for
/// sub-linear sampling cost over large version spaces.
enum class SamplerKind { Exhaustive, Halving, Ucb };

/// Tuning knobs of the dynamic feedback controller.
struct FeedbackConfig {
  /// Target sampling interval: each candidate version runs this long during
  /// a sampling phase (the effective interval may be longer -- processors
  /// only poll at iteration boundaries).
  rt::Nanos TargetSamplingNanos = rt::millisToNanos(10.0);

  /// Target production interval: the best version runs this long before the
  /// computation resamples.
  rt::Nanos TargetProductionNanos = rt::secondsToNanos(100.0);

  /// Early cut-off (Section 4.5): stop sampling as soon as a sampled
  /// version's total overhead falls below EarlyCutoffThreshold -- no other
  /// policy could do significantly better. Extreme policies are tried
  /// first.
  bool EarlyCutoff = false;
  double EarlyCutoffThreshold = 0.05;

  /// Policy ordering (Section 4.5): sample first the version that performed
  /// best in previous executions of the same section.
  bool UsePolicyOrdering = false;

  /// Section 4.4's proposed extension: allow sampling and production
  /// intervals to span multiple executions of the parallel section. Each
  /// section keeps its own phase state across occurrences, so a section too
  /// short for one production interval still amortizes its sampling cost
  /// over many executions.
  bool SpanSectionExecutions = false;

  // --------- Robustness knobs (defaults reproduce the paper exactly) -------

  /// Number of sampling intervals measured per version per sampling phase
  /// (per-occurrence mode). Values above 1 enable outlier-robust
  /// aggregation of the repeats; 1 reproduces the paper's single
  /// measurement.
  unsigned SamplingRepeats = 1;

  /// Estimator folding repeated measurements into the comparable overhead.
  /// Only meaningful with SamplingRepeats > 1.
  rt::OverheadAggregation SamplingAggregation = rt::OverheadAggregation::Mean;

  /// Per-tail trim proportion for OverheadAggregation::TrimmedMean.
  double TrimFraction = 0.2;

  /// Switch hysteresis: when positive, a newly sampled best version only
  /// replaces the incumbent production version if its overhead improves on
  /// the incumbent's freshly sampled overhead by more than this margin
  /// (absolute overhead units). Prevents version thrashing when two
  /// versions are within measurement noise. 0 disables (paper behaviour).
  double SwitchHysteresis = 0.0;

  /// Perturbation-triggered early resampling: when positive, a production
  /// interval whose measured overhead exceeds the sampled overhead of the
  /// chosen version by more than this margin is cut short and the section
  /// resamples immediately, instead of riding a stale decision to the end
  /// of the production budget. 0 disables (paper behaviour).
  double DriftResampleThreshold = 0.0;

  /// Granularity at which production overhead is re-measured for drift
  /// detection in per-occurrence mode: the production budget is consumed in
  /// slices of this length. 0 runs the whole production interval in one
  /// piece (paper behaviour; drift detection then only applies in spanning
  /// mode, whose production is naturally sliced by occurrences).
  rt::Nanos ProductionSliceNanos = 0;

  // --------- Controller resilience (long-running serving; defaults off) ----

  /// Per-version quarantine: a version whose sampled measurement is
  /// degenerate -- or catastrophically bad, see QuarantineOverheadLimit --
  /// this many times within QuarantineWindowPhases sampling phases is
  /// excluded from sampling until a decayed re-probe. 0 disables (paper
  /// behaviour: every version is sampled every phase, forever).
  unsigned QuarantineStrikes = 0;

  /// Width, in sampling phases, of the sliding window strikes are counted
  /// over.
  unsigned QuarantineWindowPhases = 8;

  /// A sampled overhead strictly above this limit counts as a strike
  /// (catastrophic measurement). Overheads are clamped to [0, 1], so the
  /// default of 1.0 can never fire and only degenerate intervals strike.
  double QuarantineOverheadLimit = 1.0;

  /// Initial quarantine duration in sampling phases. Each re-quarantine
  /// after a failed re-probe doubles the duration, bounded by
  /// QuarantineBackoffMaxPhases (the decayed re-probe schedule).
  unsigned QuarantineBackoffPhases = 4;
  unsigned QuarantineBackoffMaxPhases = 64;

  /// Production watchdog: this many consecutive bad production intervals
  /// (degenerate, or measured overhead above WatchdogOverheadLimit) force
  /// an early resample even when drift detection has no baseline to compare
  /// against (e.g. production entered by fallback). 0 disables. Each firing
  /// doubles the required streak (bounded backoff, up to 8x); a healthy
  /// production interval resets the escalation.
  unsigned WatchdogBadSlices = 0;

  /// Measured production overhead above this marks the interval bad for the
  /// watchdog.
  double WatchdogOverheadLimit = 0.9;

  // --------- Version search (sub-linear sampling; defaults reproduce the
  // --------- paper's exhaustive phase exactly) ----------------------------

  /// Sampling strategy for each sampling phase. The default Exhaustive is
  /// byte-identical to the paper's loop; Halving and Ucb measure only part
  /// of the version space per phase (see fb/Sampling.h).
  SamplerKind Sampler = SamplerKind::Exhaustive;

  /// Fraction of exhaustive's sampling budget (NumVersions *
  /// TargetSamplingNanos) a partial-sampling strategy may spend per phase.
  /// Ignored by Exhaustive.
  double SearchBudgetFraction = 0.5;

  /// Exploration constant of the UCB1 selection rule (the multiplier on the
  /// confidence radius). Ignored by other strategies.
  double UcbExplore = 2.0;

  /// Machine model the Ucb strategy derives its cost prior from: versions
  /// whose policy/scheduling combination is cheap on this machine are tried
  /// first. Optional (no prior without it); not owned, must outlive the
  /// controller. Never consulted by Exhaustive.
  const rt::MachineModel *Machine = nullptr;
};

} // namespace dynfb::fb

#endif // DYNFB_FB_CONFIG_H
