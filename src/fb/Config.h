//===- fb/Config.h - Dynamic feedback configuration -------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the dynamic feedback algorithm: the target sampling and
/// production intervals (paper Section 4.4; defaults are the paper's
/// experimental settings of 10 milliseconds and 100 seconds) and the
/// optional early cut-off / policy ordering refinements of Section 4.5.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_FB_CONFIG_H
#define DYNFB_FB_CONFIG_H

#include "rt/Time.h"

namespace dynfb::fb {

/// Tuning knobs of the dynamic feedback controller.
struct FeedbackConfig {
  /// Target sampling interval: each candidate version runs this long during
  /// a sampling phase (the effective interval may be longer -- processors
  /// only poll at iteration boundaries).
  rt::Nanos TargetSamplingNanos = rt::millisToNanos(10.0);

  /// Target production interval: the best version runs this long before the
  /// computation resamples.
  rt::Nanos TargetProductionNanos = rt::secondsToNanos(100.0);

  /// Early cut-off (Section 4.5): stop sampling as soon as a sampled
  /// version's total overhead falls below EarlyCutoffThreshold -- no other
  /// policy could do significantly better. Extreme policies are tried
  /// first.
  bool EarlyCutoff = false;
  double EarlyCutoffThreshold = 0.05;

  /// Policy ordering (Section 4.5): sample first the version that performed
  /// best in previous executions of the same section.
  bool UsePolicyOrdering = false;

  /// Section 4.4's proposed extension: allow sampling and production
  /// intervals to span multiple executions of the parallel section. Each
  /// section keeps its own phase state across occurrences, so a section too
  /// short for one production interval still amortizes its sampling cost
  /// over many executions.
  bool SpanSectionExecutions = false;
};

} // namespace dynfb::fb

#endif // DYNFB_FB_CONFIG_H
