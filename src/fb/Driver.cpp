//===- fb/Driver.cpp ------------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "fb/Driver.h"

#include "support/Compiler.h"

#include <limits>

using namespace dynfb;
using namespace dynfb::fb;
using namespace dynfb::rt;

SeriesSet RunResult::mergedOverheadSeries(const std::string &Section) const {
  SeriesSet Merged;
  for (const SectionExecutionTrace &Trace : Occurrences) {
    if (Trace.SectionName != Section)
      continue;
    for (const Series &S : Trace.SampledOverheads.all()) {
      Series &Dst = Merged.getOrCreate(S.Label);
      for (size_t I = 0; I < S.size(); ++I)
        Dst.addPoint(S.Times[I], S.Values[I]);
    }
  }
  return Merged;
}

/// Runs one section occurrence with a fixed version: a single interval with
/// an effectively unbounded target.
static SectionExecutionTrace runFixed(IntervalRunner &Runner,
                                      const std::string &Name) {
  SectionExecutionTrace Trace;
  Trace.SectionName = Name;
  Trace.StartNanos = Runner.now();
  // Large but overflow-safe target.
  const Nanos Unbounded = std::numeric_limits<Nanos>::max() / 4;
  while (!Runner.done()) {
    const IntervalReport Report = Runner.runInterval(0, Unbounded);
    Trace.Total.merge(Report.Stats);
    if (Report.Finished)
      break;
  }
  Trace.EndNanos = Runner.now();
  return Trace;
}

RunResult fb::runSchedule(ExecutionBackend &Backend, const Schedule &Sched,
                          const RunOptions &Options) {
  RunResult Result;
  const Nanos Start = Backend.now();
  FeedbackController Controller(Options.Config, Options.History, Options.Log);

  for (const Phase &P : Sched) {
    switch (P.K) {
    case Phase::Kind::Serial:
      Backend.runSerial(P.SerialNanos);
      break;
    case Phase::Kind::Parallel: {
      std::unique_ptr<IntervalRunner> Runner =
          Backend.beginSection(P.SectionName);
      SectionExecutionTrace Trace =
          Options.Mode == ExecMode::Dynamic
              ? Controller.executeSection(*Runner, P.SectionName)
              : runFixed(*Runner, P.SectionName);
      Result.ParallelStats.merge(Trace.Total);
      Result.Occurrences.push_back(std::move(Trace));
      break;
    }
    }
  }
  Result.TotalNanos = Backend.now() - Start;
  return Result;
}
