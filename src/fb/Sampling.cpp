//===- fb/Sampling.cpp ----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The three shipped sampling strategies. Everything here is deterministic:
// no randomness, no host clocks -- the same candidate set and the same
// measurement sequence always produce the same requests and prune/promote
// decisions, which is what keeps record/replay a fixed point under every
// strategy.
//
//===----------------------------------------------------------------------===//

#include "fb/Sampling.h"

#include "rt/MachineModel.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

using namespace dynfb;
using namespace dynfb::fb;

const char *fb::samplerName(SamplerKind K) {
  switch (K) {
  case SamplerKind::Exhaustive:
    return "exhaustive";
  case SamplerKind::Halving:
    return "halving";
  case SamplerKind::Ucb:
    return "ucb";
  }
  DYNFB_UNREACHABLE("invalid sampler kind");
}

std::optional<SamplerKind> fb::parseSamplerName(const std::string &Name) {
  for (SamplerKind K :
       {SamplerKind::Exhaustive, SamplerKind::Halving, SamplerKind::Ucb})
    if (Name == samplerName(K))
      return K;
  return std::nullopt;
}

std::vector<std::string> fb::samplerNames() {
  return {samplerName(SamplerKind::Exhaustive),
          samplerName(SamplerKind::Halving), samplerName(SamplerKind::Ucb)};
}

SamplingStrategy::~SamplingStrategy() = default;

namespace {

constexpr double NaN = std::numeric_limits<double>::quiet_NaN();

//===----------------------------------------------------------------------===//
// Exhaustive: the paper's sampling loop, extracted.
//===----------------------------------------------------------------------===//

class ExhaustiveStrategy final : public SamplingStrategy {
public:
  explicit ExhaustiveStrategy(rt::Nanos Slice) : Slice(Slice) {}

  void beginPhase(const std::vector<unsigned> &Candidates,
                  const std::vector<std::string> &Labels) override {
    (void)Labels;
    Cands = Candidates;
    Idx = 0;
    Events.clear();
  }

  std::optional<SampleRequest> next() override {
    if (Idx >= Cands.size())
      return std::nullopt;
    return SampleRequest{Cands[Idx], Slice};
  }

  std::optional<double> report(unsigned V,
                               std::optional<double> Overhead) override {
    (void)V;
    ++Idx;
    return Overhead; // Pass-through: the measurement IS the estimate.
  }

  void disqualify(unsigned V) override {
    // The version was just measured and each candidate is requested exactly
    // once, so there is nothing left to exclude.
    (void)V;
  }

  unsigned pendingCount() const override {
    return static_cast<unsigned>(Cands.size() - Idx);
  }

private:
  const rt::Nanos Slice;
  std::vector<unsigned> Cands;
  size_t Idx = 0;
};

//===----------------------------------------------------------------------===//
// Halving: successive halving over the phase budget.
//===----------------------------------------------------------------------===//

class HalvingStrategy final : public SamplingStrategy {
public:
  HalvingStrategy(rt::Nanos TargetSlice, double BudgetFraction)
      : TargetSlice(TargetSlice),
        BudgetFraction(std::max(0.0, BudgetFraction)) {}

  void beginPhase(const std::vector<unsigned> &Candidates,
                  const std::vector<std::string> &Labels) override {
    (void)Labels;
    Alive = Candidates;
    Dead.assign(Alive.empty() ? 0
                              : 1 + *std::max_element(Alive.begin(),
                                                      Alive.end()),
                false);
    Events.clear();
    Round = 0;
    Done = Alive.empty();
    if (Done)
      return;
    const double N = static_cast<double>(Alive.size());
    Rounds = 1;
    while ((1u << Rounds) < Alive.size())
      ++Rounds; // ceil(log2 N), at least 1.
    // Budget: the configured fraction of exhaustive's phase cost, shaved by
    // ~3% because effective intervals overshoot their targets at iteration
    // boundaries -- the real spend must stay at or under the fraction.
    BudgetLeft = static_cast<rt::Nanos>(BudgetFraction * N *
                                        static_cast<double>(TargetSlice));
    BudgetLeft -= BudgetLeft / 32;
    startRound();
  }

  std::optional<SampleRequest> next() override {
    if (Done)
      return std::nullopt;
    return SampleRequest{Alive[Idx], Slice};
  }

  std::optional<double> report(unsigned V,
                               std::optional<double> Overhead) override {
    DYNFB_CHECK(!Done && Idx < Alive.size() && Alive[Idx] == V,
                "halving: report out of protocol");
    Vals[Idx] = Overhead;
    BudgetLeft -= std::min(BudgetLeft, Slice);
    ++Idx;
    skipDisqualified();
    if (Idx >= Alive.size())
      finishRound();
    return Overhead; // The slice measurement is the current estimate.
  }

  void disqualify(unsigned V) override {
    if (V < Dead.size())
      Dead[V] = true;
    skipDisqualified();
    if (!Done && Idx >= Alive.size())
      finishRound();
  }

  unsigned pendingCount() const override {
    if (Done)
      return 0;
    return static_cast<unsigned>(Alive.size() - Idx);
  }

private:
  void skipDisqualified() {
    while (Idx < Alive.size() && Dead[Alive[Idx]])
      ++Idx;
  }

  void startRound() {
    ++Round;
    Vals.assign(Alive.size(), std::nullopt);
    Idx = 0;
    skipDisqualified();
    if (Idx >= Alive.size()) {
      // Every survivor was disqualified before the round could start.
      Done = true;
      return;
    }
    const unsigned RoundsLeft = Rounds >= Round ? Rounds - Round + 1 : 1;
    const rt::Nanos RoundBudget = BudgetLeft / RoundsLeft;
    Slice = std::max<rt::Nanos>(
        1, RoundBudget / static_cast<rt::Nanos>(Alive.size()));
  }

  void finishRound() {
    // Order the survivors: disqualified first (gone regardless), then by
    // measured overhead descending with unmeasured treated as worst; prune
    // from the front until half remain. Stable, so ties keep sampling
    // order and the whole round is deterministic.
    std::vector<size_t> ByWorst(Alive.size());
    for (size_t I = 0; I < ByWorst.size(); ++I)
      ByWorst[I] = I;
    const auto Badness = [&](size_t I) -> double {
      if (Dead[Alive[I]])
        return std::numeric_limits<double>::infinity();
      if (!Vals[I])
        return std::numeric_limits<double>::max();
      return *Vals[I];
    };
    std::stable_sort(ByWorst.begin(), ByWorst.end(),
                     [&](size_t A, size_t B) { return Badness(A) > Badness(B); });

    size_t Keep = (Alive.size() + 1) / 2;
    // Disqualified survivors don't count toward the kept half.
    size_t AliveNow = 0;
    for (size_t I = 0; I < Alive.size(); ++I)
      AliveNow += !Dead[Alive[I]];
    Keep = std::min(Keep, AliveNow);

    std::vector<bool> Pruned(Alive.size(), false);
    for (size_t I = 0; I + Keep < ByWorst.size(); ++I) {
      const size_t At = ByWorst[I];
      Pruned[At] = true;
      if (!Dead[Alive[At]])
        Events.push_back({SearchEvent::Kind::Prune, Alive[At],
                          Vals[At] ? *Vals[At] : NaN, Round});
    }

    std::vector<unsigned> NextAlive;
    NextAlive.reserve(Keep);
    for (size_t I = 0; I < Alive.size(); ++I)
      if (!Pruned[I] && !Dead[Alive[I]])
        NextAlive.push_back(Alive[I]);
    // Promote events only once a real cut happened -- a phase too small to
    // prune is just exhaustive sampling.
    if (NextAlive.size() < Alive.size())
      for (size_t I = 0; I < Alive.size(); ++I)
        if (!Pruned[I] && !Dead[Alive[I]])
          Events.push_back({SearchEvent::Kind::Promote, Alive[I],
                            Vals[I] ? *Vals[I] : NaN, Round});
    Alive = std::move(NextAlive);

    if (Alive.size() <= 1 || Round >= Rounds || BudgetLeft <= 0) {
      Done = true;
      return;
    }
    startRound();
  }

  const rt::Nanos TargetSlice;
  const double BudgetFraction;
  std::vector<unsigned> Alive;
  std::vector<bool> Dead; ///< Indexed by version, not position.
  std::vector<std::optional<double>> Vals;
  size_t Idx = 0;
  unsigned Round = 0;
  unsigned Rounds = 1;
  rt::Nanos BudgetLeft = 0;
  rt::Nanos Slice = 1;
  bool Done = true;
};

//===----------------------------------------------------------------------===//
// Ucb: UCB1 with a MachineModel cost prior.
//===----------------------------------------------------------------------===//

/// Relative lock-operation weight of a synchronization policy: how much
/// locking a version with this policy performs compared to Bounded.
/// Original locks per update, Aggressive coarsens maximally.
double policyLockWeight(const std::string &PolicyName) {
  if (PolicyName == "Original")
    return 2.0;
  if (PolicyName == "Bounded")
    return 1.0;
  if (PolicyName == "Aggressive")
    return 0.5;
  return 1.0;
}

/// Relative scheduler-fetch weight of a scheduling strategy: fetches per
/// iteration compared to dynamic self-scheduling.
double schedFetchWeight(const std::string &SchedName) {
  if (SchedName.empty() || SchedName == "dyn")
    return 1.0;
  if (SchedName.rfind("chunk", 0) == 0) {
    const double K = std::atof(SchedName.c_str() + 5);
    return K >= 1.0 ? 1.0 / K : 1.0;
  }
  // The DLS family amortizes fetches over tapering chunks; mean chunk sizes
  // order fac > wfac > afac in fetch frequency.
  if (SchedName == "fac")
    return 0.20;
  if (SchedName == "wfac")
    return 0.18;
  if (SchedName == "afac")
    return 0.15;
  return 1.0;
}

/// Prior overhead in (0, 1) for a version label on \p Machine, from the
/// label's policy and scheduling components. A label may be a "/"-joined
/// merge of several descriptors (deduplicated versions); the cheapest
/// component prices the merged version. No machine: uninformative 0.5.
double priorFor(const std::string &Label, const rt::MachineModel *Machine) {
  if (!Machine)
    return 0.5;
  const rt::CostModel &C = Machine->costs();
  double BestCost = std::numeric_limits<double>::infinity();
  for (const std::string &Component : splitString(Label, '/')) {
    std::string Policy = Component, Sched;
    const size_t Plus = Component.find('+');
    if (Plus != std::string::npos) {
      Policy = Component.substr(0, Plus);
      Sched = Component.substr(Plus + 1);
    }
    const double Cost =
        policyLockWeight(Policy) *
            static_cast<double>(C.AcquireNanos + C.ReleaseNanos) +
        schedFetchWeight(Sched) * static_cast<double>(C.SchedFetchNanos);
    BestCost = std::min(BestCost, Cost);
  }
  if (!std::isfinite(BestCost))
    return 0.5;
  // Squash into (0, 1): a version costing ~4us of overhead primitives per
  // unit of work maps to 0.5.
  return BestCost / (BestCost + 4000.0);
}

class UcbStrategy final : public SamplingStrategy {
public:
  UcbStrategy(rt::Nanos TargetSlice, double BudgetFraction, double Explore,
              const rt::MachineModel *Machine)
      : TargetSlice(TargetSlice),
        BudgetFraction(std::max(0.0, BudgetFraction)),
        Explore(std::max(0.0, Explore)), Machine(Machine) {}

  void beginPhase(const std::vector<unsigned> &Candidates,
                  const std::vector<std::string> &Labels) override {
    Arms.clear();
    Arms.reserve(Candidates.size());
    for (unsigned V : Candidates) {
      Arm A;
      A.V = V;
      A.Prior = V < Labels.size() ? priorFor(Labels[V], Machine) : 0.5;
      Arms.push_back(A);
    }
    Events.clear();
    Used = 0;
    Leader.reset();
    Current.reset();
    // Budget: the configured fraction of exhaustive's phase cost in nanos,
    // shaved by ~3% because effective intervals overshoot their targets at
    // iteration boundaries. Spent in short slices sized so that two thirds
    // of the budget cover every arm once; the rest goes to the arms UCB
    // considers promising. (Fewer, larger slices beat many tiny ones: each
    // interval overshoots by up to one occurrence, so per-pull overshoot
    // is what erodes the budget.)
    const double N = static_cast<double>(Candidates.size());
    BudgetLeft = static_cast<rt::Nanos>(BudgetFraction * N *
                                        static_cast<double>(TargetSlice));
    BudgetLeft -= BudgetLeft / 32;
    Slice = std::max<rt::Nanos>(
        1, Candidates.empty()
               ? 1
               : (2 * BudgetLeft) /
                     static_cast<rt::Nanos>(3 * Candidates.size()));
    Finished = Arms.empty() || BudgetLeft < Slice;
  }

  std::optional<SampleRequest> next() override {
    if (Finished || BudgetLeft < Slice) {
      finish();
      return std::nullopt;
    }
    // Coverage first: until every live arm has one measurement, pull
    // unpulled arms in ascending prior-cost order -- the machine model
    // decides who gets tried first, but nobody is skipped.
    std::optional<size_t> Pick;
    double PickScore = 0.0;
    for (size_t I = 0; I < Arms.size(); ++I) {
      const Arm &A = Arms[I];
      if (A.Dead || A.Pulls > 0)
        continue;
      if (!Pick || A.Prior < PickScore) {
        Pick = I;
        PickScore = A.Prior;
      }
    }
    // Then UCB1 on overheads (lower is better): pick the arm minimizing
    // the prior-seeded mean minus the exploration radius.
    if (!Pick) {
      const double LogT = std::log(static_cast<double>(Used + 2));
      for (size_t I = 0; I < Arms.size(); ++I) {
        const Arm &A = Arms[I];
        if (A.Dead)
          continue;
        const double Mean = (A.Prior + A.Sum) / (1.0 + A.Usable);
        const double Score =
            Mean - Explore * std::sqrt(LogT / (1.0 + A.Pulls));
        if (!Pick || Score < PickScore) {
          Pick = I;
          PickScore = Score;
        }
      }
    }
    if (!Pick) {
      finish();
      return std::nullopt;
    }
    Current = *Pick;
    return SampleRequest{Arms[*Pick].V, Slice};
  }

  std::optional<double> report(unsigned V,
                               std::optional<double> Overhead) override {
    DYNFB_CHECK(Current && Arms[*Current].V == V,
                "ucb: report out of protocol");
    Arm &A = Arms[*Current];
    ++A.Pulls;
    ++Used;
    BudgetLeft -= std::min(BudgetLeft, Slice);
    if (Overhead) {
      A.Sum += *Overhead;
      ++A.Usable;
    }
    Current.reset();
    // Leadership change: the empirically best arm so far is the phase's
    // provisional winner -- worth a promote event in the timeline.
    std::optional<size_t> Best;
    for (size_t I = 0; I < Arms.size(); ++I)
      if (!Arms[I].Dead && Arms[I].Usable > 0 &&
          (!Best || mean(Arms[I]) < mean(Arms[*Best])))
        Best = I;
    if (Best && (!Leader || *Leader != *Best)) {
      Leader = Best;
      Events.push_back({SearchEvent::Kind::Promote, Arms[*Best].V,
                        mean(Arms[*Best]), Used});
    }
    return A.Usable > 0 ? std::optional<double>(mean(A)) : std::nullopt;
  }

  void disqualify(unsigned V) override {
    for (Arm &A : Arms)
      if (A.V == V)
        A.Dead = true;
    if (Leader && Arms[*Leader].Dead)
      Leader.reset();
  }

  unsigned pendingCount() const override {
    return Finished ? 0 : static_cast<unsigned>(BudgetLeft / Slice);
  }

private:
  struct Arm {
    unsigned V = 0;
    double Prior = 0.5;
    unsigned Pulls = 0;
    unsigned Usable = 0;
    double Sum = 0.0;
    bool Dead = false;
  };

  static double mean(const Arm &A) { return A.Sum / A.Usable; }

  void finish() {
    if (Finished)
      return;
    Finished = true;
    // Unexplored arms were implicitly ruled out by the budget: record them
    // so the timeline explains why they carry no sampled overhead.
    for (const Arm &A : Arms)
      if (!A.Dead && A.Pulls == 0)
        Events.push_back({SearchEvent::Kind::Prune, A.V, NaN, Used});
  }

  const rt::Nanos TargetSlice;
  const double BudgetFraction;
  const double Explore;
  const rt::MachineModel *const Machine;
  std::vector<Arm> Arms;
  unsigned Used = 0;
  rt::Nanos BudgetLeft = 0;
  rt::Nanos Slice = 1;
  std::optional<size_t> Current;
  std::optional<size_t> Leader;
  bool Finished = true;
};

} // namespace

std::unique_ptr<SamplingStrategy>
fb::createSamplingStrategy(const FeedbackConfig &Config) {
  switch (Config.Sampler) {
  case SamplerKind::Exhaustive:
    return std::make_unique<ExhaustiveStrategy>(Config.TargetSamplingNanos);
  case SamplerKind::Halving:
    return std::make_unique<HalvingStrategy>(Config.TargetSamplingNanos,
                                             Config.SearchBudgetFraction);
  case SamplerKind::Ucb:
    return std::make_unique<UcbStrategy>(
        Config.TargetSamplingNanos, Config.SearchBudgetFraction,
        Config.UcbExplore, Config.Machine);
  }
  DYNFB_UNREACHABLE("invalid sampler kind");
}
