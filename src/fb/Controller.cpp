//===- fb/Controller.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "fb/Controller.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace dynfb;
using namespace dynfb::fb;
using namespace dynfb::rt;

std::optional<unsigned> SectionExecutionTrace::dominantVersion() const {
  if (ChosenVersions.empty())
    return std::nullopt;
  std::map<unsigned, unsigned> Counts;
  for (unsigned V : ChosenVersions)
    ++Counts[V];
  unsigned Best = ChosenVersions.front();
  unsigned BestCount = 0;
  for (const auto &[V, C] : Counts)
    if (C > BestCount) {
      Best = V;
      BestCount = C;
    }
  return Best;
}

std::vector<unsigned>
FeedbackController::samplingOrder(unsigned NumVersions,
                                  const std::string &SectionName) const {
  std::vector<unsigned> Order;
  Order.reserve(NumVersions);

  // Policy ordering: the previously best version is sampled first, so a
  // still-acceptable measurement can cut sampling short.
  if (Config.UsePolicyOrdering && History) {
    if (std::optional<unsigned> Last = History->lastBest(SectionName))
      if (*Last < NumVersions)
        Order.push_back(*Last);
  }

  if (Config.EarlyCutoff) {
    // Extreme policies first (Section 4.5): the policy with the least
    // locking overhead and the one with the least waiting overhead bracket
    // the monotone overhead components.
    const unsigned Extremes[] = {NumVersions - 1, 0u};
    for (unsigned V : Extremes)
      if (std::find(Order.begin(), Order.end(), V) == Order.end())
        Order.push_back(V);
  }
  for (unsigned V = 0; V < NumVersions; ++V)
    if (std::find(Order.begin(), Order.end(), V) == Order.end())
      Order.push_back(V);
  return Order;
}

SectionExecutionTrace
FeedbackController::executeSection(IntervalRunner &Runner,
                                   const std::string &SectionName) {
  return Config.SpanSectionExecutions
             ? executeSpanning(Runner, SectionName)
             : executePerOccurrence(Runner, SectionName);
}

SectionExecutionTrace
FeedbackController::executeSpanning(IntervalRunner &Runner,
                                    const std::string &SectionName) {
  SectionExecutionTrace Trace;
  Trace.SectionName = SectionName;
  Trace.StartNanos = Runner.now();

  const unsigned NumVersions = Runner.numVersions();
  assert(NumVersions >= 1 && "section with no versions");

  SpanState &State = SpanStates[SectionName];
  auto StartSamplingPhase = [&] {
    State.Phase = SpanState::PhaseKind::Sampling;
    State.Order = samplingOrder(NumVersions, SectionName);
    State.OrderIdx = 0;
    State.Overheads.assign(NumVersions, std::nullopt);
    State.CurrentIntervalStats = OverheadStats{};
    State.Remaining = Config.TargetSamplingNanos;
  };
  if (State.Order.empty())
    StartSamplingPhase(); // First ever occurrence of this section.

  while (!Runner.done()) {
    if (State.Phase == SpanState::PhaseKind::Sampling) {
      const unsigned V = State.Order[State.OrderIdx];
      const IntervalReport Report = Runner.runInterval(V, State.Remaining);
      Trace.Total.merge(Report.Stats);
      State.CurrentIntervalStats.merge(Report.Stats);
      State.Remaining -= Report.EffectiveNanos;

      const bool IntervalDone = State.Remaining <= 0;
      if (!IntervalDone)
        continue; // Section ended mid-interval; resume next occurrence.

      // This version's sampling interval is complete: record it.
      const double Overhead = State.CurrentIntervalStats.totalOverhead();
      State.Overheads[V] = Overhead;
      ++Trace.SampledIntervals;
      Trace.SampledOverheads.getOrCreate(Runner.versionLabel(V))
          .addPoint(nanosToSeconds(Runner.now()), Overhead);
      State.CurrentIntervalStats = OverheadStats{};
      State.Remaining = Config.TargetSamplingNanos;
      ++State.OrderIdx;

      const bool CutOff = Config.EarlyCutoff &&
                          Overhead <= Config.EarlyCutoffThreshold;
      if (CutOff)
        Trace.SkippedByCutoff += static_cast<unsigned>(
            State.Order.size() - State.OrderIdx);
      if (State.OrderIdx >= State.Order.size() || CutOff) {
        // Sampling phase complete: pick the best and enter production.
        std::optional<unsigned> Best;
        for (unsigned I = 0; I < NumVersions; ++I)
          if (State.Overheads[I] &&
              (!Best || *State.Overheads[I] < *State.Overheads[*Best]))
            Best = I;
        assert(Best && "sampling phase completed without measurements");
        if (History)
          History->recordBest(SectionName, *Best);
        State.Phase = SpanState::PhaseKind::Production;
        State.ProductionVersion = *Best;
        State.Remaining = Config.TargetProductionNanos;
        ++Trace.SamplingPhases;
        Trace.ChosenVersions.push_back(*Best);
      }
      continue;
    }

    // Production: run the chosen version until its budget is exhausted,
    // across as many section executions as it takes.
    const IntervalReport Report =
        Runner.runInterval(State.ProductionVersion, State.Remaining);
    Trace.Total.merge(Report.Stats);
    State.Remaining -= Report.EffectiveNanos;
    if (State.Remaining <= 0)
      StartSamplingPhase(); // Periodic resampling.
  }

  Trace.EndNanos = Runner.now();
  return Trace;
}

SectionExecutionTrace
FeedbackController::executePerOccurrence(IntervalRunner &Runner,
                                         const std::string &SectionName) {
  SectionExecutionTrace Trace;
  Trace.SectionName = SectionName;
  Trace.StartNanos = Runner.now();

  const unsigned NumVersions = Runner.numVersions();
  assert(NumVersions >= 1 && "section with no versions");

  while (!Runner.done()) {
    // ---- Sampling phase: measure each candidate version's overhead. ----
    ++Trace.SamplingPhases;
    std::vector<std::optional<double>> Overheads(NumVersions);
    const std::vector<unsigned> Order =
        samplingOrder(NumVersions, SectionName);

    for (size_t OIdx = 0; OIdx < Order.size(); ++OIdx) {
      const unsigned V = Order[OIdx];
      if (Runner.done())
        break;
      const IntervalReport Report =
          Runner.runInterval(V, Config.TargetSamplingNanos);
      ++Trace.SampledIntervals;
      Trace.Total.merge(Report.Stats);
      const double Overhead = Report.Stats.totalOverhead();
      Overheads[V] = Overhead;
      Trace.SampledOverheads.getOrCreate(Runner.versionLabel(V))
          .addPoint(nanosToSeconds(Runner.now()), Overhead);
      Trace.EffectiveSamplingByVersion[Runner.versionLabel(V)].add(
          nanosToSeconds(Report.EffectiveNanos));
      if (Config.EarlyCutoff && Overhead <= Config.EarlyCutoffThreshold) {
        // No other policy could do significantly better: cut sampling off.
        Trace.SkippedByCutoff +=
            static_cast<unsigned>(Order.size() - OIdx - 1);
        break;
      }
    }

    // Pick the sampled version with the least total overhead (ties resolve
    // to the lowest version index, i.e. the earliest policy).
    std::optional<unsigned> Best;
    for (unsigned V = 0; V < NumVersions; ++V)
      if (Overheads[V] && (!Best || *Overheads[V] < *Overheads[*Best]))
        Best = V;
    if (!Best)
      break; // The section finished before anything could be sampled.
    if (History)
      History->recordBest(SectionName, *Best);
    if (Runner.done())
      break;

    // ---- Production phase: run the best version. ----
    Trace.ChosenVersions.push_back(*Best);
    const IntervalReport Report =
        Runner.runInterval(*Best, Config.TargetProductionNanos);
    Trace.Total.merge(Report.Stats);
  }

  Trace.EndNanos = Runner.now();
  return Trace;
}
