//===- fb/Controller.cpp --------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
//
// With the robustness knobs at their defaults this file implements exactly
// the paper's algorithm; the hardening (repeat sampling with robust
// aggregation, switch hysteresis, drift-triggered early resampling,
// degenerate-measurement fallbacks) only engages through FeedbackConfig and
// when measurements degenerate -- situations the perturbation engine can
// now inject deliberately.
//
//===----------------------------------------------------------------------===//

#include "fb/Controller.h"

#include "obs/Metrics.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

using namespace dynfb;
using namespace dynfb::fb;
using namespace dynfb::rt;

namespace {

constexpr double NaN = std::numeric_limits<double>::quiet_NaN();

/// Run-wide controller counters in the global metrics registry: the
/// aggregate view of the per-occurrence counts SectionExecutionTrace
/// carries. Registered once, incremented with relaxed atomics.
struct FbCounters {
  obs::Counter &SampledIntervals =
      obs::globalMetrics().counter("fb.sampled_intervals");
  obs::Counter &DegenerateIntervals =
      obs::globalMetrics().counter("fb.degenerate_intervals");
  obs::Counter &Switches = obs::globalMetrics().counter("fb.switches");
  obs::Counter &HysteresisHolds =
      obs::globalMetrics().counter("fb.hysteresis_holds");
  obs::Counter &Fallbacks = obs::globalMetrics().counter("fb.fallbacks");
  obs::Counter &DriftResamples =
      obs::globalMetrics().counter("fb.drift_resamples");
  obs::Counter &QuarantineAdded =
      obs::globalMetrics().counter("fb.quarantine.added");
  obs::Counter &QuarantineReprobes =
      obs::globalMetrics().counter("fb.quarantine.reprobes");
  obs::Counter &QuarantineCleared =
      obs::globalMetrics().counter("fb.quarantine.cleared");
  obs::Counter &WatchdogResamples =
      obs::globalMetrics().counter("fb.watchdog.resamples");
  obs::Counter &Degraded = obs::globalMetrics().counter("fb.degraded");
};

FbCounters &fbCounters() {
  static FbCounters C;
  return C;
}

/// True when an interval produced a usable overhead measurement. Intervals
/// failing this would previously let a zero-duration measurement enter the
/// decision as a perfect 0.0 overhead (or poison downstream statistics with
/// NaN); the controller now discards and counts them instead.
bool isUsable(const OverheadStats &Stats) {
  return Stats.isMeasurable() && std::isfinite(Stats.totalOverhead());
}

/// The display labels of every version of \p Runner, in version order --
/// the index space sampling orders and history names resolve against.
std::vector<std::string> versionLabels(const rt::IntervalRunner &Runner) {
  std::vector<std::string> Labels;
  const unsigned N = Runner.numVersions();
  Labels.reserve(N);
  for (unsigned V = 0; V < N; ++V)
    Labels.push_back(Runner.versionLabel(V));
  return Labels;
}

/// Resolves a recorded best-version name against the current space's
/// labels. Exact label match first; labels of deduplicated versions are
/// "/"-joined descriptor names, so when the space changed since the name
/// was recorded, a version sharing any descriptor name component with the
/// recorded label still resolves. Returns nullopt when the name no longer
/// names any version (e.g. a chunked variant after the sched dimension was
/// dropped) -- stale knowledge is ignored, never misapplied.
std::optional<unsigned>
resolveVersionName(const std::string &Name,
                   const std::vector<std::string> &Labels) {
  for (unsigned V = 0; V < Labels.size(); ++V)
    if (Labels[V] == Name)
      return V;
  const std::vector<std::string> Wanted = splitString(Name, '/');
  for (unsigned V = 0; V < Labels.size(); ++V)
    for (const std::string &Part : splitString(Labels[V], '/'))
      for (const std::string &W : Wanted)
        if (Part == W)
          return V;
  return std::nullopt;
}

} // namespace

std::optional<unsigned> SectionExecutionTrace::dominantVersion() const {
  assertInvariants();
  if (ChosenVersions.empty())
    return std::nullopt;
  std::map<unsigned, unsigned> Counts;
  for (unsigned V : ChosenVersions)
    ++Counts[V];
  unsigned Best = ChosenVersions.front();
  unsigned BestCount = 0;
  for (const auto &[V, C] : Counts)
    if (C > BestCount) {
      Best = V;
      BestCount = C;
    }
  return Best;
}

void SectionExecutionTrace::assertInvariants() const {
  DYNFB_CHECK(EndNanos >= StartNanos,
              "section trace: end precedes start");
  DYNFB_CHECK(Total.ExecNanos >= 0 && Total.LockOpNanos >= 0 &&
                  Total.WaitNanos >= 0,
              "section trace: negative aggregate measurement");
  for (const Series &S : SampledOverheads.all())
    for (size_t I = 0; I < S.size(); ++I) {
      DYNFB_CHECK(std::isfinite(S.Values[I]) && S.Values[I] >= 0.0 &&
                      S.Values[I] <= 1.0,
                  "section trace: sampled overhead outside [0, 1]");
      DYNFB_CHECK(std::isfinite(S.Times[I]),
                  "section trace: non-finite sample time");
    }
  for (const auto &[Label, Stat] : EffectiveSamplingByVersion) {
    (void)Label;
    DYNFB_CHECK(std::isfinite(Stat.mean()) && Stat.mean() >= 0.0,
                "section trace: non-finite effective sampling statistic");
  }
}

std::vector<unsigned>
FeedbackController::samplingOrder(const std::vector<std::string> &Labels,
                                  const std::string &SectionName) const {
  const unsigned NumVersions = static_cast<unsigned>(Labels.size());
  std::vector<unsigned> Order;
  Order.reserve(NumVersions);

  // Policy ordering: the previously best version is sampled first, so a
  // still-acceptable measurement can cut sampling short. History names
  // descriptors, not indices, so it survives space changes. A name that no
  // longer resolves (e.g. the sched dimension changed across runs) is
  // diagnosed and counted, never silently dropped.
  if (Config.UsePolicyOrdering && History) {
    if (std::optional<std::string> Last = History->lastBest(SectionName)) {
      if (std::optional<unsigned> V = resolveVersionName(*Last, Labels))
        Order.push_back(*V);
      else
        noteHistoryMiss(SectionName, *Last);
    }
  }

  if (Config.EarlyCutoff) {
    // Extreme policies first (Section 4.5): the policy with the least
    // locking overhead and the one with the least waiting overhead bracket
    // the monotone overhead components.
    const unsigned Extremes[] = {NumVersions - 1, 0u};
    for (unsigned V : Extremes)
      if (std::find(Order.begin(), Order.end(), V) == Order.end())
        Order.push_back(V);
  }
  for (unsigned V = 0; V < NumVersions; ++V)
    if (std::find(Order.begin(), Order.end(), V) == Order.end())
      Order.push_back(V);
  return Order;
}

FeedbackController::ResilienceState &
FeedbackController::resilienceState(const std::string &SectionName,
                                    size_t NumVersions) {
  ResilienceState &RS = Resilience[SectionName];
  if (RS.Versions.size() < NumVersions)
    RS.Versions.resize(NumVersions);
  return RS;
}

bool FeedbackController::isExcluded(const ResilienceState &RS, unsigned V) {
  if (V >= RS.Versions.size())
    return false;
  const VersionHealth &H = RS.Versions[V];
  return H.Quarantined && RS.PhaseCounter < H.ReleasePhase;
}

bool FeedbackController::noteSampleHealth(const std::string &SectionName,
                                          ResilienceState &RS, unsigned V,
                                          const std::string &Label,
                                          std::optional<double> Overhead,
                                          rt::Nanos Now,
                                          SectionExecutionTrace &Trace) {
  VersionHealth &H = RS.Versions[V];
  const bool Bad = !Overhead || *Overhead > Config.QuarantineOverheadLimit;
  const unsigned MaxBackoff = std::max(1u, Config.QuarantineBackoffMaxPhases);

  if (H.Quarantined) {
    // This measurement was the decayed re-probe of a quarantined version.
    fbCounters().QuarantineReprobes.add();
    if (!Bad) {
      H.Quarantined = false;
      H.BackoffPhases = 0;
      H.StrikePhases.clear();
      ++Trace.Reprobes;
      fbCounters().QuarantineCleared.add();
      logReprobe(SectionName, Now, V, Label, *Overhead);
      return false;
    }
    // Failed re-probe: stay out for twice as long (bounded).
    H.BackoffPhases = std::min(H.BackoffPhases * 2, MaxBackoff);
    H.ReleasePhase = RS.PhaseCounter + H.BackoffPhases;
    ++Trace.Quarantines;
    logQuarantine(SectionName, Now, V, Label, Overhead ? *Overhead : NaN,
                  static_cast<unsigned>(H.StrikePhases.size()),
                  H.BackoffPhases);
    return true;
  }

  if (!Bad)
    return false;

  // Strike: count it within the sliding window of recent sampling phases.
  H.StrikePhases.push_back(RS.PhaseCounter);
  const unsigned Window = std::max(1u, Config.QuarantineWindowPhases);
  const unsigned Oldest =
      RS.PhaseCounter >= Window ? RS.PhaseCounter - Window + 1 : 0;
  H.StrikePhases.erase(
      std::remove_if(H.StrikePhases.begin(), H.StrikePhases.end(),
                     [&](unsigned P) { return P < Oldest; }),
      H.StrikePhases.end());
  if (H.StrikePhases.size() < Config.QuarantineStrikes)
    return false;

  H.Quarantined = true;
  H.BackoffPhases =
      std::min(std::max(1u, Config.QuarantineBackoffPhases), MaxBackoff);
  H.ReleasePhase = RS.PhaseCounter + H.BackoffPhases;
  ++Trace.Quarantines;
  logQuarantine(SectionName, Now, V, Label, Overhead ? *Overhead : NaN,
                static_cast<unsigned>(H.StrikePhases.size()), H.BackoffPhases);
  return true;
}

bool FeedbackController::noteProductionHealth(const std::string &SectionName,
                                              ResilienceState &RS, unsigned V,
                                              const std::string &Label,
                                              std::optional<double> Overhead,
                                              rt::Nanos Now,
                                              SectionExecutionTrace &Trace) {
  const bool Bad = !Overhead || *Overhead > Config.WatchdogOverheadLimit;
  if (!Bad) {
    // A healthy production interval resets both the streak and the
    // escalated streak requirement.
    RS.WatchdogBad = 0;
    RS.WatchdogThreshold = 0;
    return false;
  }
  ++RS.WatchdogBad;
  const unsigned Base = std::max(1u, Config.WatchdogBadSlices);
  const unsigned Threshold = RS.WatchdogThreshold ? RS.WatchdogThreshold : Base;
  if (RS.WatchdogBad < Threshold)
    return false;
  ++Trace.WatchdogResamples;
  logWatchdogResample(SectionName, Now, V, Label, Overhead ? *Overhead : NaN,
                      RS.WatchdogBad);
  RS.WatchdogThreshold = std::min(Threshold * 2, Base * 8);
  RS.WatchdogBad = 0;
  return true;
}

FeedbackController::BestPick
FeedbackController::pickBest(const std::vector<std::optional<double>> &Overheads,
                             std::optional<unsigned> Incumbent,
                             SectionExecutionTrace &Trace,
                             const ResilienceState *RS) const {
  // Least sampled overhead; ties resolve to the lowest version index, i.e.
  // the earliest policy. Non-finite entries never win (belt and braces: the
  // sampling loops already discard them).
  std::optional<unsigned> Best;
  for (unsigned V = 0; V < Overheads.size(); ++V)
    if (Overheads[V] && std::isfinite(*Overheads[V]) &&
        (!Best || *Overheads[V] < *Overheads[*Best]))
      Best = V;
  if (!Best)
    return {};

  // Switch hysteresis: keep a measured incumbent unless the challenger
  // improves by more than the configured margin. A quarantined incumbent is
  // never held -- hysteresis must not keep a struck-out version in
  // production.
  const bool IncumbentQuarantined =
      RS && Incumbent && *Incumbent < RS->Versions.size() &&
      RS->Versions[*Incumbent].Quarantined;
  if (Config.SwitchHysteresis > 0.0 && Incumbent && !IncumbentQuarantined &&
      *Incumbent != *Best && *Incumbent < Overheads.size() &&
      Overheads[*Incumbent] && std::isfinite(*Overheads[*Incumbent]) &&
      *Overheads[*Best] >=
          *Overheads[*Incumbent] - Config.SwitchHysteresis) {
    ++Trace.HysteresisHolds;
    fbCounters().HysteresisHolds.add();
    return {Incumbent, /*HysteresisHeld=*/true};
  }
  return {Best, /*HysteresisHeld=*/false};
}

void FeedbackController::logSample(const std::string &Section, rt::Nanos T,
                                   unsigned V, const std::string &Label,
                                   double Overhead, unsigned Repeats,
                                   unsigned Degenerate) const {
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Sample;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = Overhead;
  E.Repeats = Repeats;
  E.Degenerate = Degenerate;
  Log->append(std::move(E));
}

void FeedbackController::logSwitch(const std::string &Section, rt::Nanos T,
                                   unsigned V, const std::string &Label,
                                   double Overhead,
                                   obs::SwitchReason Reason) const {
  fbCounters().Switches.add();
  if (Reason == obs::SwitchReason::Fallback)
    fbCounters().Fallbacks.add();
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Switch;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = Overhead;
  E.Reason = Reason;
  Log->append(std::move(E));
}

void FeedbackController::logDriftResample(const std::string &Section,
                                          rt::Nanos T, unsigned V,
                                          const std::string &Label,
                                          double Overhead) const {
  fbCounters().DriftResamples.add();
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::DriftResample;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = Overhead;
  E.Reason = obs::SwitchReason::None;
  Log->append(std::move(E));
}

void FeedbackController::logQuarantine(const std::string &Section, rt::Nanos T,
                                       unsigned V, const std::string &Label,
                                       double Overhead, unsigned Strikes,
                                       unsigned OutPhases) const {
  fbCounters().QuarantineAdded.add();
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Quarantine;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = Overhead;
  E.Repeats = OutPhases;
  E.Degenerate = Strikes;
  Log->append(std::move(E));
}

void FeedbackController::logReprobe(const std::string &Section, rt::Nanos T,
                                    unsigned V, const std::string &Label,
                                    double Overhead) const {
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Reprobe;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = Overhead;
  Log->append(std::move(E));
}

void FeedbackController::logWatchdogResample(const std::string &Section,
                                             rt::Nanos T, unsigned V,
                                             const std::string &Label,
                                             double Overhead,
                                             unsigned Streak) const {
  fbCounters().WatchdogResamples.add();
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::WatchdogResample;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = Overhead;
  E.Degenerate = Streak;
  Log->append(std::move(E));
}

void FeedbackController::logDegraded(const std::string &Section, rt::Nanos T,
                                     unsigned V,
                                     const std::string &Label) const {
  fbCounters().Degraded.add();
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Degraded;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = NaN;
  Log->append(std::move(E));
}

void FeedbackController::logPrune(const std::string &Section, rt::Nanos T,
                                  unsigned V, const std::string &Label,
                                  double Overhead, unsigned Round) const {
  // Registered lazily so runs under the default exhaustive sampler (which
  // never prunes) keep their metrics dumps byte-identical.
  static obs::Counter &Prunes =
      obs::globalMetrics().counter("fb.search.prunes");
  Prunes.add();
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Prune;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = Overhead;
  E.Repeats = Round;
  Log->append(std::move(E));
}

void FeedbackController::logPromote(const std::string &Section, rt::Nanos T,
                                    unsigned V, const std::string &Label,
                                    double Overhead, unsigned Round) const {
  static obs::Counter &Promotes =
      obs::globalMetrics().counter("fb.search.promotes");
  Promotes.add();
  if (!Log)
    return;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Promote;
  E.TimeNanos = T;
  E.Section = Section;
  E.Version = V;
  E.Label = Label;
  E.Overhead = Overhead;
  E.Repeats = Round;
  Log->append(std::move(E));
}

void FeedbackController::drainSearchEvents(
    SamplingStrategy &S, const std::string &Section, rt::Nanos Now,
    const std::vector<std::string> &Labels,
    std::vector<std::optional<double>> &Overheads,
    SectionExecutionTrace &Trace) const {
  for (const SearchEvent &E : S.takeEvents()) {
    const std::string &Label =
        E.Version < Labels.size() ? Labels[E.Version] : Labels.back();
    switch (E.K) {
    case SearchEvent::Kind::Prune:
      // A pruned version is out of this phase's decision. Clearing its
      // estimate is also what keeps switch hysteresis from holding a pruned
      // incumbent: the hold requires a measured incumbent overhead.
      if (E.Version < Overheads.size())
        Overheads[E.Version].reset();
      ++Trace.Prunes;
      logPrune(Section, Now, E.Version, Label, E.Overhead, E.Round);
      break;
    case SearchEvent::Kind::Promote:
      ++Trace.Promotes;
      logPromote(Section, Now, E.Version, Label, E.Overhead, E.Round);
      break;
    }
  }
}

void FeedbackController::noteHistoryMiss(const std::string &SectionName,
                                         const std::string &StaleName) const {
  // Registered lazily: the counter only appears in metrics dumps of runs
  // that actually missed.
  static obs::Counter &Misses =
      obs::globalMetrics().counter("fb.history_misses");
  Misses.add();
  if (!ReportedHistoryMisses.insert(SectionName + '\0' + StaleName).second)
    return; // Already diagnosed this (section, name) pair.
  std::fprintf(stderr,
               "dynfb: section '%s': recorded best version '%s' does not "
               "name any version in the current space; ignoring history\n",
               SectionName.c_str(), StaleName.c_str());
}

SectionExecutionTrace
FeedbackController::executeSection(IntervalRunner &Runner,
                                   const std::string &SectionName) {
  SectionExecutionTrace Trace = Config.SpanSectionExecutions
                                    ? executeSpanning(Runner, SectionName)
                                    : executePerOccurrence(Runner, SectionName);
  Trace.assertInvariants();
  return Trace;
}

SectionExecutionTrace
FeedbackController::executeSpanning(IntervalRunner &Runner,
                                    const std::string &SectionName) {
  SectionExecutionTrace Trace;
  Trace.SectionName = SectionName;
  Trace.StartNanos = Runner.now();

  const unsigned NumVersions = Runner.numVersions();
  assert(NumVersions >= 1 && "section with no versions");
  const std::vector<std::string> Labels = versionLabels(Runner);

  ResilienceState *RS = quarantineEnabled() || watchdogEnabled()
                            ? &resilienceState(SectionName, NumVersions)
                            : nullptr;
  const auto AllQuarantined = [&] {
    if (!RS || RS->Versions.empty())
      return false;
    for (const VersionHealth &H : RS->Versions)
      if (!H.Quarantined)
        return false;
    return true;
  };

  SpanState &State = SpanStates[SectionName];
  auto StartSamplingPhase = [&] {
    State.Phase = SpanState::PhaseKind::Sampling;
    State.Order = samplingOrder(Labels, SectionName);
    if (RS && quarantineEnabled()) {
      // Quarantined versions sit out until their re-probe phase comes due.
      ++RS->PhaseCounter;
      State.Order.erase(
          std::remove_if(State.Order.begin(), State.Order.end(),
                         [&](unsigned V) { return isExcluded(*RS, V); }),
          State.Order.end());
    }
    if (!State.Strategy)
      State.Strategy = createSamplingStrategy(Config);
    if (Config.Sampler != SamplerKind::Exhaustive) {
      // Lazily registered like the prune/promote counters: dumps of
      // default-sampler runs stay byte-identical.
      static obs::Counter &Phases =
          obs::globalMetrics().counter("fb.search.phases");
      Phases.add();
    }
    State.Current.reset();
    if (!State.Order.empty()) {
      State.Strategy->beginPhase(State.Order, Labels);
      State.Current = State.Strategy->next();
    }
    State.Overheads.assign(NumVersions, std::nullopt);
    State.CurrentIntervalStats = OverheadStats{};
    State.Remaining =
        State.Current ? State.Current->SliceNanos : Config.TargetSamplingNanos;
    State.ProductionOverhead.reset();
  };
  if (State.Overheads.empty())
    StartSamplingPhase(); // First ever occurrence of this section.

  while (!Runner.done()) {
    if (State.Phase == SpanState::PhaseKind::Sampling) {
      if (State.Order.empty()) {
        // Degraded mode: every version is quarantined, so there is nothing
        // to sample. Pin the last known-good version (the first version if
        // nothing ever completed production) for a full production interval;
        // re-probes come due as the phase counter keeps advancing.
        const unsigned Pin = State.LastGood ? *State.LastGood : 0u;
        ++Trace.SamplingPhases;
        ++Trace.DegradedPhases;
        logDegraded(SectionName, Runner.now(), Pin, Labels[Pin]);
        State.Phase = SpanState::PhaseKind::Production;
        State.ProductionVersion = Pin;
        State.ProductionOverhead.reset();
        State.LastGood = Pin;
        State.Remaining = Config.TargetProductionNanos;
        Trace.ChosenVersions.push_back(Pin);
        logSwitch(SectionName, Runner.now(), Pin, Labels[Pin], NaN,
                  obs::SwitchReason::Fallback);
        continue;
      }
      DYNFB_CHECK(State.Current, "sampling phase with no pending request");
      const unsigned V = State.Current->Version;
      const IntervalReport Report = Runner.runInterval(V, State.Remaining);
      Trace.Total.merge(Report.Stats);
      State.CurrentIntervalStats.merge(Report.Stats);
      if (Report.EffectiveNanos > 0) {
        State.Remaining -= Report.EffectiveNanos;
        Trace.SampledNanos += Report.EffectiveNanos;
      } else
        State.Remaining = 0; // A stuck interval must not stall the phase.

      const bool IntervalDone = State.Remaining <= 0;
      if (!IntervalDone)
        continue; // Section ended mid-interval; resume next occurrence.

      // This version's sampling interval is complete: record it, unless the
      // accumulated measurement is degenerate (zero duration, non-finite).
      ++Trace.SampledIntervals;
      fbCounters().SampledIntervals.add();
      std::optional<double> Measured;
      if (isUsable(State.CurrentIntervalStats)) {
        Measured = State.CurrentIntervalStats.totalOverhead();
        Trace.SampledOverheads.getOrCreate(Runner.versionLabel(V))
            .addPoint(nanosToSeconds(Runner.now()), *Measured);
        logSample(SectionName, Runner.now(), V, Labels[V], *Measured,
                  /*Repeats=*/1, /*Degenerate=*/0);
      } else {
        ++Trace.DegenerateIntervals;
        fbCounters().DegenerateIntervals.add();
        logSample(SectionName, Runner.now(), V, Labels[V], NaN,
                  /*Repeats=*/0, /*Degenerate=*/1);
      }
      const bool Quarantined =
          RS && quarantineEnabled() &&
          noteSampleHealth(SectionName, *RS, V, Labels[V], Measured,
                           Runner.now(), Trace);
      const std::optional<double> Est = State.Strategy->report(V, Measured);
      if (Quarantined) {
        State.Overheads[V].reset(); // Quarantined: out of this decision.
        State.Strategy->disqualify(V);
      } else if (Est) {
        State.Overheads[V] = *Est;
      }
      State.CurrentIntervalStats = OverheadStats{};

      const bool CutOff = !Quarantined && Config.EarlyCutoff &&
                          State.Overheads[V] &&
                          *State.Overheads[V] <= Config.EarlyCutoffThreshold;
      if (CutOff)
        Trace.SkippedByCutoff += State.Strategy->pendingCount();
      State.Current = CutOff ? std::nullopt : State.Strategy->next();
      drainSearchEvents(*State.Strategy, SectionName, Runner.now(), Labels,
                        State.Overheads, Trace);
      if (State.Current) {
        State.Remaining = State.Current->SliceNanos;
        continue;
      }
      {
        // Sampling phase complete: pick the best and enter production. An
        // entirely degenerate phase falls back to the last known-good
        // version (or the first in sampling order on the very first phase)
        // instead of aborting.
        const BestPick Pick =
            pickBest(State.Overheads, State.LastGood, Trace, RS);
        std::optional<unsigned> Best = Pick.V;
        obs::SwitchReason Reason = Pick.HysteresisHeld
                                       ? obs::SwitchReason::HysteresisHeld
                                       : obs::SwitchReason::BeatBest;
        if (!Best) {
          Best = State.LastGood ? *State.LastGood : State.Order.front();
          Reason = obs::SwitchReason::Fallback;
          if (AllQuarantined()) {
            // Every re-probe failed this phase: the fallback pin is a
            // degraded decision, not a plain degenerate-sampling one.
            ++Trace.DegradedPhases;
            logDegraded(SectionName, Runner.now(), *Best, Labels[*Best]);
          }
        }
        if (History)
          History->recordBest(SectionName, Labels[*Best]);
        State.Phase = SpanState::PhaseKind::Production;
        State.ProductionVersion = *Best;
        State.ProductionOverhead =
            *Best < NumVersions ? State.Overheads[*Best] : std::nullopt;
        State.LastGood = *Best;
        State.Remaining = Config.TargetProductionNanos;
        ++Trace.SamplingPhases;
        Trace.ChosenVersions.push_back(*Best);
        logSwitch(SectionName, Runner.now(), *Best, Labels[*Best],
                  State.ProductionOverhead ? *State.ProductionOverhead : NaN,
                  Reason);
      }
      continue;
    }

    // Production: run the chosen version until its budget is exhausted,
    // across as many section executions as it takes -- or until its
    // measured overhead drifts past the decision's sampled overhead, which
    // triggers an early resample (the adaptivity of Section 4.4 made
    // defensive against environmental faults).
    const IntervalReport Report =
        Runner.runInterval(State.ProductionVersion, State.Remaining);
    Trace.Total.merge(Report.Stats);
    if (Report.EffectiveNanos > 0)
      State.Remaining -= Report.EffectiveNanos;
    else
      State.Remaining = 0; // A stuck interval forces a resample.
    if (Config.DriftResampleThreshold > 0.0 && State.ProductionOverhead &&
        State.Remaining > 0 && isUsable(Report.Stats) &&
        Report.Stats.totalOverhead() >
            *State.ProductionOverhead + Config.DriftResampleThreshold) {
      ++Trace.EarlyResamples;
      logDriftResample(SectionName, Runner.now(), State.ProductionVersion,
                       Labels[State.ProductionVersion],
                       Report.Stats.totalOverhead());
      State.Remaining = 0;
    }
    if (RS && watchdogEnabled() && State.Remaining > 0 &&
        noteProductionHealth(SectionName, *RS, State.ProductionVersion,
                             Labels[State.ProductionVersion],
                             isUsable(Report.Stats)
                                 ? std::optional<double>(
                                       Report.Stats.totalOverhead())
                                 : std::nullopt,
                             Runner.now(), Trace))
      State.Remaining = 0; // Stuck production phase: resample early.
    if (State.Remaining <= 0)
      StartSamplingPhase(); // Periodic (or forced) resampling.
  }

  Trace.EndNanos = Runner.now();
  return Trace;
}

SectionExecutionTrace
FeedbackController::executePerOccurrence(IntervalRunner &Runner,
                                         const std::string &SectionName) {
  SectionExecutionTrace Trace;
  Trace.SectionName = SectionName;
  Trace.StartNanos = Runner.now();

  const unsigned NumVersions = Runner.numVersions();
  assert(NumVersions >= 1 && "section with no versions");
  const std::vector<std::string> Labels = versionLabels(Runner);

  // The incumbent: last version a production phase actually ran. Seeds the
  // hysteresis comparison and the degenerate-sampling fallback.
  std::optional<unsigned> LastGood;

  ResilienceState *RS = quarantineEnabled() || watchdogEnabled()
                            ? &resilienceState(SectionName, NumVersions)
                            : nullptr;
  const auto AllQuarantined = [&] {
    if (!RS || RS->Versions.empty())
      return false;
    for (const VersionHealth &H : RS->Versions)
      if (!H.Quarantined)
        return false;
    return true;
  };

  while (!Runner.done()) {
    // ---- Sampling phase: measure each candidate version's overhead. ----
    ++Trace.SamplingPhases;
    std::vector<std::optional<double>> Overheads(NumVersions);
    std::vector<unsigned> Order = samplingOrder(Labels, SectionName);
    if (RS && quarantineEnabled()) {
      // Quarantined versions sit out until their re-probe phase comes due.
      // An empty order (every version quarantined) skips sampling entirely
      // and degrades to the pinned last known-good below.
      ++RS->PhaseCounter;
      Order.erase(std::remove_if(Order.begin(), Order.end(),
                                 [&](unsigned V) { return isExcluded(*RS, V); }),
                  Order.end());
    }

    const std::unique_ptr<SamplingStrategy> Strat =
        createSamplingStrategy(Config);
    if (Config.Sampler != SamplerKind::Exhaustive) {
      static obs::Counter &Phases =
          obs::globalMetrics().counter("fb.search.phases");
      Phases.add();
    }
    std::optional<SampleRequest> Req;
    if (!Order.empty()) {
      Strat->beginPhase(Order, Labels);
      Req = Strat->next();
    }
    while (Req && !Runner.done()) {
      const unsigned V = Req->Version;
      // One measurement reproduces the paper; SamplingRepeats > 1 buys
      // outlier resistance through the configured robust aggregator.
      const unsigned Repeats = std::max(1u, Config.SamplingRepeats);
      std::vector<double> Samples;
      unsigned DegenerateRepeats = 0;
      for (unsigned Rep = 0; Rep < Repeats && !Runner.done(); ++Rep) {
        const IntervalReport Report = Runner.runInterval(V, Req->SliceNanos);
        ++Trace.SampledIntervals;
        fbCounters().SampledIntervals.add();
        Trace.Total.merge(Report.Stats);
        if (Report.EffectiveNanos > 0)
          Trace.SampledNanos += Report.EffectiveNanos;
        if (Report.EffectiveNanos <= 0 || !isUsable(Report.Stats)) {
          ++Trace.DegenerateIntervals;
          fbCounters().DegenerateIntervals.add();
          ++DegenerateRepeats;
          continue; // Discarded: a 0/0 must not pose as zero overhead.
        }
        Samples.push_back(Report.Stats.totalOverhead());
        Trace.EffectiveSamplingByVersion[Runner.versionLabel(V)].add(
            nanosToSeconds(Report.EffectiveNanos));
      }
      std::optional<double> Measured;
      if (Samples.empty()) {
        logSample(SectionName, Runner.now(), V, Labels[V], NaN,
                  /*Repeats=*/0, DegenerateRepeats);
      } else {
        const unsigned UsableRepeats = static_cast<unsigned>(Samples.size());
        const double Overhead =
            aggregateOverheads(std::move(Samples), Config.SamplingAggregation,
                               Config.TrimFraction);
        if (!std::isfinite(Overhead)) {
          // Belt and braces: aggregateOverheads returns its NaN sentinel
          // when every sample was discarded. A non-finite aggregate must
          // never enter the decision as a measured overhead.
          ++Trace.DegenerateIntervals;
          fbCounters().DegenerateIntervals.add();
          logSample(SectionName, Runner.now(), V, Labels[V], NaN,
                    /*Repeats=*/0, DegenerateRepeats + UsableRepeats);
        } else {
          Measured = Overhead;
          Trace.SampledOverheads.getOrCreate(Runner.versionLabel(V))
              .addPoint(nanosToSeconds(Runner.now()), Overhead);
          logSample(SectionName, Runner.now(), V, Labels[V], Overhead,
                    UsableRepeats, DegenerateRepeats);
        }
      }
      const bool Quarantined =
          RS && quarantineEnabled() &&
          noteSampleHealth(SectionName, *RS, V, Labels[V], Measured,
                           Runner.now(), Trace);
      const std::optional<double> Est = Strat->report(V, Measured);
      if (Quarantined) {
        Overheads[V].reset(); // Quarantined: out of this decision.
        Strat->disqualify(V);
      } else if (Est) {
        Overheads[V] = *Est;
      }
      const bool CutOff = !Quarantined && Config.EarlyCutoff &&
                          Overheads[V] &&
                          *Overheads[V] <= Config.EarlyCutoffThreshold;
      if (CutOff)
        // No other policy could do significantly better: cut sampling off.
        Trace.SkippedByCutoff += Strat->pendingCount();
      Req = CutOff ? std::nullopt : Strat->next();
      drainSearchEvents(*Strat, SectionName, Runner.now(), Labels, Overheads,
                        Trace);
    }

    const BestPick Pick = pickBest(Overheads, LastGood, Trace, RS);
    std::optional<unsigned> Best = Pick.V;
    obs::SwitchReason Reason = Pick.HysteresisHeld
                                   ? obs::SwitchReason::HysteresisHeld
                                   : obs::SwitchReason::BeatBest;
    if (!Best) {
      if (AllQuarantined()) {
        // Degraded mode: every version quarantined. Pin the last known-good
        // (the first version if nothing ever completed production) and run
        // production; re-probes come due as the phase counter advances.
        Best = LastGood ? *LastGood : 0u;
        Reason = obs::SwitchReason::Fallback;
        ++Trace.DegradedPhases;
        logDegraded(SectionName, Runner.now(), *Best, Labels[*Best]);
      } else if (!LastGood) {
        break; // Nothing was ever measured and there is no fallback.
      } else {
        Best = LastGood; // Degenerate sampling phase: ride the known-good.
        Reason = obs::SwitchReason::Fallback;
      }
    }
    if (History)
      History->recordBest(SectionName, Labels[*Best]);
    if (Runner.done())
      break;

    // ---- Production phase: run the best version. ----
    Trace.ChosenVersions.push_back(*Best);
    logSwitch(SectionName, Runner.now(), *Best, Labels[*Best],
              Overheads[*Best] ? *Overheads[*Best] : NaN, Reason);
    LastGood = *Best;
    rt::Nanos Budget = Config.TargetProductionNanos;
    const bool Sliced = Config.ProductionSliceNanos > 0;
    while (Budget > 0 && !Runner.done()) {
      const rt::Nanos Target =
          Sliced ? std::min(Config.ProductionSliceNanos, Budget) : Budget;
      const IntervalReport Report = Runner.runInterval(*Best, Target);
      Trace.Total.merge(Report.Stats);
      if (Report.EffectiveNanos <= 0) {
        ++Trace.DegenerateIntervals;
        if (RS && watchdogEnabled())
          noteProductionHealth(SectionName, *RS, *Best, Labels[*Best],
                               std::nullopt, Runner.now(), Trace);
        break; // A stuck production interval must not spin forever.
      }
      Budget -= Report.EffectiveNanos;
      if (Config.DriftResampleThreshold > 0.0 && Overheads[*Best] &&
          Budget > 0 && isUsable(Report.Stats) &&
          Report.Stats.totalOverhead() >
              *Overheads[*Best] + Config.DriftResampleThreshold) {
        ++Trace.EarlyResamples;
        logDriftResample(SectionName, Runner.now(), *Best, Labels[*Best],
                         Report.Stats.totalOverhead());
        break; // Overhead drifted: resample now instead of riding it out.
      }
      if (RS && watchdogEnabled() && Budget > 0 &&
          noteProductionHealth(SectionName, *RS, *Best, Labels[*Best],
                               isUsable(Report.Stats)
                                   ? std::optional<double>(
                                         Report.Stats.totalOverhead())
                                   : std::nullopt,
                               Runner.now(), Trace))
        break; // Stuck production phase: resample now.
      if (!Sliced)
        break; // Whole budget was requested in one interval.
    }
  }

  Trace.EndNanos = Runner.now();
  return Trace;
}
