//===- theory/Analysis.cpp ------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "theory/Analysis.h"

#include "support/RootFinding.h"

#include <cassert>
#include <cmath>

using namespace dynfb;
using namespace dynfb::theory;

double theory::worstCaseOverheadSelected(double T, double V, double Alpha) {
  return 1.0 + (V - 1.0) * std::exp(-Alpha * T);
}

double theory::bestCaseOverheadOptimal(double T, double V, double Alpha) {
  return V * std::exp(-Alpha * T);
}

double theory::workDynamic(double P, double V, double Alpha) {
  assert(Alpha > 0.0 && "decay rate must be positive");
  return (1.0 - V) / Alpha * (1.0 - std::exp(-Alpha * P));
}

double theory::workOptimal(double P, double V, double Alpha) {
  assert(Alpha > 0.0 && "decay rate must be positive");
  return P - V / Alpha * (1.0 - std::exp(-Alpha * P));
}

double theory::workDifference(double P, double S, unsigned N, double Alpha) {
  assert(Alpha > 0.0 && "decay rate must be positive");
  return S * static_cast<double>(N) + P + std::exp(-Alpha * P) / Alpha -
         1.0 / Alpha;
}

double theory::differencePerUnitTime(double P, double S, unsigned N,
                                     double Alpha) {
  const double Span = P + S * static_cast<double>(N);
  assert(Span > 0.0 && "degenerate time span");
  return workDifference(P, S, N, Alpha) / Span;
}

bool theory::isFeasible(double P, const AnalysisParams &Params) {
  // Eq. 7: (1-eps) P + e^{-alpha P}/alpha <= (eps-1) S N + 1/alpha.
  const double Lhs = (1.0 - Params.Epsilon) * P +
                     std::exp(-Params.Alpha * P) / Params.Alpha;
  const double Rhs = (Params.Epsilon - 1.0) * Params.S *
                         static_cast<double>(Params.N) +
                     1.0 / Params.Alpha;
  return Lhs <= Rhs;
}

std::optional<std::pair<double, double>>
theory::feasibleRegion(const AnalysisParams &Params) {
  assert(Params.Alpha > 0.0 && "decay rate must be positive");
  if (Params.Epsilon <= 0.0 || Params.Epsilon >= 1.0)
    return std::nullopt; // The interesting regime; eps>=1 is trivially
                         // satisfied for large P but meaningless.

  const double Alpha = Params.Alpha;
  const double Eps = Params.Epsilon;
  const double Rhs =
      (Eps - 1.0) * Params.S * static_cast<double>(Params.N) + 1.0 / Alpha;
  auto G = [&](double P) {
    return (1.0 - Eps) * P + std::exp(-Alpha * P) / Alpha - Rhs;
  };

  // G is strictly convex with minimum at Pmin = -ln(1-eps)/alpha.
  const double Pmin = -std::log(1.0 - Eps) / Alpha;
  if (G(Pmin) > 0.0)
    return std::nullopt;

  // Lower edge in [0, Pmin] (G(0) >= 0 always: equality iff S*N == 0).
  double Lo = 0.0;
  if (G(0.0) > 0.0) {
    const auto Root = bisect(G, 0.0, Pmin, 1e-10);
    assert(Root && "sign change must exist on [0, Pmin]");
    Lo = Root->X;
  }

  // Upper edge: expand beyond Pmin until G > 0, then bisect.
  double Hi = Pmin > 0.0 ? Pmin * 2.0 : 1.0;
  while (G(Hi) <= 0.0)
    Hi *= 2.0;
  const auto Root = bisect(G, Pmin, Hi, 1e-10);
  assert(Root && "sign change must exist beyond the minimum");
  return std::make_pair(Lo, Root->X);
}

double theory::optimalProductionInterval(double S, unsigned N, double Alpha) {
  assert(Alpha > 0.0 && "decay rate must be positive");
  const double C = 1.0 / Alpha;
  const double SN = S * static_cast<double>(N);
  auto G = [&](double P) { return std::exp(-Alpha * P) * (P + SN + C) - C; };
  // G(0) = SN >= 0, G is strictly decreasing for P > 0, G -> -C < 0.
  if (SN == 0.0)
    return 0.0;
  double Hi = 1.0;
  while (G(Hi) > 0.0)
    Hi *= 2.0;
  auto DG = [&](double P) {
    return std::exp(-Alpha * P) * (1.0 - Alpha * (P + SN + C));
  };
  const auto Root = newtonSafeguarded(G, DG, Hi * 0.5, 0.0, Hi, 1e-12);
  assert(Root && "Eq. 9 must have a root");
  return Root->X;
}

double theory::bestAchievableEpsilon(double S, unsigned N, double Alpha) {
  const double P = optimalProductionInterval(S, N, Alpha);
  if (P <= 0.0)
    return 0.0; // No sampling cost: dynamic feedback matches the optimum.
  return differencePerUnitTime(P, S, N, Alpha);
}

std::optional<double>
theory::requiredProductionInterval(const AnalysisParams &Params) {
  const auto Region = feasibleRegion(Params);
  if (!Region)
    return std::nullopt;
  return Region->first;
}

double theory::workDifferencePartial(double P, double S, unsigned K,
                                     double Delta, double Alpha) {
  assert(Alpha > 0.0 && "decay rate must be positive");
  assert(Delta >= 0.0 && Delta < 1.0 && "selection error is an overhead");
  return workDifference(P, S, K, Alpha) +
         Delta / Alpha * (1.0 - std::exp(-Alpha * P));
}

double theory::differencePerUnitTimePartial(double P, double S, unsigned K,
                                            double Delta, double Alpha) {
  const double Span = P + S * static_cast<double>(K);
  assert(Span > 0.0 && "degenerate time span");
  return workDifferencePartial(P, S, K, Delta, Alpha) / Span;
}

double theory::bestAchievableEpsilonPartial(double S, unsigned K, double Delta,
                                            double Alpha) {
  assert(Alpha > 0.0 && "decay rate must be positive");
  assert(Delta >= 0.0 && Delta < 1.0 && "selection error is an overhead");
  const double SK = S * static_cast<double>(K);
  if (SK == 0.0)
    return Delta; // No sampling cost: the infimum (at P -> 0) is the
                  // selection error itself.
  if (Delta == 0.0)
    return bestAchievableEpsilon(S, K, Alpha);

  // Write the work difference as F(P) = A + P + B e^{-alpha P} with
  // A = SK - 1/alpha + Delta/alpha and B = (1 - Delta)/alpha; the span is
  // T(P) = P + SK. d/dP [F/T] = 0 iff G(P) = F'(P) T(P) - F(P) = 0 with
  // F'(P) = 1 - alpha B e^{-alpha P}. G(0) = -SK (1 - Delta) < 0 and
  // G -> (1 - Delta)/alpha > 0, so the stationary point exists and
  // bisection finds it.
  const double A = SK - 1.0 / Alpha + Delta / Alpha;
  const double B = (1.0 - Delta) / Alpha;
  auto G = [&](double P) {
    const double E = std::exp(-Alpha * P);
    return (1.0 - Alpha * B * E) * (P + SK) - (A + P + B * E);
  };
  double Hi = 1.0;
  while (G(Hi) <= 0.0)
    Hi *= 2.0;
  const auto Root = bisect(G, 0.0, Hi, 1e-10);
  assert(Root && "partial-sampling stationary point must exist");
  return differencePerUnitTimePartial(Root->X, S, K, Delta, Alpha);
}

double theory::breakEvenSelectionError(double S, unsigned K, unsigned N,
                                       double Alpha) {
  if (K >= N || S <= 0.0)
    return 0.0; // Nothing saved over exhaustive: no error is affordable.
  const double Target = bestAchievableEpsilon(S, N, Alpha);
  auto G = [&](double Delta) {
    return bestAchievableEpsilonPartial(S, K, Delta, Alpha) - Target;
  };
  // G(0) < 0 (K < N samples cost less) and G is monotonically increasing
  // in Delta toward ~1 > Target; bisect on the open interval.
  const double Lo = 0.0, Hi = 1.0 - 1e-9;
  if (G(Hi) <= 0.0)
    return Hi; // Even near-total selection error stays ahead (tiny S).
  const auto Root = bisect(G, Lo, Hi, 1e-9);
  assert(Root && "break-even selection error must exist");
  return Root->X;
}
