//===- theory/Analysis.h - Worst-case optimality analysis -------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5: a guaranteed optimality bound for dynamic feedback
/// relative to a hypothetical optimal algorithm that always uses the best
/// policy, under the assumption that policy overheads change no faster than
/// an exponential decay with rate alpha.
///
/// Worst case: several policies tie at sampled overhead v; dynamic feedback
/// picks p0, whose overhead rises as fast as allowed,
///   o0(t) = 1 + (v - 1) e^{-alpha t}                        (Eq. 1)
/// while the optimal algorithm runs p1, whose overhead falls as fast as
/// allowed, o1(t) = v e^{-alpha t}                           (Eq. 4).
/// With Work_T = integral of (1 - o(t)) over [0, T]          (Eq. 2):
///   Work0(P) = (1 - v)/alpha (1 - e^{-alpha P})             (Eq. 3)
///   Work1(P) = P - v/alpha (1 - e^{-alpha P})               (Eq. 5)
/// Over P + SN time units (sampling assumed to do no useful work for
/// dynamic feedback, and to be overhead-free for the optimal algorithm),
///   Work1 - Work0 = SN + P + e^{-alpha P}/alpha - 1/alpha   (Eq. 6)
/// -- note the measured overhead v cancels. Policy pi is "at most epsilon
/// worse" than pj over T if Work_j - Work_i <= epsilon T (Definition 1),
/// which yields the feasibility condition on the production interval P:
///   (1 - eps) P + e^{-alpha P}/alpha <= (eps - 1) S N + 1/alpha   (Eq. 7)
/// The P minimizing the per-unit-time work difference (Eq. 8) satisfies
///   e^{-alpha P} (P + SN + 1/alpha) = 1/alpha               (Eq. 9).
///
/// Partial-sampling extension (sub-linear version search): when a sampling
/// strategy measures only k of the N versions, the sampling term shrinks to
/// S k, but the selected version is no longer guaranteed to tie the true
/// best at sampled overhead v -- it may start the production phase up to a
/// selection error delta worse (o0(0) = v + delta). Re-deriving Eqs. 3-6
/// with o0(t) = 1 + (v + delta - 1) e^{-alpha t}, the measured overhead v
/// still cancels and the work difference over P + S k time units becomes
///   Work1 - Work0 = S k + P + e^{-alpha P}/alpha - 1/alpha
///                   + (delta/alpha)(1 - e^{-alpha P})
/// which reduces exactly to Eq. 6 at k = N, delta = 0. The per-unit-time
/// bound trades S (N - k) of saved sampling against the delta regret term;
/// breakEvenSelectionError() gives the largest delta a strategy can afford
/// before the trade stops paying.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_THEORY_ANALYSIS_H
#define DYNFB_THEORY_ANALYSIS_H

#include <optional>
#include <utility>

namespace dynfb::theory {

/// Parameters of the analysis.
struct AnalysisParams {
  double Alpha = 0.065; ///< Exponential decay rate bound.
  double S = 1.0;       ///< Effective sampling interval (seconds).
  unsigned N = 2;       ///< Number of policies sampled.
  double Epsilon = 0.5; ///< Desired performance bound (Definition 1).

  /// The paper's Figure 3 example values.
  static AnalysisParams figure3Example() { return AnalysisParams{}; }
};

/// Eq. 1: worst-case overhead of the selected policy at time \p T after the
/// production phase starts, given sampled overhead \p V.
double worstCaseOverheadSelected(double T, double V, double Alpha);

/// Eq. 4: best-case overhead of the policy the optimal algorithm runs.
double bestCaseOverheadOptimal(double T, double V, double Alpha);

/// Eq. 3: useful work of the dynamic feedback algorithm over a production
/// interval of length \p P.
double workDynamic(double P, double V, double Alpha);

/// Eq. 5: useful work of the optimal algorithm over \p P.
double workOptimal(double P, double V, double Alpha);

/// Eq. 6: worst-case work difference (optimal minus dynamic feedback) over
/// P + S*N time units. Independent of the sampled overhead v.
double workDifference(double P, double S, unsigned N, double Alpha);

/// Eq. 8: work difference per unit time over P + S*N.
double differencePerUnitTime(double P, double S, unsigned N, double Alpha);

/// Eq. 7: true if production interval \p P guarantees dynamic feedback is at
/// most epsilon worse than the optimal algorithm.
bool isFeasible(double P, const AnalysisParams &Params);

/// The interval [Plo, Phi] of feasible production intervals, or nullopt if
/// no P satisfies Eq. 7 for these parameters.
std::optional<std::pair<double, double>>
feasibleRegion(const AnalysisParams &Params);

/// Eq. 9: the production interval minimizing the worst-case per-unit-time
/// work difference. Always exists for Alpha > 0.
double optimalProductionInterval(double S, unsigned N, double Alpha);

/// The tightest epsilon guarantee achievable with \p N sampled versions:
/// Eq. 8 evaluated at the Eq. 9 production interval. The sampling term S*N
/// scales with the version-space size, so the bound degrades monotonically
/// as adaptation dimensions multiply the space (e.g. N = 3 policies -> N =
/// 9 policy x scheduling combinations) unless the production interval grows
/// to amortize it.
double bestAchievableEpsilon(double S, unsigned N, double Alpha);

/// The smallest production interval that keeps the Eq. 7 guarantee at
/// Params.Epsilon with an N-point version space (the lower edge of the
/// feasible region), or nullopt when no interval achieves it.
std::optional<double>
requiredProductionInterval(const AnalysisParams &Params);

/// Partial-sampling work difference over P + S*K time units when only \p K
/// versions were measured and the selected version starts production up to
/// \p Delta (an overhead in [0, 1)) worse than the true best. Reduces to
/// workDifference() at Delta = 0 (with K in place of N).
double workDifferencePartial(double P, double S, unsigned K, double Delta,
                             double Alpha);

/// Partial-sampling work difference per unit time over P + S*K.
double differencePerUnitTimePartial(double P, double S, unsigned K,
                                    double Delta, double Alpha);

/// The tightest epsilon guarantee achievable when sampling \p K versions
/// with selection error \p Delta: differencePerUnitTimePartial minimized
/// over the production interval. Monotone in both K (sampling cost) and
/// Delta (regret); equals bestAchievableEpsilon(S, K, Alpha) at Delta = 0
/// and tends to Delta as the sampling cost S*K vanishes.
double bestAchievableEpsilonPartial(double S, unsigned K, double Delta,
                                    double Alpha);

/// The largest selection error a strategy sampling only \p K of \p N
/// versions can afford before its guarantee falls behind exhaustive
/// sampling: the Delta at which bestAchievableEpsilonPartial(S, K, Delta)
/// equals bestAchievableEpsilon(S, N). Returns 0 when K >= N (no sampling
/// saved, no error budget).
double breakEvenSelectionError(double S, unsigned K, unsigned N, double Alpha);

} // namespace dynfb::theory

#endif // DYNFB_THEORY_ANALYSIS_H
