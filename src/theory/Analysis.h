//===- theory/Analysis.h - Worst-case optimality analysis -------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 5: a guaranteed optimality bound for dynamic feedback
/// relative to a hypothetical optimal algorithm that always uses the best
/// policy, under the assumption that policy overheads change no faster than
/// an exponential decay with rate alpha.
///
/// Worst case: several policies tie at sampled overhead v; dynamic feedback
/// picks p0, whose overhead rises as fast as allowed,
///   o0(t) = 1 + (v - 1) e^{-alpha t}                        (Eq. 1)
/// while the optimal algorithm runs p1, whose overhead falls as fast as
/// allowed, o1(t) = v e^{-alpha t}                           (Eq. 4).
/// With Work_T = integral of (1 - o(t)) over [0, T]          (Eq. 2):
///   Work0(P) = (1 - v)/alpha (1 - e^{-alpha P})             (Eq. 3)
///   Work1(P) = P - v/alpha (1 - e^{-alpha P})               (Eq. 5)
/// Over P + SN time units (sampling assumed to do no useful work for
/// dynamic feedback, and to be overhead-free for the optimal algorithm),
///   Work1 - Work0 = SN + P + e^{-alpha P}/alpha - 1/alpha   (Eq. 6)
/// -- note the measured overhead v cancels. Policy pi is "at most epsilon
/// worse" than pj over T if Work_j - Work_i <= epsilon T (Definition 1),
/// which yields the feasibility condition on the production interval P:
///   (1 - eps) P + e^{-alpha P}/alpha <= (eps - 1) S N + 1/alpha   (Eq. 7)
/// The P minimizing the per-unit-time work difference (Eq. 8) satisfies
///   e^{-alpha P} (P + SN + 1/alpha) = 1/alpha               (Eq. 9).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_THEORY_ANALYSIS_H
#define DYNFB_THEORY_ANALYSIS_H

#include <optional>
#include <utility>

namespace dynfb::theory {

/// Parameters of the analysis.
struct AnalysisParams {
  double Alpha = 0.065; ///< Exponential decay rate bound.
  double S = 1.0;       ///< Effective sampling interval (seconds).
  unsigned N = 2;       ///< Number of policies sampled.
  double Epsilon = 0.5; ///< Desired performance bound (Definition 1).

  /// The paper's Figure 3 example values.
  static AnalysisParams figure3Example() { return AnalysisParams{}; }
};

/// Eq. 1: worst-case overhead of the selected policy at time \p T after the
/// production phase starts, given sampled overhead \p V.
double worstCaseOverheadSelected(double T, double V, double Alpha);

/// Eq. 4: best-case overhead of the policy the optimal algorithm runs.
double bestCaseOverheadOptimal(double T, double V, double Alpha);

/// Eq. 3: useful work of the dynamic feedback algorithm over a production
/// interval of length \p P.
double workDynamic(double P, double V, double Alpha);

/// Eq. 5: useful work of the optimal algorithm over \p P.
double workOptimal(double P, double V, double Alpha);

/// Eq. 6: worst-case work difference (optimal minus dynamic feedback) over
/// P + S*N time units. Independent of the sampled overhead v.
double workDifference(double P, double S, unsigned N, double Alpha);

/// Eq. 8: work difference per unit time over P + S*N.
double differencePerUnitTime(double P, double S, unsigned N, double Alpha);

/// Eq. 7: true if production interval \p P guarantees dynamic feedback is at
/// most epsilon worse than the optimal algorithm.
bool isFeasible(double P, const AnalysisParams &Params);

/// The interval [Plo, Phi] of feasible production intervals, or nullopt if
/// no P satisfies Eq. 7 for these parameters.
std::optional<std::pair<double, double>>
feasibleRegion(const AnalysisParams &Params);

/// Eq. 9: the production interval minimizing the worst-case per-unit-time
/// work difference. Always exists for Alpha > 0.
double optimalProductionInterval(double S, unsigned N, double Alpha);

/// The tightest epsilon guarantee achievable with \p N sampled versions:
/// Eq. 8 evaluated at the Eq. 9 production interval. The sampling term S*N
/// scales with the version-space size, so the bound degrades monotonically
/// as adaptation dimensions multiply the space (e.g. N = 3 policies -> N =
/// 9 policy x scheduling combinations) unless the production interval grows
/// to amortize it.
double bestAchievableEpsilon(double S, unsigned N, double Alpha);

/// The smallest production interval that keeps the Eq. 7 guarantee at
/// Params.Epsilon with an N-point version space (the lower edge of the
/// feasible region), or nullopt when no interval achieves it.
std::optional<double>
requiredProductionInterval(const AnalysisParams &Params);

} // namespace dynfb::theory

#endif // DYNFB_THEORY_ANALYSIS_H
