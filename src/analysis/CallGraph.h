//===- analysis/CallGraph.h - Call graph and SCCs ---------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph over the methods of a module, with Tarjan SCC computation.
/// The Bounded synchronization policy admits a transformation only if the
/// resulting critical region "will contain no cycles in the call graph"
/// (paper Section 3); the transformation driver also uses the bottom-up
/// (callees-first) order this analysis provides.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_ANALYSIS_CALLGRAPH_H
#define DYNFB_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <map>
#include <vector>

namespace dynfb::analysis {

/// Call graph of one module (or of the closure of a set of roots).
class CallGraph {
public:
  /// Builds the call graph of every method in \p M.
  explicit CallGraph(const ir::Module &M);

  /// Builds the call graph of the closure reachable from \p Root.
  explicit CallGraph(const ir::Method &Root);

  /// Direct callees of \p M (deduplicated, in first-occurrence order).
  const std::vector<const ir::Method *> &callees(const ir::Method *M) const;

  /// All nodes, in insertion order.
  const std::vector<const ir::Method *> &nodes() const { return Nodes; }

  /// Bottom-up order: every method appears after all methods it calls
  /// (methods in one SCC appear adjacently, in arbitrary internal order).
  std::vector<const ir::Method *> bottomUpOrder() const;

  /// True if \p M participates in a call-graph cycle (including direct
  /// self-recursion).
  bool isInCycle(const ir::Method *M) const;

  /// True if any method reachable from \p Root (inclusive) is in a cycle --
  /// the Bounded policy's legality query for a region that would contain
  /// calls into \p Root's closure.
  bool closureContainsCycle(const ir::Method *Root) const;

private:
  void addClosure(const ir::Method *Root);
  void computeSccs() const;

  std::vector<const ir::Method *> Nodes;
  std::map<const ir::Method *, std::vector<const ir::Method *>> Edges;
  mutable std::map<const ir::Method *, unsigned> SccId;
  mutable std::vector<unsigned> SccSize;
  mutable std::vector<bool> SccCyclic;
  mutable bool SccsComputed = false;
};

} // namespace dynfb::analysis

#endif // DYNFB_ANALYSIS_CALLGRAPH_H
