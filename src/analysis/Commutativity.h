//===- analysis/Commutativity.h - Commutativity analysis --------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Commutativity analysis (paper Section 2): decides whether all operations
/// in a parallel section generate the same result regardless of execution
/// order, so the compiler may run the iterations in parallel (with per-object
/// locks making each operation atomic).
///
/// This is the standard conservative core of the analysis: the section
/// commutes if (a) every write is a read-modify-write `f = f <op> e` with an
/// associative-commutative operator, (b) all writes to one (class, field)
/// use the same operator, and (c) no expression reads a field the section
/// writes (the old value consumed by an update's own read-modify-write is
/// inherently order-insensitive for such operators). The full symbolic-
/// execution generality of Rinard & Diniz's analysis is not needed for the
/// programs in this repository; the deviation is documented in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_ANALYSIS_COMMUTATIVITY_H
#define DYNFB_ANALYSIS_COMMUTATIVITY_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace dynfb::analysis {

/// Outcome of commutativity analysis for one parallel section.
struct CommutativityResult {
  bool Commutes = false;
  std::vector<std::string> Diagnostics; ///< Why not, when !Commutes.
};

/// Analyzes the operations reachable from \p Section's iteration method.
CommutativityResult analyzeSection(const ir::ParallelSection &Section);

/// Analyzes an arbitrary entry method (used by tests).
CommutativityResult analyzeEntry(const ir::Method &Entry);

} // namespace dynfb::analysis

#endif // DYNFB_ANALYSIS_COMMUTATIVITY_H
