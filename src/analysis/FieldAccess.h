//===- analysis/FieldAccess.h - Read/write field sets -----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, per method and closed over calls, which (class, field) pairs
/// an invocation may read and which it may write -- and with which update
/// operator. Commutativity analysis consumes these sets.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_ANALYSIS_FIELDACCESS_H
#define DYNFB_ANALYSIS_FIELDACCESS_H

#include "ir/Module.h"

#include <map>
#include <set>
#include <vector>

namespace dynfb::analysis {

/// Identity of one field across all instances of a class.
struct FieldKey {
  const ir::ClassDecl *Class = nullptr;
  unsigned Field = 0;

  friend bool operator<(const FieldKey &A, const FieldKey &B) {
    if (A.Class != B.Class)
      return A.Class < B.Class;
    return A.Field < B.Field;
  }
  friend bool operator==(const FieldKey &A, const FieldKey &B) {
    return A.Class == B.Class && A.Field == B.Field;
  }
};

/// One write observation: the field and the update operator used.
struct WriteInfo {
  ir::BinOp Op;
};

/// Read/write summary of a method closure.
struct AccessSummary {
  std::set<FieldKey> Reads;
  std::map<FieldKey, std::vector<WriteInfo>> Writes;

  bool writes(const FieldKey &K) const { return Writes.count(K) != 0; }
  bool reads(const FieldKey &K) const { return Reads.count(K) != 0; }
};

/// Computes the access summary of \p Root's closure. Receivers are abstracted
/// to their static class (any instance of the class may be touched), which is
/// the sound abstraction the analysis needs.
AccessSummary computeAccessSummary(const ir::Method &Root);

} // namespace dynfb::analysis

#endif // DYNFB_ANALYSIS_FIELDACCESS_H
