//===- analysis/Regions.h - Critical-region shape analysis -----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analyses of critical-region structure used by the synchronization
/// optimizer: scanning the top-level regions of a statement list, deciding
/// lock-freedom of lists and method closures, and summarizing method bodies
/// into shapes (LockFree / SingleRegion / Mixed). A SingleRegion callee is
/// what makes the interprocedural lift of the paper's Figures 1-2 legal.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_ANALYSIS_REGIONS_H
#define DYNFB_ANALYSIS_REGIONS_H

#include "ir/Module.h"

#include <map>
#include <optional>
#include <vector>

namespace dynfb::analysis {

/// One top-level critical region inside a statement list:
/// List[AcqIdx] is the Acquire, List[RelIdx] the matching Release.
struct Region {
  size_t AcqIdx = 0;
  size_t RelIdx = 0;
  ir::Receiver Recv;
};

/// Shape classification of a method body.
enum class BodyShape {
  LockFree,     ///< No acquire/release anywhere in the closure.
  SingleRegion, ///< Body is pure*, one region, pure* (region possibly via a
                ///< single call to a SingleRegion callee).
  Mixed         ///< Anything else.
};

/// Summary of one method's locking structure.
struct ShapeSummary {
  BodyShape Shape = BodyShape::Mixed;
  /// For SingleRegion: the region's lock receiver in this method's frame.
  ir::Receiver RegionRecv;
};

/// Scans \p List for top-level regions. Asserts balanced, non-nested
/// structure at this level (nested regions inside the spanned statements are
/// not inspected).
std::vector<Region> scanRegions(const std::vector<ir::Stmt *> &List);

/// Memoizing shape analysis over (possibly still-growing) method sets. The
/// synchronization optimizer invalidates nothing: it queries summaries only
/// for methods it has finished transforming (bottom-up order).
class ShapeAnalysis {
public:
  /// Returns the shape summary of \p M, computing and caching it on demand.
  const ShapeSummary &summary(const ir::Method *M);

  /// True if \p List contains no acquire/release, directly or via calls.
  bool listIsLockFree(const std::vector<ir::Stmt *> &List);

  /// Translates \p CalleeRecv (a receiver in \p Call's callee frame) into
  /// the caller's frame; std::nullopt if not expressible by the caller.
  static std::optional<ir::Receiver>
  translateToCaller(const ir::Receiver &CalleeRecv, const ir::CallStmt &Call);

private:
  ShapeSummary compute(const ir::Method *M);

  std::map<const ir::Method *, ShapeSummary> Cache;
};

} // namespace dynfb::analysis

#endif // DYNFB_ANALYSIS_REGIONS_H
