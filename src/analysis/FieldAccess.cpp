//===- analysis/FieldAccess.cpp -------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/FieldAccess.h"

#include "ir/Verifier.h"

#include <cassert>

using namespace dynfb;
using namespace dynfb::analysis;
using namespace dynfb::ir;

namespace {

class SummaryBuilder {
public:
  explicit SummaryBuilder(AccessSummary &Out) : Out(Out) {}

  void walkMethod(const Method &M) {
    if (!Visited.insert(&M).second)
      return;
    walkList(M, M.body());
  }

private:
  void addExprReads(const Method &M, const Expr *E) {
    switch (E->kind()) {
    case ExprKind::FieldRead: {
      const auto &FR = exprCast<FieldReadExpr>(E);
      const ClassDecl *Cls = receiverClass(FR.Recv, M);
      assert(Cls && "malformed receiver in expression");
      Out.Reads.insert(FieldKey{Cls, FR.Field});
      break;
    }
    case ExprKind::ParamRead:
    case ExprKind::ConstFloat:
      break;
    case ExprKind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      addExprReads(M, B.LHS);
      addExprReads(M, B.RHS);
      break;
    }
    case ExprKind::ExternCall:
      for (const Expr *Arg : exprCast<ExternCallExpr>(E).Args)
        addExprReads(M, Arg);
      break;
    }
  }

  void walkList(const Method &M, const std::vector<Stmt *> &List) {
    for (const Stmt *S : List) {
      switch (S->kind()) {
      case StmtKind::Compute:
        for (const Expr *E : stmtCast<ComputeStmt>(S).Reads)
          addExprReads(M, E);
        break;
      case StmtKind::Update: {
        const auto &U = stmtCast<UpdateStmt>(S);
        const ClassDecl *Cls = receiverClass(U.Recv, M);
        assert(Cls && "malformed update receiver");
        Out.Writes[FieldKey{Cls, U.Field}].push_back(WriteInfo{U.Op});
        addExprReads(M, U.Value);
        break;
      }
      case StmtKind::Acquire:
      case StmtKind::Release:
        break;
      case StmtKind::Call:
        walkMethod(*stmtCast<CallStmt>(S).callee());
        break;
      case StmtKind::Loop:
        walkList(M, stmtCast<LoopStmt>(S).Body);
        break;
      }
    }
  }

  AccessSummary &Out;
  std::set<const Method *> Visited;
};

} // namespace

AccessSummary analysis::computeAccessSummary(const Method &Root) {
  AccessSummary Out;
  SummaryBuilder(Out).walkMethod(Root);
  return Out;
}
