//===- analysis/Regions.cpp -----------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Regions.h"

#include <cassert>

using namespace dynfb;
using namespace dynfb::analysis;
using namespace dynfb::ir;

std::vector<Region> analysis::scanRegions(const std::vector<Stmt *> &List) {
  std::vector<Region> Out;
  std::optional<size_t> OpenIdx;
  Receiver OpenRecv;
  for (size_t I = 0; I < List.size(); ++I) {
    if (const auto *A = stmtDynCast<AcquireStmt>(List[I])) {
      assert(!OpenIdx && "nested region at the same statement level");
      OpenIdx = I;
      OpenRecv = A->Recv;
      continue;
    }
    if (const auto *R = stmtDynCast<ReleaseStmt>(List[I])) {
      assert(OpenIdx && "release without open region");
      assert(R->Recv == OpenRecv && "mismatched region receiver");
      (void)R;
      Out.push_back(Region{*OpenIdx, I, OpenRecv});
      OpenIdx.reset();
    }
  }
  assert(!OpenIdx && "unbalanced region in statement list");
  return Out;
}

bool ShapeAnalysis::listIsLockFree(const std::vector<Stmt *> &List) {
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Acquire:
    case StmtKind::Release:
      return false;
    case StmtKind::Call:
      if (summary(stmtCast<CallStmt>(S).callee()).Shape !=
          BodyShape::LockFree)
        return false;
      break;
    case StmtKind::Loop:
      if (!listIsLockFree(stmtCast<LoopStmt>(S).Body))
        return false;
      break;
    case StmtKind::Compute:
    case StmtKind::Update:
      break;
    }
  }
  return true;
}

std::optional<Receiver>
ShapeAnalysis::translateToCaller(const Receiver &CalleeRecv,
                                 const CallStmt &Call) {
  if (CalleeRecv.Kind == RecvKind::This)
    return Call.Recv;
  if (CalleeRecv.Kind == RecvKind::Param) {
    // Map the callee's object-parameter index to the positional object
    // argument. ObjArgs are in object-parameter order.
    unsigned ObjPos = 0;
    const Method *Callee = Call.callee();
    for (unsigned I = 0; I < CalleeRecv.ParamIdx; ++I)
      if (I < Callee->params().size() && Callee->param(I).isObject())
        ++ObjPos;
    if (ObjPos < Call.ObjArgs.size())
      return Call.ObjArgs[ObjPos];
    return std::nullopt;
  }
  // ParamIndexed receivers depend on the callee's internal loop index and
  // cannot be named by the caller.
  return std::nullopt;
}

const ShapeSummary &ShapeAnalysis::summary(const Method *M) {
  auto It = Cache.find(M);
  if (It != Cache.end())
    return It->second;
  // Insert a Mixed placeholder first so (hypothetical) recursion degrades
  // conservatively instead of diverging.
  Cache[M] = ShapeSummary{BodyShape::Mixed, Receiver::thisObj()};
  ShapeSummary S = compute(M);
  return Cache[M] = S;
}

ShapeSummary ShapeAnalysis::compute(const Method *M) {
  const std::vector<Stmt *> &Body = M->body();

  // Classify the body as: pure prefix, one region element, pure suffix.
  // A region element is either an explicit top-level Acquire..Release group
  // or a single call to a SingleRegion callee with a caller-expressible
  // receiver.
  bool SawRegion = false;
  Receiver RegionRecv = Receiver::thisObj();
  std::optional<Receiver> Open;

  auto PureStmt = [&](const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Compute:
      return true;
    case StmtKind::Update:
      // A naked update outside any region (serial code) is pure for shape
      // purposes: it contains no locking.
      return true;
    case StmtKind::Loop:
      return listIsLockFree(stmtCast<LoopStmt>(S).Body);
    case StmtKind::Call:
      return summary(stmtCast<CallStmt>(S).callee()).Shape ==
             BodyShape::LockFree;
    case StmtKind::Acquire:
    case StmtKind::Release:
      return false;
    }
    return false;
  };

  for (const Stmt *S : Body) {
    if (Open) {
      // Inside the explicit region: everything must be lock-free until the
      // matching release.
      if (const auto *R = stmtDynCast<ReleaseStmt>(S)) {
        if (!(R->Recv == *Open))
          return {BodyShape::Mixed, Receiver::thisObj()};
        Open.reset();
        continue;
      }
      std::vector<Stmt *> One{const_cast<Stmt *>(S)};
      if (!listIsLockFree(One))
        return {BodyShape::Mixed, Receiver::thisObj()};
      continue;
    }
    if (const auto *A = stmtDynCast<AcquireStmt>(S)) {
      if (SawRegion)
        return {BodyShape::Mixed, Receiver::thisObj()};
      SawRegion = true;
      RegionRecv = A->Recv;
      Open = A->Recv;
      continue;
    }
    if (const auto *C = stmtDynCast<CallStmt>(S)) {
      const ShapeSummary &CS = summary(C->callee());
      if (CS.Shape == BodyShape::LockFree)
        continue;
      if (CS.Shape == BodyShape::SingleRegion) {
        if (SawRegion)
          return {BodyShape::Mixed, Receiver::thisObj()};
        std::optional<Receiver> Translated =
            translateToCaller(CS.RegionRecv, *C);
        if (!Translated)
          return {BodyShape::Mixed, Receiver::thisObj()};
        SawRegion = true;
        RegionRecv = *Translated;
        continue;
      }
      return {BodyShape::Mixed, Receiver::thisObj()};
    }
    if (!PureStmt(S))
      return {BodyShape::Mixed, Receiver::thisObj()};
  }
  if (Open)
    return {BodyShape::Mixed, Receiver::thisObj()};
  if (!SawRegion)
    return {BodyShape::LockFree, Receiver::thisObj()};
  return {BodyShape::SingleRegion, RegionRecv};
}
