//===- analysis/Commutativity.cpp -----------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Commutativity.h"

#include "analysis/FieldAccess.h"
#include "support/StringUtils.h"

using namespace dynfb;
using namespace dynfb::analysis;
using namespace dynfb::ir;

static std::string fieldName(const FieldKey &K) {
  return K.Class->name() + "." + K.Class->field(K.Field).Name;
}

CommutativityResult analysis::analyzeEntry(const Method &Entry) {
  CommutativityResult Result;
  const AccessSummary Summary = computeAccessSummary(Entry);

  // (a) + (b): every write is a commuting read-modify-write, and all writes
  // of one field agree on the operator.
  for (const auto &[Key, Writes] : Summary.Writes) {
    for (const WriteInfo &W : Writes)
      if (!isCommutingOp(W.Op))
        Result.Diagnostics.push_back(
            "write to " + fieldName(Key) + " uses non-commuting operator '" +
            binOpName(W.Op) + "'");
    for (const WriteInfo &W : Writes)
      if (W.Op != Writes.front().Op)
        Result.Diagnostics.push_back(
            "writes to " + fieldName(Key) +
            " mix operators; reordering changes the result");
  }

  // (c): expressions must not read fields the section writes. The read set
  // includes the value expressions of updates, so an update whose value
  // depends on a written field (even its own) is rejected: `f = f + g`
  // with g also updated does not commute in general.
  for (const auto &[Key, Writes] : Summary.Writes) {
    (void)Writes;
    if (Summary.reads(Key))
      Result.Diagnostics.push_back(
          "expression reads " + fieldName(Key) +
          ", which the section also writes; operations do not commute");
  }

  Result.Commutes = Result.Diagnostics.empty();
  return Result;
}

CommutativityResult analysis::analyzeSection(const ParallelSection &Section) {
  return analyzeEntry(*Section.IterMethod);
}
