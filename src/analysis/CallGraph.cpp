//===- analysis/CallGraph.cpp ---------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace dynfb;
using namespace dynfb::analysis;
using namespace dynfb::ir;

namespace {

/// Collects the direct callees of \p M (deduplicated, stable order).
std::vector<const Method *> directCallees(const Method *M) {
  std::vector<const Method *> Out;
  std::vector<const std::vector<Stmt *> *> Work{&M->body()};
  while (!Work.empty()) {
    const std::vector<Stmt *> *List = Work.back();
    Work.pop_back();
    for (const Stmt *S : *List) {
      if (const auto *C = stmtDynCast<CallStmt>(S)) {
        if (std::find(Out.begin(), Out.end(), C->callee()) == Out.end())
          Out.push_back(C->callee());
      } else if (const auto *L = stmtDynCast<LoopStmt>(S)) {
        Work.push_back(&L->Body);
      }
    }
  }
  return Out;
}

} // namespace

CallGraph::CallGraph(const Module &M) {
  for (const auto &Meth : M.methods())
    addClosure(Meth.get());
}

CallGraph::CallGraph(const Method &Root) { addClosure(&Root); }

void CallGraph::addClosure(const Method *Root) {
  std::vector<const Method *> Work{Root};
  while (!Work.empty()) {
    const Method *M = Work.back();
    Work.pop_back();
    if (Edges.count(M))
      continue;
    Nodes.push_back(M);
    auto Callees = directCallees(M);
    for (const Method *Callee : Callees)
      Work.push_back(Callee);
    Edges[M] = std::move(Callees);
  }
}

const std::vector<const Method *> &
CallGraph::callees(const Method *M) const {
  auto It = Edges.find(M);
  assert(It != Edges.end() && "method not in call graph");
  return It->second;
}

void CallGraph::computeSccs() const {
  if (SccsComputed)
    return;
  SccsComputed = true;

  // Iterative Tarjan.
  std::map<const Method *, unsigned> Index, LowLink;
  std::map<const Method *, bool> OnStack;
  std::vector<const Method *> Stack;
  unsigned NextIndex = 0;

  struct Frame {
    const Method *M;
    size_t CalleeIdx;
  };

  for (const Method *Start : Nodes) {
    if (Index.count(Start))
      continue;
    std::vector<Frame> Frames{{Start, 0}};
    Index[Start] = LowLink[Start] = NextIndex++;
    Stack.push_back(Start);
    OnStack[Start] = true;

    while (!Frames.empty()) {
      Frame &F = Frames.back();
      const auto &Cs = Edges.at(F.M);
      if (F.CalleeIdx < Cs.size()) {
        const Method *Next = Cs[F.CalleeIdx++];
        if (!Index.count(Next)) {
          Index[Next] = LowLink[Next] = NextIndex++;
          Stack.push_back(Next);
          OnStack[Next] = true;
          Frames.push_back({Next, 0});
        } else if (OnStack[Next]) {
          LowLink[F.M] = std::min(LowLink[F.M], Index[Next]);
        }
        continue;
      }
      // Done with F.M.
      if (LowLink[F.M] == Index[F.M]) {
        const unsigned Id = static_cast<unsigned>(SccSize.size());
        unsigned Size = 0;
        bool SelfLoop = false;
        for (;;) {
          const Method *W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SccId[W] = Id;
          ++Size;
          for (const Method *Callee : Edges.at(W))
            if (Callee == W)
              SelfLoop = true;
          if (W == F.M)
            break;
        }
        SccSize.push_back(Size);
        SccCyclic.push_back(Size > 1 || SelfLoop);
      }
      const Method *Done = F.M;
      Frames.pop_back();
      if (!Frames.empty())
        LowLink[Frames.back().M] =
            std::min(LowLink[Frames.back().M], LowLink[Done]);
    }
  }
}

std::vector<const Method *> CallGraph::bottomUpOrder() const {
  // Iterative post-order DFS; within an SCC the completion order suffices
  // for our transformation driver (our programs are acyclic anyway).
  std::vector<const Method *> Order;
  std::map<const Method *, bool> Done, Visiting;
  struct Frame {
    const Method *M;
    size_t CalleeIdx;
  };
  for (const Method *Start : Nodes) {
    if (Done.count(Start))
      continue;
    std::vector<Frame> Frames{{Start, 0}};
    Visiting[Start] = true;
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      const auto &Cs = Edges.at(F.M);
      bool Descended = false;
      while (F.CalleeIdx < Cs.size()) {
        const Method *Next = Cs[F.CalleeIdx++];
        if (!Done.count(Next) && !Visiting.count(Next)) {
          Visiting[Next] = true;
          Frames.push_back({Next, 0});
          Descended = true;
          break;
        }
      }
      if (Descended)
        continue;
      Done[F.M] = true;
      Visiting.erase(F.M);
      Order.push_back(F.M);
      Frames.pop_back();
    }
  }
  return Order;
}

bool CallGraph::isInCycle(const Method *M) const {
  computeSccs();
  auto It = SccId.find(M);
  assert(It != SccId.end() && "method not in call graph");
  return SccCyclic[It->second];
}

bool CallGraph::closureContainsCycle(const Method *Root) const {
  computeSccs();
  std::vector<const Method *> Work{Root};
  std::map<const Method *, bool> Seen;
  while (!Work.empty()) {
    const Method *M = Work.back();
    Work.pop_back();
    if (Seen.count(M))
      continue;
    Seen[M] = true;
    if (isInCycle(M))
      return true;
    for (const Method *Callee : Edges.at(M))
      Work.push_back(Callee);
  }
  return false;
}
