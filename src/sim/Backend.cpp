//===- sim/Backend.cpp ----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Backend.h"

#include "support/Compiler.h"

#include <cassert>

using namespace dynfb;
using namespace dynfb::sim;

void SimBackend::addSection(const std::string &Name,
                            const rt::DataBinding *Binding,
                            std::vector<SimVersion> Versions) {
  assert(Binding && "section registered without a binding");
  assert(!Versions.empty() && "section registered without versions");
  SectionInfo &Info = Sections[Name];
  Info.Binding = Binding;
  Info.Versions = std::move(Versions);
  // Fresh caches: a re-registered section may bring new code versions or a
  // new binding, invalidating previously memoized sequences.
  Info.OpsCaches = std::vector<rt::EmittedOpsCache>(Info.Versions.size());
}

void SimBackend::addSections(const rt::SectionRegistry &Registry) {
  for (const rt::SectionDesc &D : Registry.sections()) {
    std::vector<SimVersion> Versions;
    Versions.reserve(D.Versions.size());
    for (const rt::IrVersion &V : D.Versions)
      Versions.push_back(SimVersion{V.Label, V.Entry, V.Sched});
    addSection(D.Name, D.Binding, std::move(Versions));
  }
}

std::unique_ptr<SimSectionRunner>
SimBackend::beginSectionSim(const std::string &Name) {
  auto It = Sections.find(Name);
  if (It == Sections.end())
    reportFatalError("beginSection: unknown parallel section name");
  auto Runner = std::make_unique<SimSectionRunner>(
      Machine, *It->second.Binding, It->second.Versions, Instrumented);
  Runner->attachOpsCaches(&It->second.OpsCaches);
  Runner->setPerturbation(Machine.perturbation(), Name);
  if (CollectSectionTraces) {
    IntervalTrace &Trace = SectionTraces[Name];
    Trace.Cumulative = true;
    Runner->attachTrace(&Trace);
  }
  return Runner;
}

std::unique_ptr<rt::IntervalRunner>
SimBackend::beginSection(const std::string &Name) {
  return beginSectionSim(Name);
}
