//===- sim/Machine.cpp ----------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// SimMachine is header-only; this file anchors the library target.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

namespace dynfb::sim {
// Anchor.
} // namespace dynfb::sim
