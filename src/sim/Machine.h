//===- sim/Machine.h - Simulated multiprocessor state -----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated shared-memory multiprocessor: a processor count, a machine
/// model (rt::MachineModel -- the flat DASH-like cost model by default) and
/// a global virtual clock. Serial phases advance the clock directly;
/// parallel sections are simulated event-driven by SimSectionRunner, which
/// advances the clock by each interval's effective duration. For
/// topology-aware models the machine additionally tracks each lock's home
/// node (the cluster that last held its cache line), the state migratory
/// lock pricing depends on. All of the paper's machine experiments run on
/// this substrate, which makes every measurement deterministic and
/// host-independent.
///
/// A machine may carry a PerturbationEngine: section runners consult it to
/// inject schedule-driven environmental faults (processor slowdowns,
/// contention bursts, timer noise, ...). Without one attached, simulation
/// is bit-identical to the unperturbed seed behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SIM_MACHINE_H
#define DYNFB_SIM_MACHINE_H

#include "rt/CostModel.h"
#include "rt/MachineModel.h"
#include "rt/Time.h"
#include "support/Compiler.h"

#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dynfb::perturb {
class PerturbationEngine;
} // namespace dynfb::perturb

namespace dynfb::sim {

/// Virtual machine state shared by all simulated sections of one run.
class SimMachine {
public:
  /// Flat-machine compatibility constructor: wraps \p Costs in the
  /// constant-cost model, preserving the seed behaviour bit for bit.
  SimMachine(unsigned NumProcs, rt::CostModel Costs)
      : SimMachine(NumProcs,
                   std::make_unique<rt::FlatMachineModel>(Costs)) {}

  SimMachine(unsigned NumProcs,
             std::unique_ptr<const rt::MachineModel> Model)
      : NumProcs(NumProcs), Model(std::move(Model)) {
    assert(NumProcs >= 1 && "machine needs at least one processor");
    assert(this->Model && "machine needs a model");
  }

  unsigned numProcs() const { return NumProcs; }
  const rt::MachineModel &model() const { return *Model; }
  const rt::CostModel &costs() const { return Model->costs(); }

  /// The lock home-node tracker of \p Section: entry i is the node that
  /// last held lock object i's cache line, -1 while the line is cold.
  /// Persists across intervals and section occurrences of one run -- the
  /// line stays wherever the last acquirer pulled it -- which is what
  /// topology-aware models price migratory locking from. Grown to at least
  /// \p Count entries.
  std::vector<int> &lockHomes(const std::string &Section, size_t Count) {
    std::vector<int> &Homes = LockHomes[Section];
    if (Homes.size() < Count)
      Homes.resize(Count, -1);
    return Homes;
  }

  /// A snapshot of the machine's cross-interval state: the virtual clock
  /// and every section's lock home-node tracker. This is the complete
  /// forkable state -- interval-local simulation state
  /// (SimSectionRunner::IntervalState) is quiescent between intervals, the
  /// perturbation engine is stateless (pure functions of section, processor
  /// and virtual time), and the machine model is immutable -- so restoring
  /// a checkpoint taken at a phase boundary makes every subsequent
  /// simulation bit-identical to one that never diverged (docs/REPLAY.md
  /// states the invariants; replay::Explorer is the main consumer).
  struct Checkpoint {
    rt::Nanos Clock = 0;
    std::map<std::string, std::vector<int>> LockHomes;
  };

  Checkpoint checkpoint() const { return Checkpoint{Clock, LockHomes}; }

  /// Rewinds the machine to \p CP. Legal at any point where no interval is
  /// in flight; the engine attachment is deliberately not part of the
  /// snapshot (it is configuration, not simulated state).
  void restore(const Checkpoint &CP) {
    Clock = CP.Clock;
    LockHomes = CP.LockHomes;
  }

  /// Current global virtual time.
  rt::Nanos now() const { return Clock; }

  /// Advances the clock (serial phases, barrier episodes). Negative
  /// durations and virtual-time overflow are checked error paths, diagnosed
  /// in every build configuration: both would silently corrupt every
  /// downstream measurement.
  void advance(rt::Nanos Dur) {
    DYNFB_CHECK(Dur >= 0, "SimMachine::advance: negative duration");
    DYNFB_CHECK(Dur <= std::numeric_limits<rt::Nanos>::max() - Clock,
                "SimMachine::advance: virtual-time overflow");
    Clock += Dur;
  }

  /// Attaches a perturbation engine (nullptr detaches). The engine must
  /// outlive the machine's use of it; SimBackend hands it to every runner
  /// it creates from then on.
  void setPerturbation(const perturb::PerturbationEngine *Engine) {
    Perturb = Engine;
  }
  const perturb::PerturbationEngine *perturbation() const { return Perturb; }

private:
  const unsigned NumProcs;
  const std::unique_ptr<const rt::MachineModel> Model;
  std::map<std::string, std::vector<int>> LockHomes;
  rt::Nanos Clock = 0;
  const perturb::PerturbationEngine *Perturb = nullptr;
};

} // namespace dynfb::sim

#endif // DYNFB_SIM_MACHINE_H
