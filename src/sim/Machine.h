//===- sim/Machine.h - Simulated multiprocessor state -----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated DASH-like shared-memory multiprocessor: a processor count,
/// a cost model and a global virtual clock. Serial phases advance the clock
/// directly; parallel sections are simulated event-driven by
/// SimSectionRunner, which advances the clock by each interval's effective
/// duration. All of the paper's machine experiments run on this substrate,
/// which makes every measurement deterministic and host-independent.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SIM_MACHINE_H
#define DYNFB_SIM_MACHINE_H

#include "rt/CostModel.h"
#include "rt/Time.h"

#include <cassert>

namespace dynfb::sim {

/// Virtual machine state shared by all simulated sections of one run.
class SimMachine {
public:
  SimMachine(unsigned NumProcs, rt::CostModel Costs)
      : NumProcs(NumProcs), Costs(Costs) {
    assert(NumProcs >= 1 && "machine needs at least one processor");
  }

  unsigned numProcs() const { return NumProcs; }
  const rt::CostModel &costs() const { return Costs; }

  /// Current global virtual time.
  rt::Nanos now() const { return Clock; }

  /// Advances the clock (serial phases, barrier episodes).
  void advance(rt::Nanos Dur) {
    assert(Dur >= 0 && "cannot advance time backwards");
    Clock += Dur;
  }

private:
  const unsigned NumProcs;
  const rt::CostModel Costs;
  rt::Nanos Clock = 0;
};

} // namespace dynfb::sim

#endif // DYNFB_SIM_MACHINE_H
