//===- sim/Machine.h - Simulated multiprocessor state -----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated DASH-like shared-memory multiprocessor: a processor count,
/// a cost model and a global virtual clock. Serial phases advance the clock
/// directly; parallel sections are simulated event-driven by
/// SimSectionRunner, which advances the clock by each interval's effective
/// duration. All of the paper's machine experiments run on this substrate,
/// which makes every measurement deterministic and host-independent.
///
/// A machine may carry a PerturbationEngine: section runners consult it to
/// inject schedule-driven environmental faults (processor slowdowns,
/// contention bursts, timer noise, ...). Without one attached, simulation
/// is bit-identical to the unperturbed seed behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SIM_MACHINE_H
#define DYNFB_SIM_MACHINE_H

#include "rt/CostModel.h"
#include "rt/Time.h"
#include "support/Compiler.h"

#include <cassert>
#include <limits>

namespace dynfb::perturb {
class PerturbationEngine;
} // namespace dynfb::perturb

namespace dynfb::sim {

/// Virtual machine state shared by all simulated sections of one run.
class SimMachine {
public:
  SimMachine(unsigned NumProcs, rt::CostModel Costs)
      : NumProcs(NumProcs), Costs(Costs) {
    assert(NumProcs >= 1 && "machine needs at least one processor");
  }

  unsigned numProcs() const { return NumProcs; }
  const rt::CostModel &costs() const { return Costs; }

  /// Current global virtual time.
  rt::Nanos now() const { return Clock; }

  /// Advances the clock (serial phases, barrier episodes). Negative
  /// durations and virtual-time overflow are checked error paths, diagnosed
  /// in every build configuration: both would silently corrupt every
  /// downstream measurement.
  void advance(rt::Nanos Dur) {
    DYNFB_CHECK(Dur >= 0, "SimMachine::advance: negative duration");
    DYNFB_CHECK(Dur <= std::numeric_limits<rt::Nanos>::max() - Clock,
                "SimMachine::advance: virtual-time overflow");
    Clock += Dur;
  }

  /// Attaches a perturbation engine (nullptr detaches). The engine must
  /// outlive the machine's use of it; SimBackend hands it to every runner
  /// it creates from then on.
  void setPerturbation(const perturb::PerturbationEngine *Engine) {
    Perturb = Engine;
  }
  const perturb::PerturbationEngine *perturbation() const { return Perturb; }

private:
  const unsigned NumProcs;
  const rt::CostModel Costs;
  rt::Nanos Clock = 0;
  const perturb::PerturbationEngine *Perturb = nullptr;
};

} // namespace dynfb::sim

#endif // DYNFB_SIM_MACHINE_H
