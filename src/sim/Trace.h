//===- sim/Trace.h - Interval tracing (rt::IntervalTrace alias) -*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IntervalTrace started life simulator-only; it now lives in rt/ (see
/// rt/SectionTrace.h) because the native backend fills the identical
/// structure from real worker clocks. This header keeps the historical
/// sim::IntervalTrace spelling working for existing callers.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SIM_TRACE_H
#define DYNFB_SIM_TRACE_H

#include "rt/SectionTrace.h"

namespace dynfb::sim {

using IntervalTrace = rt::IntervalTrace;

} // namespace dynfb::sim

#endif // DYNFB_SIM_TRACE_H
