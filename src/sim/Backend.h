//===- sim/Backend.h - Simulator execution backend ---------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionBackend over the SimMachine. Applications register each parallel
/// section's data binding and generated code versions; each beginSection
/// call produces a fresh SimSectionRunner positioned at iteration zero.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SIM_BACKEND_H
#define DYNFB_SIM_BACKEND_H

#include "rt/Backend.h"
#include "rt/Binding.h"
#include "sim/Machine.h"
#include "sim/SectionSim.h"

#include <map>
#include <string>

namespace dynfb::sim {

/// Simulated-machine backend. \p Instrumented reflects the executable
/// flavour: the Dynamic executable compiles in the overhead instrumentation,
/// the static (single-policy) executables do not.
class SimBackend : public rt::ExecutionBackend {
public:
  SimBackend(unsigned NumProcs, rt::CostModel Costs, bool Instrumented)
      : Machine(NumProcs, Costs), Instrumented(Instrumented) {}

  /// Registers a section. \p Binding must outlive the backend.
  void addSection(const std::string &Name, const rt::DataBinding *Binding,
                  std::vector<SimVersion> Versions);

  void runSerial(rt::Nanos Dur) override { Machine.advance(Dur); }

  std::unique_ptr<rt::IntervalRunner>
  beginSection(const std::string &Name) override;

  /// Like beginSection but with the concrete simulator type, so callers can
  /// attach an IntervalTrace.
  std::unique_ptr<SimSectionRunner>
  beginSectionSim(const std::string &Name);

  rt::Nanos now() const override { return Machine.now(); }

  SimMachine &machine() { return Machine; }

private:
  struct SectionInfo {
    const rt::DataBinding *Binding = nullptr;
    std::vector<SimVersion> Versions;
  };

  SimMachine Machine;
  const bool Instrumented;
  std::map<std::string, SectionInfo> Sections;
};

} // namespace dynfb::sim

#endif // DYNFB_SIM_BACKEND_H
