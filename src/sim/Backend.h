//===- sim/Backend.h - Simulator execution backend ---------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExecutionBackend over the SimMachine. Applications register each parallel
/// section's data binding and generated code versions; each beginSection
/// call produces a fresh SimSectionRunner positioned at iteration zero.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SIM_BACKEND_H
#define DYNFB_SIM_BACKEND_H

#include "rt/Backend.h"
#include "rt/Binding.h"
#include "rt/SectionRegistry.h"
#include "sim/Machine.h"
#include "sim/SectionSim.h"
#include "sim/Trace.h"

#include <map>
#include <string>

namespace dynfb::sim {

/// Simulated-machine backend. \p Instrumented reflects the executable
/// flavour: the Dynamic executable compiles in the overhead instrumentation,
/// the static (single-policy) executables do not.
class SimBackend : public rt::ExecutionBackend {
public:
  SimBackend(unsigned NumProcs, rt::CostModel Costs, bool Instrumented)
      : Machine(NumProcs, Costs), Instrumented(Instrumented) {}

  /// Backend over a machine model (cloned; \p Model need not outlive the
  /// backend).
  SimBackend(unsigned NumProcs, const rt::MachineModel &Model,
             bool Instrumented)
      : Machine(NumProcs, Model.clone()), Instrumented(Instrumented) {}

  /// Registers a section. \p Binding must outlive the backend.
  void addSection(const std::string &Name, const rt::DataBinding *Binding,
                  std::vector<SimVersion> Versions);

  /// Registers every section of a backend-agnostic registry (the single
  /// construction path applications use; see rt/SectionRegistry.h).
  void addSections(const rt::SectionRegistry &Registry);

  void runSerial(rt::Nanos Dur) override { Machine.advance(Dur); }

  rt::BackendKind kind() const override { return rt::BackendKind::Sim; }

  std::unique_ptr<rt::IntervalRunner>
  beginSection(const std::string &Name) override;

  /// Like beginSection but with the concrete simulator type, so callers can
  /// attach an IntervalTrace.
  std::unique_ptr<SimSectionRunner>
  beginSectionSim(const std::string &Name);

  rt::Nanos now() const override { return Machine.now(); }

  SimMachine &machine() { return Machine; }

  /// When enabled, every runner handed out by beginSection carries a
  /// cumulative IntervalTrace owned by the backend (one per section name),
  /// accumulating lock contention and per-processor time decomposition over
  /// the whole run -- the data behind the trace exporter's lock records.
  /// Off by default: tracing is observation only, never part of a plain
  /// run's cost.
  void setCollectSectionTraces(bool Enable) override {
    CollectSectionTraces = Enable;
  }

  /// The accumulated per-section traces (empty unless collection was
  /// enabled before the run).
  const std::map<std::string, IntervalTrace> &sectionTraces() const override {
    return SectionTraces;
  }

  /// Simulated machines honor fault injection.
  void setPerturbation(const perturb::PerturbationEngine *Engine) override {
    Machine.setPerturbation(Engine);
  }

private:
  struct SectionInfo {
    const rt::DataBinding *Binding = nullptr;
    std::vector<SimVersion> Versions;
    /// One memoized micro-op cache per code version, shared by every
    /// runner of this section so cached sequences survive across section
    /// occurrences (valid because iterationClass keys are stable for the
    /// binding's lifetime; re-registering a section replaces the caches).
    std::vector<rt::EmittedOpsCache> OpsCaches;
  };

  SimMachine Machine;
  const bool Instrumented;
  std::map<std::string, SectionInfo> Sections;
  bool CollectSectionTraces = false;
  /// std::map: entry addresses are stable, so live runners can hold a
  /// pointer into it across later insertions.
  std::map<std::string, IntervalTrace> SectionTraces;
};

} // namespace dynfb::sim

#endif // DYNFB_SIM_BACKEND_H
