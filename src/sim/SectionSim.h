//===- sim/SectionSim.h - Event-driven parallel section simulation -*- C++ -*//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates one multi-versioned parallel section on the SimMachine,
/// implementing the IntervalRunner contract the dynamic feedback controller
/// drives. Processors execute iterations (lowered to micro-ops by the IR
/// interpreter) under dynamic self-scheduling; spin locks are FIFO with
/// waiting time converted into counted failed acquires; every iteration
/// boundary polls the (virtual) timer -- the potential switch points of
/// paper Section 4.1 -- and interval expiration ends with a synchronous
/// barrier.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SIM_SECTIONSIM_H
#define DYNFB_SIM_SECTIONSIM_H

#include "ir/Module.h"
#include "rt/Binding.h"
#include "rt/Interp.h"
#include "rt/IntervalRunner.h"
#include "rt/Sched.h"
#include "sim/Machine.h"
#include "sim/Trace.h"

#include <memory>
#include <string>
#include <vector>

namespace dynfb::sim {

/// One code version to simulate: a display label, the generated entry
/// method, and the loop scheduling strategy its dispatch loop uses.
/// Under chunked scheduling each scheduler fetch claims a contiguous chunk
/// of iterations; the timer is polled (and the interval deadline checked)
/// only at chunk boundaries, so larger chunks amortize scheduling overhead
/// at the price of coarser switch points.
struct SimVersion {
  std::string Label;
  const ir::Method *Entry = nullptr;
  rt::SchedSpec Sched;
};

/// IntervalRunner over the simulated machine.
class SimSectionRunner : public rt::IntervalRunner {
public:
  /// \p Instrumented adds the overhead-measurement cost to every lock
  /// operation (the Dynamic executable always runs instrumented code).
  SimSectionRunner(SimMachine &Machine, const rt::DataBinding &Binding,
                   std::vector<SimVersion> Versions, bool Instrumented);
  ~SimSectionRunner() override;

  unsigned numVersions() const override {
    return static_cast<unsigned>(Versions.size());
  }
  std::string versionLabel(unsigned V) const override {
    return Versions[V].Label;
  }
  rt::IntervalReport runInterval(unsigned V, rt::Nanos Target) override;
  bool done() const override { return NextIter >= NumIterations; }
  void reset() override { NextIter = 0; }

  /// Scheduling position, for checkpoint/rollback: the next unclaimed
  /// iteration. Only meaningful between intervals, where the interval-local
  /// state is quiescent -- together with SimMachine::Checkpoint this is all
  /// the state a mid-section fork needs (docs/REPLAY.md).
  uint64_t nextIteration() const { return NextIter; }
  void setNextIteration(uint64_t Iter) { NextIter = Iter; }
  rt::Nanos now() const override { return Machine.now(); }

  /// Attaches a trace; each subsequent runInterval fills it (clearing any
  /// previous contents unless the trace is marked Cumulative, in which case
  /// intervals accumulate). Pass nullptr to detach.
  void attachTrace(IntervalTrace *T) { Trace = T; }

  /// Attaches a perturbation engine and the section name its scope filters
  /// match against (SimBackend wires this from the machine's engine). With
  /// no engine -- or an engine whose schedule never touches this section --
  /// simulation is bit-identical to the unperturbed behaviour.
  void setPerturbation(const perturb::PerturbationEngine *Engine,
                       std::string Section);

  /// Attaches per-version micro-op caches (\p Caches must hold one entry
  /// per code version and outlive this runner; SimBackend owns them per
  /// section, so cached sequences survive across section occurrences).
  /// Without caches every iteration is interpreted live. Pass nullptr to
  /// detach.
  void attachOpsCaches(std::vector<rt::EmittedOpsCache> *Caches);

private:
  /// Reusable per-interval simulation state (processors, locks, ready
  /// heap), reset -- not reallocated -- each interval; see SectionSim.cpp.
  struct IntervalState;

  template <bool Topo>
  rt::IntervalReport runIntervalImpl(unsigned V, rt::Nanos Target);

  IntervalTrace *Trace = nullptr;
  const perturb::PerturbationEngine *Perturb = nullptr;
  std::string SectionName;
  SimMachine &Machine;
  const rt::DataBinding &Binding;
  const std::vector<SimVersion> Versions;
  std::vector<rt::IterationEmitter> Emitters; ///< One per version.
  const bool Instrumented;
  /// True when any version uses non-dynamic scheduling: the generated code
  /// then also instruments scheduling fetches and switch-barrier waiting,
  /// which the feedback controller needs to compare scheduling variants.
  /// The pure-synchronization space keeps the paper's original
  /// instrumentation (and cost behaviour) exactly.
  const bool SchedInstrumented;
  const uint64_t NumIterations;
  uint64_t NextIter = 0;
  std::unique_ptr<IntervalState> State;
};

} // namespace dynfb::sim

#endif // DYNFB_SIM_SECTIONSIM_H
