//===- sim/SectionSim.cpp -------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Event-driven simulation. Runnable processors live in a min-heap keyed by
// their local virtual clock; the processor with the smallest clock executes
// its next micro-op. Processing in global time order makes lock request
// ordering exact: an acquire processed later was issued later. Blocked
// processors leave the heap and are re-inserted when the lock holder's
// release grants them the lock (FIFO), with their waiting time converted
// into counted failed acquire attempts, exactly how the paper's
// instrumentation accounts waiting overhead.
//
//===----------------------------------------------------------------------===//

#include "sim/SectionSim.h"

#include "obs/Metrics.h"
#include "perturb/Engine.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <queue>

namespace {

bool anyNonDynamicSched(const std::vector<dynfb::sim::SimVersion> &Versions) {
  return std::any_of(Versions.begin(), Versions.end(),
                     [](const dynfb::sim::SimVersion &V) {
                       return V.Sched.Kind != dynfb::rt::SchedKind::Dynamic;
                     });
}

/// Run-wide simulator counters in the global metrics registry. The hot loop
/// accumulates plain local tallies; they are flushed here once per interval
/// so the event loop pays no atomic per micro-op.
struct SimCounters {
  dynfb::obs::Counter &Intervals =
      dynfb::obs::globalMetrics().counter("sim.intervals");
  dynfb::obs::Counter &Iterations =
      dynfb::obs::globalMetrics().counter("sim.iterations");
  dynfb::obs::Counter &SchedFetches =
      dynfb::obs::globalMetrics().counter("sim.sched_fetches");
  dynfb::obs::Counter &LockAcquires =
      dynfb::obs::globalMetrics().counter("sim.lock_acquires");
  dynfb::obs::Counter &LockContended =
      dynfb::obs::globalMetrics().counter("sim.lock_contended");
  dynfb::obs::Counter &LockWaitNanos =
      dynfb::obs::globalMetrics().counter("sim.lock_wait_ns");
  dynfb::obs::Counter &BarrierImbalanceNanos =
      dynfb::obs::globalMetrics().counter("sim.barrier_imbalance_ns");
};

SimCounters &simCounters() {
  static SimCounters C;
  return C;
}

} // namespace

using namespace dynfb;
using namespace dynfb::rt;
using namespace dynfb::sim;

SimSectionRunner::SimSectionRunner(SimMachine &Machine,
                                   const DataBinding &Binding,
                                   std::vector<SimVersion> Versions,
                                   bool Instrumented)
    : Machine(Machine), Binding(Binding), Versions(std::move(Versions)),
      Instrumented(Instrumented),
      SchedInstrumented(anyNonDynamicSched(this->Versions)),
      NumIterations(Binding.iterationCount()) {
  assert(!this->Versions.empty() && "section needs at least one version");
  Emitters.reserve(this->Versions.size());
  for (const SimVersion &V : this->Versions)
    Emitters.emplace_back(V.Entry, Binding, Machine.costs());
}

SimSectionRunner::~SimSectionRunner() = default;

void SimSectionRunner::setPerturbation(
    const perturb::PerturbationEngine *Engine, std::string Section) {
  SectionName = std::move(Section);
  // Keep the unperturbed fast path free of per-op queries when the schedule
  // cannot touch this section.
  Perturb = Engine && Engine->mayAffect(SectionName) ? Engine : nullptr;
}

namespace {

struct Proc {
  Nanos Clock = 0;
  std::vector<MicroOp> Ops;
  size_t Pc = 0;
  bool HasIteration = false;
  bool Stopped = false;
  Nanos EndTime = 0;
  OverheadStats Stats;
  /// Claimed-but-unexecuted iteration range of the current scheduling
  /// chunk ([ClaimNext, ClaimEnd)). Empty under dynamic self-scheduling,
  /// where every fetch claims exactly one iteration.
  uint64_t ClaimNext = 0;
  uint64_t ClaimEnd = 0;
};

struct SimLock {
  bool Held = false;
  std::deque<uint32_t> Waiters;
};

struct HeapEntry {
  Nanos T;
  uint32_t P;
  friend bool operator>(const HeapEntry &A, const HeapEntry &B) {
    if (A.T != B.T)
      return A.T > B.T;
    return A.P > B.P;
  }
};

} // namespace

IntervalReport SimSectionRunner::runInterval(unsigned V, Nanos Target) {
  assert(V < Versions.size() && "version index out of range");
  const CostModel &CM = Machine.costs();
  const Nanos Start = Machine.now();
  const Nanos Deadline = Start + Target;
  const Nanos InstrCost = Instrumented ? CM.InstrumentNanos : 0;
  const Nanos AcqCost = CM.AcquireNanos + InstrCost;
  const Nanos RelCost = CM.ReleaseNanos + InstrCost;

  const unsigned P = Machine.numProcs();

  // Topology-aware machine models (dash-numa) price lock events from the
  // home node of each lock's cache line and the contention depth; the flat
  // models keep the seed's constant-folded arithmetic above, untouched.
  const rt::MachineModel &MM = Machine.model();
  const bool Topo = MM.topologyAware();
  std::vector<int> *Homes = nullptr;
  unsigned NumNodes = 1;
  if (Topo) {
    Homes = &Machine.lockHomes(SectionName, Binding.objectCount());
    NumNodes = MM.nodeOf(P - 1) + 1;
  }
  const Nanos FailedAcqNanos =
      Topo ? MM.failedAcquireNanos() : CM.FailedAcquireNanos;

  // Per-node contention tallies plus the local/remote/cold acquire split,
  // flushed into the metrics registry at interval end (topology-aware
  // models only, so flat-machine metric exports stay byte-identical).
  uint64_t TallyLocalAcq = 0, TallyRemoteAcq = 0, TallyColdAcq = 0;
  std::vector<uint64_t> NodeContended(Topo ? NumNodes : 0);

  // Prices one successful acquire and moves the lock's line to the
  // acquirer's cluster. \p Depth is the number of waiters still queued.
  auto AcquirePrice = [&](uint32_t ProcIdx, uint32_t Obj,
                          unsigned Depth) -> Nanos {
    if (!Topo)
      return AcqCost;
    const int Home = (*Homes)[Obj];
    const unsigned Node = MM.nodeOf(ProcIdx);
    if (Home < 0)
      ++TallyColdAcq;
    else if (static_cast<unsigned>(Home) == Node)
      ++TallyLocalAcq;
    else
      ++TallyRemoteAcq;
    const Nanos Cost =
        MM.acquireNanos(rt::LockEvent{ProcIdx, Obj, Home, Depth}) + InstrCost;
    (*Homes)[Obj] = static_cast<int>(Node);
    return Cost;
  };
  auto ReleasePrice = [&](uint32_t ProcIdx, uint32_t Obj) -> Nanos {
    if (!Topo)
      return RelCost;
    return MM.releaseNanos(rt::LockEvent{ProcIdx, Obj, (*Homes)[Obj], 0}) +
           InstrCost;
  };
  std::vector<Proc> Procs(P);
  std::vector<SimLock> Locks(Binding.objectCount());
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      Ready;

  for (unsigned I = 0; I < P; ++I) {
    Procs[I].Clock = Start;
    Ready.push(HeapEntry{Start, I});
  }

  if (Trace) {
    if (!Trace->Cumulative)
      Trace->clear();
    if (Trace->Procs.size() < P)
      Trace->Procs.resize(P);
  }

  // Interval-local tallies flushed into the metrics registry at the end;
  // plain integers so the event loop stays free of atomics.
  uint64_t TallyIterations = 0;
  uint64_t TallySchedFetches = 0;
  uint64_t TallyAcquires = 0;
  uint64_t TallyContended = 0;
  Nanos TallyLockWaitNanos = 0;

  auto Stop = [&](Proc &Pr) {
    Pr.Stopped = true;
    Pr.EndTime = Pr.Clock;
  };

  // Injected-fault accounting (zero and untouched without an engine).
  const perturb::PerturbationEngine *PE = Perturb;
  Nanos Injected = 0;

  // An acquire succeeding during a contention burst additionally waits for
  // the injected interloper, accounted exactly like organic spinning.
  auto InjectContention = [&](Proc &Pr, uint32_t ProcIdx, uint32_t Obj) {
    if (!PE)
      return;
    const Nanos Extra = PE->contentionExtra(SectionName, Obj, Pr.Clock);
    if (Extra <= 0)
      return;
    TallyLockWaitNanos += Extra;
    Pr.Stats.WaitNanos += Extra;
    Pr.Stats.FailedAcquires += static_cast<uint64_t>(
        (Extra + FailedAcqNanos - 1) / FailedAcqNanos);
    Pr.Clock += Extra;
    Injected += Extra;
    if (Trace)
      Trace->Procs[ProcIdx].WaitNanos += Extra;
  };

  // Lock-hold spikes surcharge every lock construct.
  auto LockExtra = [&](Nanos T) -> Nanos {
    if (!PE)
      return 0;
    const Nanos Extra = PE->lockHoldExtra(SectionName, T);
    Injected += Extra;
    return Extra;
  };

  const IterationEmitter &Emitter = Emitters[V];
  // Iterations one scheduler fetch claims: 1 under dynamic
  // self-scheduling, the chunk size under blocked scheduling.
  const uint64_t Chunk = Versions[V].Sched.chunkIters();

  while (!Ready.empty()) {
    const HeapEntry Top = Ready.top();
    Ready.pop();
    Proc &Pr = Procs[Top.P];
    assert(!Pr.Stopped && "stopped processor in ready heap");

    if (!Pr.HasIteration) {
      if (Pr.ClaimNext >= Pr.ClaimEnd) {
        // Self-scheduling: fetch the next chunk of iterations (exactly one
        // under dynamic scheduling).
        ++TallySchedFetches;
        const Nanos FetchCost =
            Topo ? MM.schedFetchNanos(Top.P) : CM.SchedFetchNanos;
        Pr.Clock += FetchCost;
        if (SchedInstrumented)
          Pr.Stats.SchedNanos += FetchCost;
        if (Trace)
          Trace->Procs[Top.P].OverheadNanos += FetchCost;
        if (NextIter >= NumIterations) {
          Stop(Pr);
          continue;
        }
        Pr.ClaimNext = NextIter;
        Pr.ClaimEnd = std::min(NextIter + Chunk, NumIterations);
        NextIter = Pr.ClaimEnd;
      }
      Emitter.emit(Pr.ClaimNext++, Pr.Ops);
      Pr.Pc = 0;
      Pr.HasIteration = true;
      ++TallyIterations;
      if (Trace)
        ++Trace->Procs[Top.P].Iterations;
      Ready.push(HeapEntry{Pr.Clock, Top.P});
      continue;
    }

    if (Pr.Pc == Pr.Ops.size()) {
      Pr.HasIteration = false;
      if (Pr.ClaimNext < Pr.ClaimEnd) {
        // Mid-chunk iteration boundary: the claimed chunk continues
        // back-to-back -- no timer poll, not a potential switch point.
        Ready.push(HeapEntry{Pr.Clock, Top.P});
        continue;
      }
      // Chunk boundary, a potential switch point: poll the timer.
      Nanos TimerCost = Topo ? MM.timerReadNanos(Top.P) : CM.TimerReadNanos;
      if (PE) {
        Nanos Noise = PE->timerNoise(SectionName, Top.P, Pr.Clock);
        if (TimerCost + Noise < 0)
          Noise = -TimerCost; // A read can be fast, never negative.
        TimerCost += Noise;
        Injected += Noise;
      }
      Pr.Clock += TimerCost;
      if (Trace)
        Trace->Procs[Top.P].OverheadNanos += TimerCost;
      if (Pr.Clock >= Deadline)
        Stop(Pr);
      else
        Ready.push(HeapEntry{Pr.Clock, Top.P});
      continue;
    }

    const MicroOp &Op = Pr.Ops[Pr.Pc];
    switch (Op.K) {
    case MicroOp::Kind::Compute: {
      Nanos Dur = Op.Dur;
      if (PE) {
        const double Scale = PE->computeScale(SectionName, Top.P, Pr.Clock);
        if (Scale != 1.0) {
          const Nanos Scaled = std::max<Nanos>(
              0, static_cast<Nanos>(
                     std::llround(static_cast<double>(Dur) * Scale)));
          Injected += Scaled - Dur;
          Dur = Scaled;
        }
      }
      Pr.Clock += Dur;
      ++Pr.Pc;
      if (Trace)
        Trace->Procs[Top.P].ComputeNanos += Dur;
      Ready.push(HeapEntry{Pr.Clock, Top.P});
      break;
    }

    case MicroOp::Kind::Acquire: {
      SimLock &L = Locks[Op.Obj];
      if (!L.Held) {
        InjectContention(Pr, Top.P, Op.Obj);
        const Nanos Cost = AcquirePrice(Top.P, Op.Obj, 0) +
                           LockExtra(Pr.Clock);
        L.Held = true;
        ++TallyAcquires;
        ++Pr.Stats.AcquireReleasePairs;
        Pr.Stats.LockOpNanos += Cost;
        Pr.Clock += Cost;
        ++Pr.Pc;
        if (Trace) {
          Trace->Procs[Top.P].LockOpNanos += Cost;
          ++Trace->Locks[Op.Obj].Acquires;
        }
        Ready.push(HeapEntry{Pr.Clock, Top.P});
      } else {
        // Block: the processor spins until the holder's release grants it
        // the lock. Its clock stays at the request time.
        L.Waiters.push_back(Top.P);
      }
      break;
    }

    case MicroOp::Kind::Release: {
      SimLock &L = Locks[Op.Obj];
      assert(L.Held && "release of a free lock");
      const Nanos RelTotal = ReleasePrice(Top.P, Op.Obj) + LockExtra(Pr.Clock);
      Pr.Stats.LockOpNanos += RelTotal;
      Pr.Clock += RelTotal;
      ++Pr.Pc;
      if (Trace)
        Trace->Procs[Top.P].LockOpNanos += RelTotal;
      if (!L.Waiters.empty()) {
        const uint32_t W = L.Waiters.front();
        L.Waiters.pop_front();
        Proc &Waiter = Procs[W];
        const Nanos Wait = Pr.Clock - Waiter.Clock;
        assert(Wait >= 0 && "negative waiting time");
        ++TallyAcquires;
        ++TallyContended;
        TallyLockWaitNanos += Wait;
        Waiter.Stats.WaitNanos += Wait;
        Waiter.Stats.FailedAcquires +=
            Wait > 0 ? static_cast<uint64_t>((Wait + FailedAcqNanos - 1) /
                                             FailedAcqNanos)
                     : 1;
        Waiter.Clock = Pr.Clock;
        if (Topo)
          ++NodeContended[MM.nodeOf(W)];
        if (Trace) {
          IntervalTrace::ProcSummary &WS = Trace->Procs[W];
          WS.WaitNanos += Wait;
          IntervalTrace::LockSummary &LS = Trace->Locks[Op.Obj];
          ++LS.Acquires;
          ++LS.Contended;
          LS.WaitNanos += Wait;
        }
        // The granted waiter completes its acquire (paying any injected
        // contention and lock-construct surcharge active at grant time).
        InjectContention(Waiter, W, Op.Obj);
        const Nanos WAcqCost =
            AcquirePrice(W, Op.Obj,
                         static_cast<unsigned>(L.Waiters.size())) +
            LockExtra(Waiter.Clock);
        ++Waiter.Stats.AcquireReleasePairs;
        Waiter.Stats.LockOpNanos += WAcqCost;
        Waiter.Clock += WAcqCost;
        ++Waiter.Pc;
        if (Trace)
          Trace->Procs[W].LockOpNanos += WAcqCost;
        Ready.push(HeapEntry{Waiter.Clock, W});
      } else {
        L.Held = false;
      }
      Ready.push(HeapEntry{Pr.Clock, Top.P});
      break;
    }
    }
  }

  IntervalReport Report;
  Nanos LastEnd = Start;
  for (const Proc &Pr : Procs) {
    assert(Pr.Stopped && "processor never reached the switch barrier");
    LastEnd = std::max(LastEnd, Pr.EndTime);
  }
  for (Proc &Pr : Procs) {
    if (SchedInstrumented) {
      // With a scheduling dimension the instrumentation also observes the
      // synchronous switch barrier: a processor out of work (or stopped at
      // a coarse chunk boundary) spins there until the slowest finishes,
      // which is how chunk-induced load imbalance reaches the overhead
      // metric the controller compares versions by.
      Pr.Stats.WaitNanos += LastEnd - Pr.EndTime;
      Pr.Stats.ExecNanos = LastEnd - Start;
    } else {
      Pr.Stats.ExecNanos = Pr.EndTime - Start;
    }
    Report.Stats.merge(Pr.Stats);
  }
  Report.EffectiveNanos = LastEnd - Start;
  Report.Finished = NextIter >= NumIterations;
  Report.InjectedNanos = Injected;

  // Flush the interval's tallies into the run-wide metrics registry.
  {
    SimCounters &C = simCounters();
    C.Intervals.add();
    C.Iterations.add(TallyIterations);
    C.SchedFetches.add(TallySchedFetches);
    C.LockAcquires.add(TallyAcquires);
    C.LockContended.add(TallyContended);
    C.LockWaitNanos.add(static_cast<uint64_t>(TallyLockWaitNanos));
    Nanos Imbalance = 0;
    for (const Proc &Pr : Procs)
      Imbalance += LastEnd - Pr.EndTime;
    C.BarrierImbalanceNanos.add(static_cast<uint64_t>(Imbalance));
  }
  if (Topo) {
    obs::MetricsRegistry &M = obs::globalMetrics();
    M.counter("sim.numa.local_acquires").add(TallyLocalAcq);
    M.counter("sim.numa.remote_acquires").add(TallyRemoteAcq);
    M.counter("sim.numa.cold_acquires").add(TallyColdAcq);
    for (unsigned Node = 0; Node < NumNodes; ++Node)
      if (NodeContended[Node])
        M.counter(format("sim.node%u.contended", Node))
            .add(NodeContended[Node]);
  }

  // Synchronous switch: all processors wait at a barrier for the slowest,
  // then the machine proceeds.
  Machine.advance(Report.EffectiveNanos +
                  (Topo ? MM.barrierNanos() : CM.BarrierNanos));
  return Report;
}
