//===- sim/SectionSim.cpp -------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Event-driven simulation. Runnable processors live in a min-heap keyed by
// their local virtual clock; the processor with the smallest clock executes
// its next micro-op. Processing in global time order makes lock request
// ordering exact: an acquire processed later was issued later. Blocked
// processors leave the heap and are re-inserted when the lock holder's
// release grants them the lock (FIFO), with their waiting time converted
// into counted failed acquire attempts, exactly how the paper's
// instrumentation accounts waiting overhead.
//
// The loop is allocation-free in steady state: the per-interval state
// (processors, locks, ready heap) lives in a reusable IntervalState that is
// reset -- not reallocated -- each interval, iteration micro-op sequences
// come from the backend-owned EmittedOpsCache (or a reused per-processor
// scratch buffer on the live-interpretation fallback), and the whole loop
// is instantiated per machine-model topology so the flat-model path
// contains no virtual pricing calls.
//
//===----------------------------------------------------------------------===//

#include "sim/SectionSim.h"

#include "obs/Metrics.h"
#include "perturb/Engine.h"
#include "sim/Throughput.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <memory>

namespace {

bool anyNonDynamicSched(const std::vector<dynfb::sim::SimVersion> &Versions) {
  return std::any_of(Versions.begin(), Versions.end(),
                     [](const dynfb::sim::SimVersion &V) {
                       return V.Sched.Kind != dynfb::rt::SchedKind::Dynamic;
                     });
}

/// Run-wide simulator counters in the global metrics registry. The hot loop
/// accumulates plain local tallies; they are flushed here once per interval
/// so the event loop pays no atomic per micro-op.
struct SimCounters {
  dynfb::obs::Counter &Intervals =
      dynfb::obs::globalMetrics().counter("sim.intervals");
  dynfb::obs::Counter &Iterations =
      dynfb::obs::globalMetrics().counter("sim.iterations");
  dynfb::obs::Counter &SchedFetches =
      dynfb::obs::globalMetrics().counter("sim.sched_fetches");
  dynfb::obs::Counter &LockAcquires =
      dynfb::obs::globalMetrics().counter("sim.lock_acquires");
  dynfb::obs::Counter &LockContended =
      dynfb::obs::globalMetrics().counter("sim.lock_contended");
  dynfb::obs::Counter &LockWaitNanos =
      dynfb::obs::globalMetrics().counter("sim.lock_wait_ns");
  dynfb::obs::Counter &BarrierImbalanceNanos =
      dynfb::obs::globalMetrics().counter("sim.barrier_imbalance_ns");
};

SimCounters &simCounters() {
  static SimCounters C;
  return C;
}

} // namespace

using namespace dynfb;
using namespace dynfb::rt;
using namespace dynfb::sim;

ThroughputCounters &sim::throughputCounters() {
  static ThroughputCounters C;
  return C;
}

namespace {

/// Sentinel processor index ("none") for the intrusive waiter links.
constexpr uint32_t NoProc = ~0u;

struct Proc {
  Nanos Clock = 0;
  /// Current iteration's micro-ops: a view into the version's ops cache or
  /// into this processor's Scratch buffer (live-interpretation fallback).
  const MicroOp *Ops = nullptr;
  size_t NumOps = 0;
  size_t Pc = 0;
  bool HasIteration = false;
  bool Stopped = false;
  Nanos EndTime = 0;
  OverheadStats Stats;
  /// Claimed-but-unexecuted iteration range of the current scheduling
  /// chunk ([ClaimNext, ClaimEnd)). Empty under dynamic self-scheduling,
  /// where every fetch claims exactly one iteration.
  uint64_t ClaimNext = 0;
  uint64_t ClaimEnd = 0;
  /// Next processor in the lock's FIFO while this one is blocked (a
  /// processor waits on at most one lock at a time).
  uint32_t NextWaiter = NoProc;
  /// Reused live-emit buffer; its capacity survives across iterations and
  /// intervals.
  std::vector<MicroOp> Scratch;
};

/// FIFO spin lock over the intrusive Proc::NextWaiter links.
struct SimLock {
  bool Held = false;
  uint32_t WaitHead = NoProc;
  uint32_t WaitTail = NoProc;
  uint32_t NumWaiters = 0;
};

struct HeapEntry {
  Nanos T;
  uint32_t P;
  friend bool operator>(const HeapEntry &A, const HeapEntry &B) {
    if (A.T != B.T)
      return A.T > B.T;
    return A.P > B.P;
  }
};

} // namespace

/// The per-interval simulation state, hoisted out of runInterval so buffers
/// are reset rather than reallocated each interval. (T, P) heap keys are
/// unique -- a processor is in the heap at most once -- so the
/// push_heap/pop_heap order is identical to the std::priority_queue the
/// seed used.
struct SimSectionRunner::IntervalState {
  std::vector<Proc> Procs;
  std::vector<SimLock> Locks;
  std::vector<HeapEntry> Heap;
  std::vector<uint64_t> NodeContended;
};

SimSectionRunner::SimSectionRunner(SimMachine &Machine,
                                   const DataBinding &Binding,
                                   std::vector<SimVersion> Versions,
                                   bool Instrumented)
    : Machine(Machine), Binding(Binding), Versions(std::move(Versions)),
      Instrumented(Instrumented),
      SchedInstrumented(anyNonDynamicSched(this->Versions)),
      NumIterations(Binding.iterationCount()) {
  assert(!this->Versions.empty() && "section needs at least one version");
  Emitters.reserve(this->Versions.size());
  for (const SimVersion &V : this->Versions)
    Emitters.emplace_back(V.Entry, Binding, Machine.costs());
}

SimSectionRunner::~SimSectionRunner() = default;

void SimSectionRunner::setPerturbation(
    const perturb::PerturbationEngine *Engine, std::string Section) {
  SectionName = std::move(Section);
  // Keep the unperturbed fast path free of per-op queries when the schedule
  // cannot touch this section.
  Perturb = Engine && Engine->mayAffect(SectionName) ? Engine : nullptr;
}

void SimSectionRunner::attachOpsCaches(
    std::vector<rt::EmittedOpsCache> *Caches) {
  assert((!Caches || Caches->size() == Emitters.size()) &&
         "one ops cache per code version");
  for (size_t V = 0; V < Emitters.size(); ++V)
    Emitters[V].attachCache(Caches ? &(*Caches)[V] : nullptr);
}

IntervalReport SimSectionRunner::runInterval(unsigned V, Nanos Target) {
  // One instantiation per topology class: the flat path carries no virtual
  // pricing calls and no per-op topology branches.
  return Machine.model().topologyAware() ? runIntervalImpl<true>(V, Target)
                                         : runIntervalImpl<false>(V, Target);
}

template <bool Topo>
IntervalReport SimSectionRunner::runIntervalImpl(unsigned V, Nanos Target) {
  assert(V < Versions.size() && "version index out of range");
  assert(Machine.model().topologyAware() == Topo && "wrong instantiation");
  const CostModel &CM = Machine.costs();
  const Nanos Start = Machine.now();
  const Nanos Deadline = Start + Target;
  const Nanos InstrCost = Instrumented ? CM.InstrumentNanos : 0;
  const Nanos AcqCost = CM.AcquireNanos + InstrCost;
  const Nanos RelCost = CM.ReleaseNanos + InstrCost;

  const unsigned P = Machine.numProcs();

  // Topology-aware machine models (dash-numa) price lock events from the
  // home node of each lock's cache line and the contention depth; the flat
  // models keep the seed's constant-folded arithmetic above, untouched.
  const rt::MachineModel &MM = Machine.model();
  std::vector<int> *Homes = nullptr;
  unsigned NumNodes = 1;
  if constexpr (Topo) {
    Homes = &Machine.lockHomes(SectionName, Binding.objectCount());
    NumNodes = MM.nodeOf(P - 1) + 1;
  }
  const Nanos FailedAcqNanos =
      Topo ? MM.failedAcquireNanos() : CM.FailedAcquireNanos;
  // Waiting time is converted to counted failed acquires by ceil-dividing
  // with the failed-attempt cost. Zero is a legal cost ("spinning is free"),
  // so the conversion divisor is clamped to one nanosecond per attempt.
  const Nanos FailedAcqDiv = std::max<Nanos>(1, FailedAcqNanos);

  // Per-node contention tallies plus the local/remote/cold acquire split,
  // flushed into the metrics registry at interval end (topology-aware
  // models only, so flat-machine metric exports stay byte-identical).
  uint64_t TallyLocalAcq = 0, TallyRemoteAcq = 0, TallyColdAcq = 0;

  if (!State)
    State = std::make_unique<IntervalState>();
  IntervalState &S = *State;
  if (S.Procs.size() != P) {
    S.Procs.assign(P, Proc{});
    for (Proc &Pr : S.Procs)
      Pr.Scratch.reserve(64);
  }
  for (Proc &Pr : S.Procs) {
    Pr.Clock = Start;
    Pr.Ops = nullptr;
    Pr.NumOps = 0;
    Pr.Pc = 0;
    Pr.HasIteration = false;
    Pr.Stopped = false;
    Pr.EndTime = 0;
    Pr.Stats = OverheadStats{};
    Pr.ClaimNext = 0;
    Pr.ClaimEnd = 0;
    Pr.NextWaiter = NoProc;
  }
  // assign() keeps the vectors' capacity: no reallocation after the first
  // interval of a run.
  S.Locks.assign(Binding.objectCount(), SimLock{});
  S.NodeContended.assign(Topo ? NumNodes : 0, 0);
  S.Heap.clear();
  std::vector<Proc> &Procs = S.Procs;
  std::vector<SimLock> &Locks = S.Locks;
  std::vector<HeapEntry> &Heap = S.Heap;

  const auto HeapPush = [&Heap](Nanos T, uint32_t ProcIdx) {
    Heap.push_back(HeapEntry{T, ProcIdx});
    std::push_heap(Heap.begin(), Heap.end(), std::greater<HeapEntry>());
  };

  // Prices one successful acquire and moves the lock's line to the
  // acquirer's cluster. \p Depth is the number of waiters still queued.
  auto AcquirePrice = [&](uint32_t ProcIdx, uint32_t Obj,
                          unsigned Depth) -> Nanos {
    if constexpr (!Topo) {
      (void)ProcIdx;
      (void)Obj;
      (void)Depth;
      return AcqCost;
    } else {
      const int Home = (*Homes)[Obj];
      const unsigned Node = MM.nodeOf(ProcIdx);
      if (Home < 0)
        ++TallyColdAcq;
      else if (static_cast<unsigned>(Home) == Node)
        ++TallyLocalAcq;
      else
        ++TallyRemoteAcq;
      const Nanos Cost =
          MM.acquireNanos(rt::LockEvent{ProcIdx, Obj, Home, Depth}) +
          InstrCost;
      (*Homes)[Obj] = static_cast<int>(Node);
      return Cost;
    }
  };
  auto ReleasePrice = [&](uint32_t ProcIdx, uint32_t Obj) -> Nanos {
    if constexpr (!Topo) {
      (void)ProcIdx;
      (void)Obj;
      return RelCost;
    } else {
      return MM.releaseNanos(rt::LockEvent{ProcIdx, Obj, (*Homes)[Obj], 0}) +
             InstrCost;
    }
  };

  for (unsigned I = 0; I < P; ++I)
    HeapPush(Start, I);

  if (Trace) {
    if (!Trace->Cumulative)
      Trace->clear();
    if (Trace->Procs.size() < P)
      Trace->Procs.resize(P);
  }

  // Interval-local tallies flushed into the metrics registry at the end;
  // plain integers so the event loop stays free of atomics.
  uint64_t TallyIterations = 0;
  uint64_t TallyMicroOps = 0;
  uint64_t TallySchedFetches = 0;
  uint64_t TallyAcquires = 0;
  uint64_t TallyContended = 0;
  Nanos TallyLockWaitNanos = 0;

  auto Stop = [&](Proc &Pr) {
    Pr.Stopped = true;
    Pr.EndTime = Pr.Clock;
  };

  // Injected-fault accounting (zero and untouched without an engine).
  const perturb::PerturbationEngine *PE = Perturb;
  Nanos Injected = 0;

  // An acquire succeeding during a contention burst additionally waits for
  // the injected interloper, accounted exactly like organic spinning.
  auto InjectContention = [&](Proc &Pr, uint32_t ProcIdx, uint32_t Obj) {
    if (!PE)
      return;
    const Nanos Extra = PE->contentionExtra(SectionName, Obj, Pr.Clock);
    if (Extra <= 0)
      return;
    TallyLockWaitNanos += Extra;
    Pr.Stats.WaitNanos += Extra;
    Pr.Stats.FailedAcquires += static_cast<uint64_t>(
        (Extra + FailedAcqDiv - 1) / FailedAcqDiv);
    Pr.Clock += Extra;
    Injected += Extra;
    if (Trace)
      Trace->Procs[ProcIdx].WaitNanos += Extra;
  };

  // Lock-hold spikes surcharge every lock construct.
  auto LockExtra = [&](Nanos T) -> Nanos {
    if (!PE)
      return 0;
    const Nanos Extra = PE->lockHoldExtra(SectionName, T);
    Injected += Extra;
    return Extra;
  };

  const IterationEmitter &Emitter = Emitters[V];
  // Iterations one scheduler fetch claims: 1 under dynamic
  // self-scheduling, the chunk size under blocked scheduling. The DLS
  // family computes its claim per fetch from the unassigned remainder.
  const rt::SchedSpec &Sched = Versions[V].Sched;
  const bool VariableChunk = Sched.variableChunk();
  const uint64_t Chunk = Sched.chunkIters();

  while (!Heap.empty()) {
    std::pop_heap(Heap.begin(), Heap.end(), std::greater<HeapEntry>());
    const HeapEntry Top = Heap.back();
    Heap.pop_back();
    Proc &Pr = Procs[Top.P];
    assert(!Pr.Stopped && "stopped processor in ready heap");

    if (!Pr.HasIteration) {
      if (Pr.ClaimNext >= Pr.ClaimEnd) {
        // Self-scheduling: fetch the next chunk of iterations (exactly one
        // under dynamic scheduling).
        ++TallySchedFetches;
        const Nanos FetchCost =
            Topo ? MM.schedFetchNanos(Top.P) : CM.SchedFetchNanos;
        Pr.Clock += FetchCost;
        if (SchedInstrumented)
          Pr.Stats.SchedNanos += FetchCost;
        if (Trace)
          Trace->Procs[Top.P].OverheadNanos += FetchCost;
        if (NextIter >= NumIterations) {
          Stop(Pr);
          continue;
        }
        const uint64_t Claim =
            VariableChunk ? Sched.fetchIters(NumIterations - NextIter,
                                             NumIterations, P, Top.P)
                          : Chunk;
        Pr.ClaimNext = NextIter;
        Pr.ClaimEnd = std::min(NextIter + Claim, NumIterations);
        NextIter = Pr.ClaimEnd;
      }
      const std::vector<MicroOp> &Seq =
          Emitter.ops(Pr.ClaimNext++, Pr.Scratch);
      Pr.Ops = Seq.data();
      Pr.NumOps = Seq.size();
      Pr.Pc = 0;
      Pr.HasIteration = true;
      ++TallyIterations;
      // Fetched iterations always run to completion (the deadline is only
      // checked at chunk boundaries), so ops-at-fetch equals ops-executed.
      TallyMicroOps += Pr.NumOps;
      if (Trace)
        ++Trace->Procs[Top.P].Iterations;
      HeapPush(Pr.Clock, Top.P);
      continue;
    }

    if (Pr.Pc == Pr.NumOps) {
      Pr.HasIteration = false;
      if (Pr.ClaimNext < Pr.ClaimEnd) {
        // Mid-chunk iteration boundary: the claimed chunk continues
        // back-to-back -- no timer poll, not a potential switch point.
        HeapPush(Pr.Clock, Top.P);
        continue;
      }
      // Chunk boundary, a potential switch point: poll the timer.
      Nanos TimerCost = Topo ? MM.timerReadNanos(Top.P) : CM.TimerReadNanos;
      if (PE) {
        Nanos Noise = PE->timerNoise(SectionName, Top.P, Pr.Clock);
        if (TimerCost + Noise < 0)
          Noise = -TimerCost; // A read can be fast, never negative.
        TimerCost += Noise;
        Injected += Noise;
      }
      Pr.Clock += TimerCost;
      if (Trace)
        Trace->Procs[Top.P].OverheadNanos += TimerCost;
      if (Pr.Clock >= Deadline)
        Stop(Pr);
      else
        HeapPush(Pr.Clock, Top.P);
      continue;
    }

    const MicroOp &Op = Pr.Ops[Pr.Pc];
    switch (Op.K) {
    case MicroOp::Kind::Compute: {
      Nanos Dur = Op.Dur;
      if (PE) {
        const double Scale = PE->computeScale(SectionName, Top.P, Pr.Clock);
        if (Scale != 1.0) {
          const Nanos Scaled = std::max<Nanos>(
              0, static_cast<Nanos>(
                     std::llround(static_cast<double>(Dur) * Scale)));
          Injected += Scaled - Dur;
          Dur = Scaled;
        }
      }
      Pr.Clock += Dur;
      ++Pr.Pc;
      if (Trace)
        Trace->Procs[Top.P].ComputeNanos += Dur;
      HeapPush(Pr.Clock, Top.P);
      break;
    }

    case MicroOp::Kind::Acquire: {
      SimLock &L = Locks[Op.Obj];
      if (!L.Held) {
        InjectContention(Pr, Top.P, Op.Obj);
        const Nanos Cost = AcquirePrice(Top.P, Op.Obj, 0) +
                           LockExtra(Pr.Clock);
        L.Held = true;
        ++TallyAcquires;
        ++Pr.Stats.AcquireReleasePairs;
        Pr.Stats.LockOpNanos += Cost;
        Pr.Clock += Cost;
        ++Pr.Pc;
        if (Trace) {
          Trace->Procs[Top.P].LockOpNanos += Cost;
          ++Trace->Locks[Op.Obj].Acquires;
        }
        HeapPush(Pr.Clock, Top.P);
      } else {
        // Block: the processor spins until the holder's release grants it
        // the lock. Its clock stays at the request time.
        Pr.NextWaiter = NoProc;
        if (L.WaitTail == NoProc)
          L.WaitHead = Top.P;
        else
          Procs[L.WaitTail].NextWaiter = Top.P;
        L.WaitTail = Top.P;
        ++L.NumWaiters;
      }
      break;
    }

    case MicroOp::Kind::Release: {
      SimLock &L = Locks[Op.Obj];
      assert(L.Held && "release of a free lock");
      const Nanos RelTotal = ReleasePrice(Top.P, Op.Obj) + LockExtra(Pr.Clock);
      Pr.Stats.LockOpNanos += RelTotal;
      Pr.Clock += RelTotal;
      ++Pr.Pc;
      if (Trace)
        Trace->Procs[Top.P].LockOpNanos += RelTotal;
      if (L.WaitHead != NoProc) {
        const uint32_t W = L.WaitHead;
        Proc &Waiter = Procs[W];
        L.WaitHead = Waiter.NextWaiter;
        if (L.WaitHead == NoProc)
          L.WaitTail = NoProc;
        --L.NumWaiters;
        Waiter.NextWaiter = NoProc;
        const Nanos Wait = Pr.Clock - Waiter.Clock;
        assert(Wait >= 0 && "negative waiting time");
        ++TallyAcquires;
        ++TallyContended;
        TallyLockWaitNanos += Wait;
        Waiter.Stats.WaitNanos += Wait;
        Waiter.Stats.FailedAcquires +=
            Wait > 0 ? static_cast<uint64_t>((Wait + FailedAcqDiv - 1) /
                                             FailedAcqDiv)
                     : 1;
        Waiter.Clock = Pr.Clock;
        if constexpr (Topo)
          ++S.NodeContended[MM.nodeOf(W)];
        if (Trace) {
          IntervalTrace::ProcSummary &WS = Trace->Procs[W];
          WS.WaitNanos += Wait;
          IntervalTrace::LockSummary &LS = Trace->Locks[Op.Obj];
          ++LS.Acquires;
          ++LS.Contended;
          LS.WaitNanos += Wait;
        }
        // The granted waiter completes its acquire (paying any injected
        // contention and lock-construct surcharge active at grant time).
        InjectContention(Waiter, W, Op.Obj);
        const Nanos WAcqCost =
            AcquirePrice(W, Op.Obj, L.NumWaiters) + LockExtra(Waiter.Clock);
        ++Waiter.Stats.AcquireReleasePairs;
        Waiter.Stats.LockOpNanos += WAcqCost;
        Waiter.Clock += WAcqCost;
        ++Waiter.Pc;
        if (Trace)
          Trace->Procs[W].LockOpNanos += WAcqCost;
        HeapPush(Waiter.Clock, W);
      } else {
        L.Held = false;
      }
      HeapPush(Pr.Clock, Top.P);
      break;
    }
    }
  }

  IntervalReport Report;
  Nanos LastEnd = Start;
  for (const Proc &Pr : Procs) {
    assert(Pr.Stopped && "processor never reached the switch barrier");
    LastEnd = std::max(LastEnd, Pr.EndTime);
  }
  for (Proc &Pr : Procs) {
    if (SchedInstrumented) {
      // With a scheduling dimension the instrumentation also observes the
      // synchronous switch barrier: a processor out of work (or stopped at
      // a coarse chunk boundary) spins there until the slowest finishes,
      // which is how chunk-induced load imbalance reaches the overhead
      // metric the controller compares versions by.
      Pr.Stats.WaitNanos += LastEnd - Pr.EndTime;
      Pr.Stats.ExecNanos = LastEnd - Start;
    } else {
      Pr.Stats.ExecNanos = Pr.EndTime - Start;
    }
    Report.Stats.merge(Pr.Stats);
  }
  Report.EffectiveNanos = LastEnd - Start;
  Report.Finished = NextIter >= NumIterations;
  Report.InjectedNanos = Injected;

  // Flush the interval's tallies into the run-wide metrics registry.
  {
    SimCounters &C = simCounters();
    C.Intervals.add();
    C.Iterations.add(TallyIterations);
    C.SchedFetches.add(TallySchedFetches);
    C.LockAcquires.add(TallyAcquires);
    C.LockContended.add(TallyContended);
    C.LockWaitNanos.add(static_cast<uint64_t>(TallyLockWaitNanos));
    Nanos Imbalance = 0;
    for (const Proc &Pr : Procs)
      Imbalance += LastEnd - Pr.EndTime;
    C.BarrierImbalanceNanos.add(static_cast<uint64_t>(Imbalance));
  }
  {
    ThroughputCounters &TC = throughputCounters();
    TC.MicroOps += TallyMicroOps;
    TC.Iterations += TallyIterations;
    ++TC.Intervals;
  }
  if constexpr (Topo) {
    obs::MetricsRegistry &M = obs::globalMetrics();
    M.counter("sim.numa.local_acquires").add(TallyLocalAcq);
    M.counter("sim.numa.remote_acquires").add(TallyRemoteAcq);
    M.counter("sim.numa.cold_acquires").add(TallyColdAcq);
    for (unsigned Node = 0; Node < NumNodes; ++Node)
      if (S.NodeContended[Node])
        M.counter(format("sim.node%u.contended", Node))
            .add(S.NodeContended[Node]);
  }

  // Synchronous switch: all processors wait at a barrier for the slowest,
  // then the machine proceeds.
  Machine.advance(Report.EffectiveNanos +
                  (Topo ? MM.barrierNanos() : CM.BarrierNanos));
  return Report;
}
