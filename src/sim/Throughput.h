//===- sim/Throughput.h - Simulator throughput counters ---------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide tallies of simulator hot-loop work, the raw material of the
/// sim_throughput benchmark: callers snapshot the counters around a run and
/// divide the deltas by wall-clock time. Deliberately NOT obs registry
/// counters -- the registry renders every registered metric into
/// --metrics-out exports, whose byte-identical output is golden-tested, and
/// wall-clock throughput is measurement plumbing, not a run observable.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_SIM_THROUGHPUT_H
#define DYNFB_SIM_THROUGHPUT_H

#include <cstdint>

namespace dynfb::sim {

/// Cumulative hot-loop work executed by every SimSectionRunner in this
/// process. Flushed once per interval (plain integers, no atomics: the
/// simulator is single-threaded).
struct ThroughputCounters {
  uint64_t MicroOps = 0;   ///< Executed micro-ops (compute/acquire/release).
  uint64_t Iterations = 0; ///< Parallel-loop iterations executed.
  uint64_t Intervals = 0;  ///< runInterval calls completed.
};

ThroughputCounters &throughputCounters();

} // namespace dynfb::sim

#endif // DYNFB_SIM_THROUGHPUT_H
