//===- xform/LockElimination.cpp ------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "xform/LockElimination.h"

#include "analysis/Regions.h"
#include "ir/Clone.h"
#include "xform/Synchronizer.h"

#include <cassert>
#include <optional>
#include <set>

using namespace dynfb;
using namespace dynfb::analysis;
using namespace dynfb::ir;
using namespace dynfb::xform;

namespace {

/// Driver for one version's transformation. Processes the closure bottom-up
/// (callees first) so interprocedural lifts see final callee shapes.
class Optimizer {
public:
  Optimizer(Module &M, PolicyKind Policy) : M(M), Policy(Policy) {}

  void run(Method *Entry) { transformMethod(Entry); }

  OptStats Stats;

private:
  void transformMethod(Method *Meth) {
    if (!Done.insert(Meth).second)
      return;
    // Callees first.
    std::vector<std::vector<Stmt *> *> Lists{&Meth->body()};
    while (!Lists.empty()) {
      std::vector<Stmt *> *List = Lists.back();
      Lists.pop_back();
      for (Stmt *S : *List) {
        if (auto *C = stmtDynCast<CallStmt>(S))
          transformMethod(const_cast<Method *>(C->callee()));
        else if (auto *L = stmtDynCast<LoopStmt>(S))
          Lists.push_back(&L->Body);
      }
    }
    if (Policy != PolicyKind::Original)
      transformList(Meth->body());
  }

  /// Transforms one statement list: inner loops first, then coalescing,
  /// then (Aggressive only) loop lifting to a fixpoint.
  void transformList(std::vector<Stmt *> &List) {
    for (Stmt *S : List)
      if (auto *L = stmtDynCast<LoopStmt>(S))
        transformList(L->Body);

    bool Changed = true;
    while (Changed) {
      Changed = coalesce(List);
      if (Policy == PolicyKind::Aggressive)
        for (size_t I = 0; I < List.size(); ++I)
          if (auto *L = stmtDynCast<LoopStmt>(List[I]))
            if (tryLift(List, I, L)) {
              Changed = true;
              break;
            }
    }
  }

  /// Eliminates Release(R) ... Acquire(R) pairs separated only by pure
  /// computation, merging the surrounding critical regions (legal under
  /// Bounded because the merged region stays loop- and cycle-free).
  bool coalesce(std::vector<Stmt *> &List) {
    bool Any = false;
    for (size_t I = 0; I < List.size(); ++I) {
      const auto *Rel = stmtDynCast<ReleaseStmt>(List[I]);
      if (!Rel)
        continue;
      // Scan forward over absorbable statements for a matching acquire.
      size_t J = I + 1;
      while (J < List.size() && List[J]->kind() == StmtKind::Compute)
        ++J;
      if (J >= List.size())
        continue;
      const auto *Acq = stmtDynCast<AcquireStmt>(List[J]);
      if (!Acq || !(Acq->Recv == Rel->Recv))
        continue;
      List.erase(List.begin() + static_cast<long>(J));
      List.erase(List.begin() + static_cast<long>(I));
      ++Stats.RegionsCoalesced;
      Any = true;
      --I; // Rescan from the statement now at position I.
    }
    return Any;
  }

  /// Classification of a loop body for lifting: exactly one region element
  /// (an explicit Acquire..Release group, or one call to a SingleRegion
  /// callee), everything else lock-free. Returns the region receiver as the
  /// enclosing method names it, or nullopt when the loop is not liftable.
  struct LiftPlan {
    Receiver Recv;
    // Explicit region: indices of the Acquire and Release in the loop body.
    std::optional<size_t> AcqIdx, RelIdx;
    // Interprocedural: the call to retarget to a stripped variant.
    CallStmt *Call = nullptr;
  };

  std::optional<LiftPlan> planLift(LoopStmt *L) {
    LiftPlan Plan;
    bool SawRegion = false;
    std::optional<Receiver> Open;
    for (size_t I = 0; I < L->Body.size(); ++I) {
      Stmt *S = L->Body[I];
      if (Open) {
        if (auto *R = stmtDynCast<ReleaseStmt>(S)) {
          if (!(R->Recv == *Open))
            return std::nullopt;
          Plan.RelIdx = I;
          Open.reset();
          continue;
        }
        std::vector<Stmt *> One{S};
        if (!Shapes.listIsLockFree(One))
          return std::nullopt;
        continue;
      }
      switch (S->kind()) {
      case StmtKind::Acquire: {
        if (SawRegion)
          return std::nullopt;
        const Receiver A = stmtCast<AcquireStmt>(S).Recv;
        SawRegion = true;
        Plan.Recv = A;
        Plan.AcqIdx = I;
        Open = A;
        break;
      }
      case StmtKind::Release:
        return std::nullopt;
      case StmtKind::Call: {
        auto *C = static_cast<CallStmt *>(S);
        const ShapeSummary &CS = Shapes.summary(C->callee());
        if (CS.Shape == BodyShape::LockFree)
          break;
        if (CS.Shape != BodyShape::SingleRegion || SawRegion)
          return std::nullopt;
        std::optional<Receiver> Translated =
            ShapeAnalysis::translateToCaller(CS.RegionRecv, *C);
        if (!Translated)
          return std::nullopt;
        SawRegion = true;
        Plan.Recv = *Translated;
        Plan.Call = C;
        break;
      }
      case StmtKind::Loop:
        if (!Shapes.listIsLockFree(stmtCast<LoopStmt>(S).Body))
          return std::nullopt;
        break;
      case StmtKind::Update:
        // A naked update at this level would be unprotected; the default
        // placement never produces this.
        return std::nullopt;
      case StmtKind::Compute:
        break;
      }
    }
    if (Open || !SawRegion)
      return std::nullopt;
    if (!Plan.Recv.isInvariantIn(L->LoopId))
      return std::nullopt;
    return Plan;
  }

  /// Lifts the single region of \p L out of the loop: the acquire moves
  /// before the loop and the release after it, so the lock is acquired and
  /// released once instead of once per iteration.
  bool tryLift(std::vector<Stmt *> &List, size_t LoopIdx, LoopStmt *L) {
    std::optional<LiftPlan> Plan = planLift(L);
    if (!Plan)
      return false;
    if (Plan->AcqIdx) {
      assert(Plan->RelIdx && "explicit region without release");
      // Erase release first (higher index).
      L->Body.erase(L->Body.begin() + static_cast<long>(*Plan->RelIdx));
      L->Body.erase(L->Body.begin() + static_cast<long>(*Plan->AcqIdx));
    } else {
      assert(Plan->Call && "lift plan without region");
      Plan->Call->setCallee(strippedVariant(Plan->Call->callee()));
    }
    List.insert(List.begin() + static_cast<long>(LoopIdx),
                M.createAcquire(Plan->Recv));
    List.insert(List.begin() + static_cast<long>(LoopIdx) + 2,
                M.createRelease(Plan->Recv));
    ++Stats.LoopsLifted;
    return true;
  }

  /// Returns (creating and memoizing on first use) the lock-free variant of
  /// \p Orig: a clone of its closure with every acquire/release removed.
  const Method *strippedVariant(const Method *Orig) {
    auto It = Stripped.find(Orig);
    if (It != Stripped.end())
      return It->second;
    CloneResult CR = cloneMethodClosure(M, Orig, "_nolock");
    stripAllLocks(CR.Root);
    ++Stats.CalleesStripped;
    return Stripped[Orig] = CR.Root;
  }

  Module &M;
  const PolicyKind Policy;
  ShapeAnalysis Shapes;
  std::set<const Method *> Done;
  std::map<const Method *, const Method *> Stripped;
};

} // namespace

OptStats xform::optimizeSynchronization(Module &M, Method *Entry,
                                        PolicyKind Policy) {
  Optimizer Opt(M, Policy);
  Opt.run(Entry);
  return Opt.Stats;
}
