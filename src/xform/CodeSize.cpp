//===- xform/CodeSize.cpp -------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "xform/CodeSize.h"

#include "analysis/CallGraph.h"
#include "ir/StructuralHash.h"

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::xform;

static uint64_t listBytes(const std::vector<Stmt *> &List,
                          const CodeSizeModel &Model, bool Instrumented) {
  uint64_t Bytes = 0;
  for (const Stmt *S : List) {
    switch (S->kind()) {
    case StmtKind::Compute:
      Bytes += Model.ComputeBytes;
      break;
    case StmtKind::Update:
      Bytes += Model.UpdateBytes;
      break;
    case StmtKind::Acquire:
    case StmtKind::Release:
      Bytes += Instrumented ? Model.LockOpInstrumentedBytes
                            : Model.LockOpBytes;
      break;
    case StmtKind::Call:
      Bytes += Model.CallBytes;
      break;
    case StmtKind::Loop:
      Bytes += Model.LoopBytes +
               listBytes(stmtCast<LoopStmt>(S).Body, Model, Instrumented);
      break;
    }
  }
  return Bytes;
}

uint64_t CodeSizeModel::methodBytes(const Method &M, bool Instrumented) const {
  return MethodOverheadBytes + listBytes(M.body(), *this, Instrumented);
}

uint64_t
CodeSizeModel::closureBytes(const std::vector<const Method *> &Entries,
                            bool Instrumented) const {
  // Union of closures, deduplicated by structural equality (one emitted copy
  // per distinct method body).
  std::vector<const Method *> Unique;
  for (const Method *Entry : Entries) {
    analysis::CallGraph CG(*Entry);
    for (const Method *M : CG.nodes()) {
      bool Known = false;
      for (const Method *U : Unique)
        if (structuralHash(*U) == structuralHash(*M) &&
            structurallyEqual(*U, *M)) {
          Known = true;
          break;
        }
      if (!Known)
        Unique.push_back(M);
    }
  }
  uint64_t Bytes = 0;
  for (const Method *M : Unique)
    Bytes += methodBytes(*M, Instrumented);
  return Bytes;
}

ExecutableSizes xform::computeExecutableSizes(const VersionedProgram &Program,
                                              const CodeSizeModel &Model,
                                              uint64_t SerialBaseBytes) {
  ExecutableSizes Sizes;

  std::vector<const Method *> SerialEntries, AggressiveEntries, AllEntries;
  uint64_t DispatchBytes = 0, DriverBytes = 0;
  for (const VersionedSection &VS : Program.Sections) {
    SerialEntries.push_back(VS.SerialEntry);
    AggressiveEntries.push_back(
        VS.versionFor(PolicyKind::Aggressive).Entry);
    for (const SectionVersion &V : VS.Versions)
      AllEntries.push_back(V.Entry);
    DispatchBytes += Model.PollBytesPerSection +
                     Model.DispatchBytesPerVersion * VS.Versions.size();
    DriverBytes += Model.ParallelDriverBytes;
  }

  Sizes.Serial =
      SerialBaseBytes + Model.closureBytes(SerialEntries, false);
  Sizes.Aggressive = SerialBaseBytes + DriverBytes +
                     Model.closureBytes(AggressiveEntries, false);
  // The Dynamic executable carries every version, instrumented (the paper
  // runs instrumented code in both sampling and production phases to avoid
  // further code growth), plus dispatch and polling code.
  Sizes.Dynamic = SerialBaseBytes + DriverBytes +
                  Model.closureBytes(AllEntries, true) + DispatchBytes;
  return Sizes;
}

uint64_t xform::fixedExecutableBytes(const VersionedProgram &Program,
                                     const CodeSizeModel &Model,
                                     uint64_t SerialBaseBytes,
                                     const VersionDescriptor &D) {
  std::vector<const Method *> Entries;
  uint64_t DriverBytes = 0;
  for (const VersionedSection &VS : Program.Sections) {
    Entries.push_back(VS.versionFor(D).Entry);
    DriverBytes += Model.ParallelDriverBytes;
  }
  return SerialBaseBytes + DriverBytes + Model.closureBytes(Entries, false);
}

uint64_t xform::serialExecutableBytes(const VersionedProgram &Program,
                                      const CodeSizeModel &Model,
                                      uint64_t SerialBaseBytes) {
  std::vector<const Method *> Entries;
  for (const VersionedSection &VS : Program.Sections)
    Entries.push_back(VS.SerialEntry);
  return SerialBaseBytes + Model.closureBytes(Entries, false);
}
