//===- xform/Policy.h - Synchronization optimization policies --*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three synchronization optimization policies of paper Section 3.
/// They differ in when the lock elimination transformation may be applied:
///  - Original: never -- every commuting update keeps its own
///    acquire/release pair (the default placement).
///  - Bounded: only if the new critical region is statically bounded --
///    it contains no loops and no call-graph cycles. In practice this
///    admits region coalescing across straight-line code.
///  - Aggressive: always -- coalescing plus (interprocedural) lifting of
///    invariant-receiver regions out of loops (the paper's Figures 1-2).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_XFORM_POLICY_H
#define DYNFB_XFORM_POLICY_H

#include "support/Compiler.h"

namespace dynfb::xform {

/// Synchronization optimization policy.
enum class PolicyKind { Original, Bounded, Aggressive };

/// All policies, in sampling order (the order the paper's generated code
/// samples them unless early cut-off reorders).
inline constexpr PolicyKind AllPolicies[] = {
    PolicyKind::Original, PolicyKind::Bounded, PolicyKind::Aggressive};

/// Human-readable policy name as used in the paper's tables.
inline const char *policyName(PolicyKind P) {
  switch (P) {
  case PolicyKind::Original:
    return "Original";
  case PolicyKind::Bounded:
    return "Bounded";
  case PolicyKind::Aggressive:
    return "Aggressive";
  }
  DYNFB_UNREACHABLE("invalid policy kind");
}

/// Short suffix for synthetic method names.
inline const char *policySuffix(PolicyKind P) {
  switch (P) {
  case PolicyKind::Original:
    return "$orig";
  case PolicyKind::Bounded:
    return "$bnd";
  case PolicyKind::Aggressive:
    return "$agg";
  }
  DYNFB_UNREACHABLE("invalid policy kind");
}

} // namespace dynfb::xform

#endif // DYNFB_XFORM_POLICY_H
