//===- xform/MultiVersion.h - Per-policy version generation ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates, for every parallel section, one code version per
/// synchronization optimization policy (paper Section 4.2) and deduplicates
/// policy-equivalent versions: when two policies generate the same code the
/// compiler emits a single version (e.g. Water's INTERF section, where
/// Bounded and Aggressive coincide, and POTENG, where Original and Bounded
/// coincide). A serial (lock-free) entry per section is also produced for
/// serial-time measurement and the code-size accounting of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_XFORM_MULTIVERSION_H
#define DYNFB_XFORM_MULTIVERSION_H

#include "ir/Module.h"
#include "xform/Policy.h"

#include <string>
#include <vector>

namespace dynfb::xform {

/// One generated code version of a parallel section.
struct SectionVersion {
  /// The policies whose generated code is this version (>= 1 entry;
  /// deduplicated policy-equivalent versions list several).
  std::vector<PolicyKind> Policies;
  ir::Method *Entry = nullptr;

  bool hasPolicy(PolicyKind P) const {
    for (PolicyKind Q : Policies)
      if (Q == P)
        return true;
    return false;
  }
  /// Display label, e.g. "Original" or "Bounded/Aggressive".
  std::string label() const;
};

/// All versions of one parallel section.
struct VersionedSection {
  std::string Name;
  std::vector<SectionVersion> Versions; ///< In policy order, deduplicated.
  ir::Method *SerialEntry = nullptr;    ///< Lock-free clone.

  /// Index of the version implementing \p P. Asserts if absent.
  unsigned indexFor(PolicyKind P) const;
  const SectionVersion &versionFor(PolicyKind P) const {
    return Versions[indexFor(P)];
  }
};

/// The multi-versioned program: one VersionedSection per parallel section.
struct VersionedProgram {
  std::vector<VersionedSection> Sections;

  const VersionedSection *find(const std::string &Name) const;
};

/// Generates all versions for every section of \p M. Asserts that
/// commutativity analysis accepts each section (the compiler only
/// parallelizes sections whose operations commute) and that every generated
/// version passes the module verifier including interprocedural atomicity.
VersionedProgram generateVersions(ir::Module &M);

} // namespace dynfb::xform

#endif // DYNFB_XFORM_MULTIVERSION_H
