//===- xform/MultiVersion.h - Version-space code generation ----*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates, for every parallel section, one code version per point of the
/// version space (paper Section 4.2, generalized to N-dimensional spaces)
/// and deduplicates equivalent versions: two space points share a version
/// when their scheduling strategies coincide and their policies generate
/// structurally identical code (e.g. Water's INTERF section, where Bounded
/// and Aggressive coincide, and POTENG, where Original and Bounded
/// coincide). Only the synchronization dimension materializes method
/// bodies; the scheduling dimension binds at the dispatch loop, so sched
/// variants of one policy share their entry. A serial (lock-free) entry per
/// section is also produced for serial-time measurement and the code-size
/// accounting of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_XFORM_MULTIVERSION_H
#define DYNFB_XFORM_MULTIVERSION_H

#include "ir/Module.h"
#include "xform/VersionSpace.h"

#include <string>
#include <vector>

namespace dynfb::xform {

/// One generated code version of a parallel section: an entry method plus
/// the scheduling strategy its dispatch loop uses.
struct SectionVersion {
  /// The space points whose generated code is this version (>= 1 entry;
  /// deduplicated equivalent versions list several).
  std::vector<VersionDescriptor> Descriptors;
  ir::Method *Entry = nullptr;
  rt::SchedSpec Sched;

  bool hasPolicy(PolicyKind P) const {
    for (const VersionDescriptor &D : Descriptors)
      if (D.Policy == P)
        return true;
    return false;
  }
  bool hasDescriptor(const VersionDescriptor &D) const {
    for (const VersionDescriptor &Q : Descriptors)
      if (Q == D)
        return true;
    return false;
  }
  /// Display label, e.g. "Original" or "Bounded/Aggressive"; chunked
  /// variants read "Original+chunk8".
  std::string label() const;
};

/// All versions of one parallel section.
struct VersionedSection {
  std::string Name;
  std::vector<SectionVersion> Versions; ///< In space order, deduplicated.
  ir::Method *SerialEntry = nullptr;    ///< Lock-free clone.

  /// Index of the first version implementing \p P (under any scheduling;
  /// space order puts the dynamically scheduled one first). Asserts if
  /// absent.
  unsigned indexFor(PolicyKind P) const;
  const SectionVersion &versionFor(PolicyKind P) const {
    return Versions[indexFor(P)];
  }

  /// Index of the version implementing the exact space point \p D. Asserts
  /// if the descriptor is not in the generated space.
  unsigned indexFor(const VersionDescriptor &D) const;
  const SectionVersion &versionFor(const VersionDescriptor &D) const {
    return Versions[indexFor(D)];
  }
};

/// The multi-versioned program: one VersionedSection per parallel section.
struct VersionedProgram {
  std::vector<VersionedSection> Sections;
  VersionSpace Space; ///< The space the sections were generated from.

  const VersionedSection *find(const std::string &Name) const;
};

/// Generates all versions of every section of \p M for each point of
/// \p Space (default: the paper's three policies under dynamic
/// scheduling). Asserts that commutativity analysis accepts each section
/// (the compiler only parallelizes sections whose operations commute) and
/// that every generated version passes the module verifier including
/// interprocedural atomicity.
VersionedProgram generateVersions(ir::Module &M,
                                  const VersionSpace &Space = {});

} // namespace dynfb::xform

#endif // DYNFB_XFORM_MULTIVERSION_H
