//===- xform/CodeSize.h - Generated code size model -------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the text-segment size of generated code (paper Table 1). Each IR
/// construct is priced with a constant machine-code byte cost; methods
/// identical across policies are counted once (the compiler "locates closed
/// subgraphs of the call graph that are the same for all optimization
/// policies" and emits a single copy -- Section 4.2); the Dynamic version
/// adds instrumented lock constructs and the per-section version dispatch.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_XFORM_CODESIZE_H
#define DYNFB_XFORM_CODESIZE_H

#include "ir/Module.h"
#include "xform/MultiVersion.h"

#include <cstdint>
#include <vector>

namespace dynfb::xform {

/// Byte costs of generated constructs (defaults loosely calibrated to the
/// MIPS code sizes of the paper's Table 1 era).
struct CodeSizeModel {
  uint64_t MethodOverheadBytes = 160; ///< prologue/epilogue
  uint64_t ComputeBytes = 480; ///< one inlined compute kernel (interact etc.)
  uint64_t UpdateBytes = 96;   ///< load-op-store of a field (+addressing)
  uint64_t LockOpBytes = 48;   ///< acquire or release construct
  uint64_t LockOpInstrumentedBytes = 88; ///< with overhead counters
  uint64_t CallBytes = 32;     ///< call site
  uint64_t LoopBytes = 96;     ///< loop control
  uint64_t DispatchBytesPerVersion = 40; ///< switch dispatch, per version
  uint64_t PollBytesPerSection = 320; ///< interval polling code (Dynamic)
  /// SPMD parallel driver per section (scheduler, barrier, spawn code) --
  /// present in every parallel executable, absent from the serial one.
  uint64_t ParallelDriverBytes = 4800;

  /// Size of one method. \p Instrumented prices lock constructs with the
  /// overhead-measurement counters compiled in.
  uint64_t methodBytes(const ir::Method &M, bool Instrumented) const;

  /// Total size of a set of entry points: the union of their method
  /// closures, with structurally identical methods counted once.
  uint64_t closureBytes(const std::vector<const ir::Method *> &Entries,
                        bool Instrumented) const;
};

/// Sizes of the three executable flavours of one program, mirroring
/// Table 1's rows (Serial / Aggressive / Dynamic). \p SerialBaseBytes models
/// the application code outside the parallel sections (I/O, setup, the
/// serial phases), which is identical in every flavour.
struct ExecutableSizes {
  uint64_t Serial = 0;
  uint64_t Aggressive = 0;
  uint64_t Dynamic = 0;
};

ExecutableSizes computeExecutableSizes(const VersionedProgram &Program,
                                       const CodeSizeModel &Model,
                                       uint64_t SerialBaseBytes);

/// Size of the fixed executable built from one version-space point: the
/// serial base, the parallel driver, and the closure of that point's entry
/// in every section (uninstrumented, like the static flavours). Scheduling
/// variants of one policy share their generated code, so they report the
/// same size -- the scheduling dimension only grows the Dynamic
/// executable's dispatch tables.
uint64_t fixedExecutableBytes(const VersionedProgram &Program,
                              const CodeSizeModel &Model,
                              uint64_t SerialBaseBytes,
                              const VersionDescriptor &D);

/// Size of the serial executable (shared helper for relative-size reports).
uint64_t serialExecutableBytes(const VersionedProgram &Program,
                               const CodeSizeModel &Model,
                               uint64_t SerialBaseBytes);

} // namespace dynfb::xform

#endif // DYNFB_XFORM_CODESIZE_H
