//===- xform/LockElimination.h - The lock elimination transform -*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synchronization optimization algorithms of paper Section 3. A
/// computation that releases a lock and then reacquires the same lock has
/// the intermediate release/acquire eliminated, coalescing critical regions;
/// an invariant-receiver region that is the only locking inside a loop body
/// is lifted out of the loop (interprocedurally through single-region
/// callees, exactly the paper's Figure 1 -> Figure 2 transformation). The
/// policy decides which applications are legal.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_XFORM_LOCKELIMINATION_H
#define DYNFB_XFORM_LOCKELIMINATION_H

#include "ir/Module.h"
#include "xform/Policy.h"

#include <map>

namespace dynfb::xform {

/// Statistics of one optimization run, for tests and reports.
struct OptStats {
  unsigned RegionsCoalesced = 0; ///< release/acquire pairs eliminated
  unsigned LoopsLifted = 0;      ///< regions lifted out of loops
  unsigned CalleesStripped = 0;  ///< lock-free method variants created
};

/// Applies the lock elimination transformation under \p Policy to the
/// closure of \p Entry, in place. \p Entry and all reachable methods must be
/// synthetic clones carrying the default placement. Returns statistics.
OptStats optimizeSynchronization(ir::Module &M, ir::Method *Entry,
                                 PolicyKind Policy);

} // namespace dynfb::xform

#endif // DYNFB_XFORM_LOCKELIMINATION_H
