//===- xform/VersionSpace.cpp ---------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "xform/VersionSpace.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <stdexcept>

using namespace dynfb;
using namespace dynfb::xform;

std::string VersionDescriptor::name() const {
  std::string Out = policyName(Policy);
  if (Sched.Kind != rt::SchedKind::Dynamic)
    Out += "+" + Sched.name();
  return Out;
}

std::string VersionDescriptor::suffix() const {
  return policySuffix(Policy) + Sched.suffix();
}

VersionSpace VersionSpace::product(std::vector<PolicyKind> Policies,
                                   std::vector<rt::SchedSpec> Scheds) {
  DYNFB_CHECK(!Policies.empty(),
              "version space needs at least one synchronization policy");
  DYNFB_CHECK(!Scheds.empty(),
              "version space needs at least one scheduling strategy");
  std::vector<VersionDescriptor> Ds;
  Ds.reserve(Policies.size() * Scheds.size());
  for (PolicyKind P : Policies)
    for (const rt::SchedSpec &S : Scheds) {
      const VersionDescriptor D{P, S};
      DYNFB_CHECK(std::find(Ds.begin(), Ds.end(), D) == Ds.end(),
                  "duplicate descriptor in version space");
      Ds.push_back(D);
    }
  return VersionSpace(std::move(Ds));
}

std::optional<VersionSpace> VersionSpace::parse(const std::string &Dimensions,
                                                const std::string &Chunks,
                                                std::string &Error) {
  bool WantSync = false, WantSched = false;
  for (const std::string &Dim : splitString(Dimensions, ',')) {
    if (Dim == "sync") {
      if (WantSync) {
        Error = "dimension 'sync' listed twice";
        return std::nullopt;
      }
      WantSync = true;
    } else if (Dim == "sched") {
      if (WantSched) {
        Error = "dimension 'sched' listed twice";
        return std::nullopt;
      }
      WantSched = true;
    } else {
      Error = "unknown dimension '" + Dim + "' (expected sync or sched)";
      return std::nullopt;
    }
  }
  if (!WantSync) {
    Error = Dimensions.empty()
                ? "empty dimension list (expected at least sync)"
                : "dimension 'sync' is mandatory (the generated code "
                  "versions differ only along it)";
    return std::nullopt;
  }

  std::vector<rt::SchedSpec> Scheds{rt::SchedSpec::dynamic()};
  if (!WantSched) {
    if (!Chunks.empty()) {
      Error = "--chunks requires the sched dimension";
      return std::nullopt;
    }
  } else {
    if (Chunks.empty()) {
      Error = "the sched dimension needs chunk sizes (--chunks=K1,K2,...)";
      return std::nullopt;
    }
    for (const std::string &C : splitString(Chunks, ',')) {
      rt::SchedSpec S;
      // Named tokens select the DLS family; numeric tokens are blocked
      // self-scheduling chunk sizes.
      if (C == "fac") {
        S = rt::SchedSpec::factoring();
      } else if (C == "wfac") {
        S = rt::SchedSpec::weightedFactoring();
      } else if (C == "afac") {
        S = rt::SchedSpec::adaptiveFactoring();
      } else {
        unsigned long long K = 0;
        try {
          size_t Pos = 0;
          K = std::stoull(C, &Pos);
          if (Pos != C.size())
            throw std::invalid_argument(C);
        } catch (const std::exception &) {
          Error = "malformed chunk size '" + C +
                  "' (expected an integer >= 2 or one of fac, wfac, afac)";
          return std::nullopt;
        }
        if (K < 2) {
          Error = "chunk size must be >= 2 (got '" + C +
                  "'; chunk 1 is dynamic self-scheduling)";
          return std::nullopt;
        }
        S = rt::SchedSpec::chunked(K);
      }
      if (std::find(Scheds.begin(), Scheds.end(), S) != Scheds.end()) {
        Error = "duplicate chunk size '" + C + "'";
        return std::nullopt;
      }
      Scheds.push_back(S);
    }
  }

  return product({AllPolicies[0], AllPolicies[1], AllPolicies[2]},
                 std::move(Scheds));
}

std::vector<PolicyKind> VersionSpace::policies() const {
  std::vector<PolicyKind> Out;
  for (const VersionDescriptor &D : Descriptors)
    if (std::find(Out.begin(), Out.end(), D.Policy) == Out.end())
      Out.push_back(D.Policy);
  return Out;
}

std::vector<rt::SchedSpec> VersionSpace::scheds() const {
  std::vector<rt::SchedSpec> Out;
  for (const VersionDescriptor &D : Descriptors)
    if (std::find(Out.begin(), Out.end(), D.Sched) == Out.end())
      Out.push_back(D.Sched);
  return Out;
}

bool VersionSpace::isDefault() const {
  return Descriptors.size() == 3 &&
         Descriptors[0] == VersionDescriptor{PolicyKind::Original, {}} &&
         Descriptors[1] == VersionDescriptor{PolicyKind::Bounded, {}} &&
         Descriptors[2] == VersionDescriptor{PolicyKind::Aggressive, {}};
}
