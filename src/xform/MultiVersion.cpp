//===- xform/MultiVersion.cpp ---------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "xform/MultiVersion.h"

#include "analysis/Commutativity.h"
#include "ir/Clone.h"
#include "ir/StructuralHash.h"
#include "ir/Verifier.h"
#include "support/Compiler.h"
#include "xform/LockElimination.h"
#include "xform/Synchronizer.h"

#include <cassert>
#include <cstdio>
#include <map>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::xform;

std::string SectionVersion::label() const {
  std::string Out;
  for (size_t I = 0; I < Descriptors.size(); ++I) {
    if (I != 0)
      Out += "/";
    Out += Descriptors[I].name();
  }
  return Out;
}

unsigned VersionedSection::indexFor(PolicyKind P) const {
  for (unsigned I = 0; I < Versions.size(); ++I)
    if (Versions[I].hasPolicy(P))
      return I;
  DYNFB_UNREACHABLE("policy has no version in this section");
}

unsigned VersionedSection::indexFor(const VersionDescriptor &D) const {
  for (unsigned I = 0; I < Versions.size(); ++I)
    if (Versions[I].hasDescriptor(D))
      return I;
  DYNFB_UNREACHABLE("descriptor has no version in this section");
}

const VersionedSection *
VersionedProgram::find(const std::string &Name) const {
  for (const VersionedSection &S : Sections)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

/// Reports verifier errors and aborts: a transformation that breaks the
/// invariants is a compiler bug, not a recoverable condition.
static void checkVerified(const Module &M, const char *Where) {
  VerifyOptions Opts;
  Opts.RequireAtomicUpdates = false; // Checked per entry below.
  const std::vector<std::string> Errors = verifyModule(M, Opts);
  if (Errors.empty())
    return;
  for (const std::string &E : Errors)
    std::fprintf(stderr, "verifier (%s): %s\n", Where, E.c_str());
  reportFatalError("IR verification failed after version generation");
}

VersionedProgram xform::generateVersions(Module &M,
                                         const VersionSpace &Space) {
  VersionedProgram Program;
  Program.Space = Space;
  for (const ParallelSection &Section : M.sections()) {
    // The compiler only parallelizes sections whose operations commute.
    const analysis::CommutativityResult CR = analysis::analyzeSection(Section);
    if (!CR.Commutes) {
      for (const std::string &D : CR.Diagnostics)
        std::fprintf(stderr, "commutativity (%s): %s\n",
                     Section.Name.c_str(), D.c_str());
      reportFatalError("section operations do not commute; cannot "
                       "parallelize");
    }

    VersionedSection VS;
    VS.Name = Section.Name;

    // Serial entry: a plain clone (applications author lock-free bodies;
    // the clone isolates it from any later mutation).
    VS.SerialEntry =
        cloneMethodClosure(M, Section.IterMethod, "$serial").Root;

    // The synchronization dimension is the only one that materializes code:
    // clone and optimize once per distinct policy, on first encounter in
    // space order.
    std::map<PolicyKind, Method *> PolicyEntries;
    for (const VersionDescriptor &D : Space.descriptors()) {
      auto It = PolicyEntries.find(D.Policy);
      if (It == PolicyEntries.end()) {
        CloneResult Clone = cloneMethodClosure(M, Section.IterMethod,
                                               policySuffix(D.Policy));
        insertDefaultPlacement(M, Clone.Root);
        optimizeSynchronization(M, Clone.Root, D.Policy);

        // Every generated version must preserve atomicity of updates.
        const std::vector<std::string> AtomErrors =
            verifyAtomicity(*Clone.Root);
        if (!AtomErrors.empty()) {
          for (const std::string &E : AtomErrors)
            std::fprintf(stderr, "atomicity (%s, %s): %s\n",
                         Section.Name.c_str(), policyName(D.Policy),
                         E.c_str());
          reportFatalError("generated version violates update atomicity");
        }
        It = PolicyEntries.emplace(D.Policy, Clone.Root).first;
      }
      Method *Entry = It->second;

      // Deduplicate equivalent versions: same scheduling strategy and
      // structurally identical generated code.
      bool Merged = false;
      for (SectionVersion &Existing : VS.Versions) {
        if (Existing.Sched == D.Sched &&
            structurallyEqual(*Existing.Entry, *Entry)) {
          Existing.Descriptors.push_back(D);
          Merged = true;
          break;
        }
      }
      if (!Merged)
        VS.Versions.push_back(SectionVersion{{D}, Entry, D.Sched});
    }
    Program.Sections.push_back(std::move(VS));
  }

  checkVerified(M, "generateVersions");
  return Program;
}
