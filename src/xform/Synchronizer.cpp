//===- xform/Synchronizer.cpp ---------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "xform/Synchronizer.h"

#include <cassert>
#include <set>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::xform;

namespace {

/// Applies \p Fn to every statement list in the closure of \p Entry
/// (method bodies and loop bodies), each exactly once.
template <typename FnT> void forEachList(Method *Entry, FnT Fn) {
  std::set<Method *> Visited;
  std::vector<Method *> Work{Entry};
  while (!Work.empty()) {
    Method *M = Work.back();
    Work.pop_back();
    if (!Visited.insert(M).second)
      continue;
    std::vector<std::vector<Stmt *> *> Lists{&M->body()};
    while (!Lists.empty()) {
      std::vector<Stmt *> *List = Lists.back();
      Lists.pop_back();
      Fn(*List);
      for (Stmt *S : *List) {
        if (auto *L = stmtDynCast<LoopStmt>(S))
          Lists.push_back(&L->Body);
        else if (auto *C = stmtDynCast<CallStmt>(S))
          Work.push_back(const_cast<Method *>(C->callee()));
      }
    }
  }
}

} // namespace

void xform::insertDefaultPlacement(Module &M, Method *Entry) {
  forEachList(Entry, [&M](std::vector<Stmt *> &List) {
    std::vector<Stmt *> Out;
    Out.reserve(List.size());
    for (Stmt *S : List) {
      if (auto *U = stmtDynCast<UpdateStmt>(S)) {
        Out.push_back(M.createAcquire(U->Recv));
        Out.push_back(S);
        Out.push_back(M.createRelease(U->Recv));
      } else {
        Out.push_back(S);
      }
    }
    List = std::move(Out);
  });
}

void xform::stripAllLocks(Method *Entry) {
  forEachList(Entry, [](std::vector<Stmt *> &List) {
    std::vector<Stmt *> Out;
    Out.reserve(List.size());
    for (Stmt *S : List)
      if (S->kind() != StmtKind::Acquire && S->kind() != StmtKind::Release)
        Out.push_back(S);
    List = std::move(Out);
  });
}
