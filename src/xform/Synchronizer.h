//===- xform/Synchronizer.h - Default lock placement ------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inserts the default synchronization placement (paper Section 2): every
/// operation that updates an object first acquires the object's lock,
/// performs the update, then releases the lock. Also provides the inverse
/// (stripping all locks) for serial versions and lock-free method variants.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_XFORM_SYNCHRONIZER_H
#define DYNFB_XFORM_SYNCHRONIZER_H

#include "ir/Module.h"

namespace dynfb::xform {

/// Wraps every UpdateStmt in the closure of \p Entry in its own
/// acquire/release pair on the update's receiver. Mutates the closure in
/// place; \p Entry and everything it reaches must be synthetic clones.
void insertDefaultPlacement(ir::Module &M, ir::Method *Entry);

/// Removes every Acquire/Release statement in the closure of \p Entry.
void stripAllLocks(ir::Method *Entry);

} // namespace dynfb::xform

#endif // DYNFB_XFORM_SYNCHRONIZER_H
